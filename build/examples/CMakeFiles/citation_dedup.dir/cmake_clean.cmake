file(REMOVE_RECURSE
  "CMakeFiles/citation_dedup.dir/citation_dedup.cc.o"
  "CMakeFiles/citation_dedup.dir/citation_dedup.cc.o.d"
  "citation_dedup"
  "citation_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
