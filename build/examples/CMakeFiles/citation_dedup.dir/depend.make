# Empty dependencies file for citation_dedup.
# This may be replaced when dependencies are built.
