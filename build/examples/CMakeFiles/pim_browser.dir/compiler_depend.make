# Empty compiler generated dependencies file for pim_browser.
# This may be replaced when dependencies are built.
