file(REMOVE_RECURSE
  "CMakeFiles/pim_browser.dir/pim_browser.cc.o"
  "CMakeFiles/pim_browser.dir/pim_browser.cc.o.d"
  "pim_browser"
  "pim_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
