
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/recon_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/recon_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/recon_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/recon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/recon_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/recon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/recon_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/recon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/strsim/CMakeFiles/recon_strsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
