file(REMOVE_RECURSE
  "CMakeFiles/desktop_pipeline.dir/desktop_pipeline.cc.o"
  "CMakeFiles/desktop_pipeline.dir/desktop_pipeline.cc.o.d"
  "desktop_pipeline"
  "desktop_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desktop_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
