# Empty dependencies file for desktop_pipeline.
# This may be replaced when dependencies are built.
