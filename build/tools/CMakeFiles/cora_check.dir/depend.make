# Empty dependencies file for cora_check.
# This may be replaced when dependencies are built.
