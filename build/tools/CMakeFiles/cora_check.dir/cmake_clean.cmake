file(REMOVE_RECURSE
  "CMakeFiles/cora_check.dir/cora_check.cc.o"
  "CMakeFiles/cora_check.dir/cora_check.cc.o.d"
  "cora_check"
  "cora_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cora_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
