# Empty dependencies file for debug_merges.
# This may be replaced when dependencies are built.
