file(REMOVE_RECURSE
  "CMakeFiles/debug_merges.dir/debug_merges.cc.o"
  "CMakeFiles/debug_merges.dir/debug_merges.cc.o.d"
  "debug_merges"
  "debug_merges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_merges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
