# Empty dependencies file for quality_check.
# This may be replaced when dependencies are built.
