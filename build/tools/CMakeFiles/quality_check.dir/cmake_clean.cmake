file(REMOVE_RECURSE
  "CMakeFiles/quality_check.dir/quality_check.cc.o"
  "CMakeFiles/quality_check.dir/quality_check.cc.o.d"
  "quality_check"
  "quality_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
