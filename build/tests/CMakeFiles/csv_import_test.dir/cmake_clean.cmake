file(REMOVE_RECURSE
  "CMakeFiles/csv_import_test.dir/csv_import_test.cc.o"
  "CMakeFiles/csv_import_test.dir/csv_import_test.cc.o.d"
  "csv_import_test"
  "csv_import_test.pdb"
  "csv_import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
