# Empty dependencies file for cora_test.
# This may be replaced when dependencies are built.
