# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/strsim_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
include("/root/repo/build/tests/candidates_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/text_io_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/feedback_test[1]_include.cmake")
include("/root/repo/build/tests/csv_import_test[1]_include.cmake")
include("/root/repo/build/tests/cora_test[1]_include.cmake")
include("/root/repo/build/tests/graph_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/fellegi_sunter_test[1]_include.cmake")
include("/root/repo/build/tests/canopy_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
