# Empty compiler generated dependencies file for recon_sim.
# This may be replaced when dependencies are built.
