file(REMOVE_RECURSE
  "librecon_sim.a"
)
