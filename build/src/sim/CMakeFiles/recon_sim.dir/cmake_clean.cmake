file(REMOVE_RECURSE
  "CMakeFiles/recon_sim.dir/class_sim.cc.o"
  "CMakeFiles/recon_sim.dir/class_sim.cc.o.d"
  "CMakeFiles/recon_sim.dir/comparators.cc.o"
  "CMakeFiles/recon_sim.dir/comparators.cc.o.d"
  "CMakeFiles/recon_sim.dir/evidence.cc.o"
  "CMakeFiles/recon_sim.dir/evidence.cc.o.d"
  "librecon_sim.a"
  "librecon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
