src/sim/CMakeFiles/recon_sim.dir/evidence.cc.o: \
 /root/repo/src/sim/evidence.cc /usr/include/stdc-predef.h \
 /root/repo/src/sim/evidence.h
