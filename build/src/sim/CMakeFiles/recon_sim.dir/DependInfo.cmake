
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/class_sim.cc" "src/sim/CMakeFiles/recon_sim.dir/class_sim.cc.o" "gcc" "src/sim/CMakeFiles/recon_sim.dir/class_sim.cc.o.d"
  "/root/repo/src/sim/comparators.cc" "src/sim/CMakeFiles/recon_sim.dir/comparators.cc.o" "gcc" "src/sim/CMakeFiles/recon_sim.dir/comparators.cc.o.d"
  "/root/repo/src/sim/evidence.cc" "src/sim/CMakeFiles/recon_sim.dir/evidence.cc.o" "gcc" "src/sim/CMakeFiles/recon_sim.dir/evidence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/strsim/CMakeFiles/recon_strsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
