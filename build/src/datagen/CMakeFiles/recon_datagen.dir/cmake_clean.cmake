file(REMOVE_RECURSE
  "CMakeFiles/recon_datagen.dir/cora_generator.cc.o"
  "CMakeFiles/recon_datagen.dir/cora_generator.cc.o.d"
  "CMakeFiles/recon_datagen.dir/corpora.cc.o"
  "CMakeFiles/recon_datagen.dir/corpora.cc.o.d"
  "CMakeFiles/recon_datagen.dir/entities.cc.o"
  "CMakeFiles/recon_datagen.dir/entities.cc.o.d"
  "CMakeFiles/recon_datagen.dir/pim_generator.cc.o"
  "CMakeFiles/recon_datagen.dir/pim_generator.cc.o.d"
  "CMakeFiles/recon_datagen.dir/render.cc.o"
  "CMakeFiles/recon_datagen.dir/render.cc.o.d"
  "CMakeFiles/recon_datagen.dir/variants.cc.o"
  "CMakeFiles/recon_datagen.dir/variants.cc.o.d"
  "librecon_datagen.a"
  "librecon_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
