# Empty compiler generated dependencies file for recon_datagen.
# This may be replaced when dependencies are built.
