file(REMOVE_RECURSE
  "librecon_datagen.a"
)
