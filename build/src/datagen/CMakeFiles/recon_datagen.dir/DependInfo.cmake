
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/cora_generator.cc" "src/datagen/CMakeFiles/recon_datagen.dir/cora_generator.cc.o" "gcc" "src/datagen/CMakeFiles/recon_datagen.dir/cora_generator.cc.o.d"
  "/root/repo/src/datagen/corpora.cc" "src/datagen/CMakeFiles/recon_datagen.dir/corpora.cc.o" "gcc" "src/datagen/CMakeFiles/recon_datagen.dir/corpora.cc.o.d"
  "/root/repo/src/datagen/entities.cc" "src/datagen/CMakeFiles/recon_datagen.dir/entities.cc.o" "gcc" "src/datagen/CMakeFiles/recon_datagen.dir/entities.cc.o.d"
  "/root/repo/src/datagen/pim_generator.cc" "src/datagen/CMakeFiles/recon_datagen.dir/pim_generator.cc.o" "gcc" "src/datagen/CMakeFiles/recon_datagen.dir/pim_generator.cc.o.d"
  "/root/repo/src/datagen/render.cc" "src/datagen/CMakeFiles/recon_datagen.dir/render.cc.o" "gcc" "src/datagen/CMakeFiles/recon_datagen.dir/render.cc.o.d"
  "/root/repo/src/datagen/variants.cc" "src/datagen/CMakeFiles/recon_datagen.dir/variants.cc.o" "gcc" "src/datagen/CMakeFiles/recon_datagen.dir/variants.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/recon_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/recon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/recon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/recon_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/recon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/strsim/CMakeFiles/recon_strsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
