# Empty compiler generated dependencies file for recon_baseline.
# This may be replaced when dependencies are built.
