file(REMOVE_RECURSE
  "CMakeFiles/recon_baseline.dir/fellegi_sunter.cc.o"
  "CMakeFiles/recon_baseline.dir/fellegi_sunter.cc.o.d"
  "CMakeFiles/recon_baseline.dir/indep_dec.cc.o"
  "CMakeFiles/recon_baseline.dir/indep_dec.cc.o.d"
  "librecon_baseline.a"
  "librecon_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
