file(REMOVE_RECURSE
  "librecon_baseline.a"
)
