# Empty dependencies file for recon_baseline.
# This may be replaced when dependencies are built.
