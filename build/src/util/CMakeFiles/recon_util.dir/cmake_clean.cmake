file(REMOVE_RECURSE
  "CMakeFiles/recon_util.dir/random.cc.o"
  "CMakeFiles/recon_util.dir/random.cc.o.d"
  "CMakeFiles/recon_util.dir/status.cc.o"
  "CMakeFiles/recon_util.dir/status.cc.o.d"
  "CMakeFiles/recon_util.dir/string_util.cc.o"
  "CMakeFiles/recon_util.dir/string_util.cc.o.d"
  "CMakeFiles/recon_util.dir/union_find.cc.o"
  "CMakeFiles/recon_util.dir/union_find.cc.o.d"
  "librecon_util.a"
  "librecon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
