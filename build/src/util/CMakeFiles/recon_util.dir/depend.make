# Empty dependencies file for recon_util.
# This may be replaced when dependencies are built.
