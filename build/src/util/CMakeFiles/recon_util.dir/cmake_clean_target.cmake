file(REMOVE_RECURSE
  "librecon_util.a"
)
