# Empty dependencies file for recon_core.
# This may be replaced when dependencies are built.
