
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidates.cc" "src/core/CMakeFiles/recon_core.dir/candidates.cc.o" "gcc" "src/core/CMakeFiles/recon_core.dir/candidates.cc.o.d"
  "/root/repo/src/core/canopy.cc" "src/core/CMakeFiles/recon_core.dir/canopy.cc.o" "gcc" "src/core/CMakeFiles/recon_core.dir/canopy.cc.o.d"
  "/root/repo/src/core/graph_builder.cc" "src/core/CMakeFiles/recon_core.dir/graph_builder.cc.o" "gcc" "src/core/CMakeFiles/recon_core.dir/graph_builder.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/recon_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/recon_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/premerge.cc" "src/core/CMakeFiles/recon_core.dir/premerge.cc.o" "gcc" "src/core/CMakeFiles/recon_core.dir/premerge.cc.o.d"
  "/root/repo/src/core/reconciler.cc" "src/core/CMakeFiles/recon_core.dir/reconciler.cc.o" "gcc" "src/core/CMakeFiles/recon_core.dir/reconciler.cc.o.d"
  "/root/repo/src/core/schema_binding.cc" "src/core/CMakeFiles/recon_core.dir/schema_binding.cc.o" "gcc" "src/core/CMakeFiles/recon_core.dir/schema_binding.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/core/CMakeFiles/recon_core.dir/solver.cc.o" "gcc" "src/core/CMakeFiles/recon_core.dir/solver.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/recon_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/recon_core.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/recon_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/recon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/recon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/strsim/CMakeFiles/recon_strsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
