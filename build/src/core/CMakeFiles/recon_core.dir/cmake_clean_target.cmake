file(REMOVE_RECURSE
  "librecon_core.a"
)
