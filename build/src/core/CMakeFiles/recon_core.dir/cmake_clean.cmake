file(REMOVE_RECURSE
  "CMakeFiles/recon_core.dir/candidates.cc.o"
  "CMakeFiles/recon_core.dir/candidates.cc.o.d"
  "CMakeFiles/recon_core.dir/canopy.cc.o"
  "CMakeFiles/recon_core.dir/canopy.cc.o.d"
  "CMakeFiles/recon_core.dir/graph_builder.cc.o"
  "CMakeFiles/recon_core.dir/graph_builder.cc.o.d"
  "CMakeFiles/recon_core.dir/incremental.cc.o"
  "CMakeFiles/recon_core.dir/incremental.cc.o.d"
  "CMakeFiles/recon_core.dir/premerge.cc.o"
  "CMakeFiles/recon_core.dir/premerge.cc.o.d"
  "CMakeFiles/recon_core.dir/reconciler.cc.o"
  "CMakeFiles/recon_core.dir/reconciler.cc.o.d"
  "CMakeFiles/recon_core.dir/schema_binding.cc.o"
  "CMakeFiles/recon_core.dir/schema_binding.cc.o.d"
  "CMakeFiles/recon_core.dir/solver.cc.o"
  "CMakeFiles/recon_core.dir/solver.cc.o.d"
  "CMakeFiles/recon_core.dir/tuner.cc.o"
  "CMakeFiles/recon_core.dir/tuner.cc.o.d"
  "librecon_core.a"
  "librecon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
