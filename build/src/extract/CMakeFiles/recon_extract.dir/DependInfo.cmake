
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/bibtex_parser.cc" "src/extract/CMakeFiles/recon_extract.dir/bibtex_parser.cc.o" "gcc" "src/extract/CMakeFiles/recon_extract.dir/bibtex_parser.cc.o.d"
  "/root/repo/src/extract/csv_import.cc" "src/extract/CMakeFiles/recon_extract.dir/csv_import.cc.o" "gcc" "src/extract/CMakeFiles/recon_extract.dir/csv_import.cc.o.d"
  "/root/repo/src/extract/email_parser.cc" "src/extract/CMakeFiles/recon_extract.dir/email_parser.cc.o" "gcc" "src/extract/CMakeFiles/recon_extract.dir/email_parser.cc.o.d"
  "/root/repo/src/extract/extractor.cc" "src/extract/CMakeFiles/recon_extract.dir/extractor.cc.o" "gcc" "src/extract/CMakeFiles/recon_extract.dir/extractor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/recon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
