file(REMOVE_RECURSE
  "CMakeFiles/recon_extract.dir/bibtex_parser.cc.o"
  "CMakeFiles/recon_extract.dir/bibtex_parser.cc.o.d"
  "CMakeFiles/recon_extract.dir/csv_import.cc.o"
  "CMakeFiles/recon_extract.dir/csv_import.cc.o.d"
  "CMakeFiles/recon_extract.dir/email_parser.cc.o"
  "CMakeFiles/recon_extract.dir/email_parser.cc.o.d"
  "CMakeFiles/recon_extract.dir/extractor.cc.o"
  "CMakeFiles/recon_extract.dir/extractor.cc.o.d"
  "librecon_extract.a"
  "librecon_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
