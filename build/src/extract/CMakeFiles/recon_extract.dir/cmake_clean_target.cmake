file(REMOVE_RECURSE
  "librecon_extract.a"
)
