# Empty compiler generated dependencies file for recon_extract.
# This may be replaced when dependencies are built.
