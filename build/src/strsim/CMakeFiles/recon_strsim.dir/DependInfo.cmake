
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strsim/edit_distance.cc" "src/strsim/CMakeFiles/recon_strsim.dir/edit_distance.cc.o" "gcc" "src/strsim/CMakeFiles/recon_strsim.dir/edit_distance.cc.o.d"
  "/root/repo/src/strsim/email.cc" "src/strsim/CMakeFiles/recon_strsim.dir/email.cc.o" "gcc" "src/strsim/CMakeFiles/recon_strsim.dir/email.cc.o.d"
  "/root/repo/src/strsim/jaro_winkler.cc" "src/strsim/CMakeFiles/recon_strsim.dir/jaro_winkler.cc.o" "gcc" "src/strsim/CMakeFiles/recon_strsim.dir/jaro_winkler.cc.o.d"
  "/root/repo/src/strsim/person_name.cc" "src/strsim/CMakeFiles/recon_strsim.dir/person_name.cc.o" "gcc" "src/strsim/CMakeFiles/recon_strsim.dir/person_name.cc.o.d"
  "/root/repo/src/strsim/phonetic.cc" "src/strsim/CMakeFiles/recon_strsim.dir/phonetic.cc.o" "gcc" "src/strsim/CMakeFiles/recon_strsim.dir/phonetic.cc.o.d"
  "/root/repo/src/strsim/tfidf.cc" "src/strsim/CMakeFiles/recon_strsim.dir/tfidf.cc.o" "gcc" "src/strsim/CMakeFiles/recon_strsim.dir/tfidf.cc.o.d"
  "/root/repo/src/strsim/title.cc" "src/strsim/CMakeFiles/recon_strsim.dir/title.cc.o" "gcc" "src/strsim/CMakeFiles/recon_strsim.dir/title.cc.o.d"
  "/root/repo/src/strsim/tokens.cc" "src/strsim/CMakeFiles/recon_strsim.dir/tokens.cc.o" "gcc" "src/strsim/CMakeFiles/recon_strsim.dir/tokens.cc.o.d"
  "/root/repo/src/strsim/venue.cc" "src/strsim/CMakeFiles/recon_strsim.dir/venue.cc.o" "gcc" "src/strsim/CMakeFiles/recon_strsim.dir/venue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/recon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
