# Empty compiler generated dependencies file for recon_strsim.
# This may be replaced when dependencies are built.
