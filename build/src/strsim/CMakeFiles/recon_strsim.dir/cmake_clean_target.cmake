file(REMOVE_RECURSE
  "librecon_strsim.a"
)
