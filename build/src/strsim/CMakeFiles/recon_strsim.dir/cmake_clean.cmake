file(REMOVE_RECURSE
  "CMakeFiles/recon_strsim.dir/edit_distance.cc.o"
  "CMakeFiles/recon_strsim.dir/edit_distance.cc.o.d"
  "CMakeFiles/recon_strsim.dir/email.cc.o"
  "CMakeFiles/recon_strsim.dir/email.cc.o.d"
  "CMakeFiles/recon_strsim.dir/jaro_winkler.cc.o"
  "CMakeFiles/recon_strsim.dir/jaro_winkler.cc.o.d"
  "CMakeFiles/recon_strsim.dir/person_name.cc.o"
  "CMakeFiles/recon_strsim.dir/person_name.cc.o.d"
  "CMakeFiles/recon_strsim.dir/phonetic.cc.o"
  "CMakeFiles/recon_strsim.dir/phonetic.cc.o.d"
  "CMakeFiles/recon_strsim.dir/tfidf.cc.o"
  "CMakeFiles/recon_strsim.dir/tfidf.cc.o.d"
  "CMakeFiles/recon_strsim.dir/title.cc.o"
  "CMakeFiles/recon_strsim.dir/title.cc.o.d"
  "CMakeFiles/recon_strsim.dir/tokens.cc.o"
  "CMakeFiles/recon_strsim.dir/tokens.cc.o.d"
  "CMakeFiles/recon_strsim.dir/venue.cc.o"
  "CMakeFiles/recon_strsim.dir/venue.cc.o.d"
  "librecon_strsim.a"
  "librecon_strsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_strsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
