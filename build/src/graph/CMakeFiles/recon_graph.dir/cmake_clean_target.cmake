file(REMOVE_RECURSE
  "librecon_graph.a"
)
