file(REMOVE_RECURSE
  "CMakeFiles/recon_graph.dir/dep_graph.cc.o"
  "CMakeFiles/recon_graph.dir/dep_graph.cc.o.d"
  "CMakeFiles/recon_graph.dir/value_pool.cc.o"
  "CMakeFiles/recon_graph.dir/value_pool.cc.o.d"
  "librecon_graph.a"
  "librecon_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
