# Empty dependencies file for recon_graph.
# This may be replaced when dependencies are built.
