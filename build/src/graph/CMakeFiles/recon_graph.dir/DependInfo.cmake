
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dep_graph.cc" "src/graph/CMakeFiles/recon_graph.dir/dep_graph.cc.o" "gcc" "src/graph/CMakeFiles/recon_graph.dir/dep_graph.cc.o.d"
  "/root/repo/src/graph/value_pool.cc" "src/graph/CMakeFiles/recon_graph.dir/value_pool.cc.o" "gcc" "src/graph/CMakeFiles/recon_graph.dir/value_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/recon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/recon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
