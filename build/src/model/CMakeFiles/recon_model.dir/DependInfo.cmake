
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/dataset.cc" "src/model/CMakeFiles/recon_model.dir/dataset.cc.o" "gcc" "src/model/CMakeFiles/recon_model.dir/dataset.cc.o.d"
  "/root/repo/src/model/reference.cc" "src/model/CMakeFiles/recon_model.dir/reference.cc.o" "gcc" "src/model/CMakeFiles/recon_model.dir/reference.cc.o.d"
  "/root/repo/src/model/schema.cc" "src/model/CMakeFiles/recon_model.dir/schema.cc.o" "gcc" "src/model/CMakeFiles/recon_model.dir/schema.cc.o.d"
  "/root/repo/src/model/subset.cc" "src/model/CMakeFiles/recon_model.dir/subset.cc.o" "gcc" "src/model/CMakeFiles/recon_model.dir/subset.cc.o.d"
  "/root/repo/src/model/text_io.cc" "src/model/CMakeFiles/recon_model.dir/text_io.cc.o" "gcc" "src/model/CMakeFiles/recon_model.dir/text_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/recon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
