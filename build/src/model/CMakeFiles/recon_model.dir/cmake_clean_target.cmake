file(REMOVE_RECURSE
  "librecon_model.a"
)
