file(REMOVE_RECURSE
  "CMakeFiles/recon_model.dir/dataset.cc.o"
  "CMakeFiles/recon_model.dir/dataset.cc.o.d"
  "CMakeFiles/recon_model.dir/reference.cc.o"
  "CMakeFiles/recon_model.dir/reference.cc.o.d"
  "CMakeFiles/recon_model.dir/schema.cc.o"
  "CMakeFiles/recon_model.dir/schema.cc.o.d"
  "CMakeFiles/recon_model.dir/subset.cc.o"
  "CMakeFiles/recon_model.dir/subset.cc.o.d"
  "CMakeFiles/recon_model.dir/text_io.cc.o"
  "CMakeFiles/recon_model.dir/text_io.cc.o.d"
  "librecon_model.a"
  "librecon_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
