# Empty dependencies file for recon_model.
# This may be replaced when dependencies are built.
