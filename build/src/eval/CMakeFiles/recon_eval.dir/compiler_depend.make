# Empty compiler generated dependencies file for recon_eval.
# This may be replaced when dependencies are built.
