file(REMOVE_RECURSE
  "librecon_eval.a"
)
