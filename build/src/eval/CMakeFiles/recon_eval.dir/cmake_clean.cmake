file(REMOVE_RECURSE
  "CMakeFiles/recon_eval.dir/metrics.cc.o"
  "CMakeFiles/recon_eval.dir/metrics.cc.o.d"
  "CMakeFiles/recon_eval.dir/report.cc.o"
  "CMakeFiles/recon_eval.dir/report.cc.o.d"
  "librecon_eval.a"
  "librecon_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recon_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
