file(REMOVE_RECURSE
  "../bench/baseline_comparison"
  "../bench/baseline_comparison.pdb"
  "CMakeFiles/baseline_comparison.dir/baseline_comparison.cc.o"
  "CMakeFiles/baseline_comparison.dir/baseline_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
