# Empty dependencies file for table3_subsets.
# This may be replaced when dependencies are built.
