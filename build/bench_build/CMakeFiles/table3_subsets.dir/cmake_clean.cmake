file(REMOVE_RECURSE
  "../bench/table3_subsets"
  "../bench/table3_subsets.pdb"
  "CMakeFiles/table3_subsets.dir/table3_subsets.cc.o"
  "CMakeFiles/table3_subsets.dir/table3_subsets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_subsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
