file(REMOVE_RECURSE
  "../bench/table4_datasets"
  "../bench/table4_datasets.pdb"
  "CMakeFiles/table4_datasets.dir/table4_datasets.cc.o"
  "CMakeFiles/table4_datasets.dir/table4_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
