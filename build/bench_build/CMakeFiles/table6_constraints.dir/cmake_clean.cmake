file(REMOVE_RECURSE
  "../bench/table6_constraints"
  "../bench/table6_constraints.pdb"
  "CMakeFiles/table6_constraints.dir/table6_constraints.cc.o"
  "CMakeFiles/table6_constraints.dir/table6_constraints.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
