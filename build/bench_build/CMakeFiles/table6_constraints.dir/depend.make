# Empty dependencies file for table6_constraints.
# This may be replaced when dependencies are built.
