# Empty dependencies file for table5_components.
# This may be replaced when dependencies are built.
