file(REMOVE_RECURSE
  "../bench/table5_components"
  "../bench/table5_components.pdb"
  "CMakeFiles/table5_components.dir/table5_components.cc.o"
  "CMakeFiles/table5_components.dir/table5_components.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
