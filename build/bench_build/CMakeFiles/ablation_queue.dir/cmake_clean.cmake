file(REMOVE_RECURSE
  "../bench/ablation_queue"
  "../bench/ablation_queue.pdb"
  "CMakeFiles/ablation_queue.dir/ablation_queue.cc.o"
  "CMakeFiles/ablation_queue.dir/ablation_queue.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
