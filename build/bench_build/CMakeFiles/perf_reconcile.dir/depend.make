# Empty dependencies file for perf_reconcile.
# This may be replaced when dependencies are built.
