file(REMOVE_RECURSE
  "../bench/perf_reconcile"
  "../bench/perf_reconcile.pdb"
  "CMakeFiles/perf_reconcile.dir/perf_reconcile.cc.o"
  "CMakeFiles/perf_reconcile.dir/perf_reconcile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_reconcile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
