file(REMOVE_RECURSE
  "../bench/table2_classes"
  "../bench/table2_classes.pdb"
  "CMakeFiles/table2_classes.dir/table2_classes.cc.o"
  "CMakeFiles/table2_classes.dir/table2_classes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
