# Empty dependencies file for table2_classes.
# This may be replaced when dependencies are built.
