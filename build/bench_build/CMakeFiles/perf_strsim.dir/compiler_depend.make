# Empty compiler generated dependencies file for perf_strsim.
# This may be replaced when dependencies are built.
