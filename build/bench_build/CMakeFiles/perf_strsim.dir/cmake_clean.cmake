file(REMOVE_RECURSE
  "../bench/perf_strsim"
  "../bench/perf_strsim.pdb"
  "CMakeFiles/perf_strsim.dir/perf_strsim.cc.o"
  "CMakeFiles/perf_strsim.dir/perf_strsim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_strsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
