# Empty compiler generated dependencies file for table7_cora.
# This may be replaced when dependencies are built.
