file(REMOVE_RECURSE
  "../bench/table7_cora"
  "../bench/table7_cora.pdb"
  "CMakeFiles/table7_cora.dir/table7_cora.cc.o"
  "CMakeFiles/table7_cora.dir/table7_cora.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_cora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
