// Canopy-sharded reconciliation at scale (DESIGN.md §14).
//
// Section 1 — identity + shard speedup (mid-size PIM B): the monolithic
// Reconciler::Run versus shard::ShardedReconcile at 1/2/4/8 shards with 4
// worker threads. At every shard count the output — partition, merged
// pairs, merge and fold counts — must be byte-identical to the monolithic
// run; the binary exits non-zero on any difference. shard_speedup in the
// JSON rows is what tools/run_benches.sh --gate-shard checks (>1.3x at 4
// shards, skipped on machines with <= 2 online CPUs).
//
// Section 2 — the million-reference run: PIM B scaled ~70x past the
// paper's corpus (>= 1M references at the default RECON_BENCH_SCALE),
// reconciled sharded under a soft memory budget. At this scale the
// default blocking keys stop being discriminative — the common-name and
// domain blocks hold tens of thousands of references — so the run uses
// max_block_size=100, the same popular-entity pruning the paper applies,
// which keeps the candidate set (and the graph) linear-ish in the corpus.
// The headline number is references_per_sec, recorded in BENCH_shard.json.

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>

#include "bench_common.h"
#include "runtime/thread_pool.h"
#include "shard/sharded_reconciler.h"
#include "util/timer.h"

namespace {

using namespace recon;

/// True when `a` and `b` are the byte-identical reconciliation outcome.
bool SameOutput(const ReconcileResult& a, const ReconcileResult& b) {
  return a.cluster == b.cluster && a.merged_pairs == b.merged_pairs &&
         a.stats.num_merges == b.stats.num_merges &&
         a.stats.num_folds == b.stats.num_folds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Perf: canopy-sharded reconciliation",
                     "shard/ subsystem (beyond the paper)");
  std::cout << "hardware threads: "
            << runtime::ThreadPool::HardwareConcurrency() << "\n";

  bench::JsonLog json;

  // ---- Section 1: identity + speedup (mid-size PIM B) ------------------
  {
    datagen::PimConfig config = datagen::PimConfigB();
    config = datagen::ScaleConfig(config, 0.25 * bench::BenchScale());
    const Dataset dataset = datagen::GeneratePim(config);
    std::cout << "\nIdentity gate, PIM B: " << dataset.num_references()
              << " references\n\n";

    ReconcilerOptions mono_options = ReconcilerOptions::DepGraph();
    mono_options.num_threads = 1;
    ReconcileResult mono;
    double mono_seconds = 0;
    for (int rep = 0; rep < 2; ++rep) {
      Timer timer;
      ReconcileResult r = Reconciler(mono_options).Run(dataset);
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0 || seconds < mono_seconds) mono_seconds = seconds;
      mono = std::move(r);
    }

    TablePrinter table({"Shards", "Threads", "Seconds", "Refs/s",
                        "Boundary", "Speedup", "Output"});
    table.AddRow({"mono", "1", TablePrinter::Num(mono_seconds, 3),
                  TablePrinter::Num(dataset.num_references() / mono_seconds,
                                    0),
                  "-", "1.00x", "reference"});
    for (const int shards : {1, 2, 4, 8}) {
      ReconcilerOptions options = ReconcilerOptions::DepGraph();
      options.num_shards = shards;
      options.num_threads = 4;
      ReconcileResult result;
      double best_seconds = 0;
      for (int rep = 0; rep < 2; ++rep) {
        Timer timer;
        ReconcileResult r = shard::ShardedReconcile(dataset, options);
        const double seconds = timer.ElapsedSeconds();
        if (rep == 0 || seconds < best_seconds) {
          best_seconds = seconds;
          result = std::move(r);
        }
      }
      const bool identical = SameOutput(mono, result);
      const double speedup = mono_seconds / best_seconds;
      table.AddRow(
          {std::to_string(shards), "4", TablePrinter::Num(best_seconds, 3),
           TablePrinter::Num(dataset.num_references() / best_seconds, 0),
           std::to_string(result.stats.num_boundary_pairs),
           TablePrinter::Num(speedup, 2) + "x",
           identical ? "identical" : "MISMATCH"});
      json.BeginRow();
      json.Add("section", std::string("shard"));
      json.Add("shards", shards);
      json.Add("threads", 4);
      json.Add("seconds", best_seconds);
      json.Add("references_per_sec", dataset.num_references() / best_seconds);
      json.Add("boundary_pairs", result.stats.num_boundary_pairs);
      json.Add("shard_merges", result.stats.num_shard_merges);
      json.Add("boundary_merges", result.stats.num_boundary_merges);
      json.Add("shard_speedup", speedup);
      json.Add("identical",
               identical ? std::string("true") : std::string("false"));
      if (!identical) {
        std::cerr << "FATAL: sharded output at " << shards
                  << " shards differs from the monolithic run\n";
        return 1;
      }
    }
    table.Print(std::cout);
  }

  // ---- Section 2: the million-reference run ----------------------------
  {
    // Deliberately NOT scaled by RECON_BENCH_SCALE: the point of this row
    // is the million-reference corpus (26x PIM B > 1M references), and the
    // popular-key pruning below keeps it ~10s even single-threaded.
    datagen::PimConfig config = datagen::PimConfigB();
    config = datagen::ScaleConfig(config, 26.0);
    Timer gen_timer;
    const Dataset dataset = datagen::GeneratePim(config);
    std::cout << "\nScaled PIM B: " << dataset.num_references()
              << " references (generated in "
              << TablePrinter::Num(gen_timer.ElapsedSeconds(), 1) << "s)\n";

    ReconcilerOptions options =
        bench::WithBenchThreads(ReconcilerOptions::DepGraph());
    options.num_shards = 8;
    options.max_block_size = 100;  // Popular-key pruning at corpus scale.
    options.budget.soft_max_memory_bytes = int64_t{16} << 30;

    Timer timer;
    const ReconcileResult result = shard::ShardedReconcile(dataset, options);
    const double seconds = timer.ElapsedSeconds();
    const ReconcileStats& s = result.stats;
    const double refs_per_sec = dataset.num_references() / seconds;

    std::cout << "reconciled in " << TablePrinter::Num(seconds, 1) << "s ("
              << TablePrinter::Num(refs_per_sec, 0) << " references/sec); "
              << s.num_candidates << " candidates, " << s.num_merges
              << " merges (" << s.num_shard_merges << " shard + "
              << s.num_boundary_merges << " boundary); graph "
              << TablePrinter::Num(s.graph_bytes / (1024.0 * 1024 * 1024), 2)
              << " GB inside a 16 GB soft budget; stop: "
              << StopReasonToString(s.stop_reason) << "\n";

    json.BeginRow();
    json.Add("section", std::string("scale"));
    json.Add("references", dataset.num_references());
    json.Add("shards", options.num_shards);
    json.Add("threads", bench::BenchThreads());
    json.Add("max_block_size", options.max_block_size);
    json.Add("seconds", seconds);
    json.Add("references_per_sec", refs_per_sec);
    json.Add("candidates", s.num_candidates);
    json.Add("boundary_pairs", s.num_boundary_pairs);
    json.Add("merges", s.num_merges);
    json.Add("shard_merges", s.num_shard_merges);
    json.Add("boundary_merges", s.num_boundary_merges);
    json.Add("build_seconds", s.build_seconds);
    json.Add("solve_seconds", s.solve_seconds);
    json.Add("shard_seconds", s.shard_seconds);
    json.Add("boundary_seconds", s.boundary_seconds);
    json.Add("graph_bytes", s.graph_bytes);
    json.Add("soft_budget_bytes", options.budget.soft_max_memory_bytes);
    json.Add("stop_reason", std::string(StopReasonToString(s.stop_reason)));
  }

  json.Write(bench::JsonPathFromArgs(argc, argv));
  std::cout << "\nOn a 1-CPU container the shard speedup is ~1x by "
               "construction (the lanes\nshare one core); "
               "tools/run_benches.sh --gate-shard applies the speedup\n"
               "gate only when the hardware can express it. The identity "
               "check runs\neverywhere.\n";
  return 0;
}
