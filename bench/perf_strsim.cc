// Microbenchmarks for the string-similarity substrate.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"

#include "sim/comparators.h"
#include "sim/value_store.h"
#include "strsim/edit_distance.h"
#include "strsim/jaro_winkler.h"
#include "strsim/person_name.h"
#include "strsim/title.h"
#include "strsim/tokens.h"
#include "strsim/venue.h"
#include "util/string_util.h"

namespace {

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "Distributed query processing in a relational data base system";
  const std::string b = "Distributed query procesing in relational database systems";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::strsim::JaroWinklerSimilarity("stonebraker", "stonebaker"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_PersonNameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::strsim::ParsePersonName("Epstein, R.S."));
  }
}
BENCHMARK(BM_PersonNameParse);

void BM_PersonNameFieldSimilarity(benchmark::State& state) {
  const std::string a = "Robert S. Epstein";
  const std::string b = "Epstein, R.S.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::PersonNameFieldSimilarity(a, b));
  }
}
BENCHMARK(BM_PersonNameFieldSimilarity);

void BM_NameEmailSimilarity(benchmark::State& state) {
  const std::string name = "Stonebraker, M.";
  const std::string email = "stonebraker@csail.mit.edu";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::NameEmailFieldSimilarity(name, email));
  }
}
BENCHMARK(BM_NameEmailSimilarity);

void BM_VenueNameSimilarity(benchmark::State& state) {
  const std::string a = "ACM SIGMOD";
  const std::string b = "ACM Conference on Management of Data";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::VenueNameFieldSimilarity(a, b));
  }
}
BENCHMARK(BM_VenueNameSimilarity);

void BM_NgramSimilarity(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::NgramSimilarity(
        "approximate query answering", "approximate query processing"));
  }
}
BENCHMARK(BM_NgramSimilarity);

// ---- Cold vs. warm: the per-pair cost once per-value analysis has been
// hoisted into the ValueStore (DESIGN.md §11). Each *_Warm twin scores
// from precomputed features; the gap against its cold sibling is exactly
// what the store saves on every repeated comparison.

void BM_PersonNameFieldSimilarityWarm(benchmark::State& state) {
  const std::string a = "Robert S. Epstein";
  const std::string b = "Epstein, R.S.";
  const recon::strsim::PersonName pa = recon::strsim::ParsePersonName(a);
  const recon::strsim::PersonName pb = recon::strsim::ParsePersonName(b);
  const std::string la = recon::ToLower(a);
  const std::string lb = recon::ToLower(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::PersonNameFieldSimilarity(pa, la, pb, lb));
  }
}
BENCHMARK(BM_PersonNameFieldSimilarityWarm);

void BM_NgramSetJaccardWarm(benchmark::State& state) {
  const recon::strsim::NgramSet a =
      recon::strsim::BuildNgramSet("approximate query answering", 3);
  const recon::strsim::NgramSet b =
      recon::strsim::BuildNgramSet("approximate query processing", 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::NgramSetJaccard(a, b));
  }
}
BENCHMARK(BM_NgramSetJaccardWarm);

void BM_TitleSimilarity(benchmark::State& state) {
  const std::string a =
      "Distributed query processing in a relational data base system";
  const std::string b =
      "Distributed query procesing in relational database systems";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::TitleFieldSimilarity(a, b));
  }
}
BENCHMARK(BM_TitleSimilarity);

void BM_TitleSimilarityWarm(benchmark::State& state) {
  const recon::strsim::TitleFeatures a = recon::strsim::AnalyzeTitle(
      "Distributed query processing in a relational data base system");
  const recon::strsim::TitleFeatures b = recon::strsim::AnalyzeTitle(
      "Distributed query procesing in relational database systems");
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::TitleSimilarity(a, b));
  }
}
BENCHMARK(BM_TitleSimilarityWarm);

void BM_VenueNameSimilarityWarm(benchmark::State& state) {
  const recon::strsim::VenueFeatures a =
      recon::strsim::AnalyzeVenueName("ACM SIGMOD");
  const recon::strsim::VenueFeatures b = recon::strsim::AnalyzeVenueName(
      "ACM Conference on Management of Data");
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::VenueNameSimilarity(a, b));
  }
}
BENCHMARK(BM_VenueNameSimilarityWarm);

void BM_AnalyzeValueTitle(benchmark::State& state) {
  // The one-time per-distinct-value cost the store pays up front.
  const std::string raw =
      "Distributed query processing in a relational data base system";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::AnalyzeValue(raw, recon::FeatureKind::kTitle));
  }
}
BENCHMARK(BM_AnalyzeValueTitle);

}  // namespace

// Custom main: `--json <path>` is this repo's common bench flag; rewrite
// it into google-benchmark's --benchmark_out flags before Initialize.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args =
      recon::bench::TranslateGBenchJsonFlag(argc, argv, &storage);
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
