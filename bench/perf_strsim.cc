// Microbenchmarks for the string-similarity substrate.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"

#include "sim/comparators.h"
#include "sim/value_store.h"
#include "strsim/bitparallel.h"
#include "strsim/edit_distance.h"
#include "strsim/jaro_winkler.h"
#include "strsim/person_name.h"
#include "strsim/signature.h"
#include "strsim/simd_dispatch.h"
#include "strsim/title.h"
#include "strsim/tokens.h"
#include "strsim/venue.h"
#include "util/string_util.h"

namespace {

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "Distributed query processing in a relational data base system";
  const std::string b = "Distributed query procesing in relational database systems";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

// ---- Kernel comparison rows (DESIGN.md §16): the same title-length
// distance computed by the reference row DP and the Myers bit-parallel
// kernel. tools/run_benches.sh --gate-kernels requires the bit-parallel
// row to be >= 2x faster (auto-skipped at the scalar dispatch level).

void BM_LevenshteinScalar(benchmark::State& state) {
  const std::string a =
      "Distributed query processing in a relational data base system";
  const std::string b =
      "Distributed query procesing in relational database systems";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::ScalarLevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_LevenshteinScalar);

void BM_LevenshteinBitParallel(benchmark::State& state) {
  const std::string a =
      "Distributed query processing in a relational data base system";
  const std::string b =
      "Distributed query procesing in relational database systems";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::MyersLevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_LevenshteinBitParallel);

void BM_BoundedLevenshteinScalar(benchmark::State& state) {
  const std::string a =
      "Distributed query processing in a relational data base system";
  const std::string b =
      "Distributed query procesing in relational database systems";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::strsim::ScalarBoundedLevenshteinDistance(a, b, 6));
  }
}
BENCHMARK(BM_BoundedLevenshteinScalar);

void BM_BoundedLevenshteinBitParallel(benchmark::State& state) {
  const std::string a =
      "Distributed query processing in a relational data base system";
  const std::string b =
      "Distributed query procesing in relational database systems";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::strsim::MyersBoundedLevenshteinDistance(a, b, 6));
  }
}
BENCHMARK(BM_BoundedLevenshteinBitParallel);

// The prefilter path a blocked title comparison takes instead of the exact
// comparator: one batched 256-bit XOR popcount per signature kind plus the
// bound arithmetic. Reported per pair (256 pairs per iteration).
void BM_TitlePrefilterBatch(benchmark::State& state) {
  constexpr int kPairs = 256;
  const recon::ValueFeatures fa = recon::AnalyzeValue(
      "Distributed query processing in a relational data base system",
      recon::FeatureKind::kTitle);
  const recon::ValueFeatures fb = recon::AnalyzeValue(
      "Query evaluation techniques for large databases",
      recon::FeatureKind::kTitle);
  std::vector<uint64_t> ga(4 * kPairs), gb(4 * kPairs), ta(4 * kPairs),
      tb(4 * kPairs);
  for (int i = 0; i < kPairs; ++i) {
    std::copy(fa.title_gram_sig.w, fa.title_gram_sig.w + 4, &ga[4 * i]);
    std::copy(fb.title_gram_sig.w, fb.title_gram_sig.w + 4, &gb[4 * i]);
    std::copy(fa.title_token_sig.w, fa.title_token_sig.w + 4, &ta[4 * i]);
    std::copy(fb.title_token_sig.w, fb.title_token_sig.w + 4, &tb[4 * i]);
  }
  std::vector<int32_t> gram_pop(kPairs), tok_pop(kPairs);
  for (auto _ : state) {
    recon::strsim::BatchSigSymDiff(ga.data(), gb.data(), kPairs,
                                   gram_pop.data());
    recon::strsim::BatchSigSymDiff(ta.data(), tb.data(), kPairs,
                                   tok_pop.data());
    double acc = 0;
    for (int i = 0; i < kPairs; ++i) {
      acc += recon::TitleSimilarityUpperBoundFromPops(gram_pop[i],
                                                      tok_pop[i], fa, fb);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kPairs);
}
BENCHMARK(BM_TitlePrefilterBatch);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::strsim::JaroWinklerSimilarity("stonebraker", "stonebaker"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_PersonNameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::strsim::ParsePersonName("Epstein, R.S."));
  }
}
BENCHMARK(BM_PersonNameParse);

void BM_PersonNameFieldSimilarity(benchmark::State& state) {
  const std::string a = "Robert S. Epstein";
  const std::string b = "Epstein, R.S.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::PersonNameFieldSimilarity(a, b));
  }
}
BENCHMARK(BM_PersonNameFieldSimilarity);

void BM_NameEmailSimilarity(benchmark::State& state) {
  const std::string name = "Stonebraker, M.";
  const std::string email = "stonebraker@csail.mit.edu";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::NameEmailFieldSimilarity(name, email));
  }
}
BENCHMARK(BM_NameEmailSimilarity);

void BM_VenueNameSimilarity(benchmark::State& state) {
  const std::string a = "ACM SIGMOD";
  const std::string b = "ACM Conference on Management of Data";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::VenueNameFieldSimilarity(a, b));
  }
}
BENCHMARK(BM_VenueNameSimilarity);

void BM_NgramSimilarity(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::NgramSimilarity(
        "approximate query answering", "approximate query processing"));
  }
}
BENCHMARK(BM_NgramSimilarity);

// ---- Cold vs. warm: the per-pair cost once per-value analysis has been
// hoisted into the ValueStore (DESIGN.md §11). Each *_Warm twin scores
// from precomputed features; the gap against its cold sibling is exactly
// what the store saves on every repeated comparison.

void BM_PersonNameFieldSimilarityWarm(benchmark::State& state) {
  const std::string a = "Robert S. Epstein";
  const std::string b = "Epstein, R.S.";
  const recon::strsim::PersonName pa = recon::strsim::ParsePersonName(a);
  const recon::strsim::PersonName pb = recon::strsim::ParsePersonName(b);
  const std::string la = recon::ToLower(a);
  const std::string lb = recon::ToLower(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::PersonNameFieldSimilarity(pa, la, pb, lb));
  }
}
BENCHMARK(BM_PersonNameFieldSimilarityWarm);

void BM_NgramSetJaccardWarm(benchmark::State& state) {
  const recon::strsim::NgramSet a =
      recon::strsim::BuildNgramSet("approximate query answering", 3);
  const recon::strsim::NgramSet b =
      recon::strsim::BuildNgramSet("approximate query processing", 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::NgramSetJaccard(a, b));
  }
}
BENCHMARK(BM_NgramSetJaccardWarm);

void BM_TitleSimilarity(benchmark::State& state) {
  const std::string a =
      "Distributed query processing in a relational data base system";
  const std::string b =
      "Distributed query procesing in relational database systems";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::TitleFieldSimilarity(a, b));
  }
}
BENCHMARK(BM_TitleSimilarity);

void BM_TitleSimilarityWarm(benchmark::State& state) {
  const recon::strsim::TitleFeatures a = recon::strsim::AnalyzeTitle(
      "Distributed query processing in a relational data base system");
  const recon::strsim::TitleFeatures b = recon::strsim::AnalyzeTitle(
      "Distributed query procesing in relational database systems");
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::TitleSimilarity(a, b));
  }
}
BENCHMARK(BM_TitleSimilarityWarm);

void BM_VenueNameSimilarityWarm(benchmark::State& state) {
  const recon::strsim::VenueFeatures a =
      recon::strsim::AnalyzeVenueName("ACM SIGMOD");
  const recon::strsim::VenueFeatures b = recon::strsim::AnalyzeVenueName(
      "ACM Conference on Management of Data");
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::VenueNameSimilarity(a, b));
  }
}
BENCHMARK(BM_VenueNameSimilarityWarm);

void BM_AnalyzeValueTitle(benchmark::State& state) {
  // The one-time per-distinct-value cost the store pays up front.
  const std::string raw =
      "Distributed query processing in a relational data base system";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::AnalyzeValue(raw, recon::FeatureKind::kTitle));
  }
}
BENCHMARK(BM_AnalyzeValueTitle);

}  // namespace

// Custom main: `--json <path>` is this repo's common bench flag; rewrite
// it into google-benchmark's --benchmark_out flags before Initialize.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args =
      recon::bench::TranslateGBenchJsonFlag(argc, argv, &storage);
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  // Record the dispatch level the production kernels run at, so recorded
  // numbers (and the --gate-kernels auto-skip) can be judged against it.
  benchmark::AddCustomContext(
      "simd_dispatch",
      recon::strsim::SimdLevelName(recon::strsim::ActiveSimdLevel()));
  benchmark::AddCustomContext(
      "simd_detected",
      recon::strsim::SimdLevelName(recon::strsim::DetectedSimdLevel()));
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
