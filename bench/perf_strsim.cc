// Microbenchmarks for the string-similarity substrate.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"

#include "sim/comparators.h"
#include "strsim/edit_distance.h"
#include "strsim/jaro_winkler.h"
#include "strsim/person_name.h"
#include "strsim/tokens.h"
#include "strsim/venue.h"

namespace {

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "Distributed query processing in a relational data base system";
  const std::string b = "Distributed query procesing in relational database systems";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::strsim::JaroWinklerSimilarity("stonebraker", "stonebaker"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_PersonNameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::strsim::ParsePersonName("Epstein, R.S."));
  }
}
BENCHMARK(BM_PersonNameParse);

void BM_PersonNameFieldSimilarity(benchmark::State& state) {
  const std::string a = "Robert S. Epstein";
  const std::string b = "Epstein, R.S.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::PersonNameFieldSimilarity(a, b));
  }
}
BENCHMARK(BM_PersonNameFieldSimilarity);

void BM_NameEmailSimilarity(benchmark::State& state) {
  const std::string name = "Stonebraker, M.";
  const std::string email = "stonebraker@csail.mit.edu";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::NameEmailFieldSimilarity(name, email));
  }
}
BENCHMARK(BM_NameEmailSimilarity);

void BM_VenueNameSimilarity(benchmark::State& state) {
  const std::string a = "ACM SIGMOD";
  const std::string b = "ACM Conference on Management of Data";
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::VenueNameFieldSimilarity(a, b));
  }
}
BENCHMARK(BM_VenueNameSimilarity);

void BM_NgramSimilarity(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(recon::strsim::NgramSimilarity(
        "approximate query answering", "approximate query processing"));
  }
}
BENCHMARK(BM_NgramSimilarity);

}  // namespace

// Custom main: `--json <path>` is this repo's common bench flag; rewrite
// it into google-benchmark's --benchmark_out flags before Initialize.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args =
      recon::bench::TranslateGBenchJsonFlag(argc, argv, &storage);
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
