// Service throughput/latency bench: sustained mixed query + ingest traffic
// against the reconciliation service, driven in-process through the exact
// HTTP handler path (request parsing, snapshot scoring, JSON rendering) —
// no sockets, so the numbers isolate the service, not the kernel.
//
// Traffic: query threads POST /reconcile batches (each batch pins one
// snapshot) while one ingest thread POSTs held-out references through
// /ingest with flush=true, publishing a new snapshot generation per batch.
//
// Gates (exit 1 on violation):
//   * zero failed requests — every response is HTTP 200;
//   * oracle equivalence — after ingest stops, each query batch rendered by
//     the handler is byte-identical to a direct library-call oracle
//     (Snapshot::Query + RenderReconcileBody) on the same snapshot.
//
// `--json <path>` writes throughput, p50/p99 latency, and snapshot
// generation counts via the shared JsonLog.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/schema_binding.h"
#include "service/handlers.h"
#include "service/service.h"
#include "util/json.h"

namespace {

using recon::bench::JsonLog;
using recon::service::BatchAnswer;
using recon::service::HttpRequest;
using recon::service::HttpResponse;
using recon::service::ReconQuery;
using recon::service::ReconService;
using recon::service::ServiceHandler;

constexpr int kQueryThreads = 2;
constexpr int kBatchesPerThread = 40;
constexpr int kIngestBatchSize = 8;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

HttpRequest PostJson(const std::string& path, std::string body) {
  HttpRequest req;
  req.method = "POST";
  req.path = path;
  req.body = std::move(body);
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Service under mixed query + ingest load",
                     "service layer (DESIGN.md §12); not from the paper");

  // A scaled PIM dataset; the last tenth is held out and re-ingested live.
  datagen::PimConfig config =
      datagen::ScaleConfig(datagen::PimConfigA(), 0.05 * bench::BenchScale());
  const Dataset full = datagen::GeneratePim(config);
  const SchemaBinding binding = SchemaBinding::Resolve(full.schema());
  const RefId split = full.num_references() * 9 / 10;

  // Rebuild the initial dataset from references [0, split), dropping
  // associations that point into the held-out tail (a reference cannot link
  // to one that does not exist yet). Held-out references get the same
  // treatment so they stay valid whenever they are ingested.
  auto truncated = [&](RefId id) {
    const Reference& src = full.reference(id);
    Reference ref(src.class_id(), src.num_attributes());
    for (int attr = 0; attr < src.num_attributes(); ++attr) {
      for (const std::string& v : src.atomic_values(attr)) {
        ref.AddAtomicValue(attr, v);
      }
      for (const RefId target : src.associations(attr)) {
        if (target < split) ref.AddAssociation(attr, target);
      }
    }
    return ref;
  };
  Dataset initial(full.schema());
  for (RefId id = 0; id < split; ++id) {
    initial.AddReference(truncated(id), full.gold_entity(id),
                         full.provenance(id));
  }

  service::ServiceOptions options;
  options.reconciler = bench::WithBenchThreads(ReconcilerOptions::DepGraph());

  const auto build_start = std::chrono::steady_clock::now();
  ReconService service(std::move(initial), options);
  const double initial_ms = MsSince(build_start);
  ServiceHandler handler(&service);
  std::cout << "Initial snapshot: " << service.snapshot()->num_entities()
            << " entities from " << service.snapshot()->num_references()
            << " references (" << initial_ms << " ms).\n";

  // Query batches drawn from the initial references: one name-attribute
  // query per reference, plus an email property for persons that have one.
  std::vector<std::string> batch_bodies;
  std::vector<ReconQuery> sample;
  for (RefId id = 0; id < split && batch_bodies.size() < 64; id += 17) {
    const Reference& ref = full.reference(id);
    ReconQuery query;
    if (ref.class_id() == binding.person) {
      query.type = "Person";
      query.text = ref.FirstValue(binding.person_name);
      if (!ref.FirstValue(binding.person_email).empty()) {
        query.properties.emplace_back("email",
                                      ref.FirstValue(binding.person_email));
      }
    } else if (ref.class_id() == binding.article) {
      query.type = "Article";
      query.text = ref.FirstValue(binding.article_title);
    } else {
      query.type = "Venue";
      query.text = ref.FirstValue(binding.venue_name);
    }
    if (query.text.empty()) continue;
    query.limit = 5;
    sample.push_back(query);
    // Two queries per batch, rendered once as a reusable request body.
    if (sample.size() == 2) {
      json::Value doc = json::Value::Object();
      for (size_t q = 0; q < sample.size(); ++q) {
        json::Value entry = json::Value::Object();
        entry.Set("query", sample[q].text);
        entry.Set("type", sample[q].type);
        entry.Set("limit", sample[q].limit);
        if (!sample[q].properties.empty()) {
          json::Value props = json::Value::Array();
          for (const auto& [pid, v] : sample[q].properties) {
            json::Value prop = json::Value::Object();
            prop.Set("pid", pid);
            prop.Set("v", v);
            props.Append(std::move(prop));
          }
          entry.Set("properties", std::move(props));
        }
        doc.Set("q" + std::to_string(q), std::move(entry));
      }
      batch_bodies.push_back(doc.Dump());
      sample.clear();
    }
  }
  std::cout << batch_bodies.size() << " distinct query batches, "
            << full.num_references() - split << " references to ingest.\n";

  // ---- Mixed traffic -------------------------------------------------------
  std::atomic<int64_t> failed{0};
  std::atomic<bool> ingest_done{false};
  std::vector<std::vector<double>> latencies(kQueryThreads);
  std::vector<uint64_t> generations_seen;

  const auto traffic_start = std::chrono::steady_clock::now();
  std::vector<std::thread> query_threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    query_threads.emplace_back([&, t] {
      int batch = 0;
      // At least kBatchesPerThread batches, and keep going while ingest
      // still publishes new snapshots so the mix is genuinely concurrent.
      while (batch < kBatchesPerThread ||
             !ingest_done.load(std::memory_order_acquire)) {
        const std::string& body =
            batch_bodies[(t + batch) % batch_bodies.size()];
        const auto start = std::chrono::steady_clock::now();
        const HttpResponse res = handler.Handle(PostJson("/reconcile", body));
        latencies[t].push_back(MsSince(start));
        if (res.status != 200) failed.fetch_add(1);
        ++batch;
      }
    });
  }

  std::thread ingest_thread([&] {
    for (RefId id = split; id < full.num_references();) {
      json::Value doc = json::Value::Object();
      json::Value refs = json::Value::Array();
      const RefId end = std::min<RefId>(id + kIngestBatchSize,
                                        full.num_references());
      for (; id < end; ++id) {
        const Reference src = truncated(id);
        const ClassDef& class_def =
            full.schema().class_def(src.class_id());
        json::Value ref_doc = json::Value::Object();
        ref_doc.Set("class", class_def.name);
        json::Value values = json::Value::Object();
        json::Value links = json::Value::Object();
        for (int attr = 0; attr < src.num_attributes(); ++attr) {
          if (class_def.attributes[attr].kind == AttrKind::kAtomic) {
            if (src.atomic_values(attr).empty()) continue;
            json::Value list = json::Value::Array();
            for (const std::string& v : src.atomic_values(attr)) {
              list.Append(v);
            }
            values.Set(class_def.attributes[attr].name, std::move(list));
          } else if (!src.associations(attr).empty()) {
            json::Value list = json::Value::Array();
            for (const RefId target : src.associations(attr)) {
              list.Append(target);
            }
            links.Set(class_def.attributes[attr].name, std::move(list));
          }
        }
        ref_doc.Set("values", std::move(values));
        ref_doc.Set("links", std::move(links));
        ref_doc.Set("gold", full.gold_entity(id));
        refs.Append(std::move(ref_doc));
      }
      doc.Set("references", std::move(refs));
      doc.Set("flush", true);
      const HttpResponse res = handler.Handle(PostJson("/ingest", doc.Dump()));
      if (res.status != 200) {
        failed.fetch_add(1);
      } else {
        const auto parsed = json::Parse(res.body);
        generations_seen.push_back(
            static_cast<uint64_t>(parsed.value().at("generation").AsInt()));
      }
    }
    ingest_done.store(true, std::memory_order_release);
  });

  ingest_thread.join();
  for (std::thread& t : query_threads) t.join();
  const double traffic_ms = MsSince(traffic_start);

  // ---- Gates ---------------------------------------------------------------
  // Oracle equivalence: with ingest stopped the snapshot is stable, so the
  // handler and a direct library call must render identical bytes.
  int oracle_mismatches = 0;
  for (const std::string& body : batch_bodies) {
    const HttpResponse served = handler.Handle(PostJson("/reconcile", body));
    const auto batch = service::ParseQueryBatch(body);
    BatchAnswer direct;
    direct.snapshot = service.snapshot();
    for (const auto& [id, query] : batch.value()) {
      direct.results.push_back(direct.snapshot->Query(query));
    }
    const std::string oracle = RenderReconcileBody(batch.value(), direct);
    if (served.status != 200 || served.body != oracle) ++oracle_mismatches;
  }

  std::vector<double> all_latencies;
  for (const auto& thread_lat : latencies) {
    all_latencies.insert(all_latencies.end(), thread_lat.begin(),
                         thread_lat.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  const int64_t batches = static_cast<int64_t>(all_latencies.size());
  const auto& counters = service.counters();
  const double p50 = Percentile(all_latencies, 0.50);
  const double p99 = Percentile(all_latencies, 0.99);
  const uint64_t final_generation = service.snapshot()->generation();

  std::cout << "Traffic: " << batches << " query batches ("
            << counters.queries.load() << " queries) + "
            << counters.ingested_references.load() << " ingested references "
            << "in " << traffic_ms << " ms.\n"
            << "Latency: p50 " << p50 << " ms, p99 " << p99 << " ms; "
            << "throughput " << batches / (traffic_ms / 1000.0)
            << " batches/s.\n"
            << "Snapshots: " << generations_seen.size()
            << " generations published (final " << final_generation << "); "
            << counters.degraded_queries.load() << " degraded queries.\n"
            << "Gates: failed_requests=" << failed.load()
            << " oracle_mismatches=" << oracle_mismatches << "\n";

  JsonLog log;
  log.BeginRow();
  log.Add("bench", std::string("service_mixed_traffic"));
  log.Add("query_threads", kQueryThreads);
  log.Add("query_batches", batches);
  log.Add("queries", counters.queries.load());
  log.Add("ingested_references", counters.ingested_references.load());
  log.Add("snapshot_generations", static_cast<int64_t>(final_generation));
  log.Add("traffic_ms", traffic_ms);
  log.Add("initial_reconcile_ms", initial_ms);
  log.Add("latency_p50_ms", p50);
  log.Add("latency_p99_ms", p99);
  log.Add("batches_per_sec", batches / (traffic_ms / 1000.0));
  log.Add("degraded_queries", counters.degraded_queries.load());
  log.Add("failed_requests", failed.load());
  log.Add("oracle_mismatches", oracle_mismatches);
  log.Write(bench::JsonPathFromArgs(argc, argv));

  if (failed.load() != 0 || oracle_mismatches != 0) {
    std::cerr << "FAILED: failed_requests=" << failed.load()
              << " oracle_mismatches=" << oracle_mismatches << "\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}
