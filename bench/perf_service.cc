// Service throughput/latency bench: sustained mixed query + ingest traffic
// against the reconciliation service, driven in-process through the exact
// HTTP handler path (request parsing, snapshot scoring, JSON rendering) —
// no sockets, so the numbers isolate the service, not the kernel. The
// identical traffic then runs a second time against a durable service
// (WAL + checkpoints in a scratch dir, fsync every-flush) to price
// durability, and an overload burst hammers a real socket server at 4x
// its admission bound to prove saturation degrades to clean 503s.
//
// Traffic: query threads POST /reconcile batches (each batch pins one
// snapshot) while one ingest thread POSTs held-out references through
// /ingest with flush=true, publishing a new snapshot generation per batch.
//
// Gates (exit 1 on violation):
//   * zero failed requests — every response is HTTP 200;
//   * oracle equivalence — after ingest stops, each query batch rendered by
//     the handler is byte-identical to a direct library-call oracle
//     (Snapshot::Query + RenderReconcileBody) on the same snapshot;
//   * durability equivalence — the durable service renders byte-identical
//     query responses after the same traffic (DESIGN.md §15: the WAL is
//     invisible to results);
//   * durability overhead — durable query p50 within max(5%, 3 ms) of the
//     in-memory p50 (the absolute floor absorbs 1-CPU container jitter);
//   * overload burst — 4x max-inflight concurrent clients see only 200s
//     and 503s, zero transport errors (no hangs, no resets), and every
//     200 body is byte-identical to the oracle.
//
// `--json <path>` writes throughput, p50/p99 latency, durability overhead,
// and burst counters via the shared JsonLog.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/schema_binding.h"
#include "service/checkpoint.h"
#include "service/handlers.h"
#include "service/http.h"
#include "service/service.h"
#include "util/json.h"

namespace {

using recon::bench::JsonLog;
using recon::service::BatchAnswer;
using recon::service::HttpRequest;
using recon::service::HttpResponse;
using recon::service::ReconQuery;
using recon::service::ReconService;
using recon::service::ServiceHandler;

constexpr int kQueryThreads = 2;
constexpr int kBatchesPerThread = 40;
constexpr int kIngestBatchSize = 8;
constexpr int kBurstMaxInflight = 2;
constexpr int kBurstClients = 4 * kBurstMaxInflight;
constexpr int kBurstRequestsPerClient = 25;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

HttpRequest PostJson(const std::string& path, std::string body) {
  HttpRequest req;
  req.method = "POST";
  req.path = path;
  req.body = std::move(body);
  return req;
}

struct TrafficResult {
  double p50 = 0;
  double p99 = 0;
  double traffic_ms = 0;
  int64_t batches = 0;
  int64_t failed = 0;
  uint64_t final_generation = 0;
  int64_t generations_published = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Service under mixed query + ingest load",
                     "service layer (DESIGN.md §12, §15); not from the paper");

  // A scaled PIM dataset; the last tenth is held out and re-ingested live.
  datagen::PimConfig config =
      datagen::ScaleConfig(datagen::PimConfigA(), 0.05 * bench::BenchScale());
  const Dataset full = datagen::GeneratePim(config);
  const SchemaBinding binding = SchemaBinding::Resolve(full.schema());
  const RefId split = full.num_references() * 9 / 10;

  // Rebuild the initial dataset from references [0, split), dropping
  // associations that point into the held-out tail (a reference cannot link
  // to one that does not exist yet). Held-out references get the same
  // treatment so they stay valid whenever they are ingested.
  auto truncated = [&](RefId id) {
    const Reference& src = full.reference(id);
    Reference ref(src.class_id(), src.num_attributes());
    for (int attr = 0; attr < src.num_attributes(); ++attr) {
      for (const std::string& v : src.atomic_values(attr)) {
        ref.AddAtomicValue(attr, v);
      }
      for (const RefId target : src.associations(attr)) {
        if (target < split) ref.AddAssociation(attr, target);
      }
    }
    return ref;
  };
  auto build_initial = [&] {
    Dataset initial(full.schema());
    for (RefId id = 0; id < split; ++id) {
      initial.AddReference(truncated(id), full.gold_entity(id),
                           full.provenance(id));
    }
    return initial;
  };

  service::ServiceOptions options;
  options.reconciler = bench::WithBenchThreads(ReconcilerOptions::DepGraph());

  const auto build_start = std::chrono::steady_clock::now();
  ReconService service(build_initial(), options);
  const double initial_ms = MsSince(build_start);
  ServiceHandler handler(&service);
  std::cout << "Initial snapshot: " << service.snapshot()->num_entities()
            << " entities from " << service.snapshot()->num_references()
            << " references (" << initial_ms << " ms).\n";

  // Query batches drawn from the initial references: one name-attribute
  // query per reference, plus an email property for persons that have one.
  std::vector<std::string> batch_bodies;
  std::vector<ReconQuery> sample;
  for (RefId id = 0; id < split && batch_bodies.size() < 64; id += 17) {
    const Reference& ref = full.reference(id);
    ReconQuery query;
    if (ref.class_id() == binding.person) {
      query.type = "Person";
      query.text = ref.FirstValue(binding.person_name);
      if (!ref.FirstValue(binding.person_email).empty()) {
        query.properties.emplace_back("email",
                                      ref.FirstValue(binding.person_email));
      }
    } else if (ref.class_id() == binding.article) {
      query.type = "Article";
      query.text = ref.FirstValue(binding.article_title);
    } else {
      query.type = "Venue";
      query.text = ref.FirstValue(binding.venue_name);
    }
    if (query.text.empty()) continue;
    query.limit = 5;
    sample.push_back(query);
    // Two queries per batch, rendered once as a reusable request body.
    if (sample.size() == 2) {
      json::Value doc = json::Value::Object();
      for (size_t q = 0; q < sample.size(); ++q) {
        json::Value entry = json::Value::Object();
        entry.Set("query", sample[q].text);
        entry.Set("type", sample[q].type);
        entry.Set("limit", sample[q].limit);
        if (!sample[q].properties.empty()) {
          json::Value props = json::Value::Array();
          for (const auto& [pid, v] : sample[q].properties) {
            json::Value prop = json::Value::Object();
            prop.Set("pid", pid);
            prop.Set("v", v);
            props.Append(std::move(prop));
          }
          entry.Set("properties", std::move(props));
        }
        doc.Set("q" + std::to_string(q), std::move(entry));
      }
      batch_bodies.push_back(doc.Dump());
      sample.clear();
    }
  }
  std::cout << batch_bodies.size() << " distinct query batches, "
            << full.num_references() - split << " references to ingest.\n";

  // Renders one held-out ingest batch as the /ingest JSON body.
  auto ingest_body = [&](RefId id, RefId end) {
    json::Value doc = json::Value::Object();
    json::Value refs = json::Value::Array();
    for (; id < end; ++id) {
      const Reference src = truncated(id);
      const ClassDef& class_def = full.schema().class_def(src.class_id());
      json::Value ref_doc = json::Value::Object();
      ref_doc.Set("class", class_def.name);
      json::Value values = json::Value::Object();
      json::Value links = json::Value::Object();
      for (int attr = 0; attr < src.num_attributes(); ++attr) {
        if (class_def.attributes[attr].kind == AttrKind::kAtomic) {
          if (src.atomic_values(attr).empty()) continue;
          json::Value list = json::Value::Array();
          for (const std::string& v : src.atomic_values(attr)) {
            list.Append(v);
          }
          values.Set(class_def.attributes[attr].name, std::move(list));
        } else if (!src.associations(attr).empty()) {
          json::Value list = json::Value::Array();
          for (const RefId target : src.associations(attr)) {
            list.Append(target);
          }
          links.Set(class_def.attributes[attr].name, std::move(list));
        }
      }
      ref_doc.Set("values", std::move(values));
      ref_doc.Set("links", std::move(links));
      ref_doc.Set("gold", full.gold_entity(id));
      refs.Append(std::move(ref_doc));
    }
    doc.Set("references", std::move(refs));
    doc.Set("flush", true);
    return doc.Dump();
  };

  // ---- Mixed traffic (reused for the in-memory and durable runs) -----------
  auto run_traffic = [&](ServiceHandler& h, ReconService& svc) {
    std::atomic<int64_t> failed{0};
    std::atomic<bool> ingest_done{false};
    std::vector<std::vector<double>> latencies(kQueryThreads);
    std::atomic<int64_t> generations{0};

    const auto traffic_start = std::chrono::steady_clock::now();
    std::vector<std::thread> query_threads;
    for (int t = 0; t < kQueryThreads; ++t) {
      query_threads.emplace_back([&, t] {
        int batch = 0;
        // At least kBatchesPerThread batches, and keep going while ingest
        // still publishes new snapshots so the mix is genuinely concurrent.
        while (batch < kBatchesPerThread ||
               !ingest_done.load(std::memory_order_acquire)) {
          const std::string& body =
              batch_bodies[(t + batch) % batch_bodies.size()];
          const auto start = std::chrono::steady_clock::now();
          const HttpResponse res = h.Handle(PostJson("/reconcile", body));
          latencies[t].push_back(MsSince(start));
          if (res.status != 200) failed.fetch_add(1);
          ++batch;
        }
      });
    }

    std::thread ingest_thread([&] {
      for (RefId id = split; id < full.num_references();) {
        const RefId end =
            std::min<RefId>(id + kIngestBatchSize, full.num_references());
        const HttpResponse res =
            h.Handle(PostJson("/ingest", ingest_body(id, end)));
        id = end;
        if (res.status != 200) {
          failed.fetch_add(1);
        } else {
          generations.fetch_add(1);
        }
      }
      ingest_done.store(true, std::memory_order_release);
    });

    ingest_thread.join();
    for (std::thread& t : query_threads) t.join();

    TrafficResult result;
    result.traffic_ms = MsSince(traffic_start);
    std::vector<double> all;
    for (const auto& thread_lat : latencies) {
      all.insert(all.end(), thread_lat.begin(), thread_lat.end());
    }
    std::sort(all.begin(), all.end());
    result.batches = static_cast<int64_t>(all.size());
    result.p50 = Percentile(all, 0.50);
    result.p99 = Percentile(all, 0.99);
    result.failed = failed.load();
    result.final_generation = svc.snapshot()->generation();
    result.generations_published = generations.load();
    return result;
  };

  const TrafficResult plain = run_traffic(handler, service);

  // ---- Gates ---------------------------------------------------------------
  // Oracle equivalence: with ingest stopped the snapshot is stable, so the
  // handler and a direct library call must render identical bytes.
  int oracle_mismatches = 0;
  for (const std::string& body : batch_bodies) {
    const HttpResponse served = handler.Handle(PostJson("/reconcile", body));
    const auto batch = service::ParseQueryBatch(body);
    BatchAnswer direct;
    direct.snapshot = service.snapshot();
    for (const auto& [id, query] : batch.value()) {
      direct.results.push_back(direct.snapshot->Query(query));
    }
    const std::string oracle = RenderReconcileBody(batch.value(), direct);
    if (served.status != 200 || served.body != oracle) ++oracle_mismatches;
  }

  // ---- The same traffic, durable (WAL + checkpoints, every-flush) ----------
  char data_dir_tmpl[] = "/tmp/recon-bench-XXXXXX";
  const char* data_dir = ::mkdtemp(data_dir_tmpl);
  TrafficResult durable;
  int durability_mismatches = 0;
  int64_t wal_bytes = 0;
  {
    service::ServiceOptions durable_options = options;
    durable_options.durability.data_dir = data_dir;
    durable_options.durability.fsync = service::FsyncPolicy::kEveryFlush;
    durable_options.durability.checkpoint_every = 16;
    auto opened = ReconService::Open(build_initial(), durable_options);
    if (!opened.ok()) {
      std::cerr << "FAILED: durable open: " << opened.status().ToString()
                << "\n";
      return 1;
    }
    ReconService& durable_service = *opened.value();
    ServiceHandler durable_handler(&durable_service);
    durable = run_traffic(durable_handler, durable_service);
    wal_bytes = durable_service.durability_stats().wal_bytes;
    // Durability must be invisible to results: after identical traffic,
    // both services render byte-identical query responses.
    for (const std::string& body : batch_bodies) {
      const HttpResponse a = handler.Handle(PostJson("/reconcile", body));
      const HttpResponse b =
          durable_handler.Handle(PostJson("/reconcile", body));
      if (a.status != b.status || a.body != b.body) ++durability_mismatches;
    }
  }
  if (data_dir != nullptr) {
    StatusOr<service::DataDirState> state = service::ScanDataDir(data_dir);
    if (state.ok()) {
      for (const auto& p : state.value().checkpoint_paths) ::unlink(p.c_str());
      for (const auto& p : state.value().wal_paths) ::unlink(p.c_str());
      for (const auto& p : state.value().tmp_paths) ::unlink(p.c_str());
    }
    ::rmdir(data_dir);
  }
  // Overhead gate: within 5%, with a 3 ms absolute floor so scheduler
  // noise on 1-CPU containers cannot fail a sub-millisecond p50.
  const double p50_budget = std::max(plain.p50 * 1.05, plain.p50 + 3.0);
  const bool durability_too_slow = durable.p50 > p50_budget;

  // ---- Overload burst through a real socket server -------------------------
  // 4x max-inflight concurrent clients; the accept loop must shed the
  // excess with 503 + Retry-After, never hang or reset, and every admitted
  // response must match the oracle bytes.
  std::vector<std::string> burst_oracles;
  for (const std::string& body : batch_bodies) {
    burst_oracles.push_back(handler.Handle(PostJson("/reconcile", body)).body);
  }
  std::atomic<int64_t> burst_200{0}, burst_503{0}, burst_errors{0};
  std::atomic<int64_t> burst_mismatches{0};
  {
    service::HttpServerOptions server_options;
    server_options.num_threads = kBurstMaxInflight;
    server_options.max_inflight = kBurstMaxInflight;
    service::HttpServer server(
        [&](const HttpRequest& req) { return handler.Handle(req); },
        server_options);
    const Status started = server.Start(0);
    if (!started.ok()) {
      std::cerr << "FAILED: burst server: " << started.ToString() << "\n";
      return 1;
    }
    std::vector<std::thread> clients;
    for (int c = 0; c < kBurstClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kBurstRequestsPerClient; ++r) {
          const size_t pick = (c + r) % batch_bodies.size();
          const auto res = service::HttpFetch(server.port(), "POST",
                                              "/reconcile",
                                              batch_bodies[pick]);
          if (!res.ok()) {
            burst_errors.fetch_add(1);
          } else if (res.value().status == 200) {
            burst_200.fetch_add(1);
            if (res.value().body != burst_oracles[pick]) {
              burst_mismatches.fetch_add(1);
            }
          } else if (res.value().status == 503) {
            burst_503.fetch_add(1);
          } else {
            burst_errors.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    server.Stop();
  }
  const bool burst_bad =
      burst_errors.load() != 0 || burst_mismatches.load() != 0 ||
      burst_200.load() == 0;

  const auto& counters = service.counters();
  std::cout << "Traffic: " << plain.batches << " query batches + ingest in "
            << plain.traffic_ms << " ms; p50 " << plain.p50 << " ms, p99 "
            << plain.p99 << " ms; throughput "
            << plain.batches / (plain.traffic_ms / 1000.0) << " batches/s.\n"
            << "Durable: p50 " << durable.p50 << " ms (budget " << p50_budget
            << "), p99 " << durable.p99 << " ms, " << wal_bytes
            << " WAL bytes, " << durable.generations_published
            << " generations.\n"
            << "Burst: " << burst_200.load() << " x 200, " << burst_503.load()
            << " x 503, " << burst_errors.load() << " transport errors, "
            << burst_mismatches.load() << " body mismatches ("
            << kBurstClients << " clients vs max-inflight "
            << kBurstMaxInflight << ").\n"
            << "Gates: failed_requests=" << plain.failed + durable.failed
            << " oracle_mismatches=" << oracle_mismatches
            << " durability_mismatches=" << durability_mismatches
            << " durability_too_slow=" << durability_too_slow
            << " burst_bad=" << burst_bad << "\n";

  JsonLog log;
  log.BeginRow();
  log.Add("bench", std::string("service_mixed_traffic"));
  log.Add("query_threads", kQueryThreads);
  log.Add("query_batches", plain.batches);
  log.Add("queries", counters.queries.load());
  log.Add("ingested_references", counters.ingested_references.load());
  log.Add("snapshot_generations",
          static_cast<int64_t>(plain.final_generation));
  log.Add("traffic_ms", plain.traffic_ms);
  log.Add("initial_reconcile_ms", initial_ms);
  log.Add("latency_p50_ms", plain.p50);
  log.Add("latency_p99_ms", plain.p99);
  log.Add("batches_per_sec", plain.batches / (plain.traffic_ms / 1000.0));
  log.Add("degraded_queries", counters.degraded_queries.load());
  log.Add("failed_requests", plain.failed);
  log.Add("oracle_mismatches", oracle_mismatches);
  log.Add("durable_latency_p50_ms", durable.p50);
  log.Add("durable_latency_p99_ms", durable.p99);
  log.Add("durable_traffic_ms", durable.traffic_ms);
  log.Add("durable_failed_requests", durable.failed);
  log.Add("durability_mismatches", durability_mismatches);
  log.Add("wal_bytes", wal_bytes);
  log.Add("burst_200", burst_200.load());
  log.Add("burst_503", burst_503.load());
  log.Add("burst_errors", burst_errors.load());
  log.Add("burst_mismatches", burst_mismatches.load());
  log.Write(bench::JsonPathFromArgs(argc, argv));

  if (plain.failed != 0 || durable.failed != 0 || oracle_mismatches != 0 ||
      durability_mismatches != 0 || durability_too_slow || burst_bad) {
    std::cerr << "FAILED: failed_requests=" << plain.failed + durable.failed
              << " oracle_mismatches=" << oracle_mismatches
              << " durability_mismatches=" << durability_mismatches
              << " durability_too_slow=" << durability_too_slow
              << " burst_bad=" << burst_bad << "\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}
