// Table 5 + Figure 6: component contributions on PIM dataset A.
//
// Two orthogonal dimensions: evidence (Attr-wise -> Name&Email -> Article
// -> Contact, cumulative) and mode (Traditional / Propagation / Merge /
// Full). Each cell reports the number of Person partitions produced; the
// "Reduction" column/row reports the recall improvement measured as the
// percentage reduction of (partitions - entities), exactly as the paper
// defines it.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Table 5 / Figure 6: component contributions (Person, PIM A)",
      "SIGMOD'05 Table 5 and Figure 6");

  datagen::PimConfig config = datagen::PimConfigA();
  const double scale = bench::BenchScale();
  if (scale < 1.0) config = datagen::ScaleConfig(config, scale);
  const Dataset dataset = datagen::GeneratePim(config);
  const int person = dataset.schema().RequireClass("Person");
  const int entities = dataset.NumEntitiesOfClass(person);
  const int person_refs =
      static_cast<int>(dataset.ReferencesOfClass(person).size());
  std::cout << dataset.num_references() << " references, " << person_refs
            << " Person references, " << entities
            << " real-world persons.\n\n";

  const EvidenceLevel levels[] = {EvidenceLevel::kAttrWise,
                                  EvidenceLevel::kNameEmail,
                                  EvidenceLevel::kArticle,
                                  EvidenceLevel::kContact};
  struct Mode {
    const char* name;
    bool propagation;
    bool enrichment;
  };
  const Mode modes[] = {{"Traditional", false, false},
                        {"Propagation", true, false},
                        {"Merge", false, true},
                        {"Full", true, true}};

  int partitions[4][4];
  for (int m = 0; m < 4; ++m) {
    for (int l = 0; l < 4; ++l) {
      ReconcilerOptions options = bench::WithBenchThreads(ReconcilerOptions());
      options.evidence_level = levels[l];
      options.propagation = modes[m].propagation;
      options.enrichment = modes[m].enrichment;
      options.constraints = true;
      const Reconciler reconciler(options);
      const ReconcileResult result = reconciler.Run(dataset);
      partitions[m][l] = result.NumPartitionsOfClass(dataset, person);
    }
  }

  auto reduction = [&](int from, int to) {
    const double gap_from = from - entities;
    const double gap_to = to - entities;
    if (gap_from <= 0) return 0.0;
    return 100.0 * (gap_from - gap_to) / gap_from;
  };

  TablePrinter table({"Mode", "Attr-wise", "Name&Email", "Article",
                      "Contact", "Reduction(%)"});
  for (int m = 0; m < 4; ++m) {
    table.AddRow({modes[m].name, std::to_string(partitions[m][0]),
                  std::to_string(partitions[m][1]),
                  std::to_string(partitions[m][2]),
                  std::to_string(partitions[m][3]),
                  TablePrinter::Num(reduction(partitions[m][0],
                                              partitions[m][3]), 1)});
  }
  std::vector<std::string> last_row = {"Reduction(%)", "-"};
  for (int l = 1; l < 4; ++l) {
    last_row.push_back(
        TablePrinter::Num(reduction(partitions[0][0], partitions[3][l]), 1));
  }
  last_row.push_back(
      TablePrinter::Num(reduction(partitions[0][0], partitions[3][3]), 1));
  table.AddRow(last_row);
  table.Print(std::cout);

  std::cout << "\nFigure 6 series (partitions per evidence level):\n";
  for (int m = 0; m < 4; ++m) {
    std::cout << "  " << modes[m].name << ":";
    for (int l = 0; l < 4; ++l) std::cout << " " << partitions[m][l];
    std::cout << "\n";
  }
  std::cout << "\nPaper (Table 5): Traditional 3159 2169 2169 2096 (75.4%); "
               "Propagation 3159 2146 2135 2022 (80.7%); "
               "Merge 3169 2036 2036 1910 (88.7%); "
               "Full 3169 2002 1990 1873 (91.3%).\n"
               "Expected shape: partitions fall monotonically with more "
               "evidence and richer modes; Merge beats Propagation; Full is "
               "best; IndepDec = Traditional x Attr-wise, DepGraph = Full x "
               "Contact.\n";
  return 0;
}
