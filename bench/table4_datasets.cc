// Table 4: per-dataset Person performance and partition counts.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 4: Person results per PIM dataset",
                     "SIGMOD'05 Table 4");

  TablePrinter table({"PIM dataset (#Persons/#Refs)", "IndepDec P/R",
                      "F-msre", "#(Par)", "DepGraph P/R", "F-msre",
                      "#(Par)"});
  for (const auto& config : bench::ScaledPimConfigs()) {
    const Dataset dataset = datagen::GeneratePim(config);
    const int person = dataset.schema().RequireClass("Person");
    const bench::Comparison cmp = bench::CompareOnClass(dataset, person);
    const int person_refs =
        static_cast<int>(dataset.ReferencesOfClass(person).size());
    table.AddRow(
        {config.name + " (" + std::to_string(cmp.indep.num_entities) + "/" +
             std::to_string(person_refs) + ")",
         TablePrinter::PrecRecall(cmp.indep.precision, cmp.indep.recall),
         TablePrinter::Num(cmp.indep.f1),
         std::to_string(cmp.indep.num_partitions),
         TablePrinter::PrecRecall(cmp.depgraph.precision,
                                  cmp.depgraph.recall),
         TablePrinter::Num(cmp.depgraph.f1),
         std::to_string(cmp.depgraph.num_partitions)});
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper (Table 4): A 0.999/0.741 (3159) -> 0.999/0.999 (1873); "
         "B 0.974/0.998 (2154) -> 0.999/0.999 (2068); "
         "C 0.999/0.967 (1660) -> 0.982/0.987 (1596); "
         "D 0.894/0.998 (1579) -> 0.999/0.920 (1546).\n"
         "Expected shape: DepGraph produces fewer partitions everywhere; "
         "the largest recall gain on A (highest name variety); a recall "
         "*drop* with higher precision on D (owner split by the "
         "unique-account constraint); the lowest DepGraph precision on C "
         "(short overlapping names).\n";
  return 0;
}
