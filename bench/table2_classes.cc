// Table 2: average precision/recall/F per class over the four PIM
// datasets, IndepDec vs DepGraph.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 2: average P/R/F per class (PIM A-D)",
                     "SIGMOD'05 Table 2");

  const std::vector<std::string> class_names = {"Person", "Article", "Venue"};
  std::vector<std::vector<PairMetrics>> indep(3), dep(3);

  for (const auto& config : bench::ScaledPimConfigs()) {
    const Dataset dataset = datagen::GeneratePim(config);
    const IndepDec baseline(
        bench::WithBenchThreads(ReconcilerOptions::IndepDec()));
    const Reconciler depgraph(
        bench::WithBenchThreads(ReconcilerOptions::DepGraph()));
    const auto indep_clusters = baseline.Run(dataset).cluster;
    const auto dep_clusters = depgraph.Run(dataset).cluster;
    for (int c = 0; c < 3; ++c) {
      const int class_id = dataset.schema().RequireClass(class_names[c]);
      indep[c].push_back(EvaluateClass(dataset, indep_clusters, class_id));
      dep[c].push_back(EvaluateClass(dataset, dep_clusters, class_id));
    }
  }

  TablePrinter table({"Class", "IndepDec P/R", "F-msre", "DepGraph P/R",
                      "F-msre"});
  for (int c = 0; c < 3; ++c) {
    const PairMetrics i = AverageMetrics(indep[c]);
    const PairMetrics d = AverageMetrics(dep[c]);
    table.AddRow({class_names[c],
                  TablePrinter::PrecRecall(i.precision, i.recall),
                  TablePrinter::Num(i.f1),
                  TablePrinter::PrecRecall(d.precision, d.recall),
                  TablePrinter::Num(d.f1)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper (Table 2): Person 0.967/0.926 -> 0.995/0.976; "
               "Article 0.997/0.977 -> 0.999/0.976; "
               "Venue 0.935/0.790 -> 0.987/0.937.\n"
               "Expected shape: DepGraph >= IndepDec on every class; largest "
               "recall gain on Venue, then Person; Article about tied.\n";
  return 0;
}
