#include "bench_common.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <utility>

namespace recon::bench {

std::vector<datagen::PimConfig> AllPimConfigs() {
  return {datagen::PimConfigA(), datagen::PimConfigB(),
          datagen::PimConfigC(), datagen::PimConfigD()};
}

double BenchScale() {
  const char* env = std::getenv("RECON_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  if (scale <= 0.0 || scale > 1.0) return 1.0;
  return scale;
}

namespace {

/// -1 = not set by ParseArgs; fall back to RECON_BENCH_THREADS, then 1.
int g_bench_threads = -1;

}  // namespace

int BenchThreads() {
  if (g_bench_threads >= 0) return g_bench_threads;
  const char* env = std::getenv("RECON_BENCH_THREADS");
  if (env == nullptr) return 1;
  const int threads = std::atoi(env);
  return threads < 0 ? 1 : threads;
}

void ParseArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      const int threads = std::atoi(argv[i + 1]);
      if (threads >= 0) g_bench_threads = threads;
      ++i;
    }
  }
  if (BenchThreads() != 1) {
    std::cout << "(threads=" << BenchThreads()
              << ": parallel candidate generation and scoring; results are "
                 "identical to --threads 1)\n";
  }
}

ReconcilerOptions WithBenchThreads(ReconcilerOptions options) {
  options.num_threads = BenchThreads();
  return options;
}

std::vector<datagen::PimConfig> ScaledPimConfigs() {
  std::vector<datagen::PimConfig> configs = AllPimConfigs();
  const double scale = BenchScale();
  if (scale < 1.0) {
    for (auto& config : configs) {
      config = datagen::ScaleConfig(config, scale);
    }
  }
  return configs;
}

Comparison CompareOnClass(const Dataset& dataset, int class_id) {
  Comparison out;
  const int threads = BenchThreads();
  const IndepDec indep(WithBenchThreads(ReconcilerOptions::IndepDec()));
  out.indep =
      EvaluateClass(dataset, indep.Run(dataset).cluster, class_id, threads);
  const Reconciler depgraph(WithBenchThreads(ReconcilerOptions::DepGraph()));
  out.depgraph = EvaluateClass(dataset, depgraph.Run(dataset).cluster,
                               class_id, threads);
  return out;
}

std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

void JsonLog::BeginRow() { rows_.push_back(json::Value::Object()); }

void JsonLog::Add(const std::string& key, double value) {
  rows_.back().Set(key, value);
}

void JsonLog::Add(const std::string& key, int64_t value) {
  rows_.back().Set(key, value);
}

void JsonLog::Add(const std::string& key, const std::string& value) {
  rows_.back().Set(key, value);
}

bool JsonLog::Write(const std::string& path) const {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return false;
  }
  // Machine-context row first: published numbers are only meaningful
  // relative to the hardware that produced them (tools/run_benches.sh
  // refuses outputs that lack it).
  json::Value meta = json::Value::Object();
  meta.Set("hardware_concurrency",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  meta.Set("nprocs_online",
           static_cast<int64_t>(::sysconf(_SC_NPROCESSORS_ONLN)));
  meta.Set("bench_threads", BenchThreads());
  meta.Set("bench_scale", BenchScale());
  json::Value doc = json::Value::Array();
  doc.Append(std::move(meta));
  for (const json::Value& row : rows_) doc.Append(row);
  out << doc.Pretty();
  return static_cast<bool>(out);
}

std::vector<char*> TranslateGBenchJsonFlag(int argc, char** argv,
                                           std::vector<std::string>* storage) {
  // Stash every argument (rewritten or not) in `storage` so the returned
  // pointers share one stable backing.
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      storage->push_back("--benchmark_out=" + std::string(argv[i + 1]));
      storage->push_back("--benchmark_out_format=json");
      ++i;
    } else {
      storage->push_back(argv[i]);
    }
  }
  std::vector<char*> out;
  for (std::string& arg : *storage) out.push_back(arg.data());
  return out;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "Reproduces: " << paper_ref << "\n";
  const double scale = BenchScale();
  if (scale < 1.0) {
    std::cout << "(RECON_BENCH_SCALE=" << scale
              << ": datasets scaled down; shapes, not sizes, apply)\n";
  }
  std::cout << "\n";
}

}  // namespace recon::bench
