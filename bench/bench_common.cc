#include "bench_common.h"

#include <cstdlib>
#include <iostream>

namespace recon::bench {

std::vector<datagen::PimConfig> AllPimConfigs() {
  return {datagen::PimConfigA(), datagen::PimConfigB(),
          datagen::PimConfigC(), datagen::PimConfigD()};
}

double BenchScale() {
  const char* env = std::getenv("RECON_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  if (scale <= 0.0 || scale > 1.0) return 1.0;
  return scale;
}

std::vector<datagen::PimConfig> ScaledPimConfigs() {
  std::vector<datagen::PimConfig> configs = AllPimConfigs();
  const double scale = BenchScale();
  if (scale < 1.0) {
    for (auto& config : configs) {
      config = datagen::ScaleConfig(config, scale);
    }
  }
  return configs;
}

Comparison CompareOnClass(const Dataset& dataset, int class_id) {
  Comparison out;
  const IndepDec indep;
  out.indep = EvaluateClass(dataset, indep.Run(dataset).cluster, class_id);
  const Reconciler depgraph(ReconcilerOptions::DepGraph());
  out.depgraph =
      EvaluateClass(dataset, depgraph.Run(dataset).cluster, class_id);
  return out;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "Reproduces: " << paper_ref << "\n";
  const double scale = BenchScale();
  if (scale < 1.0) {
    std::cout << "(RECON_BENCH_SCALE=" << scale
              << ": datasets scaled down; shapes, not sizes, apply)\n";
  }
  std::cout << "\n";
}

}  // namespace recon::bench
