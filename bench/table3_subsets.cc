// Table 3: Person reconciliation on the full datasets and on the PArticle
// (bibliography-derived) and PEmail (email-derived) subsets.

#include <iostream>

#include "bench_common.h"
#include "model/subset.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 3: Person references, Full / PArticle / PEmail",
                     "SIGMOD'05 Table 3");

  std::vector<PairMetrics> indep[3], dep[3];  // full, particle, pemail
  for (const auto& config : bench::ScaledPimConfigs()) {
    const Dataset full = datagen::GeneratePim(config);
    const int person = full.schema().RequireClass("Person");
    const int article = full.schema().RequireClass("Article");
    const int venue = full.schema().RequireClass("Venue");

    // PArticle: persons extracted from bibliographies, plus the articles
    // and venues they are associated with.
    const Dataset particle = FilterDataset(full, [&](RefId id) {
      const int c = full.reference(id).class_id();
      if (c == article || c == venue) return true;
      return c == person && full.provenance(id) == Provenance::kBibtex;
    });
    // PEmail: a single-class information space of email-derived persons.
    const Dataset pemail = FilterDataset(full, [&](RefId id) {
      return full.reference(id).class_id() == person &&
             full.provenance(id) == Provenance::kEmail;
    });

    const Dataset* datasets[3] = {&full, &particle, &pemail};
    for (int s = 0; s < 3; ++s) {
      const bench::Comparison cmp =
          bench::CompareOnClass(*datasets[s], person);
      indep[s].push_back(cmp.indep);
      dep[s].push_back(cmp.depgraph);
    }
  }

  TablePrinter table({"Dataset", "IndepDec P/R", "F-msre", "DepGraph P/R",
                      "F-msre"});
  const char* names[3] = {"Full", "PArticle", "PEmail"};
  for (int s : {0, 1, 2}) {
    const PairMetrics i = AverageMetrics(indep[s]);
    const PairMetrics d = AverageMetrics(dep[s]);
    table.AddRow({names[s], TablePrinter::PrecRecall(i.precision, i.recall),
                  TablePrinter::Num(i.f1),
                  TablePrinter::PrecRecall(d.precision, d.recall),
                  TablePrinter::Num(d.f1)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper (Table 3): Full 0.967/0.926 -> 0.995/0.976; "
               "PArticle 0.999/0.761 -> 0.997/0.994; "
               "PEmail 0.999/0.905 -> 0.995/0.974.\n"
               "Expected shape: the largest recall gain on PArticle "
               "(name-only references), a solid gain on PEmail, and an "
               "intermediate gain on Full.\n";
  return 0;
}
