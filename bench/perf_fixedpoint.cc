// Fixed-point solve with the delta-propagated evidence cache off vs. on
// (ReconcilerOptions::evidence_cache). For each PIM configuration plus
// Cora, the graph is built once per mode (untimed) and the solve phase is
// timed best-of-three. Reports recomputations per second, in-edge scans
// performed and avoided, the scan-reduction factor, delta pushes, cache
// rebuilds, and the solve speedup.
//
// The cache is an invisible optimisation: the binary exits non-zero if
// the partitions, merged pairs, or merge counts differ between modes.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/timer.h"

namespace {

using namespace recon;

struct ModeResult {
  ReconcileResult result;
  double solve_seconds = 0;
};

/// Builds untimed, then solves best-of-`reps` with `options`.
ModeResult RunMode(const Dataset& dataset, const ReconcilerOptions& options,
                   int reps) {
  ModeResult out;
  const Reconciler reconciler(options);
  for (int rep = 0; rep < reps; ++rep) {
    BuiltGraph built = BuildDependencyGraph(dataset, options);
    Timer timer;
    ReconcileResult result = reconciler.RunOnGraph(dataset, built);
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0 || seconds < out.solve_seconds) out.solve_seconds = seconds;
    if (rep == 0) out.result = std::move(result);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Perf: fixed-point solve, evidence cache off vs. on",
                     "delta-propagated evidence caching (beyond the paper)");

  struct Case {
    std::string name;
    Dataset dataset;
  };
  std::vector<Case> cases;
  for (const datagen::PimConfig& config : bench::ScaledPimConfigs()) {
    cases.push_back({config.name, datagen::GeneratePim(config)});
  }
  {
    datagen::CoraConfig cora;
    const double scale = bench::BenchScale();
    if (scale < 1.0) {
      cora.num_papers = std::max(2, static_cast<int>(cora.num_papers * scale));
      cora.num_citations =
          std::max(4, static_cast<int>(cora.num_citations * scale));
      cora.num_authors =
          std::max(2, static_cast<int>(cora.num_authors * scale));
      cora.num_venue_series =
          std::max(2, static_cast<int>(cora.num_venue_series * scale));
    }
    cases.push_back({"Cora", datagen::GenerateCora(cora)});
  }

  TablePrinter table({"Dataset", "Recomp/s", "Scans off", "Scans on",
                      "Reduction", "Avoided", "Pushes", "Solve off s",
                      "Solve on s", "Speedup", "Output"});
  bench::JsonLog json;
  bool any_mismatch = false;
  bool reduction_ok = true;

  for (const Case& c : cases) {
    ReconcilerOptions options =
        bench::WithBenchThreads(ReconcilerOptions::DepGraph());
    options.evidence_cache = false;
    const ModeResult off = RunMode(c.dataset, options, 3);
    options.evidence_cache = true;
    const ModeResult on = RunMode(c.dataset, options, 3);

    const bool identical =
        off.result.cluster == on.result.cluster &&
        off.result.merged_pairs == on.result.merged_pairs &&
        off.result.stats.num_merges == on.result.stats.num_merges &&
        off.result.stats.num_folds == on.result.stats.num_folds;
    if (!identical) any_mismatch = true;

    const ReconcileStats& s_off = off.result.stats;
    const ReconcileStats& s_on = on.result.stats;
    // A perfect run rescans nothing; clamp the denominator so the factor
    // stays finite.
    const double reduction =
        static_cast<double>(s_off.num_inedge_scans) /
        static_cast<double>(std::max<int64_t>(1, s_on.num_inedge_scans));
    if (c.name != "Cora" && reduction < 2.0) reduction_ok = false;
    const double recomp_per_s =
        on.solve_seconds > 0
            ? static_cast<double>(s_on.num_recomputations) / on.solve_seconds
            : 0.0;

    table.AddRow({c.name, TablePrinter::Num(recomp_per_s, 0),
                  std::to_string(s_off.num_inedge_scans),
                  std::to_string(s_on.num_inedge_scans),
                  TablePrinter::Num(reduction, 2) + "x",
                  std::to_string(s_on.num_inedge_scans_avoided),
                  std::to_string(s_on.num_delta_pushes),
                  TablePrinter::Num(off.solve_seconds, 3),
                  TablePrinter::Num(on.solve_seconds, 3),
                  TablePrinter::Num(off.solve_seconds / on.solve_seconds, 2) +
                      "x",
                  identical ? "identical" : "MISMATCH"});

    json.BeginRow();
    json.Add("dataset", c.name);
    json.Add("recomputations", s_on.num_recomputations);
    json.Add("recomputations_per_sec", recomp_per_s);
    json.Add("inedge_scans_off", s_off.num_inedge_scans);
    json.Add("inedge_scans_on", s_on.num_inedge_scans);
    json.Add("scan_reduction", reduction);
    json.Add("inedge_scans_avoided", s_on.num_inedge_scans_avoided);
    json.Add("delta_pushes", s_on.num_delta_pushes);
    json.Add("cache_rebuilds", s_on.num_cache_rebuilds);
    json.Add("solve_seconds_off", off.solve_seconds);
    json.Add("solve_seconds_on", on.solve_seconds);
    // Wavefront-drain breakdown (nonzero only when --threads resolves > 1;
    // see perf_scaling for the thread sweep itself).
    json.Add("solve_score_seconds_on", s_on.solve_score_seconds);
    json.Add("solve_commit_seconds_on", s_on.solve_commit_seconds);
    json.Add("solver_rounds_on", s_on.num_solver_rounds);
    json.Add("score_hits_on", s_on.num_score_hits);
    json.Add("serial_rescores_on", s_on.num_serial_rescores);
    json.Add("identical", identical ? std::string("true")
                                    : std::string("false"));
  }

  table.Print(std::cout);
  std::cout << "\n'Avoided' counts in-edges a full rescan would have read "
               "but the valid\ncache made unnecessary; 'Pushes' counts "
               "delta updates applied instead.\n";
  json.Write(bench::JsonPathFromArgs(argc, argv));

  if (any_mismatch) {
    std::cerr << "FATAL: partitions differ between cache off and on\n";
    return 1;
  }
  if (!reduction_ok) {
    std::cerr << "FATAL: in-edge scan reduction below 2x on a PIM config\n";
    return 1;
  }
  return 0;
}
