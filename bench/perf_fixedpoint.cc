// Fixed-point solve with the delta-propagated evidence cache off vs. on
// (ReconcilerOptions::evidence_cache). For each PIM configuration plus
// Cora, the graph is built once per mode (untimed) and the solve phase is
// timed best-of-three. Reports recomputations per second, in-edge scans
// performed and avoided, the scan-reduction factor, delta pushes, cache
// rebuilds, and the solve speedup.
//
// The cache is an invisible optimisation: the binary exits non-zero if
// the partitions, merged pairs, or merge counts differ between modes.
//
// A second guard covers the budget subsystem (DESIGN.md §10): on PIM B
// the solve is timed with no budget configured vs. a generous budget
// (every probe performs its full checks but never fires). The output must
// stay byte-identical and the probe overhead below 2% of solve time, so
// budget support stays effectively free. A third, degraded row runs under
// an already-expired deadline to show the anytime path's cost shape.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/timer.h"

namespace {

using namespace recon;

struct ModeResult {
  ReconcileResult result;
  double solve_seconds = 0;
};

/// Builds untimed, then solves best-of-`reps` with `options`.
ModeResult RunMode(const Dataset& dataset, const ReconcilerOptions& options,
                   int reps) {
  ModeResult out;
  const Reconciler reconciler(options);
  for (int rep = 0; rep < reps; ++rep) {
    BuiltGraph built = BuildDependencyGraph(dataset, options);
    Timer timer;
    ReconcileResult result = reconciler.RunOnGraph(dataset, built);
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0 || seconds < out.solve_seconds) out.solve_seconds = seconds;
    if (rep == 0) out.result = std::move(result);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Perf: fixed-point solve, evidence cache off vs. on",
                     "delta-propagated evidence caching (beyond the paper)");

  struct Case {
    std::string name;
    Dataset dataset;
  };
  std::vector<Case> cases;
  for (const datagen::PimConfig& config : bench::ScaledPimConfigs()) {
    cases.push_back({config.name, datagen::GeneratePim(config)});
  }
  {
    datagen::CoraConfig cora;
    const double scale = bench::BenchScale();
    if (scale < 1.0) {
      cora.num_papers = std::max(2, static_cast<int>(cora.num_papers * scale));
      cora.num_citations =
          std::max(4, static_cast<int>(cora.num_citations * scale));
      cora.num_authors =
          std::max(2, static_cast<int>(cora.num_authors * scale));
      cora.num_venue_series =
          std::max(2, static_cast<int>(cora.num_venue_series * scale));
    }
    cases.push_back({"Cora", datagen::GenerateCora(cora)});
  }

  TablePrinter table({"Dataset", "Recomp/s", "Scans off", "Scans on",
                      "Reduction", "Avoided", "Pushes", "Solve off s",
                      "Solve on s", "Speedup", "Output"});
  bench::JsonLog json;
  bool any_mismatch = false;
  bool reduction_ok = true;

  for (const Case& c : cases) {
    ReconcilerOptions options =
        bench::WithBenchThreads(ReconcilerOptions::DepGraph());
    options.evidence_cache = false;
    const ModeResult off = RunMode(c.dataset, options, 3);
    options.evidence_cache = true;
    const ModeResult on = RunMode(c.dataset, options, 3);

    const bool identical =
        off.result.cluster == on.result.cluster &&
        off.result.merged_pairs == on.result.merged_pairs &&
        off.result.stats.num_merges == on.result.stats.num_merges &&
        off.result.stats.num_folds == on.result.stats.num_folds;
    if (!identical) any_mismatch = true;

    const ReconcileStats& s_off = off.result.stats;
    const ReconcileStats& s_on = on.result.stats;
    // A perfect run rescans nothing; clamp the denominator so the factor
    // stays finite.
    const double reduction =
        static_cast<double>(s_off.num_inedge_scans) /
        static_cast<double>(std::max<int64_t>(1, s_on.num_inedge_scans));
    if (c.name != "Cora" && reduction < 2.0) reduction_ok = false;
    const double recomp_per_s =
        on.solve_seconds > 0
            ? static_cast<double>(s_on.num_recomputations) / on.solve_seconds
            : 0.0;

    table.AddRow({c.name, TablePrinter::Num(recomp_per_s, 0),
                  std::to_string(s_off.num_inedge_scans),
                  std::to_string(s_on.num_inedge_scans),
                  TablePrinter::Num(reduction, 2) + "x",
                  std::to_string(s_on.num_inedge_scans_avoided),
                  std::to_string(s_on.num_delta_pushes),
                  TablePrinter::Num(off.solve_seconds, 3),
                  TablePrinter::Num(on.solve_seconds, 3),
                  TablePrinter::Num(off.solve_seconds / on.solve_seconds, 2) +
                      "x",
                  identical ? "identical" : "MISMATCH"});

    json.BeginRow();
    json.Add("dataset", c.name);
    json.Add("recomputations", s_on.num_recomputations);
    json.Add("recomputations_per_sec", recomp_per_s);
    json.Add("inedge_scans_off", s_off.num_inedge_scans);
    json.Add("inedge_scans_on", s_on.num_inedge_scans);
    json.Add("scan_reduction", reduction);
    json.Add("inedge_scans_avoided", s_on.num_inedge_scans_avoided);
    json.Add("delta_pushes", s_on.num_delta_pushes);
    json.Add("cache_rebuilds", s_on.num_cache_rebuilds);
    json.Add("solve_seconds_off", off.solve_seconds);
    json.Add("solve_seconds_on", on.solve_seconds);
    // Wavefront-drain breakdown (nonzero only when --threads resolves > 1;
    // see perf_scaling for the thread sweep itself).
    json.Add("solve_score_seconds_on", s_on.solve_score_seconds);
    json.Add("solve_commit_seconds_on", s_on.solve_commit_seconds);
    json.Add("solver_rounds_on", s_on.num_solver_rounds);
    json.Add("score_hits_on", s_on.num_score_hits);
    json.Add("serial_rescores_on", s_on.num_serial_rescores);
    json.Add("identical", identical ? std::string("true")
                                    : std::string("false"));
  }

  table.Print(std::cout);
  std::cout << "\n'Avoided' counts in-edges a full rescan would have read "
               "but the valid\ncache made unnecessary; 'Pushes' counts "
               "delta updates applied instead.\n";

  // --- Budget probe overhead guard (PIM B) ---------------------------------
  bool budget_identical = true;
  double budget_overhead = 0;
  {
    const Case* pim_b = nullptr;
    for (const Case& c : cases) {
      if (c.name == "PIM B") pim_b = &c;
    }
    ReconcilerOptions options =
        bench::WithBenchThreads(ReconcilerOptions::DepGraph());
    const ModeResult off = RunMode(pim_b->dataset, options, 5);
    // Generous: every limit set, none reachable — probes do all the work
    // (counter bumps, hook dispatch, strided clock reads) with no stop.
    options.budget.deadline_ms = 3.6e6;
    options.budget.max_solver_iterations = int64_t{1} << 60;
    options.budget.max_merges = int64_t{1} << 60;
    options.budget.soft_max_memory_bytes = int64_t{1} << 60;
    const ModeResult on = RunMode(pim_b->dataset, options, 5);

    budget_identical = off.result.cluster == on.result.cluster &&
                       off.result.merged_pairs == on.result.merged_pairs &&
                       on.result.stats.stop_reason == StopReason::kConverged;
    budget_overhead =
        off.solve_seconds > 0
            ? (on.solve_seconds - off.solve_seconds) / off.solve_seconds
            : 0.0;

    // Degraded row: an already-expired deadline — the run freezes at its
    // first probe yet still returns a valid (empty-ish) partition.
    options.budget.deadline_ms = 1e-6;
    const ModeResult degraded = RunMode(pim_b->dataset, options, 1);

    std::cout << "\nBudget guard (PIM B): solve off " << off.solve_seconds
              << "s, generous-budget " << on.solve_seconds << "s, overhead "
              << budget_overhead * 100 << "% ("
              << (budget_identical ? "identical" : "MISMATCH") << ")\n"
              << "Degraded (expired deadline): stop="
              << StopReasonToString(degraded.result.stats.stop_reason)
              << " merges=" << degraded.result.stats.num_merges << " solve "
              << degraded.solve_seconds << "s\n";

    json.BeginRow();
    json.Add("dataset", std::string("PIM B [budget-guard]"));
    json.Add("solve_seconds_unbudgeted", off.solve_seconds);
    json.Add("solve_seconds_generous_budget", on.solve_seconds);
    json.Add("budget_probe_overhead_pct", budget_overhead * 100);
    json.Add("budget_probes", on.result.stats.num_budget_probes);
    json.Add("budget_identical", budget_identical ? std::string("true")
                                                  : std::string("false"));
    json.Add("degraded_stop_reason",
             std::string(StopReasonToString(
                 degraded.result.stats.stop_reason)));
    json.Add("degraded_merges", degraded.result.stats.num_merges);
    json.Add("degraded_solve_seconds", degraded.solve_seconds);
  }

  json.Write(bench::JsonPathFromArgs(argc, argv));

  if (any_mismatch) {
    std::cerr << "FATAL: partitions differ between cache off and on\n";
    return 1;
  }
  if (!reduction_ok) {
    std::cerr << "FATAL: in-edge scan reduction below 2x on a PIM config\n";
    return 1;
  }
  if (!budget_identical) {
    std::cerr << "FATAL: generous budget changed the output or did not "
                 "converge\n";
    return 1;
  }
  if (budget_overhead >= 0.02) {
    std::cerr << "FATAL: budget probe overhead "
              << budget_overhead * 100 << "% >= 2% on PIM B\n";
    return 1;
  }
  return 0;
}
