// Table 6: effect of constraint enforcement on PIM dataset A — precision /
// recall, number of entities involved in false positives, and graph size.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 6: effect of constraints (Person, PIM A)",
                     "SIGMOD'05 Table 6");

  datagen::PimConfig config = datagen::PimConfigA();
  const double scale = bench::BenchScale();
  if (scale < 1.0) config = datagen::ScaleConfig(config, scale);
  const Dataset dataset = datagen::GeneratePim(config);
  const int person = dataset.schema().RequireClass("Person");

  TablePrinter table({"Method", "Prec/Recall", "#(Entities w/ FP)",
                      "#(Nodes)"});
  for (const bool with_constraints : {true, false}) {
    ReconcilerOptions options =
        bench::WithBenchThreads(ReconcilerOptions::DepGraph());
    options.constraints = with_constraints;
    const Reconciler reconciler(options);
    const ReconcileResult result = reconciler.Run(dataset);
    const PairMetrics m = EvaluateClass(dataset, result.cluster, person);
    table.AddRow({with_constraints ? "DepGraph" : "Non-Constraint",
                  TablePrinter::PrecRecall(m.precision, m.recall),
                  std::to_string(
                      EntitiesWithFalsePositives(dataset, result.cluster,
                                                 person)),
                  std::to_string(result.stats.num_nodes)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper (Table 6): DepGraph 0.999/0.9994, 13 entities w/ FP, "
               "692030 nodes; Non-Constraint 0.947/0.9996, 61 entities, "
               "590438 nodes.\n"
               "Expected shape: constraints sharply reduce false positives "
               "at essentially no recall cost; they add nodes without "
               "blowing up the graph.\n";
  return 0;
}
