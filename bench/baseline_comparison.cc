// Extension experiment (ours): three generations of reconciliation on one
// personal dataset — classical unsupervised Fellegi-Sunter (the model the
// paper's related work frames everything against), the attribute-wise
// IndepDec baseline, and the paper's DepGraph.

#include <iostream>

#include "baseline/fellegi_sunter.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Baseline comparison: Fellegi-Sunter vs IndepDec vs DepGraph",
      "extension of the paper's §5.2 comparison (FS = references [17],[36])");

  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.25 * bench::BenchScale());
  const Dataset dataset = datagen::GeneratePim(config);
  std::cout << dataset.num_references() << " references.\n\n";

  TablePrinter table({"Class", "FellegiSunter P/R (F)", "IndepDec P/R (F)",
                      "DepGraph P/R (F)"});

  FellegiSunterOptions fs_options;
  fs_options.blocking = bench::WithBenchThreads(fs_options.blocking);
  const FellegiSunter fs(fs_options);
  const IndepDec indep(bench::WithBenchThreads(ReconcilerOptions::IndepDec()));
  const Reconciler dep(bench::WithBenchThreads(ReconcilerOptions::DepGraph()));
  const auto c_fs = fs.Run(dataset).cluster;
  const auto c_in = indep.Run(dataset).cluster;
  const auto c_dg = dep.Run(dataset).cluster;

  auto cell = [&](const std::vector<int>& cluster, int class_id) {
    const PairMetrics m = EvaluateClass(dataset, cluster, class_id);
    return TablePrinter::PrecRecall(m.precision, m.recall) + " (" +
           TablePrinter::Num(m.f1) + ")";
  };
  for (const char* cls : {"Person", "Article", "Venue"}) {
    const int id = dataset.schema().RequireClass(cls);
    table.AddRow({cls, cell(c_fs, id), cell(c_in, id), cell(c_dg, id)});
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: the unsupervised Fellegi-Sunter linker adapts "
         "its field weights to the data and is competitive attribute-wise, "
         "but neither classical model can exploit associations — DepGraph "
         "leads on recall wherever references are information-poor "
         "(persons, venues).\n";
  return 0;
}
