// Table 7: precision / recall / F-measure per class on the Cora citation
// benchmark, IndepDec vs DepGraph, with the literature comparators quoted.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 7: the Cora dataset", "SIGMOD'05 Table 7");

  const Dataset dataset = datagen::GenerateCora(datagen::CoraConfig());
  std::cout << dataset.num_references() << " references extracted from "
            << "synthetic citations.\n\n";

  TablePrinter table({"Class", "IndepDec P/R", "F-msre", "DepGraph P/R",
                      "F-msre"});
  for (const char* class_name : {"Person", "Article", "Venue"}) {
    const int class_id = dataset.schema().RequireClass(class_name);
    const bench::Comparison cmp = bench::CompareOnClass(dataset, class_id);
    table.AddRow({class_name,
                  TablePrinter::PrecRecall(cmp.indep.precision,
                                           cmp.indep.recall),
                  TablePrinter::Num(cmp.indep.f1),
                  TablePrinter::PrecRecall(cmp.depgraph.precision,
                                           cmp.depgraph.recall),
                  TablePrinter::Num(cmp.depgraph.f1)});
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper (Table 7): Person 0.994/0.985 -> 1/0.987; "
         "Article 0.985/0.913 -> 0.985/0.924; "
         "Venue 0.982/0.362 -> 0.837/0.714.\n"
         "Literature on the same benchmark (quoted, not reimplemented): "
         "Parag&Domingos'04 0.842/0.909; Bilenko&Mooney'03 F=0.867; "
         "Cohen&Richman'02 0.99/0.925.\n"
         "Expected shape: DepGraph F >= IndepDec F on all classes; the "
         "venue recall jumps sharply while venue *precision drops* "
         "(article-to-venue propagation both reconciles true variants and "
         "glues wrongly-cited venues).\n";
  return 0;
}
