// End-to-end reconciliation throughput at several dataset scales, plus the
// cost split between graph construction and the fixed point.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"

#include "core/premerge.h"
#include "core/reconciler.h"
#include "datagen/pim_generator.h"

namespace {

recon::Dataset MakeDataset(double scale) {
  recon::datagen::PimConfig config = recon::datagen::PimConfigA();
  config = recon::datagen::ScaleConfig(config, scale);
  return recon::datagen::GeneratePim(config);
}

void BM_DepGraphReconcile(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const recon::Dataset dataset = MakeDataset(scale);
  const recon::Reconciler reconciler(recon::ReconcilerOptions::DepGraph());
  int64_t pairs_scored = 0;
  for (auto _ : state) {
    const recon::ReconcileResult result = reconciler.Run(dataset);
    pairs_scored += result.stats.num_candidates;
    benchmark::DoNotOptimize(result);
  }
  state.counters["refs"] = dataset.num_references();
  // Candidate pairs scored per second of wall time — directly comparable
  // to the pairs/sec column of bench/perf_scaling.
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(pairs_scored), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DepGraphReconcile)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

// Raw graph construction *without* the key-attribute pre-merge — this is
// why it costs more than the full Run() above, which condenses the
// dataset first (see bench/ablation_blocking for the full comparison).
void BM_GraphBuildOnly(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const recon::Dataset dataset = MakeDataset(scale);
  const recon::ReconcilerOptions options;
  int64_t pairs_scored = 0;
  for (auto _ : state) {
    const recon::BuiltGraph built =
        recon::BuildDependencyGraph(dataset, options);
    pairs_scored += built.num_candidates;
    benchmark::DoNotOptimize(built);
  }
  state.counters["refs"] = dataset.num_references();
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(pairs_scored), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GraphBuildOnly)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_PremergeOnly(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const recon::Dataset dataset = MakeDataset(scale);
  const recon::SchemaBinding binding =
      recon::SchemaBinding::Resolve(dataset.schema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::PremergeEqualEmails(dataset, binding));
  }
  state.counters["refs"] = dataset.num_references();
}
BENCHMARK(BM_PremergeOnly)->Arg(2)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: `--json <path>` is this repo's common bench flag; rewrite
// it into google-benchmark's --benchmark_out flags before Initialize.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args =
      recon::bench::TranslateGBenchJsonFlag(argc, argv, &storage);
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
