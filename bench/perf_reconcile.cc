// End-to-end reconciliation throughput at several dataset scales, plus the
// cost split between graph construction and the fixed point.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"

#include "core/premerge.h"
#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "strsim/simd_dispatch.h"

namespace {

recon::Dataset MakeDataset(double scale) {
  recon::datagen::PimConfig config = recon::datagen::PimConfigA();
  config = recon::datagen::ScaleConfig(config, scale);
  return recon::datagen::GeneratePim(config);
}

// Twin of BM_GraphBuildOnly with the value store off: the build re-parses
// raw strings per lane instead of reading precomputed features. The gap is
// the scoring-phase win of DESIGN.md §11.
void BM_GraphBuildRawStrings(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const recon::Dataset dataset = MakeDataset(scale);
  recon::ReconcilerOptions options;
  options.value_store = false;
  int64_t pairs_scored = 0;
  for (auto _ : state) {
    const recon::BuiltGraph built =
        recon::BuildDependencyGraph(dataset, options);
    pairs_scored += built.num_candidates;
    benchmark::DoNotOptimize(built);
  }
  state.counters["refs"] = dataset.num_references();
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(pairs_scored), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GraphBuildRawStrings)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_DepGraphReconcile(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const recon::Dataset dataset = MakeDataset(scale);
  const recon::Reconciler reconciler(recon::ReconcilerOptions::DepGraph());
  int64_t pairs_scored = 0;
  int64_t refs_processed = 0;
  for (auto _ : state) {
    const recon::ReconcileResult result = reconciler.Run(dataset);
    pairs_scored += result.stats.num_candidates;
    refs_processed += dataset.num_references();
    benchmark::DoNotOptimize(result);
  }
  state.counters["refs"] = dataset.num_references();
  // Candidate pairs scored per second of wall time — directly comparable
  // to the pairs/sec column of bench/perf_scaling.
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(pairs_scored), benchmark::Counter::kIsRate);
  // End-to-end throughput in input references per second — the headline
  // number bench/perf_shard gates at the million-reference scale.
  state.counters["references_per_sec"] = benchmark::Counter(
      static_cast<double>(refs_processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DepGraphReconcile)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

// Raw graph construction *without* the key-attribute pre-merge — this is
// why it costs more than the full Run() above, which condenses the
// dataset first (see bench/ablation_blocking for the full comparison).
void BM_GraphBuildOnly(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const recon::Dataset dataset = MakeDataset(scale);
  const recon::ReconcilerOptions options;
  int64_t pairs_scored = 0;
  for (auto _ : state) {
    const recon::BuiltGraph built =
        recon::BuildDependencyGraph(dataset, options);
    pairs_scored += built.num_candidates;
    benchmark::DoNotOptimize(built);
  }
  state.counters["refs"] = dataset.num_references();
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(pairs_scored), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GraphBuildOnly)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_PremergeOnly(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  const recon::Dataset dataset = MakeDataset(scale);
  const recon::SchemaBinding binding =
      recon::SchemaBinding::Resolve(dataset.schema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::PremergeEqualEmails(dataset, binding));
  }
  state.counters["refs"] = dataset.num_references();
}
BENCHMARK(BM_PremergeOnly)->Arg(2)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

namespace {

/// Scoring-phase gate (DESIGN.md §11): on PIM B the value store must (a)
/// leave the output byte-identical to raw-string scoring and (b) analyze
/// each distinct value once — at least 5x fewer analyses than pairwise
/// comparisons. Returns 0 on success, 1 (with a FATAL line) on violation.
int RunValueStoreGate() {
  recon::datagen::PimConfig config = recon::datagen::PimConfigB();
  const double scale = recon::bench::BenchScale();
  if (scale < 1.0) config = recon::datagen::ScaleConfig(config, scale);
  const recon::Dataset dataset = recon::datagen::GeneratePim(config);

  recon::ReconcilerOptions options =
      recon::bench::WithBenchThreads(recon::ReconcilerOptions::DepGraph());
  options.value_store = false;
  const recon::ReconcileResult off = recon::Reconciler(options).Run(dataset);
  options.value_store = true;
  const recon::ReconcileResult on = recon::Reconciler(options).Run(dataset);

  const bool identical =
      off.cluster == on.cluster && off.merged_pairs == on.merged_pairs &&
      off.stats.num_merges == on.stats.num_merges &&
      off.stats.num_folds == on.stats.num_folds;
  const recon::ReconcileStats& s = on.stats;
  std::cout << "\nValue-store gate (PIM B, " << dataset.num_references()
            << " refs): " << s.num_pair_comparisons << " pair comparisons, "
            << s.num_value_analyses << " value analyses (store on) vs "
            << off.stats.num_value_analyses << " (store off); memo "
            << s.num_sim_memo_hits << " hits / " << s.num_sim_memo_misses
            << " misses, " << s.sim_memo_bytes << " B; store "
            << s.value_store_bytes << " B; output "
            << (identical ? "identical" : "MISMATCH") << "\n";
  std::cout << "Kernels: " << s.simd_dispatch << " dispatch; prefilter "
            << s.num_prefilter_skips << " skipped / "
            << s.num_prefilter_exact << " exact title comparisons; "
            << "signatures " << s.signature_bytes << " B\n";

  if (!identical) {
    std::cerr << "FATAL: value store changed the output on PIM B\n";
    return 1;
  }
  if (s.num_pair_comparisons < 5 * s.num_value_analyses) {
    std::cerr << "FATAL: value store analyzed too often on PIM B: "
              << s.num_value_analyses << " analyses for "
              << s.num_pair_comparisons << " comparisons (< 5x reduction)\n";
    return 1;
  }
  return 0;
}

/// Kernel-identity gate (DESIGN.md §16): the bit-parallel kernels and the
/// signature prefilter must leave the reconcile output byte-identical to
/// the scalar reference path on PIM B. Returns 0 on success (including a
/// trivial pass when no non-scalar level is available), 1 on divergence.
int RunKernelGate() {
  namespace strsim = recon::strsim;
  const strsim::SimdLevel active = strsim::ActiveSimdLevel();
  if (active == strsim::SimdLevel::kScalar) {
    std::cout << "\nKernel gate: dispatch is scalar (detected "
              << strsim::SimdLevelName(strsim::DetectedSimdLevel())
              << "); identity holds trivially, skipping\n";
    return 0;
  }

  recon::datagen::PimConfig config = recon::datagen::PimConfigB();
  const double scale = recon::bench::BenchScale();
  if (scale < 1.0) config = recon::datagen::ScaleConfig(config, scale);
  const recon::Dataset dataset = recon::datagen::GeneratePim(config);
  const recon::ReconcilerOptions options =
      recon::bench::WithBenchThreads(recon::ReconcilerOptions::DepGraph());

  const recon::ReconcileResult on = recon::Reconciler(options).Run(dataset);
  strsim::SetSimdLevel(strsim::SimdLevel::kScalar);
  const recon::ReconcileResult off = recon::Reconciler(options).Run(dataset);
  strsim::SetSimdLevel(active);

  const bool identical =
      off.cluster == on.cluster && off.merged_pairs == on.merged_pairs &&
      off.stats.num_merges == on.stats.num_merges &&
      off.stats.num_folds == on.stats.num_folds;
  std::cout << "\nKernel gate (PIM B, " << dataset.num_references()
            << " refs): " << strsim::SimdLevelName(active)
            << " vs scalar dispatch; prefilter skipped "
            << on.stats.num_prefilter_skips << " of "
            << on.stats.num_prefilter_skips + on.stats.num_prefilter_exact
            << " title comparisons; output "
            << (identical ? "identical" : "MISMATCH") << "\n";
  if (!identical) {
    std::cerr << "FATAL: simd kernels changed the output on PIM B\n";
    return 1;
  }
  return 0;
}

}  // namespace

// Custom main: `--json <path>` is this repo's common bench flag; rewrite
// it into google-benchmark's --benchmark_out flags before Initialize.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args =
      recon::bench::TranslateGBenchJsonFlag(argc, argv, &storage);
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int store_rc = RunValueStoreGate();
  const int kernel_rc = RunKernelGate();
  return store_rc != 0 ? store_rc : kernel_rc;
}
