// Thread-scaling of the parallel phases at 1 / 2 / 4 / 8 threads.
//
// Section 1 — graph build: candidate generation plus dependency-graph
// construction (which contains the initial pairwise similarity scoring)
// on a Table-1-scale PIM A dataset. Reports wall time, speedup over the
// serial path, and candidate pairs scored per second.
//
// Section 2 — fixed-point solve: the deterministic wavefront drain
// (ReconcilerOptions::parallel_fixed_point, DESIGN.md §9) on PIM B. The
// graph is built untimed per rep; the solve is timed best-of-three and
// broken down into the parallel score phase and the region-partitioned
// commit phase (DESIGN.md §13). commit_speedup in the JSON rows is the
// gate tools/run_benches.sh --gate-speedup checks.
//
// At every thread count both sections check the output against the
// one-thread run — partitions, merged pairs, merge and fold counts — and
// the binary exits non-zero on any difference: parallelism must never
// change the output.

#include <iostream>
#include <string>
#include <utility>

#include "bench_common.h"
#include "runtime/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace recon;

/// True when `a` and `b` are the byte-identical reconciliation outcome.
bool SameOutput(const ReconcileResult& a, const ReconcileResult& b) {
  return a.cluster == b.cluster && a.merged_pairs == b.merged_pairs &&
         a.stats.num_merges == b.stats.num_merges &&
         a.stats.num_folds == b.stats.num_folds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Perf: thread scaling of graph build and solve",
                     "runtime/ subsystem (beyond the paper)");
  std::cout << "hardware threads: "
            << runtime::ThreadPool::HardwareConcurrency() << "\n";

  bench::JsonLog json;

  // ---- Section 1: graph build scaling (PIM A) --------------------------
  {
    datagen::PimConfig config = datagen::PimConfigA();
    const double scale = bench::BenchScale();
    if (scale < 1.0) config = datagen::ScaleConfig(config, scale);
    const Dataset dataset = datagen::GeneratePim(config);
    std::cout << "\nGraph build, PIM A: " << dataset.num_references()
              << " references\n\n";

    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.num_threads = 1;
    const std::vector<int> serial_cluster =
        Reconciler(options).Run(dataset).cluster;

    TablePrinter table({"Threads", "Build s", "Speedup", "Pairs/s", "Output"});
    double serial_seconds = 0;
    for (const int threads : {1, 2, 4, 8}) {
      options.num_threads = threads;
      // Best of three: thread-scaling numbers are noisy on shared machines.
      double best_seconds = 0;
      int num_candidates = 0;
      for (int rep = 0; rep < 3; ++rep) {
        Timer timer;
        const BuiltGraph built = BuildDependencyGraph(dataset, options);
        const double seconds = timer.ElapsedSeconds();
        if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
        num_candidates = built.num_candidates;
      }
      if (threads == 1) serial_seconds = best_seconds;
      const bool identical =
          Reconciler(options).Run(dataset).cluster == serial_cluster;
      table.AddRow(
          {std::to_string(threads), TablePrinter::Num(best_seconds, 3),
           TablePrinter::Num(serial_seconds / best_seconds, 2) + "x",
           TablePrinter::Num(num_candidates / best_seconds, 0),
           identical ? "identical" : "MISMATCH"});
      json.BeginRow();
      json.Add("section", std::string("build"));
      json.Add("threads", threads);
      json.Add("build_seconds", best_seconds);
      json.Add("speedup", serial_seconds / best_seconds);
      json.Add("candidates_per_sec", num_candidates / best_seconds);
      json.Add("references_per_sec", dataset.num_references() / best_seconds);
      json.Add("identical",
               identical ? std::string("true") : std::string("false"));
      if (!identical) {
        std::cerr << "FATAL: build output at " << threads
                  << " threads differs from serial\n";
        return 1;
      }
    }
    table.Print(std::cout);
  }

  // ---- Section 2: fixed-point solve scaling (PIM B) --------------------
  {
    datagen::PimConfig config = datagen::PimConfigB();
    const double scale = bench::BenchScale();
    if (scale < 1.0) config = datagen::ScaleConfig(config, scale);
    const Dataset dataset = datagen::GeneratePim(config);
    std::cout << "\nFixed-point solve (wavefront rounds), PIM B: "
              << dataset.num_references() << " references\n\n";

    TablePrinter table({"Threads", "Solve s", "Score s", "Commit s",
                        "Rounds", "Waves", "Regions", "Speedup", "Output"});
    ReconcileResult serial_result;
    double serial_seconds = 0;
    double serial_commit_seconds = 0;
    for (const int threads : {1, 2, 4, 8}) {
      ReconcilerOptions options = ReconcilerOptions::DepGraph();
      options.num_threads = threads;
      const Reconciler reconciler(options);
      ReconcileResult result;
      double best_seconds = 0;
      for (int rep = 0; rep < 3; ++rep) {
        BuiltGraph built = BuildDependencyGraph(dataset, options);
        Timer timer;
        ReconcileResult r = reconciler.RunOnGraph(dataset, built);
        const double seconds = timer.ElapsedSeconds();
        if (rep == 0 || seconds < best_seconds) {
          best_seconds = seconds;
          result = std::move(r);
        }
      }
      if (threads == 1) {
        serial_seconds = best_seconds;
        serial_commit_seconds = result.stats.solve_commit_seconds;
        serial_result = result;
      }
      const bool identical = SameOutput(serial_result, result);
      const ReconcileStats& s = result.stats;
      table.AddRow({std::to_string(threads),
                    TablePrinter::Num(best_seconds, 3),
                    TablePrinter::Num(s.solve_score_seconds, 3),
                    TablePrinter::Num(s.solve_commit_seconds, 3),
                    std::to_string(s.num_solver_rounds),
                    std::to_string(s.num_commit_waves),
                    std::to_string(s.num_commit_regions),
                    TablePrinter::Num(serial_seconds / best_seconds, 2) + "x",
                    identical ? "identical" : "MISMATCH"});
      json.BeginRow();
      json.Add("section", std::string("solve"));
      json.Add("threads", threads);
      json.Add("solve_seconds", best_seconds);
      json.Add("solve_score_seconds", s.solve_score_seconds);
      json.Add("solve_commit_seconds", s.solve_commit_seconds);
      json.Add("solver_rounds", s.num_solver_rounds);
      json.Add("parallel_scored", s.num_parallel_scored);
      json.Add("score_hits", s.num_score_hits);
      json.Add("serial_rescores", s.num_serial_rescores);
      json.Add("score_discards", s.num_score_discards);
      json.Add("commit_waves", s.num_commit_waves);
      json.Add("commit_regions", s.num_commit_regions);
      json.Add("wave_commits", s.num_wave_commits);
      json.Add("commit_deferrals", s.num_commit_deferrals);
      json.Add("graph_bytes", s.graph_bytes);
      json.Add("speedup", serial_seconds / best_seconds);
      json.Add("commit_speedup",
               serial_commit_seconds / s.solve_commit_seconds);
      json.Add("references_per_sec", dataset.num_references() / best_seconds);
      json.Add("identical",
               identical ? std::string("true") : std::string("false"));
      if (!identical) {
        std::cerr << "FATAL: solve output at " << threads
                  << " threads differs from one thread\n";
        return 1;
      }
    }
    table.Print(std::cout);
  }

  json.Write(bench::JsonPathFromArgs(argc, argv));
  std::cout << "\nSpeedup is bounded by the hardware thread count above. "
               "The commit phase\nnow partitions each wave by connected "
               "region and commits disjoint regions\nin parallel "
               "(DESIGN.md §13); output stays byte-identical at every "
               "thread\ncount, checked above. On a 1-CPU container every "
               "speedup is ~1x by\nconstruction; tools/run_benches.sh "
               "--gate-speedup applies the scaling gate\nonly when the "
               "hardware can express it.\n";
  return 0;
}
