// Thread-scaling of the parallel phases: candidate generation plus
// dependency-graph construction (which contains the initial pairwise
// similarity scoring) at 1 / 2 / 4 / 8 threads on a Table-1-scale PIM
// dataset. Reports wall time, speedup over the serial path, and candidate
// pairs scored per second (comparable to perf_reconcile's pairs/s). The
// fixed-point solve is sequential by design and excluded here.
//
// The graphs built at every thread count are checked to be identical
// (same node/candidate counts and final partitions) before timing is
// reported — parallelism must never change the output.

#include <iostream>
#include <string>

#include "bench_common.h"
#include "runtime/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Perf: thread scaling of graph build + scoring",
                     "runtime/ subsystem (beyond the paper)");

  datagen::PimConfig config = datagen::PimConfigA();
  const double scale = bench::BenchScale();
  if (scale < 1.0) config = datagen::ScaleConfig(config, scale);
  const Dataset dataset = datagen::GeneratePim(config);
  std::cout << dataset.num_references() << " references, hardware threads: "
            << runtime::ThreadPool::HardwareConcurrency() << "\n\n";

  // Serial reference output: everything below must reproduce it exactly.
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.num_threads = 1;
  const std::vector<int> serial_cluster =
      Reconciler(options).Run(dataset).cluster;

  TablePrinter table(
      {"Threads", "Build s", "Speedup", "Pairs/s", "Output"});
  bench::JsonLog json;
  double serial_seconds = 0;
  for (const int threads : {1, 2, 4, 8}) {
    options.num_threads = threads;
    // Best of three: thread-scaling numbers are noisy on shared machines.
    double best_seconds = 0;
    int num_candidates = 0;
    for (int rep = 0; rep < 3; ++rep) {
      Timer timer;
      const BuiltGraph built = BuildDependencyGraph(dataset, options);
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      num_candidates = built.num_candidates;
    }
    if (threads == 1) serial_seconds = best_seconds;
    const bool identical =
        Reconciler(options).Run(dataset).cluster == serial_cluster;
    table.AddRow(
        {std::to_string(threads), TablePrinter::Num(best_seconds, 3),
         TablePrinter::Num(serial_seconds / best_seconds, 2) + "x",
         TablePrinter::Num(num_candidates / best_seconds, 0),
         identical ? "identical" : "MISMATCH"});
    json.BeginRow();
    json.Add("threads", threads);
    json.Add("build_seconds", best_seconds);
    json.Add("speedup", serial_seconds / best_seconds);
    json.Add("candidates_per_sec", num_candidates / best_seconds);
    json.Add("identical",
             identical ? std::string("true") : std::string("false"));
    if (!identical) {
      std::cerr << "FATAL: output at " << threads
                << " threads differs from serial\n";
      return 1;
    }
  }
  table.Print(std::cout);
  json.Write(bench::JsonPathFromArgs(argc, argv));
  std::cout << "\nSpeedup is bounded by the hardware thread count above; "
               "the solve phase is\nsequential by design (see DESIGN.md, "
               "Execution runtime).\n";
  return 0;
}
