// Ablation (ours): the graph-pruning design choices of §3.1/§3.4 —
// canopy-style blocking and key-attribute pre-merging — measured by graph
// size, wall time, and accuracy on a mid-sized PIM dataset.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Ablation: blocking and key-attribute pre-merge",
      "design choices of paper §3.1 (canopy pruning) and §3.4 (pre-merge)");

  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.12 * bench::BenchScale());
  const Dataset dataset = datagen::GeneratePim(config);
  const int person = dataset.schema().RequireClass("Person");
  std::cout << dataset.num_references() << " references.\n\n";

  TablePrinter table({"Variant", "Candidates", "Nodes", "Build s",
                      "Solve s", "Person P/R"});
  struct Variant {
    const char* name;
    bool blocking;
    bool premerge;
    bool canopies;
  };
  for (const Variant v :
       {Variant{"full pruning", true, true, false},
        Variant{"canopies [27]", true, true, true},
        Variant{"no pre-merge", true, false, false},
        Variant{"no blocking", false, true, false},
        Variant{"neither", false, false, false}}) {
    ReconcilerOptions options =
        bench::WithBenchThreads(ReconcilerOptions::DepGraph());
    options.use_blocking = v.blocking;
    options.use_canopies = v.canopies;
    options.premerge_equal_emails = v.premerge;
    const Reconciler reconciler(options);
    const ReconcileResult result = reconciler.Run(dataset);
    const PairMetrics m = EvaluateClass(dataset, result.cluster, person);
    table.AddRow({v.name, std::to_string(result.stats.num_candidates),
                  std::to_string(result.stats.num_nodes),
                  TablePrinter::Num(result.stats.build_seconds, 2),
                  TablePrinter::Num(result.stats.solve_seconds, 2),
                  TablePrinter::PrecRecall(m.precision, m.recall)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: pruning shrinks candidates/nodes and time "
               "by an order of magnitude at (nearly) unchanged accuracy — "
               "the paper's claim that careful pruning does not lose "
               "important nodes.\n";
  return 0;
}
