// Table 1: dataset properties — #references, #entities, ratio.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table 1: dataset properties",
                     "Dong, Halevy, Madhavan (SIGMOD'05), Table 1");

  TablePrinter table({"Dataset", "#(References)", "#(Entities)",
                      "#Ref/#Entity"});
  double ratio_sum = 0;
  int rows = 0;
  auto add_row = [&](const std::string& name, const Dataset& dataset) {
    int entities = 0;
    for (int c = 0; c < dataset.schema().num_classes(); ++c) {
      entities += dataset.NumEntitiesOfClass(c);
    }
    const double ratio =
        static_cast<double>(dataset.num_references()) / entities;
    table.AddRow({name, std::to_string(dataset.num_references()),
                  std::to_string(entities), TablePrinter::Num(ratio, 1)});
    ratio_sum += ratio;
    ++rows;
  };

  for (const auto& config : bench::ScaledPimConfigs()) {
    add_row(config.name, datagen::GeneratePim(config));
  }
  add_row("Cora", datagen::GenerateCora(datagen::CoraConfig()));

  table.Print(std::cout);
  std::cout << "\nAverage reference-to-entity ratio: "
            << TablePrinter::Num(ratio_sum / rows, 1)
            << " (paper: 11.8)\n";
  return 0;
}
