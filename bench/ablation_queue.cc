// Ablation (ours): the §3.2 queue heuristics — strong-boolean dependents
// jumping to the queue front — measured by recomputation counts.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace recon;
  bench::ParseArgs(argc, argv);
  bench::PrintHeader("Ablation: queue discipline",
                     "paper §3.2 recomputation-order heuristics");

  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.2 * bench::BenchScale());
  const Dataset dataset = datagen::GeneratePim(config);
  const int person = dataset.schema().RequireClass("Person");
  std::cout << dataset.num_references() << " references.\n\n";

  TablePrinter table({"Variant", "Recomputations", "Merges", "Solve s",
                      "Person P/R"});
  for (const bool jump : {true, false}) {
    ReconcilerOptions options =
        bench::WithBenchThreads(ReconcilerOptions::DepGraph());
    options.strong_neighbors_jump_queue = jump;
    const Reconciler reconciler(options);
    const ReconcileResult result = reconciler.Run(dataset);
    const PairMetrics m = EvaluateClass(dataset, result.cluster, person);
    table.AddRow({jump ? "strong to front (paper)" : "FIFO only",
                  std::to_string(result.stats.num_recomputations),
                  std::to_string(result.stats.num_merges),
                  TablePrinter::Num(result.stats.solve_seconds, 3),
                  TablePrinter::PrecRecall(m.precision, m.recall)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: identical accuracy (the fixed point does "
               "not depend on order under monotone similarities); the "
               "front-insertion heuristic reduces recomputations by "
               "resolving implied merges before dependent pairs are "
               "(re)considered.\n";
  return 0;
}
