// Shared helpers for the table-reproduction harnesses.

#ifndef RECON_BENCH_BENCH_COMMON_H_
#define RECON_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "model/dataset.h"
#include "util/json.h"

namespace recon::bench {

/// The four PIM configurations in order (A, B, C, D).
std::vector<datagen::PimConfig> AllPimConfigs();

/// Reads RECON_BENCH_SCALE (a float in (0, 1], default 1) so slow machines
/// can shrink the datasets while keeping the shapes.
double BenchScale();

/// Threads for the parallel phases of every run a bench performs. Defaults
/// to 1 so published table numbers stay on the serial path; override with
/// `--threads N` (via ParseArgs) or RECON_BENCH_THREADS. 0 = all hardware
/// threads. Output is identical for every value — only wall time changes.
int BenchThreads();

/// Parses the shared bench flags (currently `--threads N`); call at the
/// top of main. Unknown flags are left alone for the bench's own parsing.
void ParseArgs(int argc, char** argv);

/// `options` with num_threads set from BenchThreads().
ReconcilerOptions WithBenchThreads(ReconcilerOptions options);

/// AllPimConfigs() scaled by BenchScale().
std::vector<datagen::PimConfig> ScaledPimConfigs();

/// Runs DepGraph and IndepDec on `dataset` and returns the metrics for
/// `class_id`.
struct Comparison {
  PairMetrics indep;
  PairMetrics depgraph;
};
Comparison CompareOnClass(const Dataset& dataset, int class_id);

/// Prints a standard header naming the experiment.
void PrintHeader(const std::string& title, const std::string& paper_ref);

// ---- Machine-readable results (`--json <path>`) --------------------------

/// Value of a `--json <path>` flag, or "" when absent. Every perf bench
/// accepts the flag so tools/run_benches.sh can track perf trajectories.
std::string JsonPathFromArgs(int argc, char** argv);

/// Tiny bench-result log: flat rows of key -> number/string, written as a
/// JSON array of objects via util/json (which escapes correctly — quotes,
/// backslashes, and control characters included).
class JsonLog {
 public:
  /// Starts a new result row; Add() calls land in the latest row.
  void BeginRow();
  void Add(const std::string& key, double value);
  void Add(const std::string& key, int64_t value);
  void Add(const std::string& key, int value) {
    Add(key, static_cast<int64_t>(value));
  }
  void Add(const std::string& key, const std::string& value);

  /// Writes the rows to `path`, prepended with one machine-context row
  /// (hardware_concurrency, nprocs_online, bench threads/scale) so recorded
  /// numbers can be judged against the hardware that produced them — e.g.
  /// "speedup ~1x" results from a 1-CPU container are machine-checkable.
  /// No-op when `path` is empty; returns false (with a note on stderr) when
  /// the file cannot be written.
  bool Write(const std::string& path) const;

 private:
  std::vector<json::Value> rows_;
};

/// Rewrites a `--json <path>` flag into google-benchmark's
/// --benchmark_out/--benchmark_out_format flags, passing everything else
/// through. `storage` backs the returned pointers; keep it alive across
/// benchmark::Initialize.
std::vector<char*> TranslateGBenchJsonFlag(int argc, char** argv,
                                           std::vector<std::string>* storage);

}  // namespace recon::bench

#endif  // RECON_BENCH_BENCH_COMMON_H_
