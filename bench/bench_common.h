// Shared helpers for the table-reproduction harnesses.

#ifndef RECON_BENCH_BENCH_COMMON_H_
#define RECON_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "model/dataset.h"

namespace recon::bench {

/// The four PIM configurations in order (A, B, C, D).
std::vector<datagen::PimConfig> AllPimConfigs();

/// Reads RECON_BENCH_SCALE (a float in (0, 1], default 1) so slow machines
/// can shrink the datasets while keeping the shapes.
double BenchScale();

/// Threads for the parallel phases of every run a bench performs. Defaults
/// to 1 so published table numbers stay on the serial path; override with
/// `--threads N` (via ParseArgs) or RECON_BENCH_THREADS. 0 = all hardware
/// threads. Output is identical for every value — only wall time changes.
int BenchThreads();

/// Parses the shared bench flags (currently `--threads N`); call at the
/// top of main. Unknown flags are left alone for the bench's own parsing.
void ParseArgs(int argc, char** argv);

/// `options` with num_threads set from BenchThreads().
ReconcilerOptions WithBenchThreads(ReconcilerOptions options);

/// AllPimConfigs() scaled by BenchScale().
std::vector<datagen::PimConfig> ScaledPimConfigs();

/// Runs DepGraph and IndepDec on `dataset` and returns the metrics for
/// `class_id`.
struct Comparison {
  PairMetrics indep;
  PairMetrics depgraph;
};
Comparison CompareOnClass(const Dataset& dataset, int class_id);

/// Prints a standard header naming the experiment.
void PrintHeader(const std::string& title, const std::string& paper_ref);

}  // namespace recon::bench

#endif  // RECON_BENCH_BENCH_COMMON_H_
