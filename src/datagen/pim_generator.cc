#include "datagen/pim_generator.h"

#include <algorithm>
#include <set>

#include "datagen/variants.h"
#include "util/logging.h"

namespace recon::datagen {

namespace {

/// Resolved attribute ids of the PIM schema.
struct PimAttrs {
  int person;
  int article;
  int venue;
  int p_name, p_email, p_coauthor, p_contact;
  int a_title, a_year, a_pages, a_authors, a_venue;
  int v_name, v_year, v_location;

  explicit PimAttrs(const Schema& s)
      : person(s.RequireClass("Person")),
        article(s.RequireClass("Article")),
        venue(s.RequireClass("Venue")),
        p_name(s.RequireAttribute(person, "name")),
        p_email(s.RequireAttribute(person, "email")),
        p_coauthor(s.RequireAttribute(person, "coAuthor")),
        p_contact(s.RequireAttribute(person, "emailContact")),
        a_title(s.RequireAttribute(article, "title")),
        a_year(s.RequireAttribute(article, "year")),
        a_pages(s.RequireAttribute(article, "pages")),
        a_authors(s.RequireAttribute(article, "authoredBy")),
        a_venue(s.RequireAttribute(article, "publishedIn")),
        v_name(s.RequireAttribute(venue, "name")),
        v_year(s.RequireAttribute(venue, "year")),
        v_location(s.RequireAttribute(venue, "location")) {}
};

class PimBuilder {
 public:
  PimBuilder(const PimConfig& config, Universe universe, Dataset* dataset)
      : config_(config),
        universe_(std::move(universe)),
        dataset_(dataset),
        attrs_(dataset->schema()),
        rng_(config.seed ^ 0x5bd1e995u) {
    email_style_.reserve(universe_.persons.size());
    bib_style_.reserve(universe_.persons.size());
    for (size_t i = 0; i < universe_.persons.size(); ++i) {
      email_style_.push_back(
          SampleEmailNameStyle(config_.style_variety, rng_));
      bib_style_.push_back(SampleBibNameStyle(config_.style_variety, rng_));
    }
  }

  void Generate() {
    GenerateMessages();
    GenerateBibtex();
  }

  Universe TakeUniverse() { return std::move(universe_); }

 private:
  /// Name era of a person at time t in [0, 1): second-era persons switch
  /// halfway through the dataset's history.
  int EraAt(const PersonSpec& person, double t) const {
    return (person.has_second_era && t >= 0.5) ? 1 : 0;
  }

  /// Email era lags the name change slightly: right after the change there
  /// is a transition window where messages carry the new name but still
  /// the old address. These bridge references are what let a
  /// constraint-free reconciler glue the two eras (paper §5.3, dataset D).
  int EmailEraAt(const PersonSpec& person, double t) const {
    return (person.has_second_era && t >= 0.58) ? 1 : 0;
  }

  RefId MakeEmailPersonRef(int person_id, double t, bool is_sender) {
    const PersonSpec& person = universe_.persons[person_id];
    const int era = EraAt(person, t);
    const RefId id = dataset_->NewReference(
        attrs_.person, universe_.PersonGold(person_id), Provenance::kEmail);
    Reference& ref = dataset_->mutable_reference(id);

    const bool with_email =
        is_sender || rng_.NextBool(config_.p_recipient_email);
    bool with_name = rng_.NextBool(is_sender ? config_.p_sender_name
                                             : config_.p_recipient_name);
    if (!with_email) with_name = true;  // Never emit an empty reference.
    if (with_email) {
      ref.AddAtomicValue(attrs_.p_email,
                         PickEmail(person, EmailEraAt(person, t), rng_));
    }
    if (with_name) {
      const NameStyle style =
          rng_.NextBool(config_.p_habitual_style)
              ? email_style_[person_id]
              : SampleEmailNameStyle(config_.style_variety, rng_);
      ref.AddAtomicValue(
          attrs_.p_name,
          RenderName(person, era, style, config_.typo_rate, rng_));
    }
    return id;
  }

  void GenerateMessages() {
    const int num_real_persons = config_.universe.num_persons;
    const ZipfSampler participants(num_real_persons,
                                   config_.participant_zipf);
    const int num_lists = config_.universe.num_mailing_lists;

    // Community structure: person i belongs to community i % k, which
    // spreads the popular (low-rank) persons across communities. Each
    // community's member list keeps global popularity order so a Zipf
    // sampler over it preserves the within-community skew.
    const int num_communities = std::max(
        1, num_real_persons / std::max(1, config_.community_size));
    std::vector<std::vector<int>> community_members(num_communities);
    for (int p = 0; p < num_real_persons; ++p) {
      community_members[p % num_communities].push_back(p);
    }
    std::vector<ZipfSampler> community_sampler;
    community_sampler.reserve(num_communities);
    for (int c = 0; c < num_communities; ++c) {
      community_sampler.emplace_back(
          static_cast<int>(community_members[c].size()),
          config_.participant_zipf);
    }

    for (int m = 0; m < config_.num_messages; ++m) {
      const double t = rng_.NextDouble();
      const int sender = participants.Sample(rng_);
      const int community = sender % num_communities;
      std::set<int> recipient_set;
      const int num_recipients = static_cast<int>(rng_.NextInt(1, 3));
      int attempts = 0;
      while (static_cast<int>(recipient_set.size()) < num_recipients &&
             attempts++ < 64) {
        int r;
        if (rng_.NextBool(config_.p_recipient_in_community)) {
          const auto& members = community_members[community];
          r = members[community_sampler[community].Sample(rng_)];
        } else {
          r = participants.Sample(rng_);
        }
        if (r != sender) recipient_set.insert(r);
      }
      if (recipient_set.empty()) continue;
      std::vector<int> participants_ids(recipient_set.begin(),
                                        recipient_set.end());
      if (num_lists > 0 && rng_.NextBool(config_.p_mailing_list_recipient)) {
        participants_ids.push_back(
            num_real_persons + static_cast<int>(rng_.NextBounded(num_lists)));
      }
      participants_ids.push_back(sender);

      // One reference per participant, then pairwise emailContact links.
      std::vector<RefId> refs;
      refs.reserve(participants_ids.size());
      for (size_t i = 0; i < participants_ids.size(); ++i) {
        const bool is_sender = (i + 1 == participants_ids.size());
        refs.push_back(MakeEmailPersonRef(participants_ids[i], t, is_sender));
      }
      for (size_t i = 0; i < refs.size(); ++i) {
        for (size_t j = 0; j < refs.size(); ++j) {
          if (i == j) continue;
          dataset_->mutable_reference(refs[i]).AddAssociation(
              attrs_.p_contact, refs[j]);
        }
      }
    }
  }

  void GenerateBibtex() {
    if (universe_.articles.empty() || config_.num_bibtex == 0) return;
    const ZipfSampler citations(
        static_cast<int>(universe_.articles.size()), config_.citation_zipf);

    for (int b = 0; b < config_.num_bibtex; ++b) {
      const double t = rng_.NextDouble();
      const int article_id = citations.Sample(rng_);
      const ArticleSpec& article = universe_.articles[article_id];

      // Author references: name only (the paper: "a person reference
      // extracted from a citation contains only a name").
      std::vector<RefId> author_refs;
      for (const int author_id : article.author_ids) {
        const PersonSpec& person = universe_.persons[author_id];
        const RefId id = dataset_->NewReference(
            attrs_.person, universe_.PersonGold(author_id),
            Provenance::kBibtex);
        const NameStyle style =
            rng_.NextBool(config_.p_habitual_style)
                ? bib_style_[author_id]
                : SampleBibNameStyle(config_.style_variety, rng_);
        dataset_->mutable_reference(id).AddAtomicValue(
            attrs_.p_name, RenderName(person, EraAt(person, t), style,
                                      config_.typo_rate, rng_));
        author_refs.push_back(id);
      }
      for (size_t i = 0; i < author_refs.size(); ++i) {
        for (size_t j = 0; j < author_refs.size(); ++j) {
          if (i == j) continue;
          dataset_->mutable_reference(author_refs[i])
              .AddAssociation(attrs_.p_coauthor, author_refs[j]);
        }
      }

      // Venue reference.
      const VenueSpec& venue = universe_.venues[article.venue_id];
      const RefId venue_ref = dataset_->NewReference(
          attrs_.venue, universe_.VenueGold(article.venue_id),
          Provenance::kBibtex);
      {
        Reference& ref = dataset_->mutable_reference(venue_ref);
        const VenueStyle style =
            SampleVenueStyle(config_.venue_sloppiness, rng_);
        ref.AddAtomicValue(attrs_.v_name, RenderVenue(venue, style,
                                                      config_.typo_rate,
                                                      rng_));
        ref.AddAtomicValue(attrs_.v_year, venue.year);
        if (rng_.NextBool(config_.p_venue_location)) {
          ref.AddAtomicValue(attrs_.v_location, venue.location);
        }
      }

      // Article reference.
      const RefId article_ref = dataset_->NewReference(
          attrs_.article, universe_.ArticleGold(article_id),
          Provenance::kBibtex);
      {
        Reference& ref = dataset_->mutable_reference(article_ref);
        ref.AddAtomicValue(
            attrs_.a_title,
            RenderTitle(article.title, config_.title_noise, rng_));
        if (rng_.NextBool(config_.p_bib_year)) {
          ref.AddAtomicValue(attrs_.a_year, article.year);
        }
        if (rng_.NextBool(config_.p_bib_pages)) {
          ref.AddAtomicValue(attrs_.a_pages, article.pages);
        }
        for (const RefId author : author_refs) {
          ref.AddAssociation(attrs_.a_authors, author);
        }
        ref.AddAssociation(attrs_.a_venue, venue_ref);
      }
    }
  }

  const PimConfig& config_;
  Universe universe_;
  Dataset* dataset_;
  PimAttrs attrs_;
  Random rng_;
  /// Habitual name styles per person entity.
  std::vector<NameStyle> email_style_;
  std::vector<NameStyle> bib_style_;
};

}  // namespace

PimConfig PimConfigA() {
  PimConfig config;
  config.name = "PIM A";
  config.seed = 1001;
  config.universe.num_persons = 2100;
  config.universe.num_mailing_lists = 6;
  config.universe.num_articles = 950;
  config.universe.num_venue_series = 14;
  config.universe.years_per_series = 3;
  config.universe.indian_fraction = 0.10;
  config.universe.chinese_fraction = 0.05;
  config.universe.p_multi_account = 0.35;
  config.universe.p_era_split = 0.001;
  config.num_messages = 6200;
  config.num_bibtex = 1650;
  // Dataset A: "the highest variety in the presentations of individual
  // person entities".
  config.style_variety = 0.95;
  config.typo_rate = 0.015;
  return config;
}

PimConfig PimConfigB() {
  PimConfig config;
  config.name = "PIM B";
  config.seed = 1002;
  config.universe.num_persons = 2350;
  config.universe.num_mailing_lists = 5;
  config.universe.num_articles = 1100;
  config.universe.num_venue_series = 16;
  config.universe.years_per_series = 3;
  config.universe.indian_fraction = 0.30;
  config.universe.chinese_fraction = 0.05;
  config.universe.p_multi_account = 0.20;
  config.num_messages = 9800;
  config.num_bibtex = 2050;
  config.style_variety = 0.35;
  config.typo_rate = 0.008;
  return config;
}

PimConfig PimConfigC() {
  PimConfig config;
  config.name = "PIM C";
  config.seed = 1003;
  config.universe.num_persons = 1900;
  config.universe.num_mailing_lists = 4;
  config.universe.num_articles = 800;
  config.universe.num_venue_series = 12;
  config.universe.years_per_series = 3;
  // The owner is Chinese; many contacts have short, overlapping romanized
  // names (the paper's explanation of C's lower precision).
  config.universe.chinese_fraction = 0.55;
  config.universe.indian_fraction = 0.05;
  config.universe.p_multi_account = 0.20;
  config.num_messages = 3650;
  config.num_bibtex = 1430;
  config.style_variety = 0.50;
  config.typo_rate = 0.010;
  return config;
}

PimConfig PimConfigD() {
  PimConfig config;
  config.name = "PIM D";
  config.seed = 1004;
  config.universe.num_persons = 1800;
  config.universe.num_mailing_lists = 4;
  config.universe.num_articles = 130;
  config.universe.num_venue_series = 10;
  config.universe.years_per_series = 2;
  config.universe.indian_fraction = 0.15;
  config.universe.chinese_fraction = 0.05;
  config.universe.p_multi_account = 0.20;
  // The owner changed her last name *and* her account on the same email
  // server when she got married (paper §5.3).
  config.universe.owner_changes_name_and_account = true;
  config.universe.p_era_split = 0.001;
  config.num_messages = 5300;
  config.num_bibtex = 170;
  // D is a mostly-email dataset with conservative naming habits: without
  // the owner's name change it would be the easiest of the four.
  config.style_variety = 0.30;
  config.typo_rate = 0.006;
  return config;
}

PimConfig ScaleConfig(PimConfig config, double factor) {
  RECON_CHECK_GT(factor, 0);
  auto scale = [factor](int value) {
    return std::max(1, static_cast<int>(value * factor));
  };
  config.universe.num_persons = scale(config.universe.num_persons);
  config.universe.num_articles = scale(config.universe.num_articles);
  config.universe.num_venue_series =
      std::max(2, static_cast<int>(config.universe.num_venue_series * factor));
  config.num_messages = scale(config.num_messages);
  config.num_bibtex = scale(config.num_bibtex);
  return config;
}

Dataset GeneratePim(const PimConfig& config) {
  return GeneratePim(config, nullptr);
}

Dataset GeneratePim(const PimConfig& config, Universe* universe_out) {
  Random rng(config.seed);
  Universe universe = BuildUniverse(config.universe, rng);
  Dataset dataset(BuildPimSchema());
  PimBuilder builder(config, std::move(universe), &dataset);
  builder.Generate();
  if (universe_out != nullptr) *universe_out = builder.TakeUniverse();
  return dataset;
}

}  // namespace recon::datagen
