// Rendering a generated PIM dataset back into raw desktop sources — an
// mbox of email messages and a .bib bibliography — so the *entire* paper
// pipeline can be exercised end to end:
//
//   generate -> render to text -> parse -> extract -> reconcile
//
// Gold entity labels travel through extension annotations (an "X-Gold"
// header mapping each mailbox to its entity id; "xgold*" BibTeX fields)
// that a vanilla extractor ignores but ExtractPimCorpus() consumes.

#ifndef RECON_DATAGEN_RENDER_H_
#define RECON_DATAGEN_RENDER_H_

#include <string>

#include "model/dataset.h"

namespace recon::datagen {

/// A raw-text desktop corpus.
struct RenderedCorpus {
  std::string mbox;    ///< Email messages, mbox-delimited.
  std::string bibtex;  ///< One .bib file.
};

/// Renders a dataset produced by GeneratePim() (or any dataset over the
/// PIM schema whose email-derived person references form per-message
/// emailContact cliques) into raw text with gold annotations.
RenderedCorpus RenderPimCorpus(const Dataset& dataset);

/// Parses and extracts a rendered corpus back into a labeled dataset.
Dataset ExtractPimCorpus(const RenderedCorpus& corpus);

}  // namespace recon::datagen

#endif  // RECON_DATAGEN_RENDER_H_
