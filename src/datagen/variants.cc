#include "datagen/variants.h"

#include "datagen/corpora.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace recon::datagen {

namespace {

std::string Initial(const std::string& name) {
  RECON_DCHECK(!name.empty());
  return name.substr(0, 1) + ".";
}

}  // namespace

std::string InjectTypo(const std::string& s, Random& rng) {
  if (s.size() < 3) return s;
  std::string out = s;
  const size_t pos = 1 + rng.NextBounded(out.size() - 2);
  switch (rng.NextBounded(3)) {
    case 0: {  // Substitution with a nearby letter.
      const char c = out[pos];
      if (c >= 'a' && c <= 'z') {
        out[pos] = static_cast<char>('a' + (c - 'a' + 1) % 26);
      } else if (c >= 'A' && c <= 'Z') {
        out[pos] = static_cast<char>('A' + (c - 'A' + 1) % 26);
      }
      break;
    }
    case 1:  // Deletion.
      out.erase(pos, 1);
      break;
    default:  // Transposition.
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string RenderName(const PersonSpec& person, int era, NameStyle style,
                       double typo_rate, Random& rng) {
  if (person.is_mailing_list) return person.list_display_name;
  const std::string& first = person.first;
  const std::string& last = person.LastIn(era);
  const std::string& middle = person.middle_initial;

  std::string name;
  switch (style) {
    case NameStyle::kFirstLast:
      name = first + " " + last;
      break;
    case NameStyle::kFirstMiddleLast:
      name = middle.empty() ? first + " " + last
                            : first + " " + middle + ". " + last;
      break;
    case NameStyle::kLastCommaFirst:
      name = last + ", " + first;
      break;
    case NameStyle::kLastCommaInitials:
      name = middle.empty()
                 ? last + ", " + Initial(first)
                 : last + ", " + first.substr(0, 1) + "." + middle + ".";
      break;
    case NameStyle::kInitialLast:
      name = Initial(first) + " " + last;
      break;
    case NameStyle::kInitialsLast:
      name = middle.empty()
                 ? Initial(first) + " " + last
                 : Initial(first) + " " + middle + ". " + last;
      break;
    case NameStyle::kFirstOnly:
      name = first;
      break;
    case NameStyle::kNickname:
      name = person.nickname.empty() ? ToLower(first)
                                     : ToLower(person.nickname);
      break;
  }
  if (rng.NextBool(typo_rate)) name = InjectTypo(name, rng);
  return name;
}

const std::string& PickEmail(const PersonSpec& person, int era, Random& rng) {
  const std::vector<std::string>& emails = person.EmailsIn(era);
  RECON_CHECK(!emails.empty());
  // The primary address dominates; secondary accounts appear occasionally.
  if (emails.size() > 1 && rng.NextBool(0.3)) {
    return emails[1 + rng.NextBounded(emails.size() - 1)];
  }
  return emails.front();
}

std::string RenderVenue(const VenueSpec& venue, VenueStyle style,
                        double typo_rate, Random& rng) {
  std::string name;
  switch (style) {
    case VenueStyle::kFull:
      name = venue.full_name;
      break;
    case VenueStyle::kAcronym:
      name = venue.acronym;
      break;
    case VenueStyle::kProceedingsFull:
      name = "Proceedings of the " + venue.full_name;
      break;
    case VenueStyle::kAcronymYear:
      name = venue.acronym + " '" + venue.year.substr(venue.year.size() - 2);
      break;
    case VenueStyle::kAcronymConference:
      name = venue.acronym + " Conference";
      break;
    case VenueStyle::kFullPublisher:
      name = venue.full_name + ", " + rng.Choice(PublisherPool());
      break;
    case VenueStyle::kTruncatedFull: {
      // Drop the trailing one or two words.
      name = venue.full_name;
      for (int drops = static_cast<int>(rng.NextInt(1, 2)); drops > 0;
           --drops) {
        const size_t space = name.rfind(' ');
        if (space == std::string::npos || space < 12) break;
        name = name.substr(0, space);
      }
      break;
    }
    case VenueStyle::kOrdinalFull: {
      const int ordinal = static_cast<int>(rng.NextInt(3, 25));
      const char* suffix = "th";
      if (ordinal % 10 == 1 && ordinal != 11) suffix = "st";
      if (ordinal % 10 == 2 && ordinal != 12) suffix = "nd";
      if (ordinal % 10 == 3 && ordinal != 13) suffix = "rd";
      name = std::to_string(ordinal) + suffix + " " + venue.full_name;
      break;
    }
  }
  if (rng.NextBool(typo_rate)) name = InjectTypo(name, rng);
  return name;
}

VenueStyle SampleVenueStyle(double sloppiness, Random& rng) {
  const double x = rng.NextDouble();
  // Clean forms shrink as sloppiness grows; noisy forms expand.
  if (x < 0.30 - 0.18 * sloppiness) return VenueStyle::kFull;
  if (x < 0.55 - 0.30 * sloppiness) return VenueStyle::kAcronym;
  if (x < 0.65 - 0.30 * sloppiness) return VenueStyle::kProceedingsFull;
  if (x < 0.72 - 0.25 * sloppiness) return VenueStyle::kAcronymYear;
  if (x < 0.78 - 0.20 * sloppiness) return VenueStyle::kAcronymConference;
  const double y = rng.NextDouble();
  if (y < 0.45) return VenueStyle::kFullPublisher;
  if (y < 0.75) return VenueStyle::kTruncatedFull;
  return VenueStyle::kOrdinalFull;
}

std::string RenderTitle(const std::string& title, double noise, Random& rng) {
  if (!rng.NextBool(noise)) return title;
  switch (rng.NextBounded(3)) {
    case 0:
      return InjectTypo(title, rng);
    case 1: {  // Drop the trailing word.
      const size_t space = title.rfind(' ');
      if (space != std::string::npos && space > 8) {
        return title.substr(0, space);
      }
      return title;
    }
    default:
      return ToLower(title);
  }
}

NameStyle SampleEmailNameStyle(double variety, Random& rng) {
  // Low variety: almost always "First Last". High variety: nicknames,
  // bare first names, comma forms.
  const double x = rng.NextDouble();
  if (x < 0.55 - 0.25 * variety) return NameStyle::kFirstLast;
  if (x < 0.75 - 0.2 * variety) return NameStyle::kLastCommaFirst;
  if (x < 0.85) return NameStyle::kFirstOnly;
  if (x < 0.95) return NameStyle::kNickname;
  return NameStyle::kFirstMiddleLast;
}

NameStyle SampleBibNameStyle(double variety, Random& rng) {
  const double x = rng.NextDouble();
  if (x < 0.40 - 0.2 * variety) return NameStyle::kFirstMiddleLast;
  if (x < 0.55 - 0.1 * variety) return NameStyle::kFirstLast;
  if (x < 0.80) return NameStyle::kLastCommaInitials;
  if (x < 0.92) return NameStyle::kInitialsLast;
  return NameStyle::kInitialLast;
}

}  // namespace recon::datagen
