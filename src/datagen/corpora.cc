#include "datagen/corpora.h"

namespace recon::datagen {

const std::vector<FirstNameSeed>& WesternFirstNames() {
  // Nicknames agree with strsim::CanonicalGivenName so that generated
  // variants are resolvable by the comparators.
  static const auto* names = new std::vector<FirstNameSeed>{
      {"Michael", "Mike"},   {"Robert", "Bob"},     {"William", "Bill"},
      {"Richard", "Rick"},   {"James", "Jim"},      {"Thomas", "Tom"},
      {"David", "Dave"},     {"Daniel", "Dan"},     {"Joseph", "Joe"},
      {"Christopher", "Chris"}, {"Katherine", "Kate"}, {"Elizabeth", "Liz"},
      {"Susan", "Sue"},      {"Andrew", "Andy"},    {"Anthony", "Tony"},
      {"Steven", "Steve"},   {"Edward", "Ed"},      {"Theodore", "Ted"},
      {"Frederick", "Fred"}, {"Samuel", "Sam"},     {"Alexander", "Alex"},
      {"Benjamin", "Ben"},   {"Matthew", "Matt"},   {"Nicholas", "Nick"},
      {"Peter", "Pete"},     {"Ronald", "Ron"},     {"Kenneth", "Ken"},
      {"Gregory", "Greg"},   {"Jeffrey", "Jeff"},   {"Jennifer", "Jen"},
      {"Margaret", "Peggy"}, {"Eugene", "Gene"},    {"Lawrence", "Larry"},
      {"Harold", "Harry"},   {"John", "Jack"},      {"Donald", "Don"},
      {"Raymond", "Ray"},    {"Victoria", "Vicky"}, {"Patricia", "Trish"},
      {"Alice", ""},         {"Brian", ""},         {"Carol", ""},
      {"Diane", ""},         {"Eric", ""},          {"Frank", ""},
      {"George", ""},        {"Helen", ""},         {"Irene", ""},
      {"Karen", ""},         {"Laura", ""},         {"Mary", ""},
      {"Nancy", ""},         {"Oscar", ""},         {"Paul", ""},
      {"Rachel", ""},        {"Sandra", ""},        {"Walter", ""},
      {"Martin", ""},        {"Philip", ""},        {"Simon", ""},
      {"Julia", ""},         {"Albert", ""},        {"Gordon", ""},
      {"Howard", ""},        {"Norman", ""},        {"Stanley", ""},
      {"Marvin", ""},        {"Leonard", ""},       {"Vincent", ""},
      {"Arthur", ""},        {"Gerald", ""},        {"Roger", ""},
      {"Russell", ""},       {"Wayne", ""},         {"Louise", ""},
      {"Monica", ""},        {"Sharon", ""},        {"Joan", ""},
      {"Emily", ""},         {"Hannah", ""},        {"Olivia", ""},
      {"Sophia", ""},        {"Grace", ""},         {"Claire", ""},
  };
  return *names;
}

const std::vector<std::string>& WesternLastNames() {
  static const auto* names = new std::vector<std::string>{
      "Smith",      "Johnson",   "Brown",      "Taylor",    "Anderson",
      "Wilson",     "Mercado",   "Thompson",   "Garcia",    "Martinez",
      "Robinson",   "Clark",     "Rodriguez",  "Lewis",     "Walker",
      "Hall",       "Allen",     "Young",      "Hernandez", "King",
      "Wright",     "Lopez",     "Hill",       "Scott",     "Green",
      "Adams",      "Baker",     "Gonzalez",   "Nelson",    "Carter",
      "Mitchell",   "Perez",     "Roberts",    "Turner",    "Phillips",
      "Campbell",   "Parker",    "Evans",      "Edwards",   "Collins",
      "Stewart",    "Morris",    "Rogers",     "Reed",      "Cook",
      "Morgan",     "Bell",      "Murphy",     "Bailey",    "Rivera",
      "Cooper",     "Richardson","Cox",        "Abernathy",    "Ward",
      "Peterson",   "Gray",      "Ramirez",    "Watson",    "Brooks",
      "Kelly",      "Sanders",   "Price",      "Bennett",   "Wood",
      "Barnes",     "Ross",      "Henderson",  "Coleman",   "Jenkins",
      "Perry",      "Powell",    "Long",       "Patterson", "Hughes",
      "Flores",     "Washington","Butler",     "Simmons",   "Foster",
      "Stonebraker","Epstein",   "Halevy",     "Widom",     "Ullman",
      "Gehrke",     "Hellerstein","DeWitt",    "Bernstein", "Abiteboul",
      "Ioannidis",  "Franklin",  "Carey",      "Naughton",  "Stoica",
      "Zaharia",    "Dean",      "Ghemawat",   "Lamport",   "Liskov",
      "Abbott", "Ackerman", "Aldrich", "Alvarez", "Archer",
      "Armstrong", "Atkinson", "Bancroft", "Barker", "Barlow",
      "Barrett", "Bauer", "Beasley", "Becker", "Beckman",
      "Bentley", "Berger", "Bishop", "Blackburn", "Blair",
      "Blake", "Bowman", "Boyd", "Bradford", "Bradley",
      "Brennan", "Bridges", "Briggs", "Brock", "Bryant",
      "Buchanan", "Burgess", "Burke", "Burnett", "Byrne",
      "Caldwell", "Calhoun", "Cameron", "Cannon", "Cardenas",
      "Carlson", "Carmichael", "Carpenter", "Carrillo", "Carson",
      "Castillo", "Chambers", "Chandler", "Chapman", "Christensen",
      "Clarke", "Clayton", "Clements", "Cochran", "Coffey",
      "Colby", "Compton", "Conley", "Connolly", "Conrad",
      "Conway", "Copeland", "Cortez", "Costello", "Crawford",
      "Crosby", "Cunningham", "Curran", "Curtis", "Dalton",
      "Daniels", "Davenport", "Dawson", "Delaney", "Delgado",
      "Dickson", "Dillon", "Dixon", "Donaldson", "Donovan",
      "Dougherty", "Douglas", "Doyle", "Drake", "Dudley",
      "Duffy", "Duncan", "Dunlap", "Durham", "Eaton",
      "Elliott", "Ellison", "Emerson", "Erickson", "Espinoza",
      "Everett", "Farley", "Farrell", "Ferguson", "Fernandez",
      "Fischer", "Fitzgerald", "Fleming", "Fletcher", "Flynn",
      "Forbes", "Fowler", "Francis", "Fraser", "Freeman",
      "Frost", "Fuller", "Gallagher", "Galloway", "Gardner",
      "Garrett", "Garrison", "Gibbs", "Gibson", "Gilbert",
      "Gilmore", "Glover", "Goodman", "Goodwin", "Graham",
      "Grant", "Graves", "Griffin", "Griffith", "Grimes",
      "Gross", "Guthrie", "Hahn", "Hale", "Haley",
      "Hamilton", "Hammond", "Hampton", "Hancock", "Hanson",
      "Hardin", "Harmon", "Harper", "Harrington", "Hartman",
      "Harvey", "Hayden", "Haynes", "Heath", "Hebert",
      "Hendricks", "Hendrix", "Henson", "Herring", "Hickman",
      "Higgins", "Hinton", "Hobbs", "Hodges", "Hoffman",
      "Hogan", "Holcomb", "Holden", "Holland", "Holloway",
      "Holmes", "Hooper", "Hopkins", "Horton", "Houston",
      "Hubbard", "Huber", "Huffman", "Humphrey", "Hutchinson",
      "Ingram", "Irwin", "Jacobs", "Jarvis", "Jennings",
      "Jensen", "Jimenez", "Joyner", "Keller", "Kendall",
      "Kennedy", "Kerr", "Kirby", "Kirkland", "Klein",
      "Kline", "Knapp", "Knight", "Knox", "Kramer",
      "Lambert", "Lancaster", "Landry", "Langley", "Larsen",
      "Latham", "Lawson", "Leach", "Leblanc", "Lindgren",
      "Levine", "Lindsey", "Livingston", "Lockhart", "Logan",
      "Lowery", "Lucas", "Lynch", "Macdonald", "Macias",
      "Mackenzie", "Madden", "Maldonado", "Malone", "Manning",
      "Marsh", "Marshall", "Mathews", "Maxwell", "Maynard",
      "Mcbride", "Mccall", "Mccarthy", "Mcclain", "Mcconnell",
      "Mcdaniel", "Mcdowell", "Mcfadden", "Mcgee", "Mcguire",
      "Mcintyre", "Mckay", "Mckee", "Mcknight", "Mclaughlin",
      "Mcleod", "Mcneil", "Meadows", "Melton", "Mercer",
      "Merritt", "Meyer", "Middleton", "Molina", "Monroe",
      "Montgomery", "Moody", "Mooney", "Morrow", "Morton",
      "Moses", "Mosley", "Mueller", "Mullins", "Munoz",
      "Murdock", "Murray", "Myers", "Nash", "Navarro",
      "Newman", "Newton", "Nichols", "Nielsen", "Nixon",
      "Noble", "Nolan", "Norris", "Norton", "Nunez",
      "Obrien", "Oconnor", "Odonnell", "Oliver", "Olsen",
      "Oneal", "Orr", "Osborne", "Owens", "Pacheco",
      "Palmer", "Parrish", "Paterson", "Patton", "Paxton",
      "Pearson", "Pennington", "Peralta", "Perkins", "Petersen",
      "Pham", "Pierce", "Pittman", "Pollard", "Poole",
      "Porter", "Potter", "Pratt", "Prescott", "Preston",
      "Pruitt", "Quinn", "Ramsey", "Randall", "Rasmussen",
      "Radcliffe", "Reeves", "Reilly", "Reyes", "Reynolds",
      "Rhodes", "Richmond", "Riddle", "Riggs", "Riley",
      "Ritter", "Roach", "Robbins", "Rocha", "Rollins",
      "Romero", "Rosales", "Rosario", "Rowe", "Rowland",
      "Rubio", "Rutledge", "Salazar", "Salinas", "Sampson",
      "Sanchez", "Sandoval", "Santiago", "Santos", "Sargent",
      "Saunders", "Savage", "Sawyer", "Schaefer", "Schmidt",
      "Schneider", "Schroeder", "Schultz", "Schwartz", "Sellers",
      "Sexton", "Shaffer", "Shannon", "Sharpe", "Shelton",
      "Shepard", "Sheppard", "Sherman", "Shields", "Short",
      "Sinclair", "Singleton", "Skinner", "Sloan", "Snider",
      "Snyder", "Solomon", "Sparks", "Spears", "Spencer",
      "Stafford", "Stratton", "Stanton", "Stark", "Steele",
      "Stephens", "Stevenson", "Stokes", "Stout", "Strickland",
      "Strong", "Stuart", "Suarez", "Sullivan", "Summers",
      "Sutton", "Sweeney", "Talley", "Tanner", "Tate",
      "Terrell", "Thornton", "Tillman", "Todd", "Townsend",
      "Tran", "Travis", "Trevino", "Tucker", "Tyler",
      "Underwood", "Valencia", "Valentine", "Vance", "Vargas",
      "Vaughn", "Vazquez", "Velasquez", "Vandenberg", "Vinson",
      "Wade", "Wagner", "Walden", "Wallace", "Walsh",
      "Walton", "Warner", "Warren", "Waters", "Watkins",
      "Weaver", "Webb", "Weber", "Webster", "Welch",
      "Wells", "West", "Wheeler", "Whitaker", "Whitfield",
      "Whitley", "Whitney", "Wiggins", "Wilcox", "Wilder",
      "Wiley", "Wilkins", "Wilkinson", "Williamson", "Willis",
      "Winters", "Wise", "Witt", "Wolfe", "Woodard",
      "Woodward", "Wooten", "Workman", "Wyatt", "Yates",
      "York", "Zamora", "Zimmerman", "Zuniga", "Sheridan",
  };
  return *names;
}

const std::vector<std::string>& IndianFirstNames() {
  static const auto* names = new std::vector<std::string>{
      "Anil",    "Arun",    "Ashok",  "Deepak",  "Ganesh",  "Gopal",
      "Harish",  "Jayant",  "Kiran",  "Manish",  "Mohan",   "Naveen",
      "Prakash", "Rajesh",  "Rakesh", "Ramesh",  "Sanjay",  "Suresh",
      "Vijay",   "Vinod",   "Amit",   "Ankur",   "Gaurav",  "Nikhil",
      "Pranav",  "Rahul",   "Rohit",  "Sachin",  "Tarun",   "Varun",
      "Anita",   "Asha",    "Divya",  "Kavita",  "Lakshmi", "Meena",
      "Neha",    "Pooja",   "Priya",  "Radha",   "Rekha",   "Shweta",
      "Sunita",  "Usha",    "Anjali", "Swati",
  };
  return *names;
}

const std::vector<std::string>& IndianLastNames() {
  static const auto* names = new std::vector<std::string>{
      "Agarwal",  "Banerjee", "Bhatt",    "Chopra",   "Desai",
      "Gupta",    "Iyer",     "Jain",     "Joshi",    "Kapoor",
      "Kulkarni", "Kumar",    "Madhavan", "Mehta",    "Menon",
      "Mishra",   "Nair",     "Patel",    "Rao",      "Reddy",
      "Saxena",   "Sharma",   "Singh",    "Sinha",    "Srivastava",
      "Verma",    "Chaudhuri","Ramakrishnan", "Krishnamurthy", "Venkatesh",
      "Acharya", "Bose", "Chandra", "Chatterjee", "Dutta",
      "Ghosh", "Gokhale", "Hegde", "Kamath", "Khanna",
      "Malhotra", "Mathur", "Mukherjee", "Narayanan", "Pandey",
      "Pillai", "Raghavan", "Rajan", "Sen", "Shah",
      "Subramanian", "Tripathi", "Vaidya", "Varma", "Yadav",
      "Bhattacharya", "Deshpande", "Ganguly", "Kaul", "Mahajan",
  };
  return *names;
}

const std::vector<std::string>& ChineseFirstNames() {
  static const auto* names = new std::vector<std::string>{
      "Wei",  "Fang", "Min",  "Jun",  "Hong", "Lei",  "Yan",  "Jing",
      "Li",   "Na",   "Xin",  "Yu",   "Mei",  "Ling", "Bo",   "Chen",
      "Hao",  "Ying", "Qing", "Feng", "Gang", "Hui",  "Jie",  "Juan",
      "Kai",  "Lan",  "Ming", "Ning", "Ping", "Qiang","Rui",  "Tao",
      "Xia",  "Yang", "Yong", "Zhen",
  };
  return *names;
}

const std::vector<std::string>& ChineseLastNames() {
  static const auto* names = new std::vector<std::string>{
      "Li",   "Wang", "Zhang", "Chen", "Liu", "Yang", "Huang", "Zhao",
      "Wu",   "Zhou", "Xu",    "Sun",  "Ma",  "Zhu",  "Hu",    "Guo",
      "He",   "Lin",  "Gao",   "Luo",  "Zheng", "Liang", "Xie", "Tang",
  };
  return *names;
}

const std::vector<std::string>& TitleTopicWords() {
  static const auto* words = new std::vector<std::string>{
      "query",        "optimization", "distributed",  "relational",
      "database",     "transaction",  "concurrency",  "recovery",
      "indexing",     "caching",      "replication",  "consistency",
      "streaming",    "adaptive",     "parallel",     "scalable",
      "incremental",  "approximate",  "probabilistic","declarative",
      "semantic",     "schema",       "integration",  "warehousing",
      "mining",       "clustering",   "classification","learning",
      "reconciliation","deduplication","linkage",     "matching",
      "extraction",   "retrieval",    "ranking",      "sampling",
      "compression",  "partitioning", "sharding",     "logging",
      "buffering",    "prefetching",  "materialized", "views",
      "joins",        "aggregation",  "histograms",   "cardinality",
      "estimation",   "workload",     "tuning",       "benchmark",
      "storage",      "memory",       "disk",         "network",
      "protocol",     "consensus",    "gossip",       "epidemic",
      "locality",     "elasticity",   "federation",   "provenance",
      "lineage",      "versioning",   "snapshot",     "isolation",
      "serializable", "latch",        "lock",         "wait",
  };
  return *words;
}

const std::vector<std::string>& TitleConnectors() {
  static const auto* words = new std::vector<std::string>{
      "for", "in", "over", "with", "under", "towards", "beyond", "using",
  };
  return *words;
}

const std::vector<VenueSeed>& VenueSeeds() {
  static const auto* venues = new std::vector<VenueSeed>{
      {"ACM Conference on Management of Data", "SIGMOD"},
      {"International Conference on Very Large Data Bases", "VLDB"},
      {"Symposium on Principles of Database Systems", "PODS"},
      {"International Conference on Data Engineering", "ICDE"},
      {"Conference on Knowledge Discovery and Data Mining", "KDD"},
      {"Conference on Information and Knowledge Management", "CIKM"},
      {"International Conference on Machine Learning", "ICML"},
      {"Conference on Neural Information Processing Systems", "NIPS"},
      {"National Conference on Artificial Intelligence", "AAAI"},
      {"Symposium on Operating Systems Principles", "SOSP"},
      {"Symposium on Operating Systems Design and Implementation", "OSDI"},
      {"International World Wide Web Conference", "WWW"},
      {"Conference on Research and Development in Information Retrieval",
       "SIGIR"},
      {"Symposium on Theory of Computing", "STOC"},
      {"Symposium on Foundations of Computer Science", "FOCS"},
      {"Symposium on Discrete Algorithms", "SODA"},
      {"Conference on Innovative Data Systems Research", "CIDR"},
      {"International Conference on Extending Database Technology", "EDBT"},
      {"International Conference on Database Systems for Advanced "
       "Applications",
       "DASFAA"},
      {"Transactions on Database Systems", "TODS"},
      {"Transactions on Knowledge and Data Engineering", "TKDE"},
      {"Conference on Programming Language Design and Implementation",
       "PLDI"},
      {"Symposium on Principles of Programming Languages", "POPL"},
      {"International Joint Conference on Artificial Intelligence", "IJCAI"},
      {"International Conference on Database Theory", "ICDT"},
      {"Conference on Scientific and Statistical Database Management", "SSDBM"},
      {"International Conference on Conceptual Modeling", "ER"},
      {"Conference on Object-Oriented Programming Systems and Languages", "OOPSLA"},
      {"European Conference on Object-Oriented Programming", "ECOOP"},
      {"International Conference on Software Engineering", "ICSE"},
      {"Symposium on the Foundations of Software Engineering", "FSE"},
      {"Conference on Automated Software Engineering", "ASE"},
      {"Symposium on Software Testing and Analysis", "ISSTA"},
      {"Conference on Computer Aided Verification", "CAV"},
      {"Symposium on Logic in Computer Science", "LICS"},
      {"Conference on Automated Deduction", "CADE"},
      {"International Conference on Logic Programming", "ICLP"},
      {"European Conference on Artificial Intelligence", "ECAI"},
      {"European Conference on Machine Learning", "ECML"},
      {"Conference on Computational Learning Theory", "COLT"},
      {"Conference on Uncertainty in Artificial Intelligence", "UAI"},
      {"International Conference on Data Mining", "ICDM"},
      {"SIAM Conference on Data Mining", "SDM"},
      {"Conference on Web Search and Data Mining", "WSDM"},
      {"Symposium on High Performance Computer Architecture", "HPCA"},
      {"International Symposium on Computer Architecture", "ISCA"},
      {"Symposium on Microarchitecture", "MICRO"},
      {"Conference on Architectural Support for Programming Languages and Operating Systems", "ASPLOS"},
      {"Symposium on Principles and Practice of Parallel Programming", "PPOPP"},
      {"Symposium on Parallelism in Algorithms and Architectures", "SPAA"},
      {"Symposium on Principles of Distributed Computing", "PODC"},
      {"Symposium on Distributed Computing", "DISC"},
      {"Conference on Computer Communications", "INFOCOM"},
      {"Conference on Network Protocols", "ICNP"},
      {"Symposium on Networked Systems Design and Implementation", "NSDI"},
      {"Internet Measurement Conference", "IMC"},
      {"Conference on Mobile Computing and Networking", "MOBICOM"},
      {"Conference on Embedded Networked Sensor Systems", "SENSYS"},
      {"European Conference on Computer Systems", "EUROSYS"},
      {"USENIX Annual Technical Conference", "ATC"},
      {"Conference on File and Storage Technologies", "FAST"},
      {"Symposium on Security and Privacy", "OAKLAND"},
      {"USENIX Security Symposium", "USESEC"},
      {"Conference on Computer and Communications Security", "CCS"},
      {"Network and Distributed System Security Symposium", "NDSS"},
      {"Conference on Human Factors in Computing Systems", "CHI"},
      {"Symposium on User Interface Software and Technology", "UIST"},
      {"Conference on Computer Supported Cooperative Work", "CSCW"},
      {"Conference on Empirical Methods in Natural Language Processing", "EMNLP"},
      {"Annual Meeting of the Association for Computational Linguistics", "ACL"},
      {"Conference on Computational Natural Language Learning", "CONLL"},
      {"International Conference on Computational Linguistics", "COLING"},
      {"Conference on Computer Vision and Pattern Recognition", "CVPR"},
      {"International Conference on Computer Vision", "ICCV"},
      {"European Conference on Computer Vision", "ECCV"},
      {"Conference on Genetic and Evolutionary Computation", "GECCO"},
      {"Congress on Evolutionary Computation", "CEC"},
      {"International Conference on Parallel Processing", "ICPP"},
      {"International Parallel and Distributed Processing Symposium", "IPDPS"},
      {"Conference on Supercomputing", "SC"},
      {"Symposium on Computational Geometry", "SOCG"},
      {"International Colloquium on Automata Languages and Programming", "ICALP"},
      {"Symposium on Theoretical Aspects of Computer Science", "STACS"},
      {"European Symposium on Algorithms", "ESA"},
      {"Conference on Integer Programming and Combinatorial Optimization", "IPCO"},
      {"International Conference on Robotics and Automation", "ICRA"},
      {"Conference on Intelligent Robots and Systems", "IROS"},
      {"Pacific Symposium on Biocomputing", "PSB"},
  };
  return *venues;
}

const std::vector<std::string>& PublisherPool() {
  static const auto* publishers = new std::vector<std::string>{
      "MIT Press",      "Morgan Kaufmann",       "ACM Press",
      "Springer Verlag","IEEE Computer Society", "Elsevier Science",
      "Cambridge University Press",
  };
  return *publishers;
}

const std::vector<std::string>& LocationPool() {
  static const auto* locations = new std::vector<std::string>{
      "Austin, Texas",      "San Francisco, California",
      "Seattle, Washington","Boston, Massachusetts",
      "San Diego, California", "Chicago, Illinois",
      "Baltimore, Maryland","Portland, Oregon",
      "Madison, Wisconsin", "Atlanta, Georgia",
      "Paris, France",      "Cairo, Egypt",
      "Rome, Italy",        "Edinburgh, Scotland",
      "Toronto, Canada",    "Vancouver, Canada",
      "Hong Kong, China",   "Beijing, China",
      "Tokyo, Japan",       "Sydney, Australia",
      "Berlin, Germany",    "Vienna, Austria",
      "Santiago, Chile",    "Mumbai, India",
  };
  return *locations;
}

const std::vector<std::string>& EmailServerPool() {
  static const auto* servers = new std::vector<std::string>{
      "cs.washington.edu", "csail.mit.edu",  "cs.berkeley.edu",
      "cs.wisc.edu",       "cs.stanford.edu","cs.cmu.edu",
      "research.microsoft.com", "almaden.ibm.com", "bell-labs.com",
      "gmail.com",         "yahoo.com",      "hotmail.com",
      "cs.cornell.edu",    "cs.umd.edu",     "cse.iitb.ac.in",
      "tsinghua.edu.cn",   "fudan.edu.cn",   "cs.toronto.edu",
  };
  return *servers;
}

const std::vector<std::string>& MailingListNames() {
  static const auto* lists = new std::vector<std::string>{
      "dbgroup",   "seminar-announce", "faculty-all", "grads",
      "sysreading","theory-lunch",     "colloquium",  "students",
  };
  return *lists;
}

}  // namespace recon::datagen
