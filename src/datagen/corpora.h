// Word pools for synthetic dataset generation: person names (US / Indian /
// romanized-Chinese, per the paper's note that its dataset owners span
// countries with very different name characteristics), CS title vocabulary,
// venues with acronyms, locations, and email servers.

#ifndef RECON_DATAGEN_CORPORA_H_
#define RECON_DATAGEN_CORPORA_H_

#include <string>
#include <vector>

namespace recon::datagen {

/// A first name and its common short form ("" when none).
struct FirstNameSeed {
  std::string name;
  std::string nickname;
};

/// A venue with its long form and acronym.
struct VenueSeed {
  std::string full_name;
  std::string acronym;
};

const std::vector<FirstNameSeed>& WesternFirstNames();
const std::vector<std::string>& WesternLastNames();
const std::vector<std::string>& IndianFirstNames();
const std::vector<std::string>& IndianLastNames();
/// Romanized Chinese pools: short, heavily overlapping (dataset C).
const std::vector<std::string>& ChineseFirstNames();
const std::vector<std::string>& ChineseLastNames();

/// Content words for article titles (CS research vocabulary).
const std::vector<std::string>& TitleTopicWords();
/// Connective patterns like "for", "in", "over".
const std::vector<std::string>& TitleConnectors();

const std::vector<VenueSeed>& VenueSeeds();
/// Publisher strings appended to sloppy venue mentions.
const std::vector<std::string>& PublisherPool();
const std::vector<std::string>& LocationPool();
const std::vector<std::string>& EmailServerPool();
/// Mailing-list style account names ("dbgroup", "seminar-announce", ...).
const std::vector<std::string>& MailingListNames();

}  // namespace recon::datagen

#endif  // RECON_DATAGEN_CORPORA_H_
