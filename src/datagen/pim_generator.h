// Synthetic personal-information-space generator.
//
// Stands in for the paper's four private PIM datasets (§5.1): simulated
// email messages and BibTeX entries are "extracted" into Person / Article /
// Venue references with the association structure of Figure 1, with ground
// truth for free. Per-dataset scenario knobs reproduce the phenomena the
// paper reports: name-presentation variety (A), romanized-Chinese name
// overlap (C), the owner's simultaneous last-name and email-account change
// (D), mailing lists, and multi-account persons.

#ifndef RECON_DATAGEN_PIM_GENERATOR_H_
#define RECON_DATAGEN_PIM_GENERATOR_H_

#include <cstdint>
#include <string>

#include "datagen/entities.h"
#include "model/dataset.h"

namespace recon::datagen {

/// Configuration of one synthetic personal dataset.
struct PimConfig {
  uint64_t seed = 1;
  std::string name = "PIM";

  UniverseConfig universe;

  /// Simulated email messages; each yields 2-5 Person references with
  /// emailContact associations.
  int num_messages = 2000;
  /// Simulated BibTeX entries; each yields an Article reference, Person
  /// references for its authors (with coAuthor associations), and a Venue
  /// reference.
  int num_bibtex = 400;

  /// Zipf exponent for who participates in messages (person 0 = owner's
  /// most frequent correspondents first).
  double participant_zipf = 0.75;
  /// Social communities: recipients are drawn from the sender's community
  /// with this probability (else globally). Communities keep unrelated
  /// same-surname people from sharing contacts — without them every pair
  /// of strangers meets at the same handful of hubs.
  double p_recipient_in_community = 0.85;
  /// Average community size (#persons / this = #communities).
  int community_size = 45;
  /// Probability that a mailing list is among a message's recipients.
  double p_mailing_list_recipient = 0.04;

  /// Email extraction: probability a participant reference carries a name
  /// (the address is always present for senders; recipients may be
  /// address-only).
  double p_sender_name = 0.92;
  double p_recipient_name = 0.75;
  /// Recipients extracted from message bodies and quoted threads sometimes
  /// carry a display name but no address.
  double p_recipient_email = 0.88;

  /// BibTeX extraction noise.
  double title_noise = 0.04;
  double p_bib_year = 0.85;
  double p_bib_pages = 0.75;
  double p_venue_location = 0.35;
  /// Venue-string sloppiness in [0, 1]: curated BibTeX is fairly clean but
  /// still mixes acronyms, full names, and the occasional publisher tail.
  double venue_sloppiness = 0.4;

  /// Name-presentation diversity in [0, 1] (dataset A is high).
  double style_variety = 0.5;
  /// Probability a reference renders a person in their habitual style
  /// (people's address books and BibTeX files are fairly consistent).
  double p_habitual_style = 0.60;
  double typo_rate = 0.01;

  /// Zipf exponent for which articles get cited by bibtex entries
  /// (some papers recur across files).
  double citation_zipf = 0.6;
};

/// The paper's four datasets, calibrated to the shape of Table 1.
PimConfig PimConfigA();
PimConfig PimConfigB();
PimConfig PimConfigC();
PimConfig PimConfigD();

/// Returns `config` with every population count scaled by `factor`:
/// `factor` < 1 shrinks it for tests, `factor` > 1 grows it past the
/// paper's corpus (bench/perf_shard reaches 1M+ references this way).
PimConfig ScaleConfig(PimConfig config, double factor);

/// Generates the dataset (references + gold labels + provenance).
Dataset GeneratePim(const PimConfig& config);

/// Generates the dataset and also exposes the ground-truth universe.
Dataset GeneratePim(const PimConfig& config, Universe* universe_out);

}  // namespace recon::datagen

#endif  // RECON_DATAGEN_PIM_GENERATOR_H_
