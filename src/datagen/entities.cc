#include "datagen/entities.h"

#include <algorithm>
#include <set>

#include "datagen/corpora.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace recon::datagen {

namespace {

std::string MakeAccount(const PersonSpec& person, int flavor, Random& rng) {
  const std::string first = ToLower(person.first);
  const std::string last = ToLower(person.last);
  switch (flavor) {
    case 0:
      return last;
    case 1:
      return first + "." + last;
    case 2:
      return first.substr(0, 1) + last;
    case 3:
      return last + first.substr(0, 1);
    case 4:
      return person.nickname.empty() ? first : ToLower(person.nickname);
    case 5:
      return first;
    default:
      return last + std::to_string(rng.NextInt(1, 99));
  }
}

void AssignEmails(PersonSpec& person, const UniverseConfig& config,
                  std::set<std::string>& used_emails, Random& rng) {
  const auto& servers = EmailServerPool();
  // Servers enforce account uniqueness (that fact is the paper's
  // constraint 3); resolve collisions by appending digits, as servers do.
  auto claim = [&](int flavor, const std::string& server) -> std::string {
    std::string account = MakeAccount(person, flavor, rng);
    std::string email = account + "@" + server;
    while (!used_emails.insert(email).second) {
      email = account + std::to_string(rng.NextInt(1, 99)) + "@" + server;
    }
    return email;
  };

  const std::string& home_server = rng.Choice(servers);
  person.emails.push_back(claim(static_cast<int>(rng.NextInt(0, 4)),
                                home_server));
  if (rng.NextBool(config.p_multi_account)) {
    // A second account, usually on a different server (an old institution
    // or a webmail provider).
    person.emails.push_back(claim(static_cast<int>(rng.NextInt(0, 6)),
                                  rng.Choice(servers)));
  }
  if (rng.NextBool(config.p_third_account)) {
    person.emails.push_back(claim(6, rng.Choice(servers)));
  }
}

PersonSpec MakePerson(const UniverseConfig& config,
                      std::set<std::string>& used_names,
                      std::set<std::string>& used_emails, Random& rng) {
  PersonSpec person;
  // Real populations rarely collide on (first, last); retry a bounded
  // number of times for a fresh combination. Small pools under pressure —
  // notably the short romanized-Chinese pool — exhaust the retries and
  // produce genuinely ambiguous same-name persons, which is exactly the
  // paper's dataset-C phenomenon.
  for (int attempt = 0; attempt < 40; ++attempt) {
    person.nickname.clear();
    const double ethnicity = rng.NextDouble();
    if (ethnicity < config.chinese_fraction) {
      // Romanized Chinese given names are often two syllables ("Weiming");
      // single-syllable names collide outright, two-syllable ones collide
      // approximately ("Weiming" vs "Weimin") — both fuel the paper's
      // dataset-C difficulty.
      person.first = rng.Choice(ChineseFirstNames());
      if (rng.NextBool(0.7)) {
        const std::string& second = rng.Choice(ChineseFirstNames());
        person.first += ToLower(second);
      }
      person.last = rng.Choice(ChineseLastNames());
    } else if (ethnicity < config.chinese_fraction + config.indian_fraction) {
      person.first = rng.Choice(IndianFirstNames());
      person.last = rng.Choice(IndianLastNames());
    } else {
      const FirstNameSeed& seed = rng.Choice(WesternFirstNames());
      person.first = seed.name;
      person.nickname = seed.nickname;
      person.last = rng.Choice(WesternLastNames());
    }
    if (used_names.insert(person.first + " " + person.last).second) break;
  }
  if (rng.NextBool(config.p_middle_initial)) {
    person.middle_initial = std::string(1, static_cast<char>('A' + rng.NextBounded(26)));
  }
  AssignEmails(person, config, used_emails, rng);
  return person;
}

void MaybeSplitEra(PersonSpec& person, bool force_account_change,
                   Random& rng) {
  person.has_second_era = true;
  // New last name from the same broad pool.
  std::string new_last = rng.Choice(WesternLastNames());
  while (new_last == person.last) new_last = rng.Choice(WesternLastNames());
  person.second_last = new_last;
  if (force_account_change) {
    // Same server, new account: the unique-account-per-server constraint
    // will mark the two eras distinct (dataset D's owner).
    const std::string& old_email = person.emails[0];
    const size_t at = old_email.find('@');
    RECON_CHECK_NE(at, std::string::npos);
    const std::string server = old_email.substr(at + 1);
    PersonSpec renamed = person;
    renamed.last = new_last;
    std::string account = MakeAccount(renamed, 2, rng);
    person.second_emails.push_back(account + "@" + server);
  } else {
    // Keeps the old addresses: email continuity lets the reconciler bridge
    // the name change (the paper's two other owners).
    person.second_emails = person.emails;
  }
}

std::string MakeTitle(Random& rng, std::set<std::string>& used) {
  const auto& topics = TitleTopicWords();
  const auto& connectors = TitleConnectors();
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int num_words = static_cast<int>(rng.NextInt(3, 6));
    std::vector<std::string> words;
    for (int i = 0; i < num_words; ++i) {
      words.push_back(rng.Choice(topics));
    }
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    rng.Shuffle(words);
    if (static_cast<int>(words.size()) < 3) continue;
    // Capitalize the first word; insert a connector near the middle.
    std::string title = ToUpper(words[0].substr(0, 1)) + words[0].substr(1);
    for (size_t i = 1; i < words.size(); ++i) {
      if (i == words.size() / 2) {
        title += " " + rng.Choice(connectors);
      }
      title += " " + words[i];
    }
    if (used.insert(title).second) return title;
  }
  // Extremely unlikely; fall back to a unique suffix.
  std::string title = "Untitled manuscript " +
                      std::to_string(rng.NextInt(100000, 999999));
  used.insert(title);
  return title;
}

}  // namespace

Universe BuildUniverse(const UniverseConfig& config, Random& rng) {
  RECON_CHECK_GT(config.num_persons, 0);
  Universe universe;

  // Persons.
  universe.persons.reserve(config.num_persons + config.num_mailing_lists);
  std::set<std::string> used_names;
  std::set<std::string> used_emails;
  for (int i = 0; i < config.num_persons; ++i) {
    universe.persons.push_back(
        MakePerson(config, used_names, used_emails, rng));
  }
  if (config.owner_changes_name_and_account) {
    MaybeSplitEra(universe.persons[0], /*force_account_change=*/true, rng);
  }
  for (int i = 1; i < config.num_persons; ++i) {
    if (rng.NextBool(config.p_era_split)) {
      MaybeSplitEra(universe.persons[i], /*force_account_change=*/false,
                    rng);
    }
  }
  // Mailing lists are modeled as person entities with a list-style name
  // and address (they really do show up in extraction output).
  for (int i = 0; i < config.num_mailing_lists; ++i) {
    PersonSpec list;
    list.is_mailing_list = true;
    list.list_display_name = rng.Choice(MailingListNames());
    list.first = list.list_display_name;
    list.last = "";
    std::string email = list.list_display_name + "@" +
                        rng.Choice(EmailServerPool());
    while (!used_emails.insert(email).second) {
      email = list.list_display_name + "@" + rng.Choice(EmailServerPool());
    }
    list.emails.push_back(std::move(email));
    universe.persons.push_back(std::move(list));
  }

  // Venues: each series has several yearly instances.
  std::vector<VenueSeed> series(VenueSeeds());
  rng.Shuffle(series);
  const int num_series =
      std::min<int>(config.num_venue_series, static_cast<int>(series.size()));
  for (int s = 0; s < num_series; ++s) {
    const int base_year = static_cast<int>(rng.NextInt(1995, 2002));
    for (int y = 0; y < config.years_per_series; ++y) {
      VenueSpec venue;
      venue.full_name = series[s].full_name;
      venue.acronym = series[s].acronym;
      venue.year = std::to_string(base_year + y);
      venue.location = rng.Choice(LocationPool());
      venue.series_id = s;
      universe.venues.push_back(std::move(venue));
    }
  }
  RECON_CHECK(!universe.venues.empty());

  // Articles: authors drawn with Zipf popularity over the (non-list)
  // persons, so a core research community emerges.
  std::set<std::string> used_titles;
  const ZipfSampler author_sampler(config.num_persons, config.author_zipf);
  universe.articles.reserve(config.num_articles);
  for (int a = 0; a < config.num_articles; ++a) {
    ArticleSpec article;
    article.title = MakeTitle(rng, used_titles);
    const int num_authors =
        static_cast<int>(rng.NextInt(config.min_authors, config.max_authors));
    std::set<int> authors;
    while (static_cast<int>(authors.size()) < num_authors) {
      authors.insert(author_sampler.Sample(rng));
    }
    article.author_ids.assign(authors.begin(), authors.end());
    article.venue_id = static_cast<int>(rng.NextBounded(universe.venues.size()));
    article.year = universe.venues[article.venue_id].year;
    const int first_page = static_cast<int>(rng.NextInt(1, 600));
    const int last_page = first_page + static_cast<int>(rng.NextInt(8, 24));
    article.pages = std::to_string(first_page) + "-" +
                    std::to_string(last_page);
    universe.articles.push_back(std::move(article));
  }
  return universe;
}

}  // namespace recon::datagen
