#include "datagen/cora_generator.h"

#include "datagen/variants.h"
#include "util/logging.h"

namespace recon::datagen {

namespace {

struct CoraAttrs {
  int person;
  int article;
  int venue;
  int p_name, p_coauthor;
  int a_title, a_pages, a_authors, a_venue;
  int v_name, v_year, v_location;

  explicit CoraAttrs(const Schema& s)
      : person(s.RequireClass("Person")),
        article(s.RequireClass("Article")),
        venue(s.RequireClass("Venue")),
        p_name(s.RequireAttribute(person, "name")),
        p_coauthor(s.RequireAttribute(person, "coAuthor")),
        a_title(s.RequireAttribute(article, "title")),
        a_pages(s.RequireAttribute(article, "pages")),
        a_authors(s.RequireAttribute(article, "authoredBy")),
        a_venue(s.RequireAttribute(article, "publishedIn")),
        v_name(s.RequireAttribute(venue, "name")),
        v_year(s.RequireAttribute(venue, "year")),
        v_location(s.RequireAttribute(venue, "location")) {}
};

}  // namespace

Dataset GenerateCora(const CoraConfig& config) {
  return GenerateCora(config, nullptr);
}

Dataset GenerateCora(const CoraConfig& config, Universe* universe_out) {
  Random rng(config.seed);

  UniverseConfig uc;
  uc.num_persons = config.num_authors;
  uc.num_articles = config.num_papers;
  uc.num_venue_series = config.num_venue_series;
  uc.years_per_series = config.years_per_series;
  uc.min_authors = 1;
  uc.max_authors = 4;
  uc.indian_fraction = 0.15;
  uc.chinese_fraction = 0.10;
  uc.author_zipf = 0.7;
  Universe universe = BuildUniverse(uc, rng);

  Dataset dataset(BuildCoraSchema());
  const CoraAttrs attrs(dataset.schema());

  // Each author has a habitual rendering that most citations copy.
  std::vector<NameStyle> habitual_style;
  habitual_style.reserve(universe.persons.size());
  for (size_t i = 0; i < universe.persons.size(); ++i) {
    habitual_style.push_back(SampleBibNameStyle(config.style_variety, rng));
  }

  const ZipfSampler papers(static_cast<int>(universe.articles.size()),
                           config.citation_zipf);
  for (int c = 0; c < config.num_citations; ++c) {
    const int article_id = papers.Sample(rng);
    const ArticleSpec& article = universe.articles[article_id];

    // Author references (name only, usually abbreviated).
    std::vector<RefId> author_refs;
    for (const int author_id : article.author_ids) {
      const PersonSpec& person = universe.persons[author_id];
      const RefId id =
          dataset.NewReference(attrs.person, universe.PersonGold(author_id),
                               Provenance::kBibtex);
      const NameStyle style =
          rng.NextBool(config.p_habitual_style)
              ? habitual_style[author_id]
              : SampleBibNameStyle(config.style_variety, rng);
      dataset.mutable_reference(id).AddAtomicValue(
          attrs.p_name,
          RenderName(person, /*era=*/0, style, config.typo_rate, rng));
      author_refs.push_back(id);
    }
    for (size_t i = 0; i < author_refs.size(); ++i) {
      for (size_t j = 0; j < author_refs.size(); ++j) {
        if (i == j) continue;
        dataset.mutable_reference(author_refs[i])
            .AddAssociation(attrs.p_coauthor, author_refs[j]);
      }
    }

    // Venue reference: sometimes sloppily written, sometimes a different
    // venue entirely ("citations of the same paper may mention different
    // venues", §5.4). A wrong mention is labeled with the venue its string
    // denotes.
    int venue_id = article.venue_id;
    if (rng.NextBool(config.p_wrong_venue)) {
      venue_id = static_cast<int>(rng.NextBounded(universe.venues.size()));
    }
    const VenueSpec& venue = universe.venues[venue_id];
    // Cora's hand-labeled gold identifies venues at *series* granularity
    // ("POPL", not "POPL 1994"): citations rarely pin the instance.
    const int venue_gold = static_cast<int>(universe.persons.size()) +
                           venue.series_id;
    const RefId venue_ref =
        dataset.NewReference(attrs.venue, venue_gold, Provenance::kBibtex);
    {
      Reference& ref = dataset.mutable_reference(venue_ref);
      const VenueStyle style = SampleVenueStyle(config.venue_sloppiness, rng);
      ref.AddAtomicValue(attrs.v_name,
                         RenderVenue(venue, style, config.typo_rate, rng));
      if (rng.NextBool(config.p_venue_year)) {
        ref.AddAtomicValue(attrs.v_year, venue.year);
      }
      if (rng.NextBool(config.p_venue_location)) {
        ref.AddAtomicValue(attrs.v_location, venue.location);
      }
    }

    // Article reference.
    const RefId article_ref = dataset.NewReference(
        attrs.article, universe.ArticleGold(article_id), Provenance::kBibtex);
    {
      Reference& ref = dataset.mutable_reference(article_ref);
      ref.AddAtomicValue(attrs.a_title,
                         RenderTitle(article.title, config.title_noise, rng));
      if (rng.NextBool(config.p_pages)) {
        ref.AddAtomicValue(attrs.a_pages, article.pages);
      }
      for (const RefId author : author_refs) {
        ref.AddAssociation(attrs.a_authors, author);
      }
      ref.AddAssociation(attrs.a_venue, venue_ref);
    }
  }

  if (universe_out != nullptr) *universe_out = std::move(universe);
  return dataset;
}

}  // namespace recon::datagen
