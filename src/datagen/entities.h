// Ground-truth entity universe for the synthetic generators: the real-world
// persons, venues, and articles that references will (noisily) denote.

#ifndef RECON_DATAGEN_ENTITIES_H_
#define RECON_DATAGEN_ENTITIES_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace recon::datagen {

/// A real-world person. Persons may have two "eras" (e.g. a last-name
/// change upon marriage, paper §5.3's dataset D discussion) with different
/// names and possibly different email accounts.
struct PersonSpec {
  std::string first;
  std::string middle_initial;  ///< Single letter or empty.
  std::string last;
  std::string nickname;  ///< "" when none.
  std::vector<std::string> emails;  ///< Full addresses, era 0.

  bool has_second_era = false;
  std::string second_last;
  std::vector<std::string> second_emails;  ///< May repeat era-0 emails.

  bool is_mailing_list = false;
  std::string list_display_name;  ///< Mailing lists only.

  /// Last name in `era` (0 or 1).
  const std::string& LastIn(int era) const {
    return (era == 1 && has_second_era) ? second_last : last;
  }
  /// Email addresses usable in `era`.
  const std::vector<std::string>& EmailsIn(int era) const {
    return (era == 1 && has_second_era && !second_emails.empty())
               ? second_emails
               : emails;
  }
};

/// A venue entity: one year's instance of a conference/journal series.
struct VenueSpec {
  std::string full_name;
  std::string acronym;
  std::string year;
  std::string location;
  /// Index of the series this instance belongs to (all years of "VLDB"
  /// share one series id). Cora labels venues at series granularity.
  int series_id = -1;
};

/// An article entity.
struct ArticleSpec {
  std::string title;
  std::string year;
  std::string pages;
  std::vector<int> author_ids;  ///< Person entity indices.
  int venue_id = -1;            ///< Venue entity index.
};

/// The complete ground truth of one synthetic world.
struct Universe {
  std::vector<PersonSpec> persons;
  std::vector<VenueSpec> venues;
  std::vector<ArticleSpec> articles;

  /// Gold entity ids are globally unique across classes.
  int PersonGold(int person_id) const { return person_id; }
  int VenueGold(int venue_id) const {
    return static_cast<int>(persons.size()) + venue_id;
  }
  int ArticleGold(int article_id) const {
    return static_cast<int>(persons.size() + venues.size()) + article_id;
  }
};

/// Parameters for universe construction (shared by PIM and Cora).
struct UniverseConfig {
  int num_persons = 300;
  int num_mailing_lists = 0;
  int num_venue_series = 12;
  int years_per_series = 3;
  int num_articles = 150;
  int min_authors = 1;
  int max_authors = 4;
  double indian_fraction = 0.15;
  double chinese_fraction = 0.0;
  double p_middle_initial = 0.35;
  double p_multi_account = 0.25;
  double p_third_account = 0.05;
  /// Fraction of persons (besides a possibly-forced owner) whose last name
  /// changes mid-history; they keep their email account.
  double p_era_split = 0.0;
  /// Person 0 changes both last name and email account on the *same*
  /// server (triggers the unique-account constraint; dataset D's owner).
  bool owner_changes_name_and_account = false;
  /// Zipf exponent for author popularity when assigning articles.
  double author_zipf = 0.8;
};

/// Builds a ground-truth universe. Deterministic given `rng` state.
Universe BuildUniverse(const UniverseConfig& config, Random& rng);

}  // namespace recon::datagen

#endif  // RECON_DATAGEN_ENTITIES_H_
