// Variant emitters: render an entity as the noisy strings that extractors
// would produce from emails, BibTeX entries, and citations.

#ifndef RECON_DATAGEN_VARIANTS_H_
#define RECON_DATAGEN_VARIANTS_H_

#include <string>

#include "datagen/entities.h"
#include "util/random.h"

namespace recon::datagen {

/// How a person's name is written in one reference.
enum class NameStyle {
  kFirstLast,         ///< "Michael Stonebraker"
  kFirstMiddleLast,   ///< "Robert S. Epstein"
  kLastCommaFirst,    ///< "Stonebraker, Michael"
  kLastCommaInitials, ///< "Epstein, R.S." / "Stonebraker, M."
  kInitialLast,       ///< "M. Stonebraker"
  kInitialsLast,      ///< "R. S. Epstein"
  kFirstOnly,         ///< "Michael"
  kNickname,          ///< "mike"
};

/// Renders `person`'s name in `era` with `style`. Mailing lists always
/// render their display name. `typo_rate` is the per-string probability of
/// one character-level typo.
std::string RenderName(const PersonSpec& person, int era, NameStyle style,
                       double typo_rate, Random& rng);

/// Picks one of the person's era-appropriate email addresses.
const std::string& PickEmail(const PersonSpec& person, int era, Random& rng);

/// How a venue's name is written in one reference.
enum class VenueStyle {
  kFull,            ///< "International Conference on Very Large Data Bases"
  kAcronym,         ///< "VLDB"
  kProceedingsFull, ///< "Proceedings of the International Conference on ..."
  kAcronymYear,     ///< "VLDB '99"
  kAcronymConference, ///< "VLDB Conference"
  kFullPublisher,   ///< "... Very Large Data Bases, Morgan Kaufmann"
  kTruncatedFull,   ///< Full name with trailing words dropped.
  kOrdinalFull,     ///< "12th International Conference on ..."
};

/// Renders a venue name; `typo_rate` as above.
std::string RenderVenue(const VenueSpec& venue, VenueStyle style,
                        double typo_rate, Random& rng);

/// Samples a venue style. `sloppiness` in [0, 1]: higher values favor the
/// noisy forms (publisher suffixes, truncations, ordinals) typical of
/// citation corpora; low values favor the clean forms of curated BibTeX.
VenueStyle SampleVenueStyle(double sloppiness, Random& rng);

/// Renders an article title with noise: with probability `noise` the title
/// is perturbed (typo, dropped trailing word, or lowercasing).
std::string RenderTitle(const std::string& title, double noise, Random& rng);

/// Injects one character-level typo (substitution, deletion, transposition)
/// at a random alphabetic position.
std::string InjectTypo(const std::string& s, Random& rng);

/// Samples a name style for email-derived references ("From:" headers and
/// address books): full names, bare first names, nicknames.
/// `variety` in [0, 1] skews toward more diverse styles.
NameStyle SampleEmailNameStyle(double variety, Random& rng);

/// Samples a name style for bibliography-derived references: full or
/// abbreviated scholarly forms.
NameStyle SampleBibNameStyle(double variety, Random& rng);

}  // namespace recon::datagen

#endif  // RECON_DATAGEN_VARIANTS_H_
