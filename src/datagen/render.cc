#include "datagen/render.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/schema_binding.h"
#include "extract/bibtex_parser.h"
#include "extract/email_parser.h"
#include "extract/extractor.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace recon::datagen {

namespace {

/// "Display Name" <address>, with the display name always quoted (it may
/// contain commas, as in "Wong, E.").
std::string RenderMailbox(const Reference& ref, int name_attr,
                          int email_attr) {
  const std::string& name = ref.FirstValue(name_attr);
  const std::string& email = ref.FirstValue(email_attr);
  if (!name.empty() && !email.empty()) {
    return "\"" + name + "\" <" + email + ">";
  }
  if (!email.empty()) return "<" + email + ">";
  return "\"" + name + "\"";
}

/// The key under which a participant's gold label is recorded: the
/// address when present (unique within a message), else the display name.
std::string GoldKey(const extract::Mailbox& mailbox) {
  return mailbox.address.empty() ? mailbox.display_name : mailbox.address;
}
std::string GoldKey(const Reference& ref, int name_attr, int email_attr) {
  const std::string& email = ref.FirstValue(email_attr);
  return email.empty() ? ref.FirstValue(name_attr) : email;
}

}  // namespace

RenderedCorpus RenderPimCorpus(const Dataset& dataset) {
  const SchemaBinding b = SchemaBinding::Resolve(dataset.schema());
  RECON_CHECK(b.person >= 0 && b.article >= 0 && b.venue >= 0)
      << "RenderPimCorpus requires the PIM schema";
  RenderedCorpus corpus;

  // ---- Messages: groups of email-derived person references that form an
  // emailContact clique. The generator emits each message's references
  // consecutively, sender last.
  std::vector<char> rendered(dataset.num_references(), 0);
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    if (rendered[id]) continue;
    const Reference& ref = dataset.reference(id);
    if (ref.class_id() != b.person ||
        dataset.provenance(id) != Provenance::kEmail) {
      continue;
    }
    std::set<RefId> group{id};
    for (const RefId contact : ref.associations(b.person_contact)) {
      group.insert(contact);
    }
    for (const RefId member : group) rendered[member] = 1;

    const RefId sender = *group.rbegin();  // Generator order: sender last.
    std::string to_list;
    std::string gold_list;
    for (const RefId member : group) {
      const Reference& m = dataset.reference(member);
      if (member != sender) {
        if (!to_list.empty()) to_list += ", ";
        to_list += RenderMailbox(m, b.person_name, b.person_email);
      }
      if (!gold_list.empty()) gold_list += "; ";
      gold_list += GoldKey(m, b.person_name, b.person_email) + "=" +
                   std::to_string(dataset.gold_entity(member));
    }
    corpus.mbox += "From generator@localhost\n";
    corpus.mbox += "From: " +
                   RenderMailbox(dataset.reference(sender), b.person_name,
                                 b.person_email) +
                   "\n";
    if (!to_list.empty()) corpus.mbox += "To: " + to_list + "\n";
    corpus.mbox += "Subject: (generated)\n";
    corpus.mbox += "X-Gold: " + gold_list + "\n\n";
  }

  // ---- BibTeX entries: one per article reference.
  for (const RefId id : dataset.ReferencesOfClass(b.article)) {
    const Reference& article = dataset.reference(id);
    corpus.bibtex += "@inproceedings{ref" + std::to_string(id) + ",\n";
    corpus.bibtex +=
        "  title = {" + article.FirstValue(b.article_title) + "},\n";

    const auto& authors = article.associations(b.article_authors);
    if (!authors.empty()) {
      std::string author_list;
      std::string author_gold;
      for (const RefId author : authors) {
        if (!author_list.empty()) author_list += " and ";
        author_list += dataset.reference(author).FirstValue(b.person_name);
        if (!author_gold.empty()) author_gold += " ";
        author_gold += std::to_string(dataset.gold_entity(author));
      }
      corpus.bibtex += "  author = {" + author_list + "},\n";
      corpus.bibtex += "  xgoldauthors = {" + author_gold + "},\n";
    }

    const auto& venues = article.associations(b.article_venue);
    if (!venues.empty()) {
      const Reference& venue = dataset.reference(venues[0]);
      corpus.bibtex +=
          "  booktitle = {" + venue.FirstValue(b.venue_name) + "},\n";
      const std::string& location = venue.FirstValue(b.venue_location);
      if (!location.empty()) {
        corpus.bibtex += "  address = {" + location + "},\n";
      }
      const std::string& year = venue.FirstValue(b.venue_year);
      if (!year.empty()) corpus.bibtex += "  year = " + year + ",\n";
      corpus.bibtex += "  xgoldvenue = {" +
                       std::to_string(dataset.gold_entity(venues[0])) +
                       "},\n";
    }
    const std::string& pages = article.FirstValue(b.article_pages);
    if (!pages.empty()) corpus.bibtex += "  pages = {" + pages + "},\n";
    corpus.bibtex +=
        "  xgoldarticle = {" + std::to_string(dataset.gold_entity(id)) +
        "}\n}\n\n";
  }
  return corpus;
}

Dataset ExtractPimCorpus(const RenderedCorpus& corpus) {
  extract::Extractor extractor;

  // Messages, with gold labels recovered from the X-Gold annotation.
  for (const extract::EmailMessage& message :
       extract::ParseMbox(corpus.mbox)) {
    std::map<std::string, int> gold_of;
    for (const auto& [name, value] : message.headers) {
      if (name != "x-gold") continue;
      for (const std::string& item : Split(value, ';')) {
        const size_t eq = item.rfind('=');
        if (eq == std::string::npos) continue;
        gold_of[Trim(item.substr(0, eq))] =
            std::atoi(item.c_str() + eq + 1);
      }
    }
    std::vector<int> gold;
    for (const extract::Mailbox& mailbox :
         extract::DedupParticipants(message)) {
      auto it = gold_of.find(GoldKey(mailbox));
      gold.push_back(it == gold_of.end() ? -1 : it->second);
    }
    extractor.AddMessage(message, gold);
  }

  // BibTeX entries, with gold labels from the xgold* fields.
  Dataset* dataset = nullptr;  // Filled after extraction; labels patched.
  std::vector<std::pair<RefId, int>> labels;
  for (const extract::BibtexEntry& entry :
       extract::ParseBibtexFile(corpus.bibtex)) {
    const std::vector<RefId> refs = extractor.AddBibtexEntry(entry);
    if (refs.empty()) continue;
    size_t next = 0;
    const std::string article_gold = entry.Field("xgoldarticle");
    if (!article_gold.empty()) {
      labels.emplace_back(refs[next], std::atoi(article_gold.c_str()));
    }
    ++next;
    if (!entry.Venue().empty()) {
      const std::string venue_gold = entry.Field("xgoldvenue");
      if (next < refs.size() && !venue_gold.empty()) {
        labels.emplace_back(refs[next], std::atoi(venue_gold.c_str()));
      }
      ++next;
    }
    const std::vector<std::string> author_golds =
        SplitWhitespace(entry.Field("xgoldauthors"));
    for (size_t i = 0; i < author_golds.size() && next + i < refs.size();
         ++i) {
      labels.emplace_back(refs[next + i],
                          std::atoi(author_golds[i].c_str()));
    }
  }

  Dataset out = extractor.TakeDataset();
  dataset = &out;
  for (const auto& [id, gold] : labels) dataset->SetGoldEntity(id, gold);
  return out;
}

}  // namespace recon::datagen
