// Synthetic Cora-style citation benchmark generator.
//
// Stands in for McCallum's Cora subset (paper §5.1): 112 paper entities
// cited ~11.6 times each (1295 citations), with noisy titles, abbreviated
// author names, and — crucially — noisy and sometimes *wrong* venue
// mentions, the property behind Table 7's venue precision/recall trade-off.

#ifndef RECON_DATAGEN_CORA_GENERATOR_H_
#define RECON_DATAGEN_CORA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "datagen/entities.h"
#include "model/dataset.h"

namespace recon::datagen {

/// Configuration of a synthetic citation corpus.
struct CoraConfig {
  uint64_t seed = 7001;
  std::string name = "Cora";

  /// Distinct papers and total citations (paper: 112 and 1295).
  int num_papers = 112;
  int num_citations = 1295;
  /// Author pool and venues behind the papers.
  int num_authors = 185;
  int num_venue_series = 40;
  int years_per_series = 2;

  /// Citation noise: titles get perturbed often; venues are frequently
  /// written sloppily and sometimes name a different venue altogether.
  double title_noise = 0.25;
  double typo_rate = 0.03;
  double p_pages = 0.45;
  double p_wrong_venue = 0.03;
  double venue_sloppiness = 0.85;
  double p_venue_year = 0.70;
  double p_venue_location = 0.10;
  /// Zipf exponent over papers (some papers are cited far more).
  double citation_zipf = 0.35;
  /// Scholarly name abbreviation dominates.
  double style_variety = 0.85;
  /// Probability a citation renders an author in that author's habitual
  /// style (citations copy each other; most mentions of one author look
  /// identical).
  double p_habitual_style = 0.80;
};

/// Generates the citation dataset over the Cora schema (Fig. 5).
Dataset GenerateCora(const CoraConfig& config);
Dataset GenerateCora(const CoraConfig& config, Universe* universe_out);

}  // namespace recon::datagen

#endif  // RECON_DATAGEN_CORA_GENERATOR_H_
