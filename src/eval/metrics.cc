#include "eval/metrics.h"

#include <map>
#include <set>
#include <utility>

#include "runtime/parallel.h"
#include "util/logging.h"

namespace recon {

namespace {

int64_t PairsOf(int64_t n) { return n * (n - 1) / 2; }

}  // namespace

double FMeasure(double precision, double recall) {
  if (precision + recall <= 0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

PairMetrics EvaluateClass(const Dataset& dataset,
                          const std::vector<int>& cluster, int class_id,
                          int num_threads) {
  RECON_CHECK_EQ(static_cast<int>(cluster.size()), dataset.num_references());

  // Per-block count maps, merged in block order. Addition commutes, so the
  // merged counts equal the serial single-pass counts for any thread count.
  struct Counts {
    std::map<int, int64_t> by_cluster;
    std::map<int, int64_t> by_entity;
    std::map<std::pair<int, int>, int64_t> contingency;
  };
  const int64_t num_refs = dataset.num_references();
  const runtime::BlockPlan plan =
      runtime::PlanBlocks(num_threads, 0, num_refs, /*grain=*/4096);
  std::vector<Counts> blocks(plan.num_blocks);
  runtime::ParallelForBlocked(
      num_threads, 0, num_refs, plan.grain, [&](const runtime::Block& block) {
        Counts& counts = blocks[block.index];
        for (int64_t id = block.begin; id < block.end; ++id) {
          if (dataset.reference(id).class_id() != class_id) continue;
          const int gold = dataset.gold_entity(id);
          if (gold < 0) continue;
          ++counts.by_cluster[cluster[id]];
          ++counts.by_entity[gold];
          ++counts.contingency[{cluster[id], gold}];
        }
      });
  std::map<int, int64_t> by_cluster;
  std::map<int, int64_t> by_entity;
  std::map<std::pair<int, int>, int64_t> contingency;
  for (Counts& counts : blocks) {
    for (const auto& [c, n] : counts.by_cluster) by_cluster[c] += n;
    for (const auto& [e, n] : counts.by_entity) by_entity[e] += n;
    for (const auto& [cell, n] : counts.contingency) contingency[cell] += n;
  }

  PairMetrics m;
  m.num_partitions = static_cast<int>(by_cluster.size());
  m.num_entities = static_cast<int>(by_entity.size());
  for (const auto& [c, n] : by_cluster) m.predicted_pairs += PairsOf(n);
  for (const auto& [e, n] : by_entity) m.true_pairs += PairsOf(n);
  for (const auto& [cell, n] : contingency) m.correct_pairs += PairsOf(n);

  m.precision = (m.predicted_pairs == 0)
                    ? 1.0
                    : static_cast<double>(m.correct_pairs) /
                          static_cast<double>(m.predicted_pairs);
  m.recall = (m.true_pairs == 0) ? 1.0
                                 : static_cast<double>(m.correct_pairs) /
                                       static_cast<double>(m.true_pairs);
  m.f1 = FMeasure(m.precision, m.recall);
  return m;
}

PairMetrics AverageMetrics(const std::vector<PairMetrics>& runs) {
  PairMetrics avg;
  if (runs.empty()) return avg;
  avg.precision = 0;
  avg.recall = 0;
  for (const PairMetrics& m : runs) {
    avg.precision += m.precision;
    avg.recall += m.recall;
    avg.true_pairs += m.true_pairs;
    avg.predicted_pairs += m.predicted_pairs;
    avg.correct_pairs += m.correct_pairs;
    avg.num_partitions += m.num_partitions;
    avg.num_entities += m.num_entities;
  }
  avg.precision /= static_cast<double>(runs.size());
  avg.recall /= static_cast<double>(runs.size());
  avg.f1 = FMeasure(avg.precision, avg.recall);
  return avg;
}

BCubedMetrics EvaluateBCubed(const Dataset& dataset,
                             const std::vector<int>& cluster, int class_id) {
  // For each reference r: precision(r) = |cluster(r) ∩ entity(r)| /
  // |cluster(r)|, recall(r) = same / |entity(r)|; averages over refs.
  std::map<int, int64_t> cluster_size;
  std::map<int, int64_t> entity_size;
  std::map<std::pair<int, int>, int64_t> cell;
  std::vector<RefId> refs;
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    if (dataset.reference(id).class_id() != class_id) continue;
    if (dataset.gold_entity(id) < 0) continue;
    refs.push_back(id);
    ++cluster_size[cluster[id]];
    ++entity_size[dataset.gold_entity(id)];
    ++cell[{cluster[id], dataset.gold_entity(id)}];
  }
  BCubedMetrics m;
  if (refs.empty()) return m;
  double precision_sum = 0;
  double recall_sum = 0;
  for (const RefId id : refs) {
    const int64_t overlap = cell[{cluster[id], dataset.gold_entity(id)}];
    precision_sum +=
        static_cast<double>(overlap) / cluster_size[cluster[id]];
    recall_sum +=
        static_cast<double>(overlap) / entity_size[dataset.gold_entity(id)];
  }
  m.precision = precision_sum / refs.size();
  m.recall = recall_sum / refs.size();
  m.f1 = FMeasure(m.precision, m.recall);
  return m;
}

int EntitiesWithFalsePositives(const Dataset& dataset,
                               const std::vector<int>& cluster,
                               int class_id) {
  // Entities of each predicted cluster.
  std::map<int, std::set<int>> entities_of_cluster;
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    if (dataset.reference(id).class_id() != class_id) continue;
    const int gold = dataset.gold_entity(id);
    if (gold < 0) continue;
    entities_of_cluster[cluster[id]].insert(gold);
  }
  std::set<int> involved;
  for (const auto& [c, entities] : entities_of_cluster) {
    if (entities.size() >= 2) involved.insert(entities.begin(), entities.end());
  }
  return static_cast<int>(involved.size());
}

}  // namespace recon
