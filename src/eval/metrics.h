// Evaluation metrics (paper §5.2): pairwise precision / recall /
// F-measure against the gold standard, partition counts, and the count of
// entities involved in false positives (Table 6).

#ifndef RECON_EVAL_METRICS_H_
#define RECON_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "model/dataset.h"

namespace recon {

/// Pairwise reconciliation quality for one class.
struct PairMetrics {
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 1.0;
  int64_t true_pairs = 0;     ///< Same-entity reference pairs in the gold.
  int64_t predicted_pairs = 0;///< Co-clustered reference pairs.
  int64_t correct_pairs = 0;  ///< Co-clustered pairs that share an entity.
  int num_partitions = 0;     ///< Clusters produced for this class.
  int num_entities = 0;       ///< Gold entities for this class.
};

/// Evaluates `cluster` (canonical cluster id per reference) against the
/// dataset's gold labels, restricted to references of `class_id`.
/// Unlabeled references (gold -1) are excluded. `num_threads` parallelizes
/// the pair counting (0 = hardware concurrency, 1 = serial); per-block
/// counts are merged in block order, so the result is identical for every
/// value.
PairMetrics EvaluateClass(const Dataset& dataset,
                          const std::vector<int>& cluster, int class_id,
                          int num_threads = 1);

/// Averages precision / recall / F over several runs (Table 2/3 rows).
PairMetrics AverageMetrics(const std::vector<PairMetrics>& runs);

/// Number of gold entities of `class_id` that appear in at least one
/// erroneous merge (a predicted cluster mixing two or more entities);
/// Table 6's "#(Entities with false-positives)".
int EntitiesWithFalsePositives(const Dataset& dataset,
                               const std::vector<int>& cluster, int class_id);

/// 2PR / (P + R); 0 when both are 0.
double FMeasure(double precision, double recall);

/// B-cubed precision/recall (Bagga & Baldwin): per-reference averages of
/// the fraction of its cluster (resp. entity) that is correct. Less
/// dominated by very large entities than pairwise counting — a useful
/// complement given how much the PIM datasets' owners weigh.
struct BCubedMetrics {
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 1.0;
};
BCubedMetrics EvaluateBCubed(const Dataset& dataset,
                             const std::vector<int>& cluster, int class_id);

}  // namespace recon

#endif  // RECON_EVAL_METRICS_H_
