// Fixed-width table printing for the benchmark harnesses, so every bench
// binary prints rows in the same shape as the paper's tables.

#ifndef RECON_EVAL_REPORT_H_
#define RECON_EVAL_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace recon {

/// Accumulates rows of string cells and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Renders to `os` with column separators and a header rule.
  void Print(std::ostream& os) const;

  /// Formats "p/r" with three decimals, e.g. "0.967/0.926".
  static std::string PrecRecall(double precision, double recall);
  /// Formats a number with `digits` decimals.
  static std::string Num(double value, int digits = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace recon

#endif  // RECON_EVAL_REPORT_H_
