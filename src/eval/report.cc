#include "eval/report.h"

#include <algorithm>
#include <ostream>

#include "util/string_util.h"

namespace recon {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : header_[i];
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t i = 0; i < header_.size(); ++i) {
    os << std::string(widths[i] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::PrecRecall(double precision, double recall) {
  return StrFormat("%.3f/%.3f", precision, recall);
}

std::string TablePrinter::Num(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace recon
