// Parsing of BibTeX entries — the other half of the paper's extraction
// substrate ("references obtained from ... Latex and Bibtex files").
//
// Supports the common entry shape:
//   @inproceedings{key,
//     author    = {Robert S. Epstein and Michael Stonebraker and Wong, E.},
//     title     = "Distributed query processing ...",
//     booktitle = {ACM SIGMOD},
//     year      = 1978,
//     pages     = {169--180},
//     address   = {Austin, Texas},
//   }
// with brace- or quote-delimited values (nested braces allowed), numeric
// bare values, and "and"-separated author lists.

#ifndef RECON_EXTRACT_BIBTEX_PARSER_H_
#define RECON_EXTRACT_BIBTEX_PARSER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace recon::extract {

/// One parsed BibTeX entry.
struct BibtexEntry {
  std::string type;  ///< "inproceedings", "article", ... (lowercased).
  std::string key;
  /// Field name (lowercased) -> raw value with delimiters stripped.
  std::map<std::string, std::string> fields;

  /// "and"-split author list from the `author` field (empty if absent).
  std::vector<std::string> Authors() const;
  /// The venue field: `booktitle` for proceedings, else `journal`.
  std::string Venue() const;
  /// Field accessor; "" when absent.
  std::string Field(const std::string& name) const;
};

/// Splits a BibTeX author value on the word "and" (case-insensitive,
/// token-delimited): "A. Smith and Wong, E." -> {"A. Smith", "Wong, E."}.
std::vector<std::string> SplitBibtexAuthors(std::string_view value);

/// Parses the first entry found at or after `*pos`; advances `*pos` past
/// it. Returns NotFound when no further '@' exists.
StatusOr<BibtexEntry> ParseNextBibtexEntry(std::string_view input,
                                           size_t* pos);

/// Parses every entry in a .bib file, skipping malformed ones.
std::vector<BibtexEntry> ParseBibtexFile(std::string_view input);

}  // namespace recon::extract

#endif  // RECON_EXTRACT_BIBTEX_PARSER_H_
