#include "extract/email_parser.h"

#include "util/string_util.h"

namespace recon::extract {

namespace {

/// Splits on top-level commas: commas inside double quotes or angle
/// brackets do not split.
std::vector<std::string> SplitAddresses(std::string_view value) {
  std::vector<std::string> items;
  std::string current;
  bool in_quotes = false;
  bool in_angle = false;
  for (const char c : value) {
    if (c == '"') {
      in_quotes = !in_quotes;
      current.push_back(c);
    } else if (c == '<' && !in_quotes) {
      in_angle = true;
      current.push_back(c);
    } else if (c == '>' && !in_quotes) {
      in_angle = false;
      current.push_back(c);
    } else if (c == ',' && !in_quotes && !in_angle) {
      items.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  items.push_back(current);
  return items;
}

/// Strips one layer of surrounding double quotes.
std::string Unquote(std::string_view s) {
  s = TrimView(s);
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    s = s.substr(1, s.size() - 2);
  }
  return Trim(s);
}

}  // namespace

std::vector<Mailbox> ParseAddressList(std::string_view value) {
  std::vector<Mailbox> mailboxes;
  for (const std::string& item : SplitAddresses(value)) {
    const std::string_view trimmed = TrimView(item);
    if (trimmed.empty()) continue;
    Mailbox mailbox;
    const size_t open = trimmed.find('<');
    if (open != std::string_view::npos) {
      const size_t close = trimmed.find('>', open);
      const size_t end =
          (close == std::string_view::npos) ? trimmed.size() : close;
      mailbox.address = Trim(trimmed.substr(open + 1, end - open - 1));
      mailbox.display_name = Unquote(trimmed.substr(0, open));
    } else if (trimmed.find('@') != std::string_view::npos) {
      mailbox.address = Trim(trimmed);
    } else {
      mailbox.display_name = Unquote(trimmed);
    }
    if (!mailbox.display_name.empty() || !mailbox.address.empty()) {
      mailboxes.push_back(std::move(mailbox));
    }
  }
  return mailboxes;
}

StatusOr<EmailMessage> ParseEmailMessage(std::string_view raw) {
  EmailMessage message;
  bool any_header = false;

  // Unfold headers: a line starting with whitespace continues the
  // previous header value.
  std::vector<std::pair<std::string, std::string>> headers;
  for (const std::string& line : Split(raw, '\n')) {
    if (TrimView(line).empty()) break;  // End of headers.
    if ((line.starts_with(" ") || line.starts_with("\t")) &&
        !headers.empty()) {
      headers.back().second += " " + Trim(line);
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;  // Not a header; skip.
    headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                         Trim(line.substr(colon + 1)));
  }

  message.headers = headers;
  for (const auto& [name, value] : headers) {
    if (name == "from") {
      message.from = ParseAddressList(value);
      any_header = true;
    } else if (name == "to") {
      message.to = ParseAddressList(value);
      any_header = true;
    } else if (name == "cc") {
      message.cc = ParseAddressList(value);
      any_header = true;
    } else if (name == "subject") {
      message.subject = value;
      any_header = true;
    }
  }
  if (!any_header) {
    return Status::InvalidArgument("no recognizable email headers");
  }
  return message;
}

std::vector<EmailMessage> ParseMbox(std::string_view raw) {
  std::vector<EmailMessage> messages;
  std::vector<std::string> chunks;
  std::string current;
  for (const std::string& line : Split(raw, '\n')) {
    if (line.starts_with("From ") && !current.empty()) {
      chunks.push_back(current);
      current.clear();
      continue;
    }
    if (line.starts_with("From ")) continue;  // Leading delimiter.
    current += line;
    current += '\n';
  }
  if (!TrimView(current).empty()) chunks.push_back(current);

  for (const std::string& chunk : chunks) {
    StatusOr<EmailMessage> parsed = ParseEmailMessage(chunk);
    if (parsed.ok()) messages.push_back(std::move(parsed).value());
  }
  return messages;
}

}  // namespace recon::extract
