// The extractor: turns parsed emails and BibTeX entries into a Dataset of
// references over the PIM schema, with exactly the association structure
// of the paper's Figure 1 — person references per message participant
// linked by emailContact, and article/venue/author references per BibTeX
// entry linked by authoredBy / publishedIn / coAuthor.

#ifndef RECON_EXTRACT_EXTRACTOR_H_
#define RECON_EXTRACT_EXTRACTOR_H_

#include <string_view>
#include <vector>

#include "extract/bibtex_parser.h"
#include "extract/email_parser.h"
#include "model/dataset.h"

namespace recon::extract {

/// The distinct participants of a message in extraction order (From, To,
/// Cc; duplicates removed). Exposed so label pipelines can align
/// per-participant annotations with AddMessage's output.
std::vector<Mailbox> DedupParticipants(const EmailMessage& message);

/// Builds a PIM dataset from raw desktop sources. References it produces
/// are unlabeled (gold -1) unless the caller supplies labels.
class Extractor {
 public:
  /// Creates an extractor over its own empty PIM dataset.
  Extractor();

  /// Extracts references from one message: one Person reference per
  /// distinct participant, pairwise emailContact links. Returns the new
  /// reference ids. `gold` optionally labels each participant (parallel to
  /// the deduplicated participant order); pass {} when unknown.
  std::vector<RefId> AddMessage(const EmailMessage& message,
                                const std::vector<int>& gold = {});

  /// Extracts references from one BibTeX entry: author Person references
  /// (name only, coAuthor-linked), a Venue reference, and an Article
  /// reference. Returns {article, venue, authors...} ids, or an empty
  /// vector for entries without a title.
  std::vector<RefId> AddBibtexEntry(const BibtexEntry& entry);

  /// Convenience: parses and extracts an entire mbox / .bib text.
  int AddMbox(std::string_view raw);
  int AddBibtexFile(std::string_view raw);

  const Dataset& dataset() const { return dataset_; }
  Dataset TakeDataset() { return std::move(dataset_); }

 private:
  Dataset dataset_;
  int person_, article_, venue_;
  int p_name_, p_email_, p_coauthor_, p_contact_;
  int a_title_, a_year_, a_pages_, a_authors_, a_venue_;
  int v_name_, v_year_, v_location_;
};

}  // namespace recon::extract

#endif  // RECON_EXTRACT_EXTRACTOR_H_
