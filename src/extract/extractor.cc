#include "extract/extractor.h"

#include <algorithm>

#include "util/logging.h"

namespace recon::extract {

Extractor::Extractor() : dataset_(BuildPimSchema()) {
  const Schema& s = dataset_.schema();
  person_ = s.RequireClass("Person");
  article_ = s.RequireClass("Article");
  venue_ = s.RequireClass("Venue");
  p_name_ = s.RequireAttribute(person_, "name");
  p_email_ = s.RequireAttribute(person_, "email");
  p_coauthor_ = s.RequireAttribute(person_, "coAuthor");
  p_contact_ = s.RequireAttribute(person_, "emailContact");
  a_title_ = s.RequireAttribute(article_, "title");
  a_year_ = s.RequireAttribute(article_, "year");
  a_pages_ = s.RequireAttribute(article_, "pages");
  a_authors_ = s.RequireAttribute(article_, "authoredBy");
  a_venue_ = s.RequireAttribute(article_, "publishedIn");
  v_name_ = s.RequireAttribute(venue_, "name");
  v_year_ = s.RequireAttribute(venue_, "year");
  v_location_ = s.RequireAttribute(venue_, "location");
}

std::vector<Mailbox> DedupParticipants(const EmailMessage& message) {
  // Deduplicate participants within the message (the same mailbox often
  // appears in both To and Cc).
  std::vector<Mailbox> participants;
  auto add = [&](const Mailbox& mailbox) {
    if (mailbox.display_name.empty() && mailbox.address.empty()) return;
    if (std::find(participants.begin(), participants.end(), mailbox) ==
        participants.end()) {
      participants.push_back(mailbox);
    }
  };
  for (const Mailbox& m : message.from) add(m);
  for (const Mailbox& m : message.to) add(m);
  for (const Mailbox& m : message.cc) add(m);
  return participants;
}

std::vector<RefId> Extractor::AddMessage(const EmailMessage& message,
                                         const std::vector<int>& gold) {
  const std::vector<Mailbox> participants = DedupParticipants(message);

  std::vector<RefId> refs;
  refs.reserve(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    const int label = i < gold.size() ? gold[i] : -1;
    const RefId id =
        dataset_.NewReference(person_, label, Provenance::kEmail);
    Reference& ref = dataset_.mutable_reference(id);
    if (!participants[i].display_name.empty()) {
      ref.AddAtomicValue(p_name_, participants[i].display_name);
    }
    if (!participants[i].address.empty()) {
      ref.AddAtomicValue(p_email_, participants[i].address);
    }
    refs.push_back(id);
  }
  for (size_t i = 0; i < refs.size(); ++i) {
    for (size_t j = 0; j < refs.size(); ++j) {
      if (i == j) continue;
      dataset_.mutable_reference(refs[i]).AddAssociation(p_contact_,
                                                         refs[j]);
    }
  }
  return refs;
}

std::vector<RefId> Extractor::AddBibtexEntry(const BibtexEntry& entry) {
  const std::string title = entry.Field("title");
  if (title.empty()) return {};

  std::vector<RefId> author_refs;
  for (const std::string& author : entry.Authors()) {
    const RefId id =
        dataset_.NewReference(person_, -1, Provenance::kBibtex);
    dataset_.mutable_reference(id).AddAtomicValue(p_name_, author);
    author_refs.push_back(id);
  }
  for (size_t i = 0; i < author_refs.size(); ++i) {
    for (size_t j = 0; j < author_refs.size(); ++j) {
      if (i == j) continue;
      dataset_.mutable_reference(author_refs[i])
          .AddAssociation(p_coauthor_, author_refs[j]);
    }
  }

  const std::string venue_name = entry.Venue();
  RefId venue_ref = kInvalidRef;
  if (!venue_name.empty()) {
    venue_ref = dataset_.NewReference(venue_, -1, Provenance::kBibtex);
    Reference& ref = dataset_.mutable_reference(venue_ref);
    ref.AddAtomicValue(v_name_, venue_name);
    ref.AddAtomicValue(v_year_, entry.Field("year"));
    ref.AddAtomicValue(v_location_, entry.Field("address"));
  }

  const RefId article_ref =
      dataset_.NewReference(article_, -1, Provenance::kBibtex);
  {
    Reference& ref = dataset_.mutable_reference(article_ref);
    ref.AddAtomicValue(a_title_, title);
    ref.AddAtomicValue(a_year_, entry.Field("year"));
    ref.AddAtomicValue(a_pages_, entry.Field("pages"));
    for (const RefId author : author_refs) {
      ref.AddAssociation(a_authors_, author);
    }
    if (venue_ref != kInvalidRef) {
      ref.AddAssociation(a_venue_, venue_ref);
    }
  }

  std::vector<RefId> out{article_ref};
  if (venue_ref != kInvalidRef) out.push_back(venue_ref);
  out.insert(out.end(), author_refs.begin(), author_refs.end());
  return out;
}

int Extractor::AddMbox(std::string_view raw) {
  int count = 0;
  for (const EmailMessage& message : ParseMbox(raw)) {
    count += static_cast<int>(AddMessage(message).size());
  }
  return count;
}

int Extractor::AddBibtexFile(std::string_view raw) {
  int count = 0;
  for (const BibtexEntry& entry : ParseBibtexFile(raw)) {
    count += static_cast<int>(AddBibtexEntry(entry).size());
  }
  return count;
}

}  // namespace recon::extract
