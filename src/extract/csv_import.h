// CSV import: the adapter most real reconciliation jobs start from. Each
// row becomes one reference of a fixed class; columns map onto atomic
// attributes. RFC-4180 quoting (embedded delimiters, quotes, newlines) is
// supported, plus multi-valued cells and an optional gold-label column.

#ifndef RECON_EXTRACT_CSV_IMPORT_H_
#define RECON_EXTRACT_CSV_IMPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/dataset.h"
#include "util/status.h"

namespace recon::extract {

/// Parses RFC-4180 CSV text into rows of fields. Handles quoted fields
/// with embedded delimiters, doubled quotes, and newlines. A trailing
/// newline does not produce an empty row.
std::vector<std::vector<std::string>> ParseCsv(std::string_view text,
                                               char delimiter = ',');

/// Column mapping for one CSV import.
struct CsvImportSpec {
  /// Class the rows instantiate.
  int class_id = -1;
  char delimiter = ',';
  /// Skip the first row.
  bool has_header = true;
  /// column index -> attribute index within the class; -1 ignores the
  /// column. Shorter than the row = remaining columns ignored.
  std::vector<int> column_to_attribute;
  /// Column holding an integer gold label; -1 when unlabeled.
  int gold_column = -1;
  /// Cells are split on this into multiple attribute values; '\0' keeps
  /// cells whole.
  char multi_value_separator = ';';
};

/// Imports CSV rows as references into `dataset` (whose schema must
/// contain spec.class_id). Returns the number of references added, or an
/// error naming the offending row. Empty rows are skipped.
StatusOr<int> ImportCsv(std::string_view text, const CsvImportSpec& spec,
                        Dataset* dataset);

}  // namespace recon::extract

#endif  // RECON_EXTRACT_CSV_IMPORT_H_
