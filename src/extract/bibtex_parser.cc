#include "extract/bibtex_parser.h"

#include <cctype>

#include "util/string_util.h"

namespace recon::extract {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-' || c == ':' || c == '.' || c == '+';
}

void SkipWhitespace(std::string_view input, size_t* pos) {
  while (*pos < input.size() &&
         std::isspace(static_cast<unsigned char>(input[*pos])) != 0) {
    ++*pos;
  }
}

/// Reads a field value starting at *pos: {braced (nested ok)}, "quoted",
/// or a bare token (number/identifier). Returns false on malformed input.
bool ReadValue(std::string_view input, size_t* pos, std::string* out) {
  SkipWhitespace(input, pos);
  if (*pos >= input.size()) return false;
  const char open = input[*pos];
  if (open == '{') {
    int depth = 0;
    std::string value;
    for (; *pos < input.size(); ++*pos) {
      const char c = input[*pos];
      if (c == '{') {
        ++depth;
        if (depth == 1) continue;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          ++*pos;
          *out = value;
          return true;
        }
      }
      value.push_back(c);
    }
    return false;  // Unbalanced braces.
  }
  if (open == '"') {
    ++*pos;
    std::string value;
    for (; *pos < input.size(); ++*pos) {
      if (input[*pos] == '"') {
        ++*pos;
        *out = value;
        return true;
      }
      value.push_back(input[*pos]);
    }
    return false;
  }
  // Bare value: up to ',' or '}' at this level.
  std::string value;
  while (*pos < input.size() && input[*pos] != ',' && input[*pos] != '}') {
    value.push_back(input[*pos]);
    ++*pos;
  }
  *out = Trim(value);
  return !out->empty();
}

}  // namespace

std::vector<std::string> SplitBibtexAuthors(std::string_view value) {
  std::vector<std::string> authors;
  std::string current;
  const std::vector<std::string> words = SplitWhitespace(value);
  for (const std::string& word : words) {
    if (ToLower(word) == "and") {
      const std::string author = Trim(current);
      if (!author.empty()) authors.push_back(author);
      current.clear();
    } else {
      if (!current.empty()) current += ' ';
      current += word;
    }
  }
  const std::string author = Trim(current);
  if (!author.empty()) authors.push_back(author);
  return authors;
}

std::vector<std::string> BibtexEntry::Authors() const {
  return SplitBibtexAuthors(Field("author"));
}

std::string BibtexEntry::Venue() const {
  const std::string booktitle = Field("booktitle");
  return booktitle.empty() ? Field("journal") : booktitle;
}

std::string BibtexEntry::Field(const std::string& name) const {
  auto it = fields.find(name);
  return it == fields.end() ? std::string() : it->second;
}

StatusOr<BibtexEntry> ParseNextBibtexEntry(std::string_view input,
                                           size_t* pos) {
  const size_t at = input.find('@', *pos);
  if (at == std::string_view::npos) {
    *pos = input.size();
    return Status::NotFound("no further BibTeX entries");
  }
  size_t p = at + 1;

  BibtexEntry entry;
  while (p < input.size() && IsIdentChar(input[p])) {
    entry.type.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(input[p]))));
    ++p;
  }
  SkipWhitespace(input, &p);
  if (p >= input.size() || input[p] != '{') {
    *pos = p;
    return Status::InvalidArgument("expected '{' after entry type");
  }
  ++p;

  // Citation key (up to the first comma).
  SkipWhitespace(input, &p);
  while (p < input.size() && input[p] != ',' && input[p] != '}') {
    entry.key.push_back(input[p]);
    ++p;
  }
  entry.key = Trim(entry.key);
  if (p < input.size() && input[p] == ',') ++p;

  // Fields.
  for (;;) {
    SkipWhitespace(input, &p);
    if (p >= input.size()) {
      *pos = p;
      return Status::InvalidArgument("unterminated entry");
    }
    if (input[p] == '}') {
      ++p;
      break;
    }
    if (input[p] == ',') {
      ++p;
      continue;
    }
    std::string name;
    while (p < input.size() && IsIdentChar(input[p])) {
      name.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(input[p]))));
      ++p;
    }
    SkipWhitespace(input, &p);
    if (name.empty() || p >= input.size() || input[p] != '=') {
      *pos = p + 1;
      return Status::InvalidArgument("malformed field in entry " + entry.key);
    }
    ++p;  // '='.
    std::string value;
    if (!ReadValue(input, &p, &value)) {
      *pos = p;
      return Status::InvalidArgument("malformed value in entry " + entry.key);
    }
    // Normalize internal whitespace (values may span lines).
    entry.fields[name] = Join(SplitWhitespace(value), " ");
  }
  *pos = p;
  return entry;
}

std::vector<BibtexEntry> ParseBibtexFile(std::string_view input) {
  std::vector<BibtexEntry> entries;
  size_t pos = 0;
  while (pos < input.size()) {
    StatusOr<BibtexEntry> entry = ParseNextBibtexEntry(input, &pos);
    if (entry.ok()) {
      entries.push_back(std::move(entry).value());
    } else if (entry.status().code() == StatusCode::kNotFound) {
      break;
    }
    // Malformed entries are skipped; pos has advanced past the problem.
  }
  return entries;
}

}  // namespace recon::extract
