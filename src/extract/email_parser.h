// Parsing of simplified RFC-2822 email messages.
//
// The paper's information space starts from "data from a variety of
// sources on the desktop (e.g., mails, contacts, files)" processed by an
// extractor; this module is that substrate's email half. It parses the
// headers a PIM extractor cares about (From/To/Cc) with the address forms
// found in real mailboxes:
//   "Eugene Wong" <eugene@berkeley.edu>
//   Eugene Wong <eugene@berkeley.edu>
//   eugene@berkeley.edu
//   mike <stonebraker@csail.mit.edu>, Wong, E. <ew@b.edu>

#ifndef RECON_EXTRACT_EMAIL_PARSER_H_
#define RECON_EXTRACT_EMAIL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace recon::extract {

/// One mailbox: an optional display name and an optional address (at
/// least one is non-empty after successful parsing).
struct Mailbox {
  std::string display_name;
  std::string address;

  friend bool operator==(const Mailbox&, const Mailbox&) = default;
};

/// One parsed message.
struct EmailMessage {
  std::vector<Mailbox> from;  ///< Usually exactly one.
  std::vector<Mailbox> to;
  std::vector<Mailbox> cc;
  std::string subject;
  /// Every header as (lowercased name, raw value), in order — including
  /// extension headers the extractor does not interpret itself.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Parses a single address-list header value ("a <x@y>, b@c") into
/// mailboxes. Tolerates quoted display names with commas ("Wong, E.").
std::vector<Mailbox> ParseAddressList(std::string_view value);

/// Parses one message in simplified RFC-2822 form: header lines
/// ("Header: value", with continuation lines starting with whitespace)
/// terminated by an empty line; the body is ignored. Returns an error only
/// for structurally hopeless input (no headers at all).
StatusOr<EmailMessage> ParseEmailMessage(std::string_view raw);

/// Splits an mbox-style concatenation (messages delimited by lines
/// starting with "From ") into messages and parses each, skipping
/// unparseable ones.
std::vector<EmailMessage> ParseMbox(std::string_view raw);

}  // namespace recon::extract

#endif  // RECON_EXTRACT_EMAIL_PARSER_H_
