#include "extract/csv_import.h"

#include "util/string_util.h"

namespace recon::extract {

std::vector<std::vector<std::string>> ParseCsv(std::string_view text,
                                               char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    // Skip rows that are entirely empty (e.g. a trailing newline).
    bool all_empty = true;
    for (const std::string& f : row) {
      if (!f.empty()) all_empty = false;
    }
    if (!all_empty || row.size() > 1) rows.push_back(row);
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');  // Doubled quote.
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
    } else if (c == delimiter) {
      end_field();
    } else if (c == '\n') {
      if (!field.empty() || !row.empty() || field_started) end_row();
    } else if (c == '\r') {
      // Swallow (CRLF).
    } else {
      field.push_back(c);
      field_started = true;
    }
  }
  if (!field.empty() || !row.empty() || field_started) end_row();
  return rows;
}

StatusOr<int> ImportCsv(std::string_view text, const CsvImportSpec& spec,
                        Dataset* dataset) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("null dataset");
  }
  const Schema& schema = dataset->schema();
  if (spec.class_id < 0 || spec.class_id >= schema.num_classes()) {
    return Status::InvalidArgument("bad class id");
  }
  const ClassDef& cls = schema.class_def(spec.class_id);
  for (const int attr : spec.column_to_attribute) {
    if (attr < 0) continue;
    if (attr >= cls.num_attributes()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    if (cls.attributes[attr].kind != AttrKind::kAtomic) {
      return Status::InvalidArgument(
          "CSV import targets atomic attributes only (" +
          cls.attributes[attr].name + ")");
    }
  }

  const std::vector<std::vector<std::string>> rows =
      ParseCsv(text, spec.delimiter);
  int added = 0;
  for (size_t r = spec.has_header ? 1 : 0; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    int gold = -1;
    if (spec.gold_column >= 0) {
      if (spec.gold_column >= static_cast<int>(row.size()) ||
          !IsDigits(Trim(row[spec.gold_column]))) {
        return Status::InvalidArgument(
            "row " + std::to_string(r + 1) + ": bad gold label");
      }
      gold = std::atoi(row[spec.gold_column].c_str());
    }
    const RefId id = dataset->NewReference(spec.class_id, gold);
    Reference& ref = dataset->mutable_reference(id);
    for (size_t col = 0;
         col < row.size() && col < spec.column_to_attribute.size(); ++col) {
      const int attr = spec.column_to_attribute[col];
      if (attr < 0) continue;
      if (spec.multi_value_separator != '\0') {
        for (const std::string& value :
             Split(row[col], spec.multi_value_separator)) {
          ref.AddAtomicValue(attr, Trim(value));
        }
      } else {
        ref.AddAtomicValue(attr, Trim(row[col]));
      }
    }
    ++added;
  }
  return added;
}

}  // namespace recon::extract
