#include "service/snapshot.h"

#include <algorithm>
#include <map>
#include <utility>

#include "core/candidates.h"
#include "util/logging.h"

namespace recon::service {

namespace {

/// Feature kinds per bound attribute — the same mapping the graph builder
/// registers, so profile values are analyzed exactly like batch values.
ValueKindSchema MakeValueKindSchema(const SchemaBinding& b) {
  ValueKindSchema schema;
  auto add = [&](int class_id, int attr, FeatureKind kind) {
    if (class_id >= 0 && attr >= 0) {
      schema.kinds.emplace_back(ValueDomain{class_id, attr}, kind);
    }
  };
  add(b.person, b.person_name, FeatureKind::kPersonName);
  add(b.person, b.person_email, FeatureKind::kEmail);
  add(b.article, b.article_title, FeatureKind::kTitle);
  add(b.article, b.article_year, FeatureKind::kYear);
  add(b.article, b.article_pages, FeatureKind::kPages);
  add(b.venue, b.venue_name, FeatureKind::kVenueName);
  add(b.venue, b.venue_year, FeatureKind::kYear);
  add(b.venue, b.venue_location, FeatureKind::kLocation);
  return schema;
}

/// Class-qualified blocking key: keys of different classes never share a
/// block (a "wong" name token must not pull venue candidates).
std::string QualifiedKey(int class_id, const std::string& key) {
  return std::to_string(class_id) + '|' + key;
}

/// The name-like attribute of a class (what the main query text targets).
int NameAttribute(const SchemaBinding& b, int class_id) {
  if (class_id == b.person) return b.person_name;
  if (class_id == b.article) return b.article_title;
  if (class_id == b.venue) return b.venue_name;
  return -1;
}

/// One real-valued evidence channel of the query-vs-profile comparison:
/// analyzed query values against the candidate profile's `attr` values.
struct AtomicChannel {
  int evidence = 0;
  double seed = 0.0;
  int attr = -1;
  /// Person-name rule (§3.1): both sides carry values but none are even
  /// seed-similar -> offer explicit zero evidence (dissimilar names are
  /// soft negative evidence, not "unknown").
  bool zero_when_dissimilar = false;
  std::vector<std::string> raw;
  std::vector<ValueFeatures> features;
};

/// An association channel: query strings against the names of the entities
/// the candidate is linked to via `assoc_attr`.
struct AssocChannel {
  int evidence = 0;
  double seed = 0.0;
  int assoc_attr = -1;
  int target_name_attr = -1;
  std::vector<ValueFeatures> features;
};

/// The per-class comparison plan for one query, built once and reused for
/// every candidate.
struct QueryPlan {
  int class_id = -1;
  std::vector<AtomicChannel> channels;
  std::vector<AssocChannel> assoc_channels;
};

void AddQueryValues(AtomicChannel* channel, FeatureKind kind,
                    const std::vector<std::string>& values) {
  for (const std::string& raw : values) {
    channel->raw.push_back(raw);
    channel->features.push_back(AnalyzeValue(raw, kind));
  }
}

}  // namespace

std::vector<EntityId> Snapshot::CandidateEntities(const Dataset& probe_holder,
                                                  RefId probe,
                                                  int class_id) const {
  std::vector<EntityId> out;
  for (const std::string& key :
       BlockingKeys(probe_holder, probe, binding_)) {
    const auto it = blocks_.find(QualifiedKey(class_id, key));
    if (it == blocks_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

QueryResult Snapshot::Query(const ReconQuery& query,
                            BudgetTracker* budget) const {
  QueryResult result;
  const Schema& schema = profiles_->schema();

  std::vector<int> class_ids;
  if (!query.type.empty()) {
    const int id = schema.FindClass(query.type);
    if (id < 0 || class_sims_[id] == nullptr) return result;
    class_ids.push_back(id);
  } else {
    for (int c = 0; c < schema.num_classes(); ++c) {
      if (class_sims_[c] != nullptr) class_ids.push_back(c);
    }
  }

  std::vector<ScoredCandidate> scored;
  for (const int class_id : class_ids) {
    const ClassDef& cls = schema.class_def(class_id);
    const int name_attr = NameAttribute(binding_, class_id);
    if (name_attr < 0) continue;

    // Probe reference: main text lands on the name-like attribute,
    // properties on their named attributes. Held in a one-reference
    // dataset so blocking-key extraction can run unchanged.
    Dataset probe_holder(schema);
    Reference probe(class_id, cls.num_attributes());
    if (!query.text.empty()) probe.AddAtomicValue(name_attr, query.text);
    for (const auto& [attr_name, value] : query.properties) {
      const int attr = cls.FindAttribute(attr_name);
      if (attr < 0 || value.empty()) continue;
      // Association-attribute properties are matched against linked
      // entities below; only atomic values join the probe.
      if (cls.attributes[attr].kind == AttrKind::kAtomic) {
        probe.AddAtomicValue(attr, value);
      }
    }

    // Build the comparison plan: which evidence channels this class's
    // S_rv reads, mirroring the graph builder's pair staging.
    QueryPlan plan;
    plan.class_id = class_id;
    const SimParams& p = params_;
    auto add_atomic = [&](int evidence, double seed, int probe_attr,
                          int profile_attr, FeatureKind kind,
                          bool zero_rule) {
      if (probe_attr < 0 || profile_attr < 0) return;
      if (probe.atomic_values(probe_attr).empty()) return;
      AtomicChannel channel;
      channel.evidence = evidence;
      channel.seed = seed;
      channel.attr = profile_attr;
      channel.zero_when_dissimilar = zero_rule;
      AddQueryValues(&channel, kind, probe.atomic_values(probe_attr));
      plan.channels.push_back(std::move(channel));
    };
    if (class_id == binding_.person) {
      add_atomic(kEvPersonName, p.person_name_seed, binding_.person_name,
                 binding_.person_name, FeatureKind::kPersonName,
                 /*zero_rule=*/true);
      add_atomic(kEvPersonEmail, p.person_email_seed, binding_.person_email,
                 binding_.person_email, FeatureKind::kEmail,
                 /*zero_rule=*/false);
      // Cross-attribute name~email evidence, both directions.
      add_atomic(kEvPersonNameEmail, p.name_email_seed, binding_.person_name,
                 binding_.person_email, FeatureKind::kPersonName,
                 /*zero_rule=*/false);
      add_atomic(kEvPersonNameEmail, p.name_email_seed, binding_.person_email,
                 binding_.person_name, FeatureKind::kEmail,
                 /*zero_rule=*/false);
    } else if (class_id == binding_.article) {
      add_atomic(kEvArticleTitle, p.article_title_seed, binding_.article_title,
                 binding_.article_title, FeatureKind::kTitle,
                 /*zero_rule=*/false);
      add_atomic(kEvArticleYear, p.year_seed, binding_.article_year,
                 binding_.article_year, FeatureKind::kYear,
                 /*zero_rule=*/false);
      add_atomic(kEvArticlePages, p.pages_seed, binding_.article_pages,
                 binding_.article_pages, FeatureKind::kPages,
                 /*zero_rule=*/false);
    } else if (class_id == binding_.venue) {
      add_atomic(kEvVenueName, p.venue_name_seed, binding_.venue_name,
                 binding_.venue_name, FeatureKind::kVenueName,
                 /*zero_rule=*/false);
      add_atomic(kEvVenueYear, p.year_seed, binding_.venue_year,
                 binding_.venue_year, FeatureKind::kYear,
                 /*zero_rule=*/false);
      add_atomic(kEvVenueLocation, p.location_seed, binding_.venue_location,
                 binding_.venue_location, FeatureKind::kLocation,
                 /*zero_rule=*/false);
    }
    // Association properties (Article.authoredBy -> person names,
    // Article.publishedIn -> venue names): the online stand-in for the
    // graph's kEvArticleAuthors / kEvArticleVenue real-valued neighbors.
    for (const auto& [attr_name, value] : query.properties) {
      const int attr = cls.FindAttribute(attr_name);
      if (attr < 0 || value.empty()) continue;
      if (cls.attributes[attr].kind != AttrKind::kAssociation) continue;
      AssocChannel assoc;
      if (class_id == binding_.article && attr == binding_.article_authors) {
        assoc.evidence = kEvArticleAuthors;
        assoc.seed = p.person_name_seed;
        assoc.target_name_attr = binding_.person_name;
        assoc.features.push_back(
            AnalyzeValue(value, FeatureKind::kPersonName));
      } else if (class_id == binding_.article &&
                 attr == binding_.article_venue) {
        assoc.evidence = kEvArticleVenue;
        assoc.seed = p.venue_name_seed;
        assoc.target_name_attr = binding_.venue_name;
        assoc.features.push_back(AnalyzeValue(value, FeatureKind::kVenueName));
      } else {
        continue;
      }
      assoc.assoc_attr = attr;
      plan.assoc_channels.push_back(std::move(assoc));
    }

    const RefId probe_id = probe_holder.AddReference(probe, /*gold_entity=*/-1);
    const std::vector<EntityId> candidates =
        CandidateEntities(probe_holder, probe_id, class_id);

    for (const EntityId candidate : candidates) {
      if (budget != nullptr && budget->Probe(ProbePoint::kCandidates)) {
        result.degraded = true;
        break;
      }
      EvidenceSummary summary;
      for (const AtomicChannel& channel : plan.channels) {
        const std::vector<ValueId>& profile_values =
            value_ids_[candidate][channel.attr];
        bool offered = false;
        for (size_t q = 0; q < channel.features.size(); ++q) {
          for (const ValueId pv : profile_values) {
            const ValueFeatures& pf = features_->features(pv);
            double sim;
            if (channel.raw[q] == values_.StringOf(pv)) {
              // Equal values are one graph element: full double precision.
              sim = FeaturePairSimilarity(channel.evidence,
                                          channel.features[q], pf);
            } else {
              // Non-equal pairs round through float, exactly as the batch
              // path's similarity memo stores them.
              sim = static_cast<float>(FeaturePairSimilarity(
                  channel.evidence, channel.features[q], pf));
              if (sim < channel.seed) continue;
            }
            summary.Offer(channel.evidence, sim);
            offered = true;
          }
        }
        if (channel.zero_when_dissimilar && !offered &&
            !channel.features.empty() && !profile_values.empty()) {
          summary.Offer(channel.evidence, 0.0);
        }
      }
      for (const AssocChannel& assoc : plan.assoc_channels) {
        for (const EntityId target : entities_[candidate].linked[assoc.assoc_attr]) {
          for (const ValueId pv : value_ids_[target][assoc.target_name_attr]) {
            const ValueFeatures& pf = features_->features(pv);
            for (const ValueFeatures& qf : assoc.features) {
              const double sim = static_cast<float>(
                  FeaturePairSimilarity(assoc.evidence == kEvArticleAuthors
                                            ? kEvPersonName
                                            : kEvVenueName,
                                        qf, pf));
              if (sim >= assoc.seed) summary.Offer(assoc.evidence, sim);
            }
          }
        }
      }
      ScoredCandidate entry;
      entry.entity = candidate;
      entry.score = class_sims_[class_id]->Compute(summary);
      scored.push_back(entry);
      ++result.num_scored;
    }
    if (result.degraded) break;
  }

  // Highest score first; entity id breaks ties deterministically.
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.entity < b.entity;
                   });
  int above_threshold = 0;
  for (const ScoredCandidate& c : scored) {
    if (c.score >= params_.merge_threshold) ++above_threshold;
  }
  const int limit = query.limit > 0 ? std::min(query.limit, 1000) : 10;
  if (static_cast<int>(scored.size()) > limit) scored.resize(limit);
  // Confident auto-match: the unique candidate at or over the merge
  // threshold (an ambiguous pair of high scorers is never auto-matched).
  if (!scored.empty() && above_threshold == 1 &&
      scored.front().score >= params_.merge_threshold) {
    scored.front().match = true;
  }
  result.candidates = std::move(scored);
  return result;
}

std::shared_ptr<const Snapshot> BuildSnapshot(
    const Dataset& dataset, const std::vector<int>& clusters,
    const ReconcilerOptions& options, uint64_t generation) {
  const int n = dataset.num_references();
  RECON_CHECK(static_cast<int>(clusters.size()) == n)
      << "clusters/dataset size mismatch";

  auto snap = std::make_shared<Snapshot>();
  snap->generation_ = generation;
  snap->num_references_ = n;
  snap->params_ = options.params;
  snap->max_block_size_ = options.max_block_size;
  snap->binding_ = SchemaBinding::Resolve(dataset.schema());

  // Group references by cluster representative; entity order is the order
  // of each cluster's smallest member, so ids are deterministic.
  std::map<int, std::vector<RefId>> groups;
  for (RefId r = 0; r < n; ++r) groups[clusters[r]].push_back(r);
  std::vector<std::vector<RefId>> ordered;
  ordered.reserve(groups.size());
  for (auto& [rep, members] : groups) ordered.push_back(std::move(members));
  std::sort(ordered.begin(), ordered.end(),
            [](const std::vector<RefId>& a, const std::vector<RefId>& b) {
              return a.front() < b.front();
            });

  snap->ref_to_entity_.assign(n, -1);
  snap->profiles_ = std::make_unique<Dataset>(dataset.schema());
  const Schema& schema = snap->profiles_->schema();
  snap->entities_.reserve(ordered.size());

  for (EntityId e = 0; e < static_cast<EntityId>(ordered.size()); ++e) {
    const std::vector<RefId>& members = ordered[e];
    EntityInfo info;
    info.class_id = dataset.reference(members.front()).class_id();
    info.members = members;
    const ClassDef& cls = schema.class_def(info.class_id);
    Reference profile(info.class_id, cls.num_attributes());
    for (const RefId member : members) {
      snap->ref_to_entity_[member] = e;
      const Reference& ref = dataset.reference(member);
      for (int attr = 0; attr < cls.num_attributes(); ++attr) {
        if (cls.attributes[attr].kind != AttrKind::kAtomic) continue;
        for (const std::string& value : ref.atomic_values(attr)) {
          profile.AddAtomicValue(attr, value);  // Dedups.
        }
      }
    }
    const int name_attr = NameAttribute(snap->binding_, info.class_id);
    if (name_attr >= 0) info.display_name = profile.FirstValue(name_attr);
    if (info.display_name.empty()) {
      for (int attr = 0;
           attr < cls.num_attributes() && info.display_name.empty(); ++attr) {
        if (cls.attributes[attr].kind == AttrKind::kAtomic) {
          info.display_name = profile.FirstValue(attr);
        }
      }
    }
    snap->profiles_->AddReference(std::move(profile), /*gold_entity=*/-1);
    snap->entities_.push_back(std::move(info));
  }

  // Entity-level association links (member links mapped through the
  // cluster assignment, deduplicated).
  for (EntityId e = 0; e < snap->num_entities(); ++e) {
    EntityInfo& info = snap->entities_[e];
    const ClassDef& cls = schema.class_def(info.class_id);
    info.linked.resize(cls.num_attributes());
    for (int attr = 0; attr < cls.num_attributes(); ++attr) {
      if (cls.attributes[attr].kind != AttrKind::kAssociation) continue;
      std::vector<EntityId>& targets = info.linked[attr];
      for (const RefId member : info.members) {
        for (const RefId target :
             dataset.reference(member).associations(attr)) {
          if (target >= 0 && target < n) {
            targets.push_back(snap->ref_to_entity_[target]);
          }
        }
      }
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
    }
  }

  // Intern profile values (PR-5 read-only store) and remember each
  // entity's ValueIds so query scoring never re-parses profile strings.
  snap->features_ =
      std::make_unique<ValueStore>(MakeValueKindSchema(snap->binding_));
  snap->value_ids_.resize(snap->num_entities());
  for (EntityId e = 0; e < snap->num_entities(); ++e) {
    const Reference& profile = snap->profiles_->reference(e);
    const ClassDef& cls = schema.class_def(profile.class_id());
    snap->value_ids_[e].resize(cls.num_attributes());
    for (int attr = 0; attr < cls.num_attributes(); ++attr) {
      if (cls.attributes[attr].kind != AttrKind::kAtomic) continue;
      for (const std::string& value : profile.atomic_values(attr)) {
        snap->value_ids_[e][attr].push_back(snap->values_.Intern(
            ValueDomain{profile.class_id(), attr}, value));
      }
    }
  }
  snap->features_->Sync(snap->values_);

  // Candidate index over the profiles, with the same keys candidate
  // generation blocks on; over-large blocks are dropped, as there.
  for (EntityId e = 0; e < snap->num_entities(); ++e) {
    const int class_id = snap->entities_[e].class_id;
    for (const std::string& key :
         BlockingKeys(*snap->profiles_, e, snap->binding_, &snap->values_,
                      snap->features_.get())) {
      snap->blocks_[QualifiedKey(class_id, key)].push_back(e);
    }
  }
  for (auto it = snap->blocks_.begin(); it != snap->blocks_.end();) {
    if (static_cast<int>(it->second.size()) > snap->max_block_size_) {
      it = snap->blocks_.erase(it);
    } else {
      ++it;
    }
  }

  // Similarity functions for the classes the binding knows.
  snap->class_sims_.resize(schema.num_classes());
  for (int c = 0; c < schema.num_classes(); ++c) {
    if (c == snap->binding_.person || c == snap->binding_.article ||
        c == snap->binding_.venue) {
      snap->class_sims_[c] = MakeClassSimilarity(
          schema.class_def(c).name.c_str(), options.params);
    }
  }

  // Rough footprint for /stats: feature table + index keys + entity lists.
  int64_t bytes = snap->features_->approximate_bytes();
  for (const auto& [key, block] : snap->blocks_) {
    bytes += static_cast<int64_t>(key.capacity() + 64 +
                                  block.capacity() * sizeof(EntityId));
  }
  for (const EntityInfo& info : snap->entities_) {
    bytes += static_cast<int64_t>(sizeof(EntityInfo) +
                                  info.members.capacity() * sizeof(RefId) +
                                  info.display_name.capacity());
  }
  snap->approximate_bytes_ = bytes;
  return snap;
}

}  // namespace recon::service
