// HTTP route handlers for the reconciliation service: the OpenRefine
// reconciliation API shape plus entity lookup, health, stats, and ingest
// (DESIGN.md §12).
//
// Routes:
//   GET  /            service manifest (or reconcile, when `queries` given —
//                     OpenRefine posts query batches to the manifest URL)
//   GET|POST /reconcile   query batch: raw JSON body, `queries=` form body,
//                     or `?queries=` URL parameter
//   POST /ingest      stage references; optional immediate flush
//   GET  /entity/<id> one reconciled entity ("e12" or "12")
//   GET  /healthz     liveness + version + snapshot generation
//   GET  /stats       counters and snapshot statistics
//
// Every response carries an `X-Snapshot-Generation` header naming the
// snapshot it was answered from. The parse/render halves are exposed
// standalone so the service bench can drive the exact handler path
// in-process and compare bytes against a direct library-call oracle.

#ifndef RECON_SERVICE_HANDLERS_H_
#define RECON_SERVICE_HANDLERS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/http.h"
#include "service/service.h"
#include "util/status.h"

namespace recon::service {

/// A query batch in request order: (caller-chosen query id, parsed query).
using QueryBatch = std::vector<std::pair<std::string, ReconQuery>>;

/// Parses an OpenRefine query-batch document:
///   {"q0": {"query": "...", "type": "Person",
///           "properties": [{"pid": "email", "v": "..."}], "limit": 5}, ...}
/// `type` may be a string, an {"id": ...} object, or an array thereof (first
/// wins); `v` may be a scalar or an array of scalars.
StatusOr<QueryBatch> ParseQueryBatch(std::string_view json_text);

/// Renders the reconcile response body: per query id a {"result": [...]}
/// with candidates {"id": "e7", "name", "type": [{"id", "name"}], "score",
/// "match"} (plus "degraded" when truncated), and a top-level "_snapshot"
/// generation. Compact JSON — byte-deterministic for a given snapshot and
/// batch, which is what the bench oracle gate compares.
std::string RenderReconcileBody(const QueryBatch& batch,
                                const BatchAnswer& answer);

/// Decodes %XX escapes and '+' as space (application/x-www-form-urlencoded).
std::string UrlDecode(std::string_view s);

/// Translates HTTP requests into ReconService calls. Stateless besides the
/// service pointer; one instance serves every server thread concurrently.
class ServiceHandler {
 public:
  explicit ServiceHandler(ReconService* service) : service_(service) {}

  HttpResponse Handle(const HttpRequest& req) const;

 private:
  HttpResponse Manifest() const;
  HttpResponse Reconcile(const HttpRequest& req) const;
  HttpResponse Ingest(const HttpRequest& req) const;
  HttpResponse Entity(const std::string& id_text) const;
  HttpResponse Healthz() const;
  HttpResponse Stats() const;

  ReconService* service_;
};

}  // namespace recon::service

#endif  // RECON_SERVICE_HANDLERS_H_
