#include "service/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "service/wal.h"
#include "util/crc32c.h"

namespace recon::service {
namespace {

constexpr char kCkptMagic[8] = {'R', 'C', 'N', 'C', 'K', 'P', 'T', '1'};
constexpr size_t kPrefixBytes = 8 + 4 + 4;  // magic | payload_len | crc.
constexpr char kTmpName[] = "checkpoint.tmp";

void PutU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::string EncodePayload(const CheckpointData& data) {
  std::string payload;
  PutU64(payload, data.generation);
  PutU32(payload, static_cast<uint32_t>(data.epoch_refs.size()));
  for (const int64_t count : data.epoch_refs) {
    PutU64(payload, static_cast<uint64_t>(count));
  }
  PutU64(payload, data.dataset_text.size());
  payload.append(data.dataset_text);
  PutU32(payload, static_cast<uint32_t>(data.clusters.size()));
  for (const int32_t cluster : data.clusters) {
    PutU32(payload, static_cast<uint32_t>(cluster));
  }
  return payload;
}

Status DecodePayload(const char* data, size_t size, CheckpointData& out) {
  size_t pos = 0;
  auto get = [&](void* dst, size_t n) {
    if (pos + n > size) return false;
    std::memcpy(dst, data + pos, n);
    pos += n;
    return true;
  };
  uint32_t num_epochs = 0;
  if (!get(&out.generation, 8) || !get(&num_epochs, 4)) {
    return Status::FailedPrecondition("checkpoint: truncated payload");
  }
  if (num_epochs != out.generation + 1 || num_epochs > size) {
    return Status::FailedPrecondition("checkpoint: bad epoch table size");
  }
  out.epoch_refs.resize(num_epochs);
  for (uint32_t g = 0; g < num_epochs; ++g) {
    uint64_t count;
    if (!get(&count, 8)) {
      return Status::FailedPrecondition("checkpoint: truncated epoch table");
    }
    out.epoch_refs[g] = static_cast<int64_t>(count);
    if (g > 0 && out.epoch_refs[g] < out.epoch_refs[g - 1]) {
      return Status::FailedPrecondition("checkpoint: non-monotone epochs");
    }
  }
  uint64_t text_len;
  if (!get(&text_len, 8) || pos + text_len > size) {
    return Status::FailedPrecondition("checkpoint: truncated dataset");
  }
  out.dataset_text.assign(data + pos, text_len);
  pos += text_len;
  uint32_t num_clusters;
  if (!get(&num_clusters, 4) || pos + 4ull * num_clusters > size) {
    return Status::FailedPrecondition("checkpoint: truncated clusters");
  }
  out.clusters.resize(num_clusters);
  for (uint32_t i = 0; i < num_clusters; ++i) {
    uint32_t cluster = 0;
    if (!get(&cluster, 4)) {
      return Status::FailedPrecondition("checkpoint: truncated clusters");
    }
    out.clusters[i] = static_cast<int32_t>(cluster);
  }
  if (pos != size) {
    return Status::FailedPrecondition("checkpoint: trailing bytes");
  }
  if (!out.epoch_refs.empty() &&
      out.epoch_refs.back() != static_cast<int64_t>(num_clusters)) {
    return Status::FailedPrecondition(
        "checkpoint: cluster count does not match final epoch");
  }
  return Status::Ok();
}

/// Parses "<stem>-<number><suffix>"; false when the name has another shape.
bool ParseGenerationName(const std::string& name, const char* stem,
                         const char* suffix, uint64_t& generation) {
  const size_t stem_len = std::strlen(stem);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() <= stem_len + suffix_len) return false;
  if (name.compare(0, stem_len, stem) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  generation = 0;
  for (size_t i = stem_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    generation = generation * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return true;
}

}  // namespace

std::string CheckpointFileName(uint64_t generation) {
  return "checkpoint-" + std::to_string(generation) + ".ckpt";
}

std::string WalFileName(uint64_t generation) {
  return "wal-" + std::to_string(generation) + ".log";
}

Status WriteCheckpointFile(const std::string& dir, const CheckpointData& data,
                           IoFaultHook* hook, std::string* path_out) {
  const std::string payload = EncodePayload(data);
  std::string file(kCkptMagic, sizeof(kCkptMagic));
  PutU32(file, static_cast<uint32_t>(payload.size()));
  PutU32(file, Crc32cOf(payload));
  file.append(payload);

  const std::string tmp_path = dir + "/" + kTmpName;
  const std::string final_path = dir + "/" + CheckpointFileName(data.generation);

  // 1. Write the temp file.
  switch (wal_internal::ConsultHook(hook, IoOp::kCheckpointWrite)) {
    case IoFault::kNone: {
      const int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
      if (fd < 0) {
        return Status::Internal("create " + tmp_path + ": " +
                                std::string(std::strerror(errno)));
      }
      const Status st = wal_internal::WriteAll(fd, file.data(), file.size());
      if (!st.ok()) {
        ::close(fd);
        return st;
      }
      // 2. fsync the temp file before renaming: rename must never expose
      // bytes that are not yet durable.
      switch (wal_internal::ConsultHook(hook, IoOp::kCheckpointSync)) {
        case IoFault::kNone:
          break;
        case IoFault::kError:
          ::close(fd);
          return Status::Internal("injected fsync error: " + tmp_path);
        default:
          ::close(fd);
          return Status::Internal("injected crash at checkpoint-sync: " +
                                  tmp_path);
      }
      if (::fsync(fd) < 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        return Status::Internal("fsync " + tmp_path + ": " + err);
      }
      ::close(fd);
      break;
    }
    case IoFault::kTornWrite: {
      // Half the file lands, then the "process dies".
      const int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
      if (fd >= 0) {
        (void)!wal_internal::WriteAll(fd, file.data(), file.size() / 2).ok();
        ::close(fd);
      }
      return Status::Internal("injected torn write at checkpoint-write: " +
                              tmp_path);
    }
    case IoFault::kError:
      return Status::Internal("injected write error at checkpoint-write: " +
                              tmp_path);
    case IoFault::kCrash:
      return Status::Internal("injected crash at checkpoint-write: " +
                              tmp_path);
  }

  // 3. Atomic rename into place.
  switch (wal_internal::ConsultHook(hook, IoOp::kCheckpointRename)) {
    case IoFault::kNone:
      break;
    case IoFault::kError:
      return Status::Internal("injected rename error: " + final_path);
    default:
      return Status::Internal("injected crash at checkpoint-rename: " +
                              final_path);
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) < 0) {
    return Status::Internal("rename " + tmp_path + " -> " + final_path + ": " +
                            std::string(std::strerror(errno)));
  }

  // 4. fsync the directory so the new name survives a crash.
  RECON_RETURN_IF_ERROR(wal_internal::SyncDir(dir, hook));
  if (path_out != nullptr) *path_out = final_path;
  return Status::Ok();
}

StatusOr<CheckpointData> ReadCheckpointFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " +
                            std::string(std::strerror(errno)));
  }
  std::string raw;
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("read " + path + ": " + err);
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  if (raw.size() < kPrefixBytes ||
      std::memcmp(raw.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::FailedPrecondition("checkpoint " + path +
                                      ": missing or corrupt magic");
  }
  uint32_t payload_len, crc;
  std::memcpy(&payload_len, raw.data() + 8, sizeof(payload_len));
  std::memcpy(&crc, raw.data() + 12, sizeof(crc));
  if (raw.size() != kPrefixBytes + payload_len) {
    return Status::FailedPrecondition("checkpoint " + path +
                                      ": truncated or oversized");
  }
  if (Crc32c(raw.data() + kPrefixBytes, payload_len) != crc) {
    return Status::FailedPrecondition("checkpoint " + path + ": crc mismatch");
  }
  CheckpointData data;
  Status st = DecodePayload(raw.data() + kPrefixBytes, payload_len, data);
  if (!st.ok()) {
    return Status::FailedPrecondition("checkpoint " + path + ": " +
                                      st.message());
  }
  return data;
}

StatusOr<DataDirState> ScanDataDir(const std::string& dir) {
  DataDirState state;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return state;  // exists = false.
    return Status::Internal("opendir " + dir + ": " +
                            std::string(std::strerror(errno)));
  }
  state.exists = true;
  std::vector<std::pair<uint64_t, std::string>> ckpts, wals;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    uint64_t generation;
    if (ParseGenerationName(name, "checkpoint-", ".ckpt", generation)) {
      ckpts.emplace_back(generation, dir + "/" + name);
    } else if (ParseGenerationName(name, "wal-", ".log", generation)) {
      wals.emplace_back(generation, dir + "/" + name);
    } else if (name == kTmpName) {
      state.tmp_paths.push_back(dir + "/" + name);
    }
    // Unknown names are left alone: not ours to delete.
  }
  ::closedir(d);
  std::sort(ckpts.rbegin(), ckpts.rend());  // Newest first.
  std::sort(wals.rbegin(), wals.rend());
  for (auto& [generation, path] : ckpts) {
    state.checkpoint_generations.push_back(generation);
    state.checkpoint_paths.push_back(std::move(path));
  }
  for (auto& [generation, path] : wals) {
    state.wal_generations.push_back(generation);
    state.wal_paths.push_back(std::move(path));
  }
  return state;
}

}  // namespace recon::service
