#include "service/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

namespace recon::service {
namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
/// Client-side response cap for HttpFetch (the server body bound is
/// HttpServerOptions::max_body_bytes).
constexpr size_t kMaxFetchBytes = 8 * 1024 * 1024;

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

void SetRecvTimeoutMs(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void SetSendTimeoutMs(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes all of `data`; false on error. MSG_NOSIGNAL so a peer that hung
/// up yields EPIPE instead of killing the process.
bool SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool SendAll(int fd, const std::string& data) {
  return SendAll(fd, data.data(), data.size());
}

std::string RenderResponse(const HttpResponse& res) {
  std::string out = "HTTP/1.1 " + std::to_string(res.status) + " " +
                    HttpStatusText(res.status) + "\r\n";
  out += "Content-Type: " + res.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(res.body.size()) + "\r\n";
  for (const auto& [name, value] : res.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += res.body;
  return out;
}

/// Reads until the header terminator, filling `buf` (which may end up
/// holding the start of the body too). Returns the offset just past
/// "\r\n\r\n", or -1 on error/overflow/EOF-before-terminator.
ssize_t ReadHeaders(int fd, std::string& buf) {
  char chunk[4096];
  while (true) {
    const size_t scan_from = buf.size() >= 3 ? buf.size() - 3 : 0;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return -1;
    buf.append(chunk, static_cast<size_t>(n));
    const size_t pos = buf.find("\r\n\r\n", scan_from);
    if (pos != std::string::npos) return static_cast<ssize_t>(pos + 4);
    if (buf.size() > kMaxHeaderBytes) return -1;
  }
}

/// Parses the request line + headers from buf[0, header_end); body bytes
/// already read stay in `buf` past header_end. False on malformed input.
bool ParseRequest(const std::string& buf, size_t header_end, HttpRequest& req) {
  size_t line_end = buf.find("\r\n");
  if (line_end == std::string::npos || line_end >= header_end) return false;

  // Request line: METHOD SP target SP HTTP/x.y
  const std::string line = buf.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return false;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const size_t qpos = target.find('?');
  if (qpos == std::string::npos) {
    req.path = std::move(target);
  } else {
    req.path = target.substr(0, qpos);
    req.query = target.substr(qpos + 1);
  }

  // Header lines until the blank line.
  size_t pos = line_end + 2;
  while (pos + 2 <= header_end) {
    const size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol + 2 > header_end) return false;
    if (eol == pos) break;  // Blank line.
    const std::string header = buf.substr(pos, eol - pos);
    const size_t colon = header.find(':');
    if (colon == std::string::npos) return false;
    std::string name = ToLower(header.substr(0, colon));
    size_t vstart = colon + 1;
    while (vstart < header.size() && (header[vstart] == ' ' || header[vstart] == '\t')) {
      ++vstart;
    }
    size_t vend = header.size();
    while (vend > vstart && (header[vend - 1] == ' ' || header[vend - 1] == '\t')) {
      --vend;
    }
    req.headers.emplace_back(std::move(name), header.substr(vstart, vend - vstart));
    pos = eol + 2;
  }
  return true;
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& name) const {
  static const std::string kEmpty;
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return kEmpty;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)),
      options_(options),
      pool_(std::make_unique<runtime::ThreadPool>(
          options.num_threads < 1 ? 1 : options.num_threads)) {
  if (options_.recv_timeout_ms < 1) options_.recv_timeout_ms = 1;
  if (options_.listen_backlog < 1) options_.listen_backlog = 1;
}

HttpServer::HttpServer(Handler handler, int num_threads)
    : HttpServer(std::move(handler), [num_threads] {
        HttpServerOptions options;
        options.num_threads = num_threads;
        return options;
      }()) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(int port) {
  if (listen_fd_ >= 0) return Status::InvalidArgument("server already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket: " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind port " + std::to_string(port) + ": " + err);
  }
  if (::listen(fd, options_.listen_backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname: " + err);
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() wakes the blocking accept(); close alone is not guaranteed to.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // The pool destructor drains every queued connection task before joining,
  // so no accepted request is dropped mid-flight.
  pool_.reset();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF/EINVAL after Stop()'s shutdown; anything else while running
      // (EMFILE, ...) — retry until told to stop.
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    // Bounded admission: claim an in-flight slot or shed right here.
    // Shedding on the accept thread keeps the worker pool for admitted
    // work and bounds memory — a shed connection never buffers a body.
    if (options_.max_inflight > 0) {
      int current = inflight_.load(std::memory_order_relaxed);
      bool admitted = false;
      while (current < options_.max_inflight) {
        if (inflight_.compare_exchange_weak(current, current + 1,
                                            std::memory_order_relaxed)) {
          admitted = true;
          break;
        }
      }
      if (!admitted) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        ShedConnection(fd);
        continue;
      }
    } else {
      inflight_.fetch_add(1, std::memory_order_relaxed);
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    pool_->Submit([this, fd] {
      ServeConnection(fd);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
}

void HttpServer::ShedConnection(int fd) {
  // Tight timeouts: this runs on the accept thread, so a hostile peer may
  // stall it at most ~250ms, while a well-behaved loopback client costs
  // microseconds.
  SetRecvTimeoutMs(fd, 250);
  SetSendTimeoutMs(fd, 250);
  HttpResponse res;
  res.status = 503;
  res.body = "{\"error\":\"overloaded: " +
             std::to_string(options_.max_inflight) +
             " requests in flight\"}";
  res.extra_headers.emplace_back("Retry-After",
                                 std::to_string(options_.retry_after_s));
  SendAll(fd, RenderResponse(res));
  // Close without an RST: the client may still be sending its request; if
  // we close with unread bytes in the receive queue the kernel resets the
  // connection and the client can lose the 503. Half-close our side, then
  // drain (bounded) until the client sees the response and closes.
  ::shutdown(fd, SHUT_WR);
  char sink[4096];
  size_t drained = 0;
  while (drained < 64 * 1024) {
    const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n <= 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, timeout, or error: done either way.
    drained += static_cast<size_t>(n);
  }
  ::close(fd);
}

void HttpServer::ServeConnection(int fd) {
  SetRecvTimeoutMs(fd, options_.recv_timeout_ms);
  std::string buf;
  HttpRequest req;
  const ssize_t header_end = ReadHeaders(fd, buf);
  bool parsed = header_end >= 0 &&
                ParseRequest(buf, static_cast<size_t>(header_end), req);
  HttpResponse res;
  if (!parsed) {
    res.status = 400;
    res.body = "{\"error\":\"malformed request\"}";
    SendAll(fd, RenderResponse(res));
    ::close(fd);
    return;
  }

  size_t content_length = 0;
  const std::string& cl = req.Header("content-length");
  if (!cl.empty()) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cl.c_str(), &end, 10);
    if (errno != 0 || end == cl.c_str() || *end != '\0' ||
        v > options_.max_body_bytes) {
      res.status = v > options_.max_body_bytes ? 413 : 400;
      res.body = "{\"error\":\"bad content-length\"}";
      SendAll(fd, RenderResponse(res));
      ::close(fd);
      return;
    }
    content_length = static_cast<size_t>(v);
  }

  // curl sends Expect: 100-continue for large bodies and waits for the nod.
  if (ToLower(req.Header("expect")) == "100-continue") {
    SendAll(fd, "HTTP/1.1 100 Continue\r\n\r\n");
  }

  req.body = buf.substr(static_cast<size_t>(header_end));
  while (req.body.size() < content_length) {
    char chunk[8192];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {  // Timeout or premature EOF.
      ::close(fd);
      return;
    }
    req.body.append(chunk, static_cast<size_t>(n));
  }
  req.body.resize(content_length);  // Ignore pipelined extra bytes.

  res = handler_(req);
  SendAll(fd, RenderResponse(res));
  ::close(fd);
}

StatusOr<HttpResponse> HttpFetch(int port, const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::vector<std::string>& headers) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket: " + std::string(std::strerror(errno)));
  SetRecvTimeoutMs(fd, 10'000);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect 127.0.0.1:" + std::to_string(port) + ": " + err);
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1:" + std::to_string(port) + "\r\n";
  for (const std::string& header : headers) request += header + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status::Internal("send failed");
  }

  // The server closes after one response: read to EOF.
  std::string raw;
  char chunk[8192];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
    if (raw.size() > kMaxFetchBytes + kMaxHeaderBytes) break;
  }
  ::close(fd);

  // Skip interim 1xx responses (the server's 100 Continue).
  size_t start = 0;
  while (true) {
    if (raw.compare(start, 9, "HTTP/1.1 ") != 0 &&
        raw.compare(start, 9, "HTTP/1.0 ") != 0) {
      return Status::Internal("malformed response");
    }
    const int status = std::atoi(raw.c_str() + start + 9);
    const size_t head_end = raw.find("\r\n\r\n", start);
    if (head_end == std::string::npos) return Status::Internal("truncated response");
    if (status >= 200) {
      HttpResponse res;
      res.status = status;
      // Headers, lower-cased, reusing extra_headers as the parsed list.
      size_t pos = raw.find("\r\n", start) + 2;
      while (pos < head_end) {
        const size_t eol = raw.find("\r\n", pos);
        const std::string line = raw.substr(pos, eol - pos);
        const size_t colon = line.find(':');
        if (colon != std::string::npos) {
          size_t vstart = colon + 1;
          while (vstart < line.size() && line[vstart] == ' ') ++vstart;
          std::string name = ToLower(line.substr(0, colon));
          if (name == "content-type") {
            res.content_type = line.substr(vstart);
          } else {
            res.extra_headers.emplace_back(std::move(name), line.substr(vstart));
          }
        }
        pos = eol + 2;
      }
      res.body = raw.substr(head_end + 4);
      return res;
    }
    start = head_end + 4;  // 1xx: move past it to the real response.
  }
}

}  // namespace recon::service
