// Checkpoints for the reconciliation service (DESIGN.md §15).
//
// A checkpoint is a compact, self-validating image of the service's
// durable state at one flush generation g:
//   * the epoch table — the cumulative flushed-reference count after every
//     generation 0..g. Replay must reproduce the *exact* flush-epoch
//     structure, not just the final reference set: the incremental
//     reconciler's fixed point depends on where the epoch boundaries fell
//     (batched insertion approximates — not equals — the one-shot batch
//     result), so byte-identical recovery re-runs the same epochs through
//     the normal staging path.
//   * the full dataset at g (schema + references + golds + provenance),
//     serialized with model/text_io.
//   * the published entity clusters at g — not used to *compute* recovery
//     (replay recomputes them) but compared against the replayed result as
//     an end-to-end integrity gate: any divergence means corrupt state or
//     a broken determinism invariant, and recovery refuses to serve it.
//
// Atomicity protocol: write checkpoint.tmp, fsync it, rename(2) to
// checkpoint-<g>.ckpt, fsync the directory. Readers only ever see a fully
// written checkpoint or none; a crash mid-write leaves a tmp file that the
// next recovery deletes. After a successful checkpoint the WAL rotates to
// a fresh segment based at g and stale files are removed — so the WAL's
// length is bounded by checkpoint_every epochs of traffic.
//
// File layout: magic "RCNCKPT1" | u32 payload_len | u32 crc32c(payload) |
// payload (see checkpoint.cc). Host-endian, like the WAL.

#ifndef RECON_SERVICE_CHECKPOINT_H_
#define RECON_SERVICE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/fault_injection.h"
#include "util/status.h"

namespace recon::service {

/// One checkpoint, decoded. `dataset_text` stays serialized at this layer
/// (model/text_io format); the service parses it during recovery.
struct CheckpointData {
  uint64_t generation = 0;
  /// epoch_refs[g] = references flushed as of generation g; size is
  /// generation + 1 (epoch 0 is the initial load).
  std::vector<int64_t> epoch_refs;
  std::string dataset_text;
  /// Published cluster id per reference at `generation`.
  std::vector<int32_t> clusters;
};

/// File name for generation `g` within a data dir ("checkpoint-<g>.ckpt").
std::string CheckpointFileName(uint64_t generation);
/// WAL segment name based at generation `g` ("wal-<g>.log").
std::string WalFileName(uint64_t generation);

/// Writes `data` into `dir` under the atomic tmp+rename protocol.
/// On success `*path_out` (if non-null) is the final path.
Status WriteCheckpointFile(const std::string& dir, const CheckpointData& data,
                           IoFaultHook* hook, std::string* path_out);

/// Reads and validates one checkpoint file (magic + CRC + structure).
StatusOr<CheckpointData> ReadCheckpointFile(const std::string& path);

/// What a scan of the data dir found. Checkpoints are listed newest-first;
/// recovery tries them in order and treats the rest as stale.
struct DataDirState {
  bool exists = false;
  /// Full paths of checkpoint files, descending by generation.
  std::vector<std::string> checkpoint_paths;
  std::vector<uint64_t> checkpoint_generations;  ///< Parallel to paths.
  /// Full paths of WAL segments, with their base generations.
  std::vector<std::string> wal_paths;
  std::vector<uint64_t> wal_generations;  ///< Parallel to wal_paths.
  /// Leftover temp files (crashed checkpoint writes), safe to delete.
  std::vector<std::string> tmp_paths;

  bool empty() const {
    return checkpoint_paths.empty() && wal_paths.empty();
  }
};

/// Lists the durability files in `dir`. Not finding the dir is not an
/// error (exists=false); unreadable dirs are.
StatusOr<DataDirState> ScanDataDir(const std::string& dir);

}  // namespace recon::service

#endif  // RECON_SERVICE_CHECKPOINT_H_
