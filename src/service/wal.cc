#include "service/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/crc32c.h"

namespace recon::service {
namespace {

constexpr char kWalMagic[8] = {'R', 'C', 'N', 'W', 'A', 'L', '1', '\n'};
constexpr size_t kHeaderBytes = 8 + 8 + 4;  // magic | base_generation | crc.
/// A record frame never legitimately exceeds this; a larger length prefix
/// in a tail means the prefix itself is garbage.
constexpr uint32_t kMaxRecordBytes = 256u * 1024 * 1024;

// ---- Buffer put/get -------------------------------------------------------

void PutU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI32(std::string& out, int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutString(std::string& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked forward cursor over a decoded payload.
struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool GetBytes(void* out, size_t n) {
    if (pos + n > size) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  bool GetU32(uint32_t& v) { return GetBytes(&v, sizeof(v)); }
  bool GetU64(uint64_t& v) { return GetBytes(&v, sizeof(v)); }
  bool GetI32(int32_t& v) { return GetBytes(&v, sizeof(v)); }
  bool GetU8(uint8_t& v) { return GetBytes(&v, sizeof(v)); }
  bool GetString(std::string& s) {
    uint32_t len;
    if (!GetU32(len) || pos + len > size) return false;
    s.assign(data + pos, len);
    pos += len;
    return true;
  }
  bool AtEnd() const { return pos == size; }
};

// ---- Record payload encode/decode -----------------------------------------

void EncodeReference(std::string& out, const Reference& ref, int gold,
                     Provenance provenance) {
  PutI32(out, ref.class_id());
  PutI32(out, gold);
  out.push_back(static_cast<char>(provenance));
  const int num_attrs = ref.num_attributes();
  PutU32(out, static_cast<uint32_t>(num_attrs));
  for (int attr = 0; attr < num_attrs; ++attr) {
    const auto& values = ref.atomic_values(attr);
    PutU32(out, static_cast<uint32_t>(values.size()));
    for (const std::string& v : values) PutString(out, v);
  }
  for (int attr = 0; attr < num_attrs; ++attr) {
    const auto& targets = ref.associations(attr);
    PutU32(out, static_cast<uint32_t>(targets.size()));
    for (const RefId t : targets) PutI32(out, t);
  }
}

bool DecodeReference(Cursor& cur, WalRecord& record) {
  int32_t class_id, gold;
  uint8_t provenance;
  uint32_t num_attrs;
  if (!cur.GetI32(class_id) || !cur.GetI32(gold) || !cur.GetU8(provenance) ||
      !cur.GetU32(num_attrs)) {
    return false;
  }
  if (provenance > static_cast<uint8_t>(Provenance::kOther) ||
      num_attrs > 4096) {
    return false;
  }
  Reference ref(class_id, static_cast<int>(num_attrs));
  for (uint32_t attr = 0; attr < num_attrs; ++attr) {
    uint32_t n;
    if (!cur.GetU32(n) || n > cur.size) return false;
    for (uint32_t i = 0; i < n; ++i) {
      std::string v;
      if (!cur.GetString(v)) return false;
      ref.AddAtomicValue(static_cast<int>(attr), std::move(v));
    }
  }
  for (uint32_t attr = 0; attr < num_attrs; ++attr) {
    uint32_t n;
    if (!cur.GetU32(n) || n > cur.size) return false;
    for (uint32_t i = 0; i < n; ++i) {
      int32_t target;
      if (!cur.GetI32(target)) return false;
      ref.AddAssociation(static_cast<int>(attr), target);
    }
  }
  record.refs.push_back(std::move(ref));
  record.golds.push_back(gold);
  record.provenances.push_back(static_cast<Provenance>(provenance));
  return true;
}

/// Decodes one record payload. False = structurally invalid (treated the
/// same as a CRC mismatch: the tail is cut before this record).
bool DecodePayload(const char* data, size_t size, WalRecord& record) {
  Cursor cur{data, size};
  uint8_t type;
  if (!cur.GetU8(type)) return false;
  switch (type) {
    case WalRecord::kBatch: {
      record.type = WalRecord::kBatch;
      uint32_t nrefs;
      if (!cur.GetU32(nrefs) || nrefs > cur.size) return false;
      record.refs.reserve(nrefs);
      for (uint32_t i = 0; i < nrefs; ++i) {
        if (!DecodeReference(cur, record)) return false;
      }
      return cur.AtEnd();
    }
    case WalRecord::kFlush:
    case WalRecord::kSeal:
      record.type = static_cast<WalRecord::Type>(type);
      return cur.GetU64(record.generation) && cur.AtEnd();
    default:
      return false;
  }
}

std::string FrameRecord(const std::string& payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU32(frame, Crc32cOf(payload));
  frame.append(payload);
  return frame;
}

std::string HeaderBytes(uint64_t base_generation) {
  std::string header(kWalMagic, sizeof(kWalMagic));
  PutU64(header, base_generation);
  PutU32(header, Crc32cOf(header));
  return header;
}

}  // namespace

// ---- Shared helpers -------------------------------------------------------

namespace wal_internal {

IoFault ConsultHook(IoFaultHook* hook, IoOp op) {
  return hook != nullptr ? hook->OnIo(op) : IoFault::kNone;
}

Status WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write: " + std::string(std::strerror(errno)));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status SyncDir(const std::string& dir, IoFaultHook* hook) {
  switch (ConsultHook(hook, IoOp::kDirSync)) {
    case IoFault::kNone:
      break;
    case IoFault::kError:
      return Status::Internal("injected dir-sync error: " + dir);
    default:
      return Status::Internal("injected crash at dir-sync: " + dir);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("open dir " + dir + ": " +
                            std::string(std::strerror(errno)));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc < 0) {
    return Status::Internal("fsync dir " + dir + ": " +
                            std::string(std::strerror(saved_errno)));
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path, IoFaultHook* hook) {
  switch (ConsultHook(hook, IoOp::kRemove)) {
    case IoFault::kNone:
      break;
    case IoFault::kError:
      return Status::Internal("injected remove error: " + path);
    default:
      return Status::Internal("injected crash at remove: " + path);
  }
  if (::unlink(path.c_str()) < 0 && errno != ENOENT) {
    return Status::Internal("unlink " + path + ": " +
                            std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace wal_internal

// ---- Policy parsing -------------------------------------------------------

StatusOr<FsyncPolicy> ParseFsyncPolicy(const std::string& text) {
  if (text == "every-record") return FsyncPolicy::kEveryRecord;
  if (text == "every-flush") return FsyncPolicy::kEveryFlush;
  if (text == "none") return FsyncPolicy::kNone;
  return Status::InvalidArgument(
      "unknown fsync policy \"" + text +
      "\" (expected every-record, every-flush, or none)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord: return "every-record";
    case FsyncPolicy::kEveryFlush: return "every-flush";
    case FsyncPolicy::kNone: return "none";
  }
  return "unknown";
}

// ---- Reader ---------------------------------------------------------------

StatusOr<WalContents> ReadWalFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " +
                            std::string(std::strerror(errno)));
  }
  std::string raw;
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("read " + path + ": " + err);
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  WalContents contents;
  if (raw.size() < kHeaderBytes ||
      std::memcmp(raw.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::FailedPrecondition("wal " + path +
                                      ": missing or corrupt header");
  }
  uint32_t header_crc;
  std::memcpy(&header_crc, raw.data() + 16, sizeof(header_crc));
  if (Crc32c(raw.data(), 16) != header_crc) {
    return Status::FailedPrecondition("wal " + path + ": header crc mismatch");
  }
  std::memcpy(&contents.base_generation, raw.data() + 8, sizeof(uint64_t));

  size_t pos = kHeaderBytes;
  contents.append_offset = pos;
  while (true) {
    if (pos + 8 > raw.size()) break;  // No room for a frame prefix: tail.
    uint32_t len, crc;
    std::memcpy(&len, raw.data() + pos, sizeof(len));
    std::memcpy(&crc, raw.data() + pos + 4, sizeof(crc));
    if (len > kMaxRecordBytes || pos + 8 + len > raw.size()) break;
    if (Crc32c(raw.data() + pos + 8, len) != crc) break;
    WalRecord record;
    if (!DecodePayload(raw.data() + pos + 8, len, record)) break;
    pos += 8 + len;
    if (record.type == WalRecord::kSeal) {
      // A seal is only a clean-shutdown marker if nothing follows it; a
      // reopened-and-appended log replays past a mid-log seal. Either way
      // the seal itself carries no state and is not kept, and appends
      // resume before it (append_offset is not advanced).
      contents.sealed = pos >= raw.size();
      if (contents.sealed) break;
      continue;
    }
    contents.sealed = false;
    contents.records.push_back(std::move(record));
    contents.append_offset = pos;
  }
  contents.truncated_bytes =
      raw.size() - (contents.sealed ? pos : contents.append_offset);
  if (contents.sealed) contents.truncated_bytes = 0;
  return contents;
}

// ---- Writer ---------------------------------------------------------------

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Create(
    const std::string& dir, const std::string& path, uint64_t base_generation,
    FsyncPolicy policy, std::shared_ptr<IoFaultHook> hook) {
  switch (wal_internal::ConsultHook(hook.get(), IoOp::kWalCreate)) {
    case IoFault::kNone:
      break;
    case IoFault::kError:
      return Status::Internal("injected wal-create error: " + path);
    default:
      return Status::Internal("injected crash at wal-create: " + path);
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal("create " + path + ": " +
                            std::string(std::strerror(errno)));
  }
  const std::string header = HeaderBytes(base_generation);
  Status st = wal_internal::WriteAll(fd, header.data(), header.size());
  if (st.ok() && ::fsync(fd) < 0) {
    st = Status::Internal("fsync " + path + ": " +
                          std::string(std::strerror(errno)));
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  // Persist the file's existence too, or a crash could forget the name.
  st = wal_internal::SyncDir(dir, hook.get());
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  auto log = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, base_generation, policy, std::move(hook)));
  log->appended_bytes_ = static_cast<int64_t>(header.size());
  return log;
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::OpenForAppend(
    const std::string& path, uint64_t base_generation, uint64_t append_offset,
    uint64_t durable_generation, FsyncPolicy policy,
    std::shared_ptr<IoFaultHook> hook) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " +
                            std::string(std::strerror(errno)));
  }
  // Cut the torn tail (and any trailing seal) so the next append starts on
  // a record boundary, and make the cut durable before trusting it.
  if (::ftruncate(fd, static_cast<off_t>(append_offset)) < 0 ||
      ::lseek(fd, 0, SEEK_END) < 0 || ::fsync(fd) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("truncate " + path + ": " + err);
  }
  auto log = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, base_generation, policy, std::move(hook)));
  log->durable_generation_ = durable_generation;
  log->appended_bytes_ = static_cast<int64_t>(append_offset);
  return log;
}

Status WriteAheadLog::AppendFrame(const std::string& frame) {
  if (failed_) {
    return Status::FailedPrecondition("wal " + path_ +
                                      ": unusable after earlier failure");
  }
  size_t write_bytes = frame.size();
  bool poison = false;
  Status injected = Status::Ok();
  switch (wal_internal::ConsultHook(hook_.get(), IoOp::kWalAppend)) {
    case IoFault::kNone:
      break;
    case IoFault::kCrash:
      write_bytes = 0;
      poison = true;
      injected = Status::Internal("injected crash at wal-append: " + path_);
      break;
    case IoFault::kTornWrite:
      write_bytes = frame.size() / 2;
      poison = true;
      injected = Status::Internal("injected torn write at wal-append: " + path_);
      break;
    case IoFault::kError:
      // EIO-style short write: nothing durable landed, process lives. The
      // log still goes unusable — after a failed append the file tail is
      // unknowable without a re-scan.
      poison = true;
      injected = Status::Internal("injected write error at wal-append: " + path_);
      write_bytes = 0;
      break;
  }
  if (write_bytes > 0 || injected.ok()) {
    const Status st = wal_internal::WriteAll(fd_, frame.data(), write_bytes);
    if (!st.ok()) {
      failed_ = true;
      return st;
    }
  }
  if (poison) {
    failed_ = true;
    return injected;
  }
  ++appended_records_;
  appended_bytes_ += static_cast<int64_t>(frame.size());
  return Status::Ok();
}

Status WriteAheadLog::Sync(IoOp op) {
  switch (wal_internal::ConsultHook(hook_.get(), op)) {
    case IoFault::kNone:
      break;
    case IoFault::kError:
      failed_ = true;
      return Status::Internal("injected fsync error: " + path_);
    default:
      failed_ = true;
      return Status::Internal("injected crash at wal-sync: " + path_);
  }
  if (::fsync(fd_) < 0) {
    // After a failed fsync the kernel may have dropped the dirty pages:
    // the durable tail is unknowable, so the log is done (fsync-gate
    // semantics). The service degrades to read-only.
    failed_ = true;
    return Status::Internal("fsync " + path_ + ": " +
                            std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

Status WriteAheadLog::AppendBatch(const std::vector<Reference>& refs,
                                  const std::vector<int>& golds) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecord::kBatch));
  PutU32(payload, static_cast<uint32_t>(refs.size()));
  for (size_t i = 0; i < refs.size(); ++i) {
    const int gold = golds.empty() ? -1 : golds[i];
    EncodeReference(payload, refs[i], gold, Provenance::kOther);
  }
  RECON_RETURN_IF_ERROR(AppendFrame(FrameRecord(payload)));
  if (policy_ == FsyncPolicy::kEveryRecord) {
    return Sync(IoOp::kWalSync);
  }
  return Status::Ok();
}

Status WriteAheadLog::AppendFlush(uint64_t generation) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecord::kFlush));
  PutU64(payload, generation);
  RECON_RETURN_IF_ERROR(AppendFrame(FrameRecord(payload)));
  if (policy_ != FsyncPolicy::kNone) {
    RECON_RETURN_IF_ERROR(Sync(IoOp::kWalSync));
  }
  durable_generation_ = generation;
  return Status::Ok();
}

Status WriteAheadLog::AppendSeal(uint64_t generation) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecord::kSeal));
  PutU64(payload, generation);
  RECON_RETURN_IF_ERROR(AppendFrame(FrameRecord(payload)));
  return Sync(IoOp::kWalSync);
}

}  // namespace recon::service
