// Embedded, dependency-free HTTP/1.1 server for the reconciliation daemon
// (DESIGN.md §12): a blocking accept loop on its own thread feeds accepted
// connections as tasks to a PR-1 runtime thread pool. One request per
// connection (the server always answers `Connection: close`), Content-Length
// bodies only, `Expect: 100-continue` honored — the smallest surface that
// serves curl, OpenRefine clients, and the loopback smoke test.

#ifndef RECON_SERVICE_HTTP_H_
#define RECON_SERVICE_HTTP_H_

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"
#include "util/status.h"

namespace recon::service {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (upper-cased as received).
  std::string path;    ///< Path without the query string ("/reconcile").
  std::string query;   ///< Raw query string after '?', or "".
  std::vector<std::pair<std::string, std::string>> headers;  ///< Lower-cased names.
  std::string body;

  /// First header named `name` (lower-case), or "".
  const std::string& Header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Standard reason phrase for the handful of statuses the service uses.
const char* HttpStatusText(int status);

/// Server tuning knobs (DESIGN.md §15 shedding policy).
struct HttpServerOptions {
  /// Request-handling workers (clamped to >= 1).
  int num_threads = 1;
  /// Admission bound: connections handed to workers but not yet answered.
  /// Above it the accept loop sheds with `503 + Retry-After` immediately
  /// instead of queueing without bound — saturation degrades to fast,
  /// honest rejections, never to stalled readers. 0 = unbounded.
  int max_inflight = 0;
  /// Per-connection socket read timeout; a stalled client cannot park a
  /// worker forever.
  int recv_timeout_ms = 10'000;
  /// Largest accepted request body (413 above it).
  size_t max_body_bytes = 8u * 1024 * 1024;
  /// Retry-After hint attached to shed responses, seconds.
  int retry_after_s = 1;
  /// listen(2) backlog: the kernel-side accept queue is the second
  /// backpressure stage behind max_inflight.
  int listen_backlog = 128;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Handler handler, HttpServerOptions options);

  /// `num_threads` request-handling workers, defaults elsewhere.
  HttpServer(Handler handler, int num_threads);

  /// Stops and joins (see Stop()).
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 = ephemeral), starts listening and spawns the
  /// accept thread. Fails with a status (address in use, ...) instead of
  /// aborting.
  Status Start(int port);

  /// The bound port (useful after Start(0)).
  int port() const { return port_; }

  /// Closes the listening socket, joins the accept thread, and drains the
  /// in-flight request tasks. Idempotent.
  void Stop();

  /// Connections admitted to workers / shed with 503 (monotone counters).
  int64_t accepted_requests() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  int64_t shed_requests() const {
    return shed_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Answers 503 + Retry-After on the accept thread, then closes without
  /// triggering an RST (short bounded drain of unread request bytes).
  void ShedConnection(int fd);

  Handler handler_;
  HttpServerOptions options_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::thread accept_thread_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_{0};
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> shed_{0};
};

/// Minimal loopback HTTP client for tests and tools: sends one request to
/// 127.0.0.1:`port` and parses the response. `headers` are raw lines
/// ("Name: value"). Fails on connect/IO/parse errors.
StatusOr<HttpResponse> HttpFetch(int port, const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "",
                                 const std::vector<std::string>& headers = {});

}  // namespace recon::service

#endif  // RECON_SERVICE_HTTP_H_
