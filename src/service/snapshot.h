// Immutable reconciled snapshot served by the reconciliation daemon
// (DESIGN.md §12).
//
// A Snapshot freezes one reconciled state of a growing dataset into a
// read-only, shareable object: entity clusters, one merged attribute
// profile per entity (backed by the PR-5 interned value store so features
// are analyzed once and shared across request threads), entity-level
// association links, and a candidate index keyed by the same blocking keys
// candidate generation uses. Query threads pin a snapshot with one atomic
// shared_ptr load and never take a lock; ingest builds the next snapshot on
// the side and swaps the pointer (service.h).

#ifndef RECON_SERVICE_SNAPSHOT_H_
#define RECON_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/options.h"
#include "core/schema_binding.h"
#include "graph/value_pool.h"
#include "model/dataset.h"
#include "sim/class_sim.h"
#include "sim/value_store.h"
#include "util/budget.h"

namespace recon::service {

/// Dense id of an entity within one snapshot. Entities are ordered by their
/// smallest member RefId, so ids are deterministic; they are *not* stable
/// across snapshot generations (an ingest can merge entities).
using EntityId = int32_t;

/// One "which entity is this reference?" query, the OpenRefine
/// reconciliation query shape: a main text, an optional type (class name),
/// and optional property constraints addressed by attribute name.
struct ReconQuery {
  /// Main query text, matched against the class's name-like attribute
  /// (Person.name, Article.title, Venue.name).
  std::string text;
  /// Class name to search; empty = every class with a similarity function.
  std::string type;
  /// (attribute name, value) constraints. Atomic attributes feed their
  /// evidence channel directly; association attributes (Article.authoredBy,
  /// Article.publishedIn) are matched against the names of the entities the
  /// candidate is linked to.
  std::vector<std::pair<std::string, std::string>> properties;
  /// Maximum candidates returned.
  int limit = 10;
};

/// One scored candidate entity.
struct ScoredCandidate {
  EntityId entity = -1;
  /// Per-class S_rv similarity in [0, 1] (paper §4; boolean graph evidence
  /// does not apply to online queries, which see profiles, not the graph).
  double score = 0.0;
  /// Confident auto-match: score >= merge_threshold and no other candidate
  /// reaches the threshold.
  bool match = false;
};

/// Result of one query against one snapshot.
struct QueryResult {
  std::vector<ScoredCandidate> candidates;
  /// Candidate entities scored before any budget stop.
  int num_scored = 0;
  /// True when a per-request budget stop truncated scoring; the candidates
  /// produced so far are still returned (anytime degradation, DESIGN.md
  /// §10 applied per request).
  bool degraded = false;
};

/// Per-entity reconciled state.
struct EntityInfo {
  int class_id = -1;
  /// Source references, ascending. members[0] names the entity.
  std::vector<RefId> members;
  /// Human-readable label: first name-like profile value, else "".
  std::string display_name;
  /// Per association attribute: linked entities (deduplicated, ascending).
  std::vector<std::vector<EntityId>> linked;
};

class Snapshot {
 public:
  /// Monotone snapshot generation (0 = initial load).
  uint64_t generation() const { return generation_; }

  int num_entities() const {
    return static_cast<int>(entities_.size());
  }
  int num_references() const { return num_references_; }

  const EntityInfo& entity(EntityId id) const { return entities_[id]; }
  bool ValidEntity(EntityId id) const {
    return id >= 0 && id < num_entities();
  }

  /// The merged attribute profile of an entity: one Reference holding the
  /// union of the members' atomic values.
  const Reference& profile(EntityId id) const {
    return profiles_->reference(id);
  }
  const Schema& schema() const { return profiles_->schema(); }

  /// Entity of a source reference, or -1 out of range.
  EntityId EntityOfRef(RefId ref) const {
    return ref >= 0 && ref < static_cast<RefId>(ref_to_entity_.size())
               ? ref_to_entity_[ref]
               : -1;
  }

  /// Scores `query` against the candidate index: blocking-key lookup, then
  /// per-class S_rv scoring of the query's values against each candidate's
  /// profile features. Pure const — safe from any number of threads.
  /// `budget` (optional) is the per-request deadline: a stop truncates the
  /// candidate sweep and marks the result degraded.
  QueryResult Query(const ReconQuery& query,
                    BudgetTracker* budget = nullptr) const;

  /// Approximate heap footprint (profiles + features + index), for /stats.
  int64_t approximate_bytes() const { return approximate_bytes_; }
  int64_t num_blocking_keys() const {
    return static_cast<int64_t>(blocks_.size());
  }

 private:
  friend std::shared_ptr<const Snapshot> BuildSnapshot(
      const Dataset& dataset, const std::vector<int>& clusters,
      const ReconcilerOptions& options, uint64_t generation);

  /// Candidate entities of one class for a probe reference, ascending.
  std::vector<EntityId> CandidateEntities(const Dataset& probe_holder,
                                          RefId probe, int class_id) const;

  uint64_t generation_ = 0;
  int num_references_ = 0;
  std::vector<EntityInfo> entities_;
  std::vector<EntityId> ref_to_entity_;
  /// One Reference per entity (RefId == EntityId in this dataset).
  std::unique_ptr<Dataset> profiles_;
  SchemaBinding binding_;
  /// Interned profile values + precomputed features (PR-5), shared
  /// read-only across request threads.
  ValuePool values_;
  std::unique_ptr<ValueStore> features_;
  /// Per entity, per attribute: ValueIds parallel to the profile's
  /// atomic_values, so scoring never re-interns.
  std::vector<std::vector<std::vector<ValueId>>> value_ids_;
  /// Blocking key -> entities (class-qualified keys; blocks over
  /// max_block_size are dropped, as in candidate generation).
  std::unordered_map<std::string, std::vector<EntityId>> blocks_;
  std::vector<std::unique_ptr<ClassSimilarity>> class_sims_;
  SimParams params_;
  int max_block_size_ = 1000;
  int64_t approximate_bytes_ = 0;
};

/// Builds an immutable snapshot from a reconciled dataset and its cluster
/// assignment (`clusters[ref]` = cluster representative, as produced by
/// Reconciler / IncrementalReconciler). The dataset is read, never
/// retained: the snapshot owns independent profile storage, so the caller
/// may keep mutating its dataset afterwards.
std::shared_ptr<const Snapshot> BuildSnapshot(
    const Dataset& dataset, const std::vector<int>& clusters,
    const ReconcilerOptions& options, uint64_t generation);

}  // namespace recon::service

#endif  // RECON_SERVICE_SNAPSHOT_H_
