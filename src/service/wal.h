// Write-ahead log for the reconciliation service (DESIGN.md §15).
//
// The WAL is an append-only file of length-prefixed, CRC32C-checksummed
// records, written by the ingest thread *before* references are staged in
// memory (write-intent ordering): a record that is durable can always be
// replayed, and a record that never finished writing was never acknowledged.
// Three record types:
//   * kBatch — one ingest batch: the serialized references + gold labels.
//   * kFlush — a flush-epoch boundary carrying the generation the flush
//     produces. Epoch boundaries are part of the log because the
//     reconciler's output is a deterministic function of (initial dataset,
//     batches, epoch boundaries) — replaying the same boundaries through
//     the normal IncrementalReconciler staging path reproduces the
//     partition byte-identically at any thread count (PR-8 canonical-order
//     guarantees).
//   * kSeal — clean-shutdown marker, written by ReconService::Seal() on
//     graceful drain; recovery reports whether the log was sealed.
//
// A torn or corrupted tail (crash mid-append) is detected by the length
// prefix + CRC and truncated on recovery; everything before it replays.
// File layout:
//   header:  magic "RCNWAL1\n" | u64 base_generation | u32 crc(header)
//   record:  u32 payload_len | u32 crc32c(payload) | payload
//   payload: u8 type | type-specific body (see wal.cc)
// Integers are host-endian: the log is a single-machine durability
// artifact, not an interchange format.

#ifndef RECON_SERVICE_WAL_H_
#define RECON_SERVICE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/dataset.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace recon::service {

/// When the WAL calls fsync.
enum class FsyncPolicy {
  kEveryRecord,  ///< After every append — strongest, slowest.
  kEveryFlush,   ///< After flush-epoch and seal records only (default):
                 ///< an acknowledged flush is durable; a crash can lose
                 ///< staged-but-unflushed batches of the current epoch.
  kNone,         ///< Never (except file/dir creation). Survives process
                 ///< crashes via the page cache, not power loss.
};

/// Parses "every-record" / "every-flush" / "none".
StatusOr<FsyncPolicy> ParseFsyncPolicy(const std::string& text);
const char* FsyncPolicyName(FsyncPolicy policy);

/// Durability configuration for ReconService (part of ServiceOptions).
struct DurabilityOptions {
  /// Directory for WAL segments + checkpoints. Empty = durability off.
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kEveryFlush;
  /// Write a checkpoint (and rotate the WAL) every N flush epochs;
  /// 0 = never checkpoint (the WAL grows without bound).
  int checkpoint_every = 64;
  /// Test-only I/O fault hook threaded through every WAL/checkpoint write.
  std::shared_ptr<IoFaultHook> io_fault;
};

/// One decoded WAL record.
struct WalRecord {
  enum Type : uint8_t { kBatch = 1, kFlush = 2, kSeal = 3 };
  Type type = kBatch;
  // kBatch:
  std::vector<Reference> refs;
  std::vector<int> golds;                 ///< Parallel to refs (-1 = none).
  std::vector<Provenance> provenances;    ///< Parallel to refs.
  // kFlush: the generation this flush produced. kSeal: generation at seal.
  uint64_t generation = 0;
};

/// Everything a WAL file held, after tail validation.
struct WalContents {
  uint64_t base_generation = 0;  ///< Generation of the checkpoint this
                                 ///< segment extends.
  std::vector<WalRecord> records;
  bool sealed = false;           ///< Log ended with a clean-shutdown seal.
  /// Offset just past the last valid record, excluding a trailing seal —
  /// the position appends resume from on reopen.
  uint64_t append_offset = 0;
  /// Bytes dropped from a torn/corrupt tail (0 on a clean log).
  uint64_t truncated_bytes = 0;
};

/// Reads and validates `path`. Fails only on open/read errors or a corrupt
/// header; a bad tail is truncated into `truncated_bytes`, not an error.
StatusOr<WalContents> ReadWalFile(const std::string& path);

/// The append side. All methods are called by one thread (the service's
/// ingest thread, under its mutex). Every failed append/sync leaves the
/// log unusable for further writes — the caller goes read-only.
class WriteAheadLog {
 public:
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Creates (truncating) `path`, writes the header, fsyncs it and `dir`.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Create(
      const std::string& dir, const std::string& path,
      uint64_t base_generation, FsyncPolicy policy,
      std::shared_ptr<IoFaultHook> hook);

  /// Reopens an existing segment for append: truncates to `append_offset`
  /// (dropping any torn tail and any trailing seal) and positions there.
  static StatusOr<std::unique_ptr<WriteAheadLog>> OpenForAppend(
      const std::string& path, uint64_t base_generation,
      uint64_t append_offset, uint64_t durable_generation, FsyncPolicy policy,
      std::shared_ptr<IoFaultHook> hook);

  /// Appends one ingest batch (golds parallel to refs or empty).
  Status AppendBatch(const std::vector<Reference>& refs,
                     const std::vector<int>& golds);

  /// Appends a flush-epoch boundary and syncs per policy. On success the
  /// epoch is durable: durable_generation() advances to `generation`.
  Status AppendFlush(uint64_t generation);

  /// Appends the clean-shutdown seal and always syncs.
  Status AppendSeal(uint64_t generation);

  /// Last generation whose flush record was appended and synced per the
  /// policy (under kNone: appended; durable against process crash only).
  uint64_t durable_generation() const { return durable_generation_; }
  int64_t appended_records() const { return appended_records_; }
  int64_t appended_bytes() const { return appended_bytes_; }
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, int fd, uint64_t base_generation,
                FsyncPolicy policy, std::shared_ptr<IoFaultHook> hook)
      : path_(std::move(path)),
        fd_(fd),
        base_generation_(base_generation),
        durable_generation_(base_generation),
        policy_(policy),
        hook_(std::move(hook)) {}

  /// Consults the fault hook, then writes all of `frame`. A crash-kind
  /// fault writes nothing (kCrash) or half the frame (kTornWrite) and
  /// poisons the log.
  Status AppendFrame(const std::string& frame);
  /// fsync through the fault hook; poisons the log on failure.
  Status Sync(IoOp op);

  const std::string path_;
  int fd_ = -1;
  const uint64_t base_generation_;
  uint64_t durable_generation_ = 0;
  const FsyncPolicy policy_;
  const std::shared_ptr<IoFaultHook> hook_;
  int64_t appended_records_ = 0;
  int64_t appended_bytes_ = 0;
  bool failed_ = false;
};

// ---- Shared low-level helpers (used by checkpoint.cc too) -----------------

namespace wal_internal {

/// Consults `hook` (null = proceed) for `op`. Returns the fault to apply.
IoFault ConsultHook(IoFaultHook* hook, IoOp op);

/// write() loop handling EINTR/short writes; Status on error.
Status WriteAll(int fd, const char* data, size_t len);

/// fsync an open directory (persists renames and new file names).
Status SyncDir(const std::string& dir, IoFaultHook* hook);

/// unlink through the fault hook (kError → Status; crash kinds → Status).
Status RemoveFile(const std::string& path, IoFaultHook* hook);

}  // namespace wal_internal

}  // namespace recon::service

#endif  // RECON_SERVICE_WAL_H_
