#include "service/handlers.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/version.h"

namespace recon::service {
namespace {

HttpResponse JsonResponse(int status, const json::Value& doc) {
  HttpResponse res;
  res.status = status;
  res.body = doc.Dump();
  return res;
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  json::Value doc = json::Value::Object();
  doc.Set("error", message);
  return JsonResponse(status, doc);
}

/// The value of `name` in a urlencoded "a=1&b=2" string, decoded; "" when
/// absent.
std::string FormParam(std::string_view form, std::string_view name) {
  size_t pos = 0;
  while (pos <= form.size()) {
    size_t amp = form.find('&', pos);
    if (amp == std::string_view::npos) amp = form.size();
    const std::string_view pair = form.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == name) {
      return UrlDecode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return "";
}

/// One scalar JSON value as query-property text (strings verbatim, numbers
/// via the shared writer formatting, bools as true/false).
std::string ScalarText(const json::Value& v) {
  switch (v.kind()) {
    case json::Value::Kind::kString:
      return v.AsString();
    case json::Value::Kind::kInt:
      return std::to_string(v.AsInt());
    case json::Value::Kind::kDouble:
      return json::NumberToString(v.AsDouble());
    case json::Value::Kind::kBool:
      return v.AsBool() ? "true" : "false";
    default:
      return "";
  }
}

/// OpenRefine types appear as "Person", {"id": "Person"}, or arrays of
/// either; the first usable id wins.
std::string TypeName(const json::Value& v) {
  if (v.is_string()) return v.AsString();
  if (v.is_object()) return v.at("id").AsString();
  if (v.is_array() && !v.items().empty()) return TypeName(v.items().front());
  return "";
}

StatusOr<ReconQuery> ParseOneQuery(const json::Value& doc) {
  ReconQuery query;
  if (doc.is_string()) {  // Shorthand: "q0": "some text".
    query.text = doc.AsString();
    return query;
  }
  if (!doc.is_object()) {
    return Status::InvalidArgument("query must be a string or an object");
  }
  query.text = doc.at("query").AsString();
  query.type = TypeName(doc.at("type"));
  if (const json::Value* limit = doc.Find("limit"); limit != nullptr) {
    query.limit = static_cast<int>(limit->AsInt(query.limit));
  }
  if (const json::Value* props = doc.Find("properties"); props != nullptr) {
    if (!props->is_array()) {
      return Status::InvalidArgument("properties must be an array");
    }
    for (const json::Value& prop : props->items()) {
      // "pid" per the spec; accept "p" (older clients use it) too.
      std::string pid = prop.at("pid").AsString();
      if (pid.empty()) pid = prop.at("p").AsString();
      if (pid.empty()) {
        return Status::InvalidArgument("property without pid");
      }
      const json::Value& v = prop.at("v");
      if (v.is_array()) {
        for (const json::Value& item : v.items()) {
          std::string text =
              item.is_object() ? item.at("id").AsString() : ScalarText(item);
          if (!text.empty()) query.properties.emplace_back(pid, std::move(text));
        }
      } else {
        std::string text =
            v.is_object() ? v.at("id").AsString() : ScalarText(v);
        if (!text.empty()) query.properties.emplace_back(pid, std::move(text));
      }
    }
  }
  return query;
}

/// "e12" or "12" -> 12; -1 on anything else.
EntityId ParseEntityId(const std::string& text) {
  size_t pos = text.size() > 1 && text[0] == 'e' ? 1 : 0;
  if (pos >= text.size()) return -1;
  EntityId id = 0;
  for (; pos < text.size(); ++pos) {
    if (!std::isdigit(static_cast<unsigned char>(text[pos]))) return -1;
    if (id > (INT32_MAX - 9) / 10) return -1;
    id = id * 10 + (text[pos] - '0');
  }
  return id;
}

json::Value EntityTypeJson(const Schema& schema, int class_id) {
  json::Value types = json::Value::Array();
  json::Value type = json::Value::Object();
  const std::string& name = schema.class_def(class_id).name;
  type.Set("id", name);
  type.Set("name", name);
  types.Append(std::move(type));
  return types;
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      const char hex[3] = {s[i + 1], s[i + 2], '\0'};
      out += static_cast<char>(std::strtol(hex, nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

StatusOr<QueryBatch> ParseQueryBatch(std::string_view json_text) {
  StatusOr<json::Value> doc = json::Parse(json_text);
  if (!doc.ok()) return doc.status();
  if (!doc.value().is_object()) {
    return Status::InvalidArgument("query batch must be a JSON object");
  }
  QueryBatch batch;
  for (const auto& [id, query_doc] : doc.value().members()) {
    StatusOr<ReconQuery> query = ParseOneQuery(query_doc);
    if (!query.ok()) {
      return Status::InvalidArgument("query \"" + id +
                                     "\": " + query.status().message());
    }
    batch.emplace_back(id, std::move(query).value());
  }
  return batch;
}

std::string RenderReconcileBody(const QueryBatch& batch,
                                const BatchAnswer& answer) {
  const Snapshot& snapshot = *answer.snapshot;
  json::Value doc = json::Value::Object();
  for (size_t i = 0; i < batch.size(); ++i) {
    const QueryResult& result = answer.results[i];
    json::Value entry = json::Value::Object();
    json::Value list = json::Value::Array();
    for (const ScoredCandidate& candidate : result.candidates) {
      const EntityInfo& info = snapshot.entity(candidate.entity);
      json::Value row = json::Value::Object();
      row.Set("id", "e" + std::to_string(candidate.entity));
      row.Set("name", info.display_name);
      row.Set("type", EntityTypeJson(snapshot.schema(), info.class_id));
      row.Set("score", candidate.score);
      row.Set("match", candidate.match);
      list.Append(std::move(row));
    }
    entry.Set("result", std::move(list));
    if (result.degraded) entry.Set("degraded", true);
    doc.Set(batch[i].first, std::move(entry));
  }
  doc.Set("_snapshot", snapshot.generation());
  return doc.Dump();
}

HttpResponse ServiceHandler::Handle(const HttpRequest& req) const {
  if (req.path == "/healthz") return Healthz();
  if (req.path == "/stats") return Stats();
  if (req.path == "/reconcile") return Reconcile(req);
  if (req.path == "/ingest") {
    if (req.method != "POST") return ErrorResponse(405, "POST required");
    return Ingest(req);
  }
  if (req.path.rfind("/entity/", 0) == 0) {
    return Entity(req.path.substr(8));
  }
  if (req.path == "/") {
    // OpenRefine posts query batches to the manifest URL itself.
    if (!req.body.empty() || !req.query.empty()) {
      HttpResponse res = Reconcile(req);
      if (res.status == 200 || req.method == "POST") return res;
    }
    return Manifest();
  }
  return ErrorResponse(404, "no such route: " + req.path);
}

HttpResponse ServiceHandler::Manifest() const {
  const Schema& schema = service_->schema();
  json::Value doc = json::Value::Object();
  doc.Set("name", "recon reference reconciliation");
  doc.Set("identifierSpace", "urn:recon:entity");
  doc.Set("schemaSpace", "urn:recon:schema");
  json::Value versions = json::Value::Array();
  versions.Append("0.2");
  doc.Set("versions", std::move(versions));
  json::Value types = json::Value::Array();
  for (int c = 0; c < schema.num_classes(); ++c) {
    json::Value type = json::Value::Object();
    type.Set("id", schema.class_def(c).name);
    type.Set("name", schema.class_def(c).name);
    types.Append(std::move(type));
  }
  doc.Set("defaultTypes", std::move(types));
  return JsonResponse(200, doc);
}

HttpResponse ServiceHandler::Reconcile(const HttpRequest& req) const {
  // Three transports for the same batch document: raw JSON body,
  // urlencoded `queries=` form body (what OpenRefine sends), or the
  // `?queries=` URL parameter.
  std::string batch_text;
  if (!req.body.empty()) {
    const size_t first = req.body.find_first_not_of(" \t\r\n");
    if (first != std::string::npos && req.body[first] == '{') {
      batch_text = req.body;
    } else {
      batch_text = FormParam(req.body, "queries");
    }
  }
  if (batch_text.empty()) batch_text = FormParam(req.query, "queries");
  if (batch_text.empty()) {
    return ErrorResponse(400, "no queries given (body or ?queries=)");
  }

  StatusOr<QueryBatch> batch = ParseQueryBatch(batch_text);
  if (!batch.ok()) return ErrorResponse(400, batch.status().message());

  std::vector<ReconQuery> queries;
  queries.reserve(batch.value().size());
  for (const auto& [id, query] : batch.value()) queries.push_back(query);
  const BatchAnswer answer = service_->Reconcile(queries);

  HttpResponse res;
  res.body = RenderReconcileBody(batch.value(), answer);
  res.extra_headers.emplace_back(
      "X-Snapshot-Generation", std::to_string(answer.snapshot->generation()));
  return res;
}

HttpResponse ServiceHandler::Ingest(const HttpRequest& req) const {
  StatusOr<json::Value> doc = json::Parse(req.body);
  if (!doc.ok()) return ErrorResponse(400, doc.status().message());
  const json::Value* refs_doc = doc.value().Find("references");
  if (refs_doc == nullptr || !refs_doc->is_array()) {
    return ErrorResponse(400, "ingest body needs a \"references\" array");
  }

  const Schema& schema = service_->schema();
  std::vector<Reference> refs;
  std::vector<int> golds;
  refs.reserve(refs_doc->items().size());
  for (const json::Value& ref_doc : refs_doc->items()) {
    const std::string& class_name = ref_doc.at("class").AsString();
    const int class_id = schema.FindClass(class_name);
    if (class_id < 0) {
      return ErrorResponse(400, "unknown class \"" + class_name + "\"");
    }
    const ClassDef& class_def = schema.class_def(class_id);
    Reference ref(class_id, class_def.num_attributes());

    if (const json::Value* values = ref_doc.Find("values"); values != nullptr) {
      for (const auto& [attr_name, attr_values] : values->members()) {
        const int attr = class_def.FindAttribute(attr_name);
        if (attr < 0 || class_def.attributes[attr].kind != AttrKind::kAtomic) {
          return ErrorResponse(400, "unknown atomic attribute \"" +
                                        class_name + "." + attr_name + "\"");
        }
        if (attr_values.is_array()) {
          for (const json::Value& v : attr_values.items()) {
            ref.AddAtomicValue(attr, ScalarText(v));
          }
        } else {
          ref.AddAtomicValue(attr, ScalarText(attr_values));
        }
      }
    }
    if (const json::Value* links = ref_doc.Find("links"); links != nullptr) {
      for (const auto& [attr_name, targets] : links->members()) {
        const int attr = class_def.FindAttribute(attr_name);
        if (attr < 0 ||
            class_def.attributes[attr].kind != AttrKind::kAssociation) {
          return ErrorResponse(400, "unknown association attribute \"" +
                                        class_name + "." + attr_name + "\"");
        }
        if (!targets.is_array()) {
          return ErrorResponse(400, "links must map attributes to arrays");
        }
        for (const json::Value& target : targets.items()) {
          ref.AddAssociation(attr, static_cast<RefId>(target.AsInt(-1)));
        }
      }
    }
    golds.push_back(static_cast<int>(ref_doc.at("gold").AsInt(-1)));
    refs.push_back(std::move(ref));
  }

  const bool flush = doc.value().at("flush").AsBool(true);
  StatusOr<IngestReport> report =
      service_->Ingest(std::move(refs), std::move(golds), flush);
  if (!report.ok()) {
    // Durability failures (WAL unusable, service read-only) are a server
    // condition, not a client error: 503 with a retry hint. Bad input
    // stays 400.
    if (report.status().code() == StatusCode::kFailedPrecondition) {
      HttpResponse res = ErrorResponse(503, report.status().message());
      res.extra_headers.emplace_back("Retry-After", "1");
      return res;
    }
    return ErrorResponse(400, report.status().message());
  }

  json::Value out = json::Value::Object();
  out.Set("added", report.value().added);
  out.Set("staged", report.value().staged_total);
  out.Set("flushed", report.value().flushed);
  out.Set("generation", report.value().generation);
  HttpResponse res = JsonResponse(200, out);
  res.extra_headers.emplace_back("X-Snapshot-Generation",
                                 std::to_string(report.value().generation));
  return res;
}

HttpResponse ServiceHandler::Entity(const std::string& id_text) const {
  const EntityId id = ParseEntityId(id_text);
  const std::shared_ptr<const Snapshot> snapshot = service_->snapshot();
  if (!snapshot->ValidEntity(id)) {
    return ErrorResponse(404, "no entity \"" + id_text + "\"");
  }
  const EntityInfo& info = snapshot->entity(id);
  const Schema& schema = snapshot->schema();
  const ClassDef& class_def = schema.class_def(info.class_id);

  json::Value doc = json::Value::Object();
  doc.Set("id", "e" + std::to_string(id));
  doc.Set("name", info.display_name);
  doc.Set("type", EntityTypeJson(schema, info.class_id));
  json::Value members = json::Value::Array();
  for (const RefId ref : info.members) members.Append(ref);
  doc.Set("members", std::move(members));

  const Reference& profile = snapshot->profile(id);
  json::Value values = json::Value::Object();
  json::Value links = json::Value::Object();
  for (int attr = 0; attr < class_def.num_attributes(); ++attr) {
    if (class_def.attributes[attr].kind == AttrKind::kAtomic) {
      if (profile.atomic_values(attr).empty()) continue;
      json::Value list = json::Value::Array();
      for (const std::string& v : profile.atomic_values(attr)) list.Append(v);
      values.Set(class_def.attributes[attr].name, std::move(list));
    } else {
      if (info.linked[attr].empty()) continue;
      json::Value list = json::Value::Array();
      for (const EntityId target : info.linked[attr]) {
        list.Append("e" + std::to_string(target));
      }
      links.Set(class_def.attributes[attr].name, std::move(list));
    }
  }
  doc.Set("values", std::move(values));
  doc.Set("links", std::move(links));
  doc.Set("_snapshot", snapshot->generation());

  HttpResponse res = JsonResponse(200, doc);
  res.extra_headers.emplace_back("X-Snapshot-Generation",
                                 std::to_string(snapshot->generation()));
  return res;
}

HttpResponse ServiceHandler::Healthz() const {
  const std::shared_ptr<const Snapshot> snapshot = service_->snapshot();
  json::Value doc = json::Value::Object();
  doc.Set("status", "ok");
  doc.Set("version", kReconVersion);
  doc.Set("build", ReconBuildInfo());
  doc.Set("generation", snapshot->generation());
  doc.Set("entities", snapshot->num_entities());
  doc.Set("references", snapshot->num_references());
  HttpResponse res = JsonResponse(200, doc);
  res.extra_headers.emplace_back("X-Snapshot-Generation",
                                 std::to_string(snapshot->generation()));
  return res;
}

HttpResponse ServiceHandler::Stats() const {
  const std::shared_ptr<const Snapshot> snapshot = service_->snapshot();
  const ServiceCounters& counters = service_->counters();
  json::Value doc = json::Value::Object();
  json::Value snap = json::Value::Object();
  snap.Set("generation", snapshot->generation());
  snap.Set("entities", snapshot->num_entities());
  snap.Set("references", snapshot->num_references());
  snap.Set("blocking_keys", snapshot->num_blocking_keys());
  snap.Set("approximate_bytes", snapshot->approximate_bytes());
  doc.Set("snapshot", std::move(snap));
  doc.Set("staged_references", service_->staged_references());
  json::Value c = json::Value::Object();
  c.Set("query_batches", counters.query_batches.load());
  c.Set("queries", counters.queries.load());
  c.Set("degraded_queries", counters.degraded_queries.load());
  c.Set("candidates_scored", counters.candidates_scored.load());
  c.Set("ingested_references", counters.ingested_references.load());
  c.Set("flushes", counters.flushes.load());
  doc.Set("counters", std::move(c));
  const DurabilityStats durability = service_->durability_stats();
  json::Value d = json::Value::Object();
  d.Set("enabled", durability.enabled);
  if (durability.enabled) {
    d.Set("durable_generation", durability.durable_generation);
    d.Set("wal_records", durability.wal_records);
    d.Set("wal_bytes", durability.wal_bytes);
    d.Set("checkpoints_written", durability.checkpoints_written);
    d.Set("checkpoint_generation", durability.checkpoint_generation);
    d.Set("checkpoint_failures", durability.checkpoint_failures);
    d.Set("recovered", durability.recovered);
    d.Set("recovered_clean", durability.recovered_clean);
    d.Set("replayed_epochs", durability.replayed_epochs);
    d.Set("replayed_references", durability.replayed_references);
    d.Set("wal_truncated_bytes", durability.wal_truncated_bytes);
    d.Set("write_failed", durability.write_failed);
  }
  doc.Set("durability", std::move(d));
  HttpResponse res = JsonResponse(200, doc);
  res.extra_headers.emplace_back("X-Snapshot-Generation",
                                 std::to_string(snapshot->generation()));
  return res;
}

}  // namespace recon::service
