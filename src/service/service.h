// The reconciliation service core: a long-lived reconciler behind an
// atomically swapped snapshot (DESIGN.md §12).
//
// Concurrency contract (snapshot isolation):
//   * Readers call snapshot() — one atomic shared_ptr pin (a few atomic
//     instructions, util/atomic_shared_ptr.h), no mutex — and answer every
//     query of a batch against that one pinned snapshot.
//     A reader never blocks on ingest, and a response always reports the
//     generation it was answered from.
//   * Writers (ingest/flush) serialize on one mutex, stage references
//     through IncrementalReconciler::AddReference, run Flush() (one budget
//     epoch, PR-4), build the next Snapshot on the ingesting thread, and
//     publish it with one atomic store. Readers holding the old snapshot
//     keep it alive through their shared_ptr until they finish.

#ifndef RECON_SERVICE_SERVICE_H_
#define RECON_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "service/snapshot.h"
#include "util/atomic_shared_ptr.h"
#include "util/status.h"

namespace recon::service {

struct ServiceOptions {
  /// Options for the underlying incremental reconciler (threads, flush
  /// budget, value store, ...). The budget applies per Flush(), as always.
  ReconcilerOptions reconciler;
  /// Per-request wall-clock deadline for query scoring; 0 = unlimited.
  /// Overloaded queries degrade to partial candidate lists (DESIGN.md §10
  /// semantics applied per request), never to stalls.
  double query_deadline_ms = 0;
  /// Default result-list bound when a query does not give one.
  int default_limit = 10;
};

/// Monotonically increasing service counters (all thread-safe).
struct ServiceCounters {
  std::atomic<int64_t> query_batches{0};
  std::atomic<int64_t> queries{0};
  std::atomic<int64_t> degraded_queries{0};
  std::atomic<int64_t> candidates_scored{0};
  std::atomic<int64_t> ingested_references{0};
  std::atomic<int64_t> flushes{0};
};

/// Result of answering one query batch against one pinned snapshot.
struct BatchAnswer {
  /// The snapshot every result in this batch was computed from.
  std::shared_ptr<const Snapshot> snapshot;
  std::vector<QueryResult> results;
  /// True when the per-request budget truncated any query in the batch.
  bool degraded = false;
};

/// What an ingest call did.
struct IngestReport {
  int added = 0;             ///< References staged by this call.
  int staged_total = 0;      ///< References staged but not yet flushed.
  bool flushed = false;      ///< Whether this call ran a flush.
  uint64_t generation = 0;   ///< Snapshot generation after this call.
};

class ReconService {
 public:
  /// Reconciles `initial` in full and publishes snapshot generation 0.
  ReconService(Dataset initial, ServiceOptions options);

  ReconService(const ReconService&) = delete;
  ReconService& operator=(const ReconService&) = delete;

  /// The current snapshot: one atomic pin, never a mutex, never null.
  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.Load();
  }

  /// Answers a query batch against one pinned snapshot under one
  /// per-request budget (ServiceOptions::query_deadline_ms, overridable
  /// per call with `deadline_ms` > 0). Lock-free with respect to ingest.
  BatchAnswer Reconcile(const std::vector<ReconQuery>& queries,
                        double deadline_ms = 0) const;

  /// Stages references (associations may target any RefId that already
  /// exists or precedes the reference within this batch) and, when
  /// `flush` is set, reconciles them and publishes a new snapshot.
  /// `golds` is parallel to `refs` (-1 = unlabeled) or empty.
  StatusOr<IngestReport> Ingest(std::vector<Reference> refs,
                                std::vector<int> golds, bool flush);

  /// Flushes staged references (if any) and publishes a new snapshot.
  /// Returns the generation afterwards. Serializes with Ingest.
  uint64_t Flush();

  /// Schema of the served dataset (fixed for the service lifetime).
  const Schema& schema() const { return schema_; }
  const ServiceOptions& options() const { return options_; }
  const ServiceCounters& counters() const { return counters_; }
  /// References staged but not yet reconciled into a snapshot.
  int staged_references() const;

 private:
  /// Rebuilds + publishes a snapshot from the reconciler's current state.
  /// Caller must hold ingest_mu_.
  uint64_t PublishLocked();

  ServiceOptions options_;
  Schema schema_;
  mutable ServiceCounters counters_;  // Monotone telemetry, logically const.

  mutable std::mutex ingest_mu_;
  IncrementalReconciler reconciler_;  // Guarded by ingest_mu_.
  uint64_t generation_ = 0;           // Guarded by ingest_mu_.

  AtomicSharedPtr<const Snapshot> snapshot_;
};

}  // namespace recon::service

#endif  // RECON_SERVICE_SERVICE_H_
