// The reconciliation service core: a long-lived reconciler behind an
// atomically swapped snapshot (DESIGN.md §12).
//
// Concurrency contract (snapshot isolation):
//   * Readers call snapshot() — one atomic shared_ptr pin (a few atomic
//     instructions, util/atomic_shared_ptr.h), no mutex — and answer every
//     query of a batch against that one pinned snapshot.
//     A reader never blocks on ingest, and a response always reports the
//     generation it was answered from.
//   * Writers (ingest/flush) serialize on one mutex, stage references
//     through IncrementalReconciler::AddReference, run Flush() (one budget
//     epoch, PR-4), build the next Snapshot on the ingesting thread, and
//     publish it with one atomic store. Readers holding the old snapshot
//     keep it alive through their shared_ptr until they finish.

#ifndef RECON_SERVICE_SERVICE_H_
#define RECON_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "service/checkpoint.h"
#include "service/snapshot.h"
#include "service/wal.h"
#include "util/atomic_shared_ptr.h"
#include "util/status.h"

namespace recon::service {

struct ServiceOptions {
  /// Options for the underlying incremental reconciler (threads, flush
  /// budget, value store, ...). The budget applies per Flush(), as always.
  ReconcilerOptions reconciler;
  /// Per-request wall-clock deadline for query scoring; 0 = unlimited.
  /// Overloaded queries degrade to partial candidate lists (DESIGN.md §10
  /// semantics applied per request), never to stalls.
  double query_deadline_ms = 0;
  /// Default result-list bound when a query does not give one.
  int default_limit = 10;
  /// WAL + checkpoint configuration (DESIGN.md §15). Only honored through
  /// ReconService::Open(); the plain constructor requires it unset.
  DurabilityOptions durability;
};

/// Durability-subsystem telemetry (all under the ingest mutex).
struct DurabilityStats {
  bool enabled = false;
  /// Last generation whose flush record is durable per the fsync policy.
  uint64_t durable_generation = 0;
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
  int64_t checkpoints_written = 0;
  uint64_t checkpoint_generation = 0;  ///< Generation of the newest one.
  /// Failed checkpoint attempts (service continues on the old WAL).
  int64_t checkpoint_failures = 0;
  bool recovered = false;        ///< This process recovered from disk.
  bool recovered_clean = false;  ///< ... and the WAL carried a seal.
  int64_t replayed_epochs = 0;
  int64_t replayed_references = 0;
  int64_t wal_truncated_bytes = 0;  ///< Torn tail dropped during recovery.
  /// Sticky: a WAL write or sync failed; ingest is rejected (503), queries
  /// keep serving the last published snapshot.
  bool write_failed = false;
};

/// Monotonically increasing service counters (all thread-safe).
struct ServiceCounters {
  std::atomic<int64_t> query_batches{0};
  std::atomic<int64_t> queries{0};
  std::atomic<int64_t> degraded_queries{0};
  std::atomic<int64_t> candidates_scored{0};
  std::atomic<int64_t> ingested_references{0};
  std::atomic<int64_t> flushes{0};
};

/// Result of answering one query batch against one pinned snapshot.
struct BatchAnswer {
  /// The snapshot every result in this batch was computed from.
  std::shared_ptr<const Snapshot> snapshot;
  std::vector<QueryResult> results;
  /// True when the per-request budget truncated any query in the batch.
  bool degraded = false;
};

/// What an ingest call did.
struct IngestReport {
  int added = 0;             ///< References staged by this call.
  int staged_total = 0;      ///< References staged but not yet flushed.
  bool flushed = false;      ///< Whether this call ran a flush.
  uint64_t generation = 0;   ///< Snapshot generation after this call.
};

class ReconService {
 public:
  /// Reconciles `initial` in full and publishes snapshot generation 0.
  /// In-memory only: options.durability.data_dir must be empty (use Open()
  /// for a durable service).
  ReconService(Dataset initial, ServiceOptions options);

  /// Opens a durable service (or an in-memory one when
  /// options.durability.data_dir is empty).
  ///
  ///   * Fresh data dir (or none yet): reconciles `initial`, publishes
  ///     generation 0, writes checkpoint-0 and starts wal-0.
  ///   * Existing state: `initial` is IGNORED except for sanity checks —
  ///     the service rebuilds from the newest valid checkpoint by
  ///     replaying its epoch table through the normal incremental staging
  ///     path, then replays the WAL tail (same path), truncating any torn
  ///     tail. The rebuilt clusters are verified against the checkpoint's
  ///     stored clusters; divergence or corruption beyond recovery fails
  ///     with kFailedPrecondition (callers map this to a distinct exit
  ///     code).
  static StatusOr<std::unique_ptr<ReconService>> Open(Dataset initial,
                                                      ServiceOptions options);

  ReconService(const ReconService&) = delete;
  ReconService& operator=(const ReconService&) = delete;

  /// The current snapshot: one atomic pin, never a mutex, never null.
  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.Load();
  }

  /// Answers a query batch against one pinned snapshot under one
  /// per-request budget (ServiceOptions::query_deadline_ms, overridable
  /// per call with `deadline_ms` > 0). Lock-free with respect to ingest.
  BatchAnswer Reconcile(const std::vector<ReconQuery>& queries,
                        double deadline_ms = 0) const;

  /// Stages references (associations may target any RefId that already
  /// exists or precedes the reference within this batch) and, when
  /// `flush` is set, reconciles them and publishes a new snapshot.
  /// `golds` is parallel to `refs` (-1 = unlabeled) or empty.
  ///
  /// With durability on, the batch (and the flush boundary) is appended to
  /// the WAL — fsync'd per policy — *before* anything is staged in memory:
  /// an acknowledged call is replayable, a failed one left no memory-only
  /// state. After a WAL failure the service is read-only and ingest
  /// returns kFailedPrecondition (handlers map it to 503).
  StatusOr<IngestReport> Ingest(std::vector<Reference> refs,
                                std::vector<int> golds, bool flush);

  /// Flushes staged references (if any) and publishes a new snapshot.
  /// Returns the generation afterwards. Serializes with Ingest. Fails
  /// only when durability is on and the WAL is (or goes) unusable.
  StatusOr<uint64_t> Flush();

  /// Appends the clean-shutdown seal to the WAL and syncs it (graceful
  /// drain). No-op without durability.
  Status Seal();

  /// Schema of the served dataset (fixed for the service lifetime).
  const Schema& schema() const { return schema_; }
  const ServiceOptions& options() const { return options_; }
  const ServiceCounters& counters() const { return counters_; }
  /// References staged but not yet reconciled into a snapshot.
  int staged_references() const;
  /// Durability telemetry (locks; safe from any thread).
  DurabilityStats durability_stats() const;

 private:
  /// Rebuilds + publishes a snapshot from the reconciler's current state,
  /// then writes a checkpoint + rotates the WAL every checkpoint_every
  /// generations. Caller must hold ingest_mu_.
  uint64_t PublishLocked();
  /// One flush epoch without a snapshot build or checkpoint — the replay
  /// fast path. Caller must hold ingest_mu_.
  void ReplayEpochLocked();
  /// Fresh data dir: writes checkpoint-<generation_> and starts a WAL.
  Status InitFreshDurabilityLocked();
  /// Existing data dir: rebuild from checkpoint + WAL tail (see Open()).
  Status RecoverLocked(const DataDirState& dir_state);
  /// Serializes current state into a checkpoint, rotates the WAL, removes
  /// stale files. Failures leave the old WAL in service.
  Status WriteCheckpointLocked();

  ServiceOptions options_;
  Schema schema_;
  mutable ServiceCounters counters_;  // Monotone telemetry, logically const.

  mutable std::mutex ingest_mu_;
  IncrementalReconciler reconciler_;  // Guarded by ingest_mu_.
  uint64_t generation_ = 0;           // Guarded by ingest_mu_.

  // ---- Durability (all guarded by ingest_mu_) ----
  std::unique_ptr<WriteAheadLog> wal_;  ///< Null = in-memory service.
  /// epoch_refs_[g] = references flushed as of generation g — the epoch
  /// table checkpoints persist and recovery replays.
  std::vector<int64_t> epoch_refs_;
  bool wal_failed_ = false;   ///< Sticky; see Ingest().
  std::string wal_error_;     ///< First failure, for error messages.
  DurabilityStats durability_stats_storage_;

  AtomicSharedPtr<const Snapshot> snapshot_;
};

}  // namespace recon::service

#endif  // RECON_SERVICE_SERVICE_H_
