#include "service/service.h"

#include <utility>

namespace recon::service {

ReconService::ReconService(Dataset initial, ServiceOptions options)
    : options_(std::move(options)),
      schema_(initial.schema()),
      reconciler_(std::move(initial), options_.reconciler) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  // Initial load is generation 0; PublishLocked would bump to 1.
  snapshot_.Store(BuildSnapshot(reconciler_.dataset(), reconciler_.clusters(),
                                options_.reconciler, /*generation=*/0));
}

BatchAnswer ReconService::Reconcile(const std::vector<ReconQuery>& queries,
                                    double deadline_ms) const {
  BatchAnswer answer;
  // Pin one snapshot for the whole batch: every query of a request is
  // answered from the same reconciled state, whatever ingest does
  // meanwhile.
  answer.snapshot = snapshot();

  // One budget epoch per request, shared across the batch's queries —
  // exactly the per-run semantics of DESIGN.md §10, scoped to a request.
  Budget budget;
  budget.deadline_ms =
      deadline_ms > 0 ? deadline_ms : options_.query_deadline_ms;
  BudgetTracker tracker(budget);

  answer.results.reserve(queries.size());
  for (const ReconQuery& query : queries) {
    QueryResult result = answer.snapshot->Query(query, &tracker);
    counters_.queries.fetch_add(1, std::memory_order_relaxed);
    counters_.candidates_scored.fetch_add(result.num_scored,
                                          std::memory_order_relaxed);
    if (result.degraded) {
      counters_.degraded_queries.fetch_add(1, std::memory_order_relaxed);
      answer.degraded = true;
    }
    answer.results.push_back(std::move(result));
  }
  counters_.query_batches.fetch_add(1, std::memory_order_relaxed);
  return answer;
}

StatusOr<IngestReport> ReconService::Ingest(std::vector<Reference> refs,
                                            std::vector<int> golds,
                                            bool flush) {
  if (!golds.empty() && golds.size() != refs.size()) {
    return Status::InvalidArgument("golds must be empty or match refs");
  }
  std::lock_guard<std::mutex> lock(ingest_mu_);
  const RefId base = reconciler_.dataset().num_references();
  // Validate association targets before mutating anything: a reference may
  // link to any existing reference or to an earlier one of this batch.
  for (size_t i = 0; i < refs.size(); ++i) {
    const RefId bound = base + static_cast<RefId>(i);
    for (int attr = 0; attr < refs[i].num_attributes(); ++attr) {
      for (const RefId target : refs[i].associations(attr)) {
        if (target < 0 || target >= bound) {
          return Status::InvalidArgument(
              "association target " + std::to_string(target) +
              " out of range (must be < " + std::to_string(bound) + ")");
        }
      }
    }
  }
  IngestReport report;
  for (size_t i = 0; i < refs.size(); ++i) {
    const int gold = golds.empty() ? -1 : golds[i];
    reconciler_.AddReference(std::move(refs[i]), gold);
    ++report.added;
  }
  counters_.ingested_references.fetch_add(report.added,
                                          std::memory_order_relaxed);
  if (flush) {
    report.generation = PublishLocked();
    report.flushed = true;
    report.staged_total = 0;
  } else {
    report.generation = generation_;
    report.staged_total =
        reconciler_.dataset().num_references() - reconciler_.flushed_until();
  }
  return report;
}

uint64_t ReconService::Flush() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return PublishLocked();
}

int ReconService::staged_references() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return reconciler_.dataset().num_references() - reconciler_.flushed_until();
}

uint64_t ReconService::PublishLocked() {
  // clusters() flushes implicitly (one PR-4 budget epoch) and returns the
  // post-closure partition. The snapshot is built here on the ingesting
  // thread; readers keep serving the old snapshot until the single
  // atomic store below, and keep the old one alive through their pins.
  const std::vector<int>& clusters = reconciler_.clusters();
  ++generation_;
  snapshot_.Store(BuildSnapshot(reconciler_.dataset(), clusters,
                                options_.reconciler, generation_));
  counters_.flushes.fetch_add(1, std::memory_order_relaxed);
  return generation_;
}

}  // namespace recon::service
