#include "service/service.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "model/text_io.h"

namespace recon::service {
namespace {

/// mkdir that tolerates an existing directory.
Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Status::FailedPrecondition("data dir " + dir + ": " +
                                    std::string(std::strerror(errno)));
}

}  // namespace

ReconService::ReconService(Dataset initial, ServiceOptions options)
    : options_(std::move(options)),
      schema_(initial.schema()),
      reconciler_(std::move(initial), options_.reconciler) {
  RECON_CHECK(options_.durability.data_dir.empty())
      << "durable services must be constructed via ReconService::Open()";
  std::lock_guard<std::mutex> lock(ingest_mu_);
  // Initial load is generation 0; PublishLocked would bump to 1.
  snapshot_.Store(BuildSnapshot(reconciler_.dataset(), reconciler_.clusters(),
                                options_.reconciler, /*generation=*/0));
  epoch_refs_.push_back(reconciler_.flushed_until());
}

StatusOr<std::unique_ptr<ReconService>> ReconService::Open(
    Dataset initial, ServiceOptions options) {
  const DurabilityOptions durability = options.durability;
  if (durability.data_dir.empty()) {
    return std::make_unique<ReconService>(std::move(initial),
                                          std::move(options));
  }
  RECON_RETURN_IF_ERROR(EnsureDir(durability.data_dir));
  StatusOr<DataDirState> dir_state = ScanDataDir(durability.data_dir);
  if (!dir_state.ok()) return dir_state.status();

  // The constructor must not see durability options (it asserts them
  // empty); they are re-attached before the durable init below.
  ServiceOptions ctor_options = options;
  ctor_options.durability = DurabilityOptions();

  if (dir_state.value().empty()) {
    // Fresh start: reconcile `initial` in memory first, then make it
    // durable as checkpoint-0 + an empty WAL. A crash in between leaves
    // an empty dir and the next start redoes this from the CLI dataset.
    auto service = std::make_unique<ReconService>(std::move(initial),
                                                  std::move(ctor_options));
    std::lock_guard<std::mutex> lock(service->ingest_mu_);
    service->options_.durability = durability;
    RECON_RETURN_IF_ERROR(service->InitFreshDurabilityLocked());
    return service;
  }

  // Recovery: `initial` only contributes a schema sanity check; state
  // comes from the surviving files. Start the reconciler empty — the
  // checkpoint's epoch 0 is replayed like every other epoch.
  Dataset empty(initial.schema());
  auto service = std::make_unique<ReconService>(std::move(empty),
                                                std::move(ctor_options));
  std::lock_guard<std::mutex> lock(service->ingest_mu_);
  service->options_.durability = durability;
  RECON_RETURN_IF_ERROR(service->RecoverLocked(dir_state.value()));
  return service;
}

Status ReconService::InitFreshDurabilityLocked() {
  // checkpoint-0 + wal-0: the initial dataset becomes durable here, so a
  // later start can omit the dataset argument entirely.
  return WriteCheckpointLocked();
}

Status ReconService::RecoverLocked(const DataDirState& dir_state) {
  const DurabilityOptions& durability = options_.durability;
  if (dir_state.checkpoint_paths.empty()) {
    return Status::FailedPrecondition(
        "data dir " + durability.data_dir +
        " has WAL segments but no checkpoint: corrupt beyond recovery");
  }

  // Newest valid checkpoint wins; older ones only survive on disk when a
  // crash interrupted the post-checkpoint cleanup, and serve as fallbacks
  // if the newest file is damaged.
  CheckpointData checkpoint;
  size_t chosen = dir_state.checkpoint_paths.size();
  std::string first_error;
  for (size_t i = 0; i < dir_state.checkpoint_paths.size(); ++i) {
    StatusOr<CheckpointData> loaded =
        ReadCheckpointFile(dir_state.checkpoint_paths[i]);
    if (loaded.ok()) {
      checkpoint = std::move(loaded).value();
      chosen = i;
      break;
    }
    if (first_error.empty()) first_error = loaded.status().message();
  }
  if (chosen == dir_state.checkpoint_paths.size()) {
    return Status::FailedPrecondition("no usable checkpoint in " +
                                      durability.data_dir + ": " +
                                      first_error);
  }
  // A WAL segment newer than every readable checkpoint has lost its base
  // state; refusing is the only honest option.
  for (const uint64_t wal_generation : dir_state.wal_generations) {
    if (wal_generation > checkpoint.generation) {
      return Status::FailedPrecondition(
          "wal segment at generation " + std::to_string(wal_generation) +
          " outlives every usable checkpoint (newest " +
          std::to_string(checkpoint.generation) + "): corrupt beyond recovery");
    }
  }

  StatusOr<Dataset> full = ParseDataset(checkpoint.dataset_text);
  if (!full.ok()) {
    return Status::FailedPrecondition("checkpoint dataset unparsable: " +
                                      full.status().message());
  }
  if (full.value().num_references() !=
      static_cast<int>(checkpoint.clusters.size())) {
    return Status::FailedPrecondition(
        "checkpoint dataset/cluster size mismatch");
  }

  // ---- Replay the checkpoint's epochs through normal staging. ----
  // The reconciler's result is a deterministic function of (batches, epoch
  // boundaries) — PR-8's canonical commit order makes this thread-count
  // invariant — so re-running the recorded epochs reproduces the exact
  // pre-crash partition, which the stored clusters then verify.
  DurabilityStats& stats = durability_stats_storage_;
  stats.recovered = true;
  const Dataset& source = full.value();
  int64_t next_ref = 0;
  for (size_t g = 0; g < checkpoint.epoch_refs.size(); ++g) {
    const int64_t until = checkpoint.epoch_refs[g];
    if (until < next_ref || until > source.num_references()) {
      return Status::FailedPrecondition("checkpoint epoch table out of range");
    }
    for (; next_ref < until; ++next_ref) {
      const RefId id = static_cast<RefId>(next_ref);
      reconciler_.AddReference(source.reference(id), source.gold_entity(id),
                               source.provenance(id));
    }
    if (g == 0) {
      // Epoch 0 is the initial load: one flush, still generation 0 —
      // exactly what the fresh-start constructor produces.
      reconciler_.clusters();
      epoch_refs_[0] = reconciler_.flushed_until();
    } else {
      ReplayEpochLocked();
    }
    ++stats.replayed_epochs;
  }
  stats.replayed_references = next_ref;
  if (generation_ != checkpoint.generation) {
    return Status::Internal("replayed generation " +
                            std::to_string(generation_) +
                            " != checkpoint generation " +
                            std::to_string(checkpoint.generation));
  }
  // Integrity gate: the replayed partition must be byte-identical to what
  // the pre-crash service published at this generation.
  const std::vector<int>& replayed = reconciler_.clusters();
  if (replayed.size() != checkpoint.clusters.size()) {
    return Status::FailedPrecondition("checkpoint cluster verification failed "
                                      "(size mismatch): corrupt beyond recovery");
  }
  for (size_t i = 0; i < replayed.size(); ++i) {
    if (replayed[i] != checkpoint.clusters[i]) {
      return Status::FailedPrecondition(
          "checkpoint cluster verification failed at reference " +
          std::to_string(i) + ": corrupt beyond recovery");
    }
  }
  stats.checkpoint_generation = checkpoint.generation;

  // ---- Replay the WAL tail for this checkpoint, if it survived. ----
  std::string wal_path;
  WalContents tail;
  for (size_t i = 0; i < dir_state.wal_generations.size(); ++i) {
    if (dir_state.wal_generations[i] == checkpoint.generation) {
      wal_path = dir_state.wal_paths[i];
      break;
    }
  }
  if (!wal_path.empty()) {
    StatusOr<WalContents> contents = ReadWalFile(wal_path);
    if (!contents.ok()) {
      // Unreadable header: the segment never got a durable header write.
      // Its base checkpoint carries the full durable state; recreate.
      wal_path.clear();
      stats.wal_truncated_bytes = 0;
    } else {
      tail = std::move(contents).value();
      if (tail.base_generation != checkpoint.generation) {
        return Status::FailedPrecondition(
            "wal " + wal_path + " base generation mismatch: corrupt");
      }
      stats.wal_truncated_bytes = static_cast<int64_t>(tail.truncated_bytes);
      stats.recovered_clean = tail.sealed;
    }
  }

  // Replay the tail in two halves around its last flush boundary: batch
  // records after it were staged but never flushed pre-crash, and they
  // must come back *staged* — folding them into the published snapshot
  // here would both expose unflushed references at the old generation and
  // run a flush epoch the WAL never recorded, so the next replay of this
  // WAL would see different epoch boundaries and diverge.
  size_t flushed_prefix = 0;
  for (size_t i = 0; i < tail.records.size(); ++i) {
    if (tail.records[i].type == WalRecord::kFlush) flushed_prefix = i + 1;
  }
  const auto replay_record = [&](const WalRecord& record) -> Status {
    if (record.type == WalRecord::kBatch) {
      for (size_t i = 0; i < record.refs.size(); ++i) {
        reconciler_.AddReference(record.refs[i], record.golds[i],
                                 record.provenances[i]);
      }
      stats.replayed_references += static_cast<int64_t>(record.refs.size());
    } else if (record.type == WalRecord::kFlush) {
      ReplayEpochLocked();
      ++stats.replayed_epochs;
      if (generation_ != record.generation) {
        return Status::Internal(
            "wal replay generation " + std::to_string(generation_) +
            " != flush record generation " +
            std::to_string(record.generation));
      }
    }
    return Status::Ok();
  };
  for (size_t i = 0; i < flushed_prefix; ++i) {
    RECON_RETURN_IF_ERROR(replay_record(tail.records[i]));
  }

  // Publish the recovered snapshot at the recovered generation (no bump:
  // this is the pre-crash state, not a new flush). Nothing is staged at
  // this point, so clusters() is a cached read, not a new epoch.
  snapshot_.Store(BuildSnapshot(reconciler_.dataset(), reconciler_.clusters(),
                                options_.reconciler, generation_));

  // Now re-stage the unflushed tail; the next Flush() will both record
  // and apply it, exactly as if the crash had never happened.
  for (size_t i = flushed_prefix; i < tail.records.size(); ++i) {
    RECON_RETURN_IF_ERROR(replay_record(tail.records[i]));
  }

  // Reopen (or recreate) the WAL for append. Everything replayed came off
  // disk, so the durable generation is the recovered one.
  const std::string expected_path = options_.durability.data_dir + "/" +
                                    WalFileName(checkpoint.generation);
  StatusOr<std::unique_ptr<WriteAheadLog>> wal =
      !wal_path.empty()
          ? WriteAheadLog::OpenForAppend(
                wal_path, checkpoint.generation, tail.append_offset,
                generation_, options_.durability.fsync,
                options_.durability.io_fault)
          : WriteAheadLog::Create(options_.durability.data_dir, expected_path,
                                  checkpoint.generation,
                                  options_.durability.fsync,
                                  options_.durability.io_fault);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();

  // Only now that the recovered pair is in service: delete stale files
  // (older checkpoints, orphan WAL segments, tmp leftovers). Best-effort;
  // a failure here never loses data, the next recovery retries.
  for (size_t i = 0; i < dir_state.checkpoint_paths.size(); ++i) {
    if (i == chosen) continue;
    (void)wal_internal::RemoveFile(dir_state.checkpoint_paths[i],
                                   options_.durability.io_fault.get());
  }
  for (size_t i = 0; i < dir_state.wal_paths.size(); ++i) {
    if (dir_state.wal_paths[i] == wal_->path()) continue;
    (void)wal_internal::RemoveFile(dir_state.wal_paths[i],
                                   options_.durability.io_fault.get());
  }
  for (const std::string& tmp : dir_state.tmp_paths) {
    (void)wal_internal::RemoveFile(tmp, options_.durability.io_fault.get());
  }
  return Status::Ok();
}

BatchAnswer ReconService::Reconcile(const std::vector<ReconQuery>& queries,
                                    double deadline_ms) const {
  BatchAnswer answer;
  // Pin one snapshot for the whole batch: every query of a request is
  // answered from the same reconciled state, whatever ingest does
  // meanwhile.
  answer.snapshot = snapshot();

  // One budget epoch per request, shared across the batch's queries —
  // exactly the per-run semantics of DESIGN.md §10, scoped to a request.
  Budget budget;
  budget.deadline_ms =
      deadline_ms > 0 ? deadline_ms : options_.query_deadline_ms;
  BudgetTracker tracker(budget);

  answer.results.reserve(queries.size());
  for (const ReconQuery& query : queries) {
    QueryResult result = answer.snapshot->Query(query, &tracker);
    counters_.queries.fetch_add(1, std::memory_order_relaxed);
    counters_.candidates_scored.fetch_add(result.num_scored,
                                          std::memory_order_relaxed);
    if (result.degraded) {
      counters_.degraded_queries.fetch_add(1, std::memory_order_relaxed);
      answer.degraded = true;
    }
    answer.results.push_back(std::move(result));
  }
  counters_.query_batches.fetch_add(1, std::memory_order_relaxed);
  return answer;
}

StatusOr<IngestReport> ReconService::Ingest(std::vector<Reference> refs,
                                            std::vector<int> golds,
                                            bool flush) {
  if (!golds.empty() && golds.size() != refs.size()) {
    return Status::InvalidArgument("golds must be empty or match refs");
  }
  std::lock_guard<std::mutex> lock(ingest_mu_);
  const RefId base = reconciler_.dataset().num_references();
  // Validate association targets before mutating anything: a reference may
  // link to any existing reference or to an earlier one of this batch.
  for (size_t i = 0; i < refs.size(); ++i) {
    const RefId bound = base + static_cast<RefId>(i);
    for (int attr = 0; attr < refs[i].num_attributes(); ++attr) {
      for (const RefId target : refs[i].associations(attr)) {
        if (target < 0 || target >= bound) {
          return Status::InvalidArgument(
              "association target " + std::to_string(target) +
              " out of range (must be < " + std::to_string(bound) + ")");
        }
      }
    }
  }

  // Write-intent ordering: the batch (and its flush boundary) must be in
  // the WAL before any in-memory effect, so a crash between the two only
  // ever loses unacknowledged work. A WAL failure rejects the call with
  // the in-memory state untouched and the service goes read-only.
  if (wal_ != nullptr) {
    if (wal_failed_) {
      return Status::FailedPrecondition(
          "durability failed, ingest disabled (" + wal_error_ + ")");
    }
    Status st = wal_->AppendBatch(refs, golds);
    if (st.ok() && flush) st = wal_->AppendFlush(generation_ + 1);
    if (!st.ok()) {
      wal_failed_ = true;
      wal_error_ = st.message();
      return Status::FailedPrecondition("wal append failed: " + st.message());
    }
  }

  IngestReport report;
  for (size_t i = 0; i < refs.size(); ++i) {
    const int gold = golds.empty() ? -1 : golds[i];
    reconciler_.AddReference(std::move(refs[i]), gold);
    ++report.added;
  }
  counters_.ingested_references.fetch_add(report.added,
                                          std::memory_order_relaxed);
  if (flush) {
    report.generation = PublishLocked();
    report.flushed = true;
    report.staged_total = 0;
    if (wal_failed_) {
      // A checkpoint attempt crashed mid-publish (simulated kill): the
      // flush itself is durable, but a dead process acknowledges nothing.
      return Status::FailedPrecondition("durability failed during publish: " +
                                        wal_error_);
    }
  } else {
    report.generation = generation_;
    report.staged_total =
        reconciler_.dataset().num_references() - reconciler_.flushed_until();
  }
  return report;
}

StatusOr<uint64_t> ReconService::Flush() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (wal_ != nullptr) {
    if (wal_failed_) {
      return Status::FailedPrecondition(
          "durability failed, flush disabled (" + wal_error_ + ")");
    }
    const Status st = wal_->AppendFlush(generation_ + 1);
    if (!st.ok()) {
      wal_failed_ = true;
      wal_error_ = st.message();
      return Status::FailedPrecondition("wal append failed: " + st.message());
    }
  }
  const uint64_t generation = PublishLocked();
  if (wal_failed_) {
    return Status::FailedPrecondition("durability failed during publish: " +
                                      wal_error_);
  }
  return generation;
}

Status ReconService::Seal() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (wal_ == nullptr) return Status::Ok();
  if (wal_failed_) {
    return Status::FailedPrecondition("durability failed, wal not sealed (" +
                                      wal_error_ + ")");
  }
  const Status st = wal_->AppendSeal(generation_);
  if (!st.ok()) {
    wal_failed_ = true;
    wal_error_ = st.message();
  }
  return st;
}

int ReconService::staged_references() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return reconciler_.dataset().num_references() - reconciler_.flushed_until();
}

DurabilityStats ReconService::durability_stats() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  DurabilityStats stats = durability_stats_storage_;
  stats.enabled = wal_ != nullptr;
  stats.write_failed = wal_failed_;
  if (wal_ != nullptr) {
    stats.durable_generation = wal_->durable_generation();
    stats.wal_records = wal_->appended_records();
    stats.wal_bytes = wal_->appended_bytes();
  }
  return stats;
}

void ReconService::ReplayEpochLocked() {
  // One budget epoch, same as PublishLocked, but no snapshot build and no
  // checkpoint: recovery publishes once at the end.
  reconciler_.clusters();
  ++generation_;
  epoch_refs_.push_back(reconciler_.flushed_until());
}

uint64_t ReconService::PublishLocked() {
  // clusters() flushes implicitly (one PR-4 budget epoch) and returns the
  // post-closure partition. The snapshot is built here on the ingesting
  // thread; readers keep serving the old snapshot until the single
  // atomic store below, and keep the old one alive through their pins.
  const std::vector<int>& clusters = reconciler_.clusters();
  ++generation_;
  epoch_refs_.push_back(reconciler_.flushed_until());
  snapshot_.Store(BuildSnapshot(reconciler_.dataset(), clusters,
                                options_.reconciler, generation_));
  counters_.flushes.fetch_add(1, std::memory_order_relaxed);

  if (wal_ != nullptr && !wal_failed_ &&
      options_.durability.checkpoint_every > 0 &&
      generation_ %
              static_cast<uint64_t>(options_.durability.checkpoint_every) ==
          0) {
    const Status st = WriteCheckpointLocked();
    if (!st.ok()) {
      ++durability_stats_storage_.checkpoint_failures;
      // A transient failure (ENOSPC-style) is survivable: the old WAL
      // keeps extending and the next boundary retries. But if the WAL
      // itself died during rotation, Ingest's caller sees the sticky
      // failure.
    }
  }
  return generation_;
}

Status ReconService::WriteCheckpointLocked() {
  const DurabilityOptions& durability = options_.durability;
  IoFaultHook* hook = durability.io_fault.get();

  CheckpointData data;
  data.generation = generation_;
  data.epoch_refs = epoch_refs_;
  data.dataset_text = SerializeDataset(reconciler_.dataset());
  const std::vector<int>& clusters = reconciler_.clusters();
  data.clusters.assign(clusters.begin(), clusters.end());
  RECON_CHECK(reconciler_.num_staged() == 0)
      << "checkpoints only happen at flush boundaries";

  RECON_RETURN_IF_ERROR(
      WriteCheckpointFile(durability.data_dir, data, hook, nullptr));

  // Rotate: new segment based at this generation, then retire the old one
  // and older checkpoints. A crash leaves extra files that recovery
  // treats as stale; the renamed checkpoint is already the source of
  // truth for everything the old WAL held.
  const std::string old_wal_path = wal_ != nullptr ? wal_->path() : "";
  StatusOr<std::unique_ptr<WriteAheadLog>> fresh = WriteAheadLog::Create(
      durability.data_dir,
      durability.data_dir + "/" + WalFileName(generation_), generation_,
      durability.fsync, durability.io_fault);
  if (!fresh.ok()) {
    // The old WAL (if any) is still valid and still open; stay on it. But
    // if this was a simulated crash, the injector has poisoned all
    // subsequent I/O and the next append will surface it.
    if (wal_ == nullptr) {
      wal_failed_ = true;
      wal_error_ = fresh.status().message();
    }
    return fresh.status();
  }
  wal_ = std::move(fresh).value();

  DurabilityStats& stats = durability_stats_storage_;
  ++stats.checkpoints_written;
  stats.checkpoint_generation = generation_;

  if (!old_wal_path.empty()) {
    (void)wal_internal::RemoveFile(old_wal_path, hook);
  }
  if (stats.checkpoints_written > 1 || durability_stats_storage_.recovered) {
    // Remove every older checkpoint file (best effort).
    StatusOr<DataDirState> scan = ScanDataDir(durability.data_dir);
    if (scan.ok()) {
      for (size_t i = 0; i < scan.value().checkpoint_paths.size(); ++i) {
        if (scan.value().checkpoint_generations[i] == generation_) continue;
        (void)wal_internal::RemoveFile(scan.value().checkpoint_paths[i], hook);
      }
    }
  }
  return Status::Ok();
}

}  // namespace recon::service
