#include "core/tuner.h"

#include <algorithm>

#include "core/reconciler.h"
#include "eval/metrics.h"
#include "util/logging.h"
#include "util/random.h"

namespace recon {

namespace {

/// The tunable fields of SimParams, with clamping bounds.
struct Tunable {
  double SimParams::* field;
  double lo;
  double hi;
};

const std::vector<Tunable>& Tunables() {
  static const auto* tunables = new std::vector<Tunable>{
      {&SimParams::person_w_name_with_email, 0.2, 0.8},
      {&SimParams::person_w_email_with_name, 0.2, 0.8},
      {&SimParams::person_w_name_full, 0.2, 0.7},
      {&SimParams::person_w_email_full, 0.1, 0.6},
      {&SimParams::person_w_ne_full, 0.05, 0.5},
      {&SimParams::person_email_only_scale, 0.6, 1.0},
      {&SimParams::person_ne_only_scale, 0.5, 1.0},
      {&SimParams::person_w_name_ne, 0.3, 0.8},
      {&SimParams::person_w_ne_ne, 0.2, 0.7},
      {&SimParams::article_w_title, 0.4, 0.9},
      {&SimParams::article_title_only_scale, 0.7, 1.0},
      {&SimParams::venue_w_name, 0.5, 0.95},
      {&SimParams::venue_year_mismatch_penalty, 0.2, 0.9},
  };
  return *tunables;
}

double BetaGammaMutate(double value, double scale, double lo, double hi,
                       Random& rng) {
  const double factor = 1.0 + scale * (2.0 * rng.NextDouble() - 1.0);
  return std::clamp(value * factor, lo, hi);
}

double Score(const Dataset& train, const ReconcilerOptions& options,
             int class_id) {
  const Reconciler reconciler(options);
  const ReconcileResult result = reconciler.Run(train);
  return EvaluateClass(train, result.cluster, class_id).f1;
}

}  // namespace

TunerReport TuneParams(const Dataset& train, const ReconcilerOptions& base,
                       const TunerOptions& tuner_options) {
  const int class_id = train.schema().FindClass(tuner_options.target_class);
  RECON_CHECK_GE(class_id, 0)
      << "Unknown tuning class " << tuner_options.target_class;

  Random rng(tuner_options.seed);
  TunerReport report;
  report.best_params = base.params;
  report.initial_f1 = Score(train, base, class_id);
  report.best_f1 = report.initial_f1;

  for (int iteration = 0; iteration < tuner_options.iterations; ++iteration) {
    SimParams candidate = report.best_params;
    // Perturb a random non-empty subset of the tunables.
    const auto& tunables = Tunables();
    const int changes = 1 + static_cast<int>(rng.NextBounded(3));
    for (int c = 0; c < changes; ++c) {
      const Tunable& t = tunables[rng.NextBounded(tunables.size())];
      candidate.*(t.field) = BetaGammaMutate(
          candidate.*(t.field), tuner_options.mutation_scale, t.lo, t.hi,
          rng);
    }
    // Occasionally nudge the boolean-evidence rewards too.
    if (rng.NextBool(0.4)) {
      candidate.person.gamma = BetaGammaMutate(
          candidate.person.gamma, tuner_options.mutation_scale, 0.0, 0.2,
          rng);
      candidate.person.beta = BetaGammaMutate(
          candidate.person.beta, tuner_options.mutation_scale, 0.0, 0.4,
          rng);
    }

    ReconcilerOptions options = base;
    options.params = candidate;
    const double f1 = Score(train, options, class_id);
    if (f1 > report.best_f1) {
      report.best_f1 = f1;
      report.best_params = candidate;
    }
    report.history.push_back(report.best_f1);
  }
  return report;
}

}  // namespace recon
