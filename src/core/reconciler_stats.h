// Run statistics shared by the reconciler and the fixed-point solver.

#ifndef RECON_CORE_RECONCILER_STATS_H_
#define RECON_CORE_RECONCILER_STATS_H_

#include <cstdint>

namespace recon {

/// Counters for one reconciliation run (graph size feeds Table 6; timings
/// feed the perf bench). 64-bit throughout: the solver's iteration cap is
/// 500 * num_nodes, which overflows 32 bits on large synthetic datasets.
struct ReconcileStats {
  int64_t num_candidates = 0;
  int64_t num_nodes = 0;       ///< Nodes ever created.
  int64_t num_live_nodes = 0;  ///< Nodes remaining after enrichment folding.
  int64_t num_edges = 0;
  int64_t num_recomputations = 0;
  int64_t num_merges = 0;
  int64_t num_folds = 0;

  // Evidence-cache counters (ReconcilerOptions::evidence_cache). Purely
  // observational: results are byte-identical with the cache on or off.
  /// Incremental cache updates pushed along out-edges (sim raises and
  /// merged-neighbor count bumps).
  int64_t num_delta_pushes = 0;
  /// Full in-edge rescans that (re)established a node's cache.
  int64_t num_cache_rebuilds = 0;
  /// In-edges actually scanned while recomputing similarities.
  int64_t num_inedge_scans = 0;
  /// In-edges *not* scanned because a valid cache answered instead.
  int64_t num_inedge_scans_avoided = 0;

  double build_seconds = 0;
  double solve_seconds = 0;
};

}  // namespace recon

#endif  // RECON_CORE_RECONCILER_STATS_H_
