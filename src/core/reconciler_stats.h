// Run statistics shared by the reconciler and the fixed-point solver.

#ifndef RECON_CORE_RECONCILER_STATS_H_
#define RECON_CORE_RECONCILER_STATS_H_

#include <cstdint>
#include <vector>

#include "util/budget.h"

namespace recon {

/// One parallel wavefront round of the fixed-point solve (DESIGN.md §9):
/// how large the snapshotted frontier was, how many parallel scores were
/// committed as-is vs. re-scored serially after a generation mismatch, and
/// the wall time of each phase.
struct SolveRoundStat {
  int64_t frontier = 0;
  int64_t score_hits = 0;
  int64_t serial_rescores = 0;
  /// Frontier scores dropped because the node was dead (folded away) or
  /// demoted to non-merge by the time it was popped. frontier =
  /// score_hits + serial_rescores + score_discards.
  int64_t score_discards = 0;
  double score_seconds = 0;
  double commit_seconds = 0;
};

/// Counters for one reconciliation run (graph size feeds Table 6; timings
/// feed the perf bench). 64-bit throughout: the solver's iteration cap is
/// 500 * num_nodes, which overflows 32 bits on large synthetic datasets.
struct ReconcileStats {
  int64_t num_candidates = 0;
  int64_t num_nodes = 0;       ///< Nodes ever created.
  int64_t num_live_nodes = 0;  ///< Nodes remaining after enrichment folding.
  int64_t num_edges = 0;
  int64_t num_recomputations = 0;
  int64_t num_merges = 0;
  int64_t num_folds = 0;

  // Evidence-cache counters (ReconcilerOptions::evidence_cache). Purely
  // observational: results are byte-identical with the cache on or off.
  /// Incremental cache updates pushed along out-edges (sim raises and
  /// merged-neighbor count bumps).
  int64_t num_delta_pushes = 0;
  /// Full in-edge rescans that (re)established a node's cache.
  int64_t num_cache_rebuilds = 0;
  /// In-edges actually scanned while recomputing similarities.
  int64_t num_inedge_scans = 0;
  /// In-edges *not* scanned because a valid cache answered instead.
  int64_t num_inedge_scans_avoided = 0;

  // Value-store counters (ReconcilerOptions::value_store, DESIGN.md §11).
  // Observational: results are byte-identical with the store on or off.
  /// Pairwise comparator invocations during graph-build scoring (the
  /// cross-product of candidate value sets), in either mode.
  int64_t num_pair_comparisons = 0;
  /// Distinct-value analyses (parse/tokenize/n-gram passes). With the store
  /// on this is exactly one per distinct interned value; off, it counts the
  /// raw-path analyses actually performed (per-lane caches included). The
  /// perf_reconcile gate requires comparisons >= 5x analyses with the store.
  int64_t num_value_analyses = 0;
  /// Similarity-memo lookups answered from the memo / computed fresh.
  /// Misses equal the number of distinct (evidence, value pair) keys
  /// requested — deterministic across thread counts absent eviction.
  int64_t num_sim_memo_hits = 0;
  int64_t num_sim_memo_misses = 0;
  /// Shard clears forced by the memo byte bound, and lookups served as a
  /// pass-through because the bound was too small to cache at all.
  int64_t num_sim_memo_evictions = 0;
  int64_t num_sim_memo_bypasses = 0;
  /// Approximate heap bytes held by the memo and the feature table.
  int64_t sim_memo_bytes = 0;
  int64_t value_store_bytes = 0;

  // Similarity-kernel counters (DESIGN.md §16). Observational: the
  // prefilter only ever skips comparisons it proves cannot stage evidence,
  // so results are byte-identical at every dispatch level.
  /// Title comparisons skipped because the signature upper bound proved
  /// them below seed, and those that fell through to the exact comparator.
  /// Both zero with the store off or at the scalar dispatch level.
  int64_t num_prefilter_skips = 0;
  int64_t num_prefilter_exact = 0;
  /// Bytes the value store spends on prefilter signatures.
  int64_t signature_bytes = 0;
  /// SIMD dispatch level the run's string kernels executed at
  /// (strsim::SimdLevelName: "scalar", "generic", "sse42", "avx2").
  const char* simd_dispatch = "scalar";

  // Parallel wavefront counters (ReconcilerOptions::parallel_fixed_point).
  // Deterministic for a given input at every thread count > 1; all zero on
  // the sequential drain. Like the cache counters, they are observational:
  // everything above is byte-identical in either mode.
  /// Wavefront rounds executed (frontier snapshots that went parallel).
  int64_t num_solver_rounds = 0;
  /// Frontier nodes scored during parallel phases.
  int64_t num_parallel_scored = 0;
  /// Parallel scores committed as-is (generation stamp still matched).
  int64_t num_score_hits = 0;
  /// Frontier nodes re-scored serially at commit because an earlier commit
  /// in the same round mutated one of their inputs.
  int64_t num_serial_rescores = 0;
  /// Frontier scores dropped at commit: the node had been folded away or
  /// demoted mid-round (the serial drain skips such pops identically).
  int64_t num_score_discards = 0;

  // Region-partitioned commit counters (DESIGN.md §13). Deterministic at
  // every thread count: the wave schedule is a pure function of each
  // round's snapshot.
  /// Multi-pop waves whose disjoint regions committed concurrently.
  int64_t num_commit_waves = 0;
  /// Disjoint regions executed across those waves.
  int64_t num_commit_regions = 0;
  /// Frontier commits that ran inside waves (the parallelized share of
  /// the commit phase; the rest committed serially in place).
  int64_t num_wave_commits = 0;
  /// Wave members rolled back because an in-wave re-score unpredictedly
  /// crossed the merge threshold: the crossing member and everything at
  /// or after its wave position restore their pre-images from the undo
  /// logs and replay serially at their exact canonical positions.
  int64_t num_commit_deferrals = 0;

  // Canopy-sharded reconciliation counters (src/shard/, DESIGN.md §14).
  // All zero on the monolithic solve.
  /// Shards the references were partitioned into (0 = not sharded).
  int64_t num_shards = 0;
  /// Candidate pairs whose members landed in different shards; their
  /// nodes are built only in the residual boundary pass.
  int64_t num_boundary_pairs = 0;
  /// Merges committed inside the per-shard solves.
  int64_t num_shard_merges = 0;
  /// Merges committed by the residual boundary pass (cross-shard entity
  /// repairs the per-shard solves could not see).
  int64_t num_boundary_merges = 0;
  /// Wall time of the parallel per-shard solves and of the residual
  /// boundary pass (both included in build/solve_seconds' totals).
  double shard_seconds = 0;
  double boundary_seconds = 0;

  /// Heap footprint of the dependency graph's CSR storage
  /// (DependencyGraph::bytes), split by pool family: node array + static
  /// evidence, edge pools, and pair indexes + per-reference node lists.
  int64_t graph_bytes = 0;
  int64_t graph_node_bytes = 0;
  int64_t graph_edge_bytes = 0;
  int64_t graph_index_bytes = 0;

  // Budget / graceful-degradation accounting (ReconcilerOptions::budget,
  // DESIGN.md §10).
  /// Why the run stopped: kConverged on a full fixed point, the exhausted
  /// budget (or kCancelled) on a degraded — but still valid — stop. On an
  /// incremental reconciler this is the latest flush's reason.
  StopReason stop_reason = StopReason::kConverged;
  /// Fixed-point iterations (queue pops) actually executed; cumulative
  /// across incremental flushes. Compare against
  /// Budget::max_solver_iterations to see how much budget a run used.
  int64_t solver_iterations = 0;
  /// Budget probe points passed (all phases). Deterministic for a fixed
  /// configuration; the denominator of the probe-overhead bench guard.
  int64_t num_budget_probes = 0;

  double build_seconds = 0;
  /// Total solve wall time (rounds + serial segments + constraint
  /// propagation + closure). build/solve are lump phase timers; the solve
  /// drain itself is broken down below.
  double solve_seconds = 0;
  /// Wall time of the parallel score phases (sum over rounds; 0 when the
  /// drain ran sequentially).
  double solve_score_seconds = 0;
  /// Wall time of the serial commit phases plus sequential drain segments.
  /// On a fully sequential solve this is the entire queue drain.
  double solve_commit_seconds = 0;
  /// Per-round breakdown, one entry per wavefront round.
  std::vector<SolveRoundStat> solve_rounds;
};

}  // namespace recon

#endif  // RECON_CORE_RECONCILER_STATS_H_
