// Run statistics shared by the reconciler and the fixed-point solver.

#ifndef RECON_CORE_RECONCILER_STATS_H_
#define RECON_CORE_RECONCILER_STATS_H_

namespace recon {

/// Counters for one reconciliation run (graph size feeds Table 6; timings
/// feed the perf bench).
struct ReconcileStats {
  int num_candidates = 0;
  int num_nodes = 0;       ///< Nodes ever created.
  int num_live_nodes = 0;  ///< Nodes remaining after enrichment folding.
  int num_edges = 0;
  int num_recomputations = 0;
  int num_merges = 0;
  int num_folds = 0;
  double build_seconds = 0;
  double solve_seconds = 0;
};

}  // namespace recon

#endif  // RECON_CORE_RECONCILER_STATS_H_
