// Candidate pair generation (blocking), in the spirit of the canopy
// mechanism the paper borrows from McCallum et al.: a dependency-graph node
// is only built for reference pairs that share at least one blocking key
// (a name token, an email account, a rare title token, ...).

#ifndef RECON_CORE_CANDIDATES_H_
#define RECON_CORE_CANDIDATES_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/options.h"
#include "core/schema_binding.h"
#include "model/dataset.h"
#include "util/budget.h"

namespace recon {

class ValuePool;
class ValueStore;

/// Same-class reference pairs worth comparing, deduplicated, each with
/// first < second.
using CandidateList = std::vector<std::pair<RefId, RefId>>;

/// Generates candidate pairs for all classes of `dataset`.
/// With options.use_blocking == false, returns all same-class pairs.
/// A `budget` stop (probed at batch boundaries, DESIGN.md §10) truncates
/// generation: the pairs produced so far are returned, deduplicated and
/// sorted as usual. When `pool`/`store` are given (value_store on, values
/// interned and synced beforehand), key extraction reuses the precomputed
/// features instead of re-parsing; the keys are identical either way.
CandidateList GenerateCandidates(const Dataset& dataset,
                                 const SchemaBinding& binding,
                                 const ReconcilerOptions& options,
                                 BudgetTracker* budget = nullptr,
                                 const ValuePool* pool = nullptr,
                                 const ValueStore* store = nullptr);

/// Blocking keys of one reference (exposed for tests): lowercased name
/// tokens (nickname-canonicalized), parsed last names, email account cores,
/// title tokens, venue content tokens and acronyms, depending on class.
/// `pool`/`store` (optional) supply precomputed value features; keys are
/// identical with or without them.
std::vector<std::string> BlockingKeys(const Dataset& dataset, RefId ref,
                                      const SchemaBinding& binding,
                                      const ValuePool* pool = nullptr,
                                      const ValueStore* store = nullptr);

/// Incrementally maintained blocking index: add batches of references and
/// get back the candidate pairs each batch introduces. Used by the
/// incremental reconciler.
class CandidateIndex {
 public:
  CandidateIndex(SchemaBinding binding, const ReconcilerOptions& options)
      : binding_(binding), options_(options) {}

  /// Indexes references [first, dataset.num_references()) and returns the
  /// deduplicated candidate pairs involving at least one of them. Blocks
  /// over options.max_block_size contribute no pairs (consistent with
  /// GenerateCandidates). `pool`/`store` (optional) supply precomputed
  /// features for the new references' values.
  CandidateList AddReferences(const Dataset& dataset, RefId first,
                              const ValuePool* pool = nullptr,
                              const ValueStore* store = nullptr);

 private:
  SchemaBinding binding_;
  ReconcilerOptions options_;  // Copy: blocking knobs only.
  std::unordered_map<std::string, std::vector<RefId>> blocks_;
};

}  // namespace recon

#endif  // RECON_CORE_CANDIDATES_H_
