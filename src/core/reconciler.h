// The reference reconciliation algorithm (paper Figure 4): queue-driven
// fixed point over the dependency graph, with reconciliation propagation
// (§3.2), reference enrichment (§3.3), constraint enforcement (§3.4), and a
// final transitive closure.

#ifndef RECON_CORE_RECONCILER_H_
#define RECON_CORE_RECONCILER_H_

#include <utility>
#include <vector>

#include "core/graph_builder.h"
#include "core/options.h"
#include "core/reconciler_stats.h"
#include "model/dataset.h"

namespace recon {

/// The reconciliation output: a partition of the references.
struct ReconcileResult {
  /// Canonical cluster representative per reference (references of
  /// different classes are never co-clustered).
  std::vector<int> cluster;
  /// The directly merged reference pairs (before transitive closure);
  /// useful for error analysis and tests.
  std::vector<std::pair<RefId, RefId>> merged_pairs;
  ReconcileStats stats;

  /// Number of partitions among references of `class_id`.
  int NumPartitionsOfClass(const Dataset& dataset, int class_id) const;

  /// The partitions of `class_id`, each sorted, ordered by first member.
  std::vector<std::vector<RefId>> PartitionsOfClass(const Dataset& dataset,
                                                    int class_id) const;
};

/// Runs reconciliation over a dataset. Stateless between runs; one
/// Reconciler can serve many datasets.
class Reconciler {
 public:
  explicit Reconciler(ReconcilerOptions options)
      : options_(std::move(options)) {}

  /// Builds the dependency graph and runs the algorithm to its fixed
  /// point — or to the options' budget / cancellation limit, whichever
  /// comes first. A degraded stop still enforces constraints and computes
  /// the transitive closure, so the result is always a valid partition;
  /// stats.stop_reason says which exit was taken (DESIGN.md §10).
  ReconcileResult Run(const Dataset& dataset) const;

  /// Runs the fixed point over an already-built graph (shared by the
  /// incremental reconciler). The graph is consumed (mutated).
  ReconcileResult RunOnGraph(const Dataset& dataset, BuiltGraph& built) const;

  /// As above with an externally owned budget tracker, so build and solve
  /// can share one deadline epoch (Run() wires this internally).
  ReconcileResult RunOnGraph(const Dataset& dataset, BuiltGraph& built,
                             BudgetTracker* budget) const;

  const ReconcilerOptions& options() const { return options_; }

 private:
  ReconcilerOptions options_;
};

}  // namespace recon

#endif  // RECON_CORE_RECONCILER_H_
