// Incremental reference reconciliation — the paper's first future-work
// item (§7): "an efficient incremental reconciliation approach, applied
// when new references are inserted to an already-reconciled dataset."
//
// The incremental reconciler owns a growing dataset and keeps the
// dependency graph, the blocking index, and the fixed-point solver alive
// across batches. Adding a batch of references costs work proportional to
// the candidate pairs the batch introduces, not to the dataset size;
// decisions made for earlier batches stand (merges are monotone, exactly
// as in the batch algorithm).

#ifndef RECON_CORE_INCREMENTAL_H_
#define RECON_CORE_INCREMENTAL_H_

#include <memory>
#include <vector>

#include "core/candidates.h"
#include "core/graph_builder.h"
#include "core/options.h"
#include "core/reconciler.h"
#include "core/solver.h"
#include "model/dataset.h"

namespace recon {

/// Maintains a reconciled, growing dataset.
///
/// Two batch-only options are not applied incrementally: key-attribute
/// pre-merging (the graph must keep original reference identities so later
/// batches can link to them) and user feedback (pairs would refer to
/// references that may not exist yet at construction time). Use the batch
/// Reconciler when either matters.
class IncrementalReconciler {
 public:
  /// Starts from `initial` (possibly empty of references) and reconciles
  /// it in full.
  IncrementalReconciler(Dataset initial, ReconcilerOptions options);

  IncrementalReconciler(const IncrementalReconciler&) = delete;
  IncrementalReconciler& operator=(const IncrementalReconciler&) = delete;
  ~IncrementalReconciler();

  /// Appends a reference (associations may point at any existing
  /// reference). Returns its id. References are staged; call Flush() — or
  /// result() / clusters(), which flush implicitly — to reconcile.
  RefId AddReference(Reference ref, int gold_entity = -1,
                     Provenance provenance = Provenance::kOther);

  /// Reconciles all staged references against the current state. Each
  /// Flush() is one budget epoch (options().budget applies per flush, not
  /// cumulatively); a budget stop freezes the solve with its queue intact
  /// and the next Flush() — explicit or implicit via result()/clusters()
  /// — resumes it with a fresh allotment. result().stats.stop_reason
  /// reports how the latest flush ended.
  void Flush();

  /// Current partition (flushes first).
  const std::vector<int>& clusters();

  /// Current result snapshot: clusters + cumulative stats (flushes first).
  ReconcileResult result();

  const Dataset& dataset() const { return dataset_; }
  const ReconcilerOptions& options() const { return options_; }

  // ---- Const query-side accessors (no implicit flush) ---------------------
  // The reconciliation service reads state between flushes without
  // triggering one; these never mutate and are safe while no Flush() runs.

  /// First reference id not yet reconciled.
  RefId flushed_until() const { return flushed_until_; }
  /// References added but not yet flushed.
  int num_staged() const { return dataset_.num_references() - flushed_until_; }
  /// Cumulative stats of the flushes so far.
  const ReconcileStats& stats() const { return stats_; }
  /// The cached partition, or nullptr when it is stale (staged references
  /// or an invalidated closure). Unlike clusters(), never flushes.
  const std::vector<int>* clusters_if_current() const {
    return closure_valid_ && num_staged() == 0 ? &clusters_ : nullptr;
  }

 private:
  Dataset dataset_;
  ReconcilerOptions options_;
  ReconcileStats stats_;
  BuiltGraph built_;
  std::unique_ptr<CandidateIndex> index_;
  std::unique_ptr<FixedPointSolver> solver_;
  /// First reference id not yet reconciled.
  RefId flushed_until_ = 0;
  /// Cached closure; invalidated by Flush().
  std::vector<int> clusters_;
  std::vector<std::pair<RefId, RefId>> merged_pairs_;
  bool closure_valid_ = false;
};

}  // namespace recon

#endif  // RECON_CORE_INCREMENTAL_H_
