#include "core/premerge.h"

#include <string>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/union_find.h"

namespace recon {

PremergeResult PremergeEqualEmails(const Dataset& dataset,
                                   const SchemaBinding& binding) {
  const int n = dataset.num_references();
  UnionFind groups(n);

  if (binding.person >= 0 && binding.person_email >= 0) {
    std::unordered_map<std::string, RefId> first_with_email;
    for (RefId id = 0; id < n; ++id) {
      const Reference& ref = dataset.reference(id);
      if (ref.class_id() != binding.person) continue;
      for (const std::string& email :
           ref.atomic_values(binding.person_email)) {
        auto [it, inserted] =
            first_with_email.try_emplace(ToLower(email), id);
        if (!inserted) groups.Union(it->second, id);
      }
    }
  }

  return CondenseByGroups(dataset, groups);
}

PremergeResult CondenseByGroups(const Dataset& dataset, UnionFind& groups) {
  const int n = dataset.num_references();
  RECON_CHECK_EQ(groups.size(), n);
  PremergeResult out{Dataset(dataset.schema()), {}, {}};
  out.condensed_of.assign(n, kInvalidRef);

  // Assign condensed ids in order of each group's smallest member so the
  // result is deterministic and ids stay correlated with input order.
  for (RefId id = 0; id < n; ++id) {
    const int root = groups.Find(id);
    if (out.condensed_of[root] == kInvalidRef) {
      const Reference& ref = dataset.reference(id);
      out.condensed_of[root] = out.condensed.NewReference(
          ref.class_id(), dataset.gold_entity(id), dataset.provenance(id));
      out.original_rep.push_back(id);
    }
    out.condensed_of[id] = out.condensed_of[root];
  }

  // Union atomic values; remap and union associations.
  for (RefId id = 0; id < n; ++id) {
    const Reference& ref = dataset.reference(id);
    Reference& condensed =
        out.condensed.mutable_reference(out.condensed_of[id]);
    for (int attr = 0; attr < ref.num_attributes(); ++attr) {
      for (const std::string& value : ref.atomic_values(attr)) {
        condensed.AddAtomicValue(attr, value);
      }
      for (const RefId target : ref.associations(attr)) {
        const RefId mapped = out.condensed_of[target];
        if (mapped != out.condensed_of[id]) {
          condensed.AddAssociation(attr, mapped);
        }
      }
    }
  }
  return out;
}

std::vector<int> ExpandClusters(const PremergeResult& premerge,
                                const std::vector<int>& condensed_clusters) {
  RECON_CHECK_EQ(condensed_clusters.size(), premerge.original_rep.size());
  std::vector<int> clusters(premerge.condensed_of.size());
  for (size_t id = 0; id < clusters.size(); ++id) {
    const int condensed_cluster =
        condensed_clusters[premerge.condensed_of[id]];
    clusters[id] = premerge.original_rep[condensed_cluster];
  }
  return clusters;
}

}  // namespace recon
