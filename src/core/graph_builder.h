// Dependency-graph construction (paper §3.1): seeds value-pair nodes from
// atomic-attribute comparisons (step 1), wires association dependencies
// between existing nodes (step 2), and marks constraint-mandated non-merge
// nodes (§3.4).

#ifndef RECON_CORE_GRAPH_BUILDER_H_
#define RECON_CORE_GRAPH_BUILDER_H_

#include <memory>
#include <vector>

#include "core/candidates.h"
#include "core/options.h"
#include "core/schema_binding.h"
#include "graph/dep_graph.h"
#include "graph/value_pool.h"
#include "model/dataset.h"
#include "sim/class_sim.h"
#include "sim/value_store.h"
#include "util/budget.h"

namespace recon {

/// Everything the reconciler needs to run the fixed point.
struct BuiltGraph {
  std::unique_ptr<DependencyGraph> graph;
  ValuePool values;
  /// Reference-pair nodes in initial processing order: venues before
  /// persons before articles, so that a node tends to precede its outgoing
  /// real-valued neighbors (§3.2's queue invariant).
  std::vector<NodeId> initial_queue;
  /// Per class id; null for classes with no similarity function.
  std::vector<std::unique_ptr<ClassSimilarity>> class_sims;
  SchemaBinding binding;
  int num_candidates = 0;

  /// Precomputed per-value features and the bounded pairwise similarity
  /// memo (ReconcilerOptions::value_store, DESIGN.md §11). Null when the
  /// store is off. shared_ptr because BuiltGraph moves by value while
  /// staging lambdas hold raw pointers into these.
  std::shared_ptr<ValueStore> feature_store;
  std::shared_ptr<SimMemo> sim_memo;

  /// Scoring-path counters, accumulated deterministically across Build()
  /// and every Extend(); surfaced as ReconcileStats (DESIGN.md §11).
  int64_t num_pair_comparisons = 0;
  int64_t num_value_analyses = 0;
  int64_t num_sim_memo_hits = 0;
  int64_t num_sim_memo_misses = 0;
  /// Signature prefilter outcomes (DESIGN.md §16): title comparisons whose
  /// upper bound proved them below seed (skipped without exact scoring)
  /// versus those that fell through to the exact comparator. Both zero
  /// when the store is off or the dispatch level is scalar.
  int64_t num_prefilter_skips = 0;
  int64_t num_prefilter_exact = 0;
};

/// Interns the atomic attribute values of references >= `first_ref` into
/// built.values (reference order, idempotent — the same interning the
/// builder performs) and syncs built.feature_store over the new values.
/// Incremental callers use it to make features available to candidate
/// generation before ExtendDependencyGraph runs.
void InternReferenceValues(const Dataset& dataset, RefId first_ref,
                           BuiltGraph& built);

/// Per-phase observability of a shard-staged build (filled by the builder
/// when BuildOverrides::shard_plan is set).
struct ShardStageStats {
  /// Intra-shard candidate pairs staged, per shard.
  std::vector<int64_t> shard_pairs;
  /// Wall-clock seconds each shard's staging lane spent.
  std::vector<double> shard_lane_seconds;
  /// Wall-clock seconds of the whole parallel shard staging phase.
  double shard_phase_seconds = 0;
  /// Cross-shard ("boundary") candidate pairs staged.
  int64_t boundary_pairs = 0;
  /// Wall-clock seconds of the boundary staging pass.
  double boundary_seconds = 0;
};

/// Shard-major staging plan (src/shard/, DESIGN.md §14). Staging a
/// candidate pair — the string comparisons and evidence analysis — is a
/// pure function of the two references, so it can run in any grouping; the
/// staged mutations are applied serially in candidate order either way.
/// When a plan is set, SeedPairs stages every pair whose members share a
/// shard on that shard's lane under that shard's budget epoch, then stages
/// the cross-shard (boundary) pairs under the build's own budget, and only
/// then applies — producing a graph byte-identical to the monolithic
/// build's while the expensive staging work runs shard-parallel with
/// shard-local reference access.
struct ShardStagePlan {
  /// Per RefId: owning shard in [0, num_shards).
  const std::vector<int>* shard_of = nullptr;
  int num_shards = 1;
  /// Per shard: the budget epoch its staging runs under (entries may be
  /// null; only ShouldAbandonParallelWork / ResolveAsyncStop are used, so
  /// the epochs are safe to probe from pool lanes).
  std::vector<BudgetTracker*> shard_budgets;
  /// Optional out-param for per-phase staging stats.
  ShardStageStats* stats = nullptr;
};

/// Build-time hooks for callers that orchestrate a build over a partition
/// of one logical dataset (the sharded reconciler, src/shard/). All
/// default to the ordinary monolithic build.
struct BuildOverrides {
  /// Candidate pairs to seed instead of running candidate generation
  /// (must be deduplicated, first < second, sorted — the contract of
  /// GenerateCandidates). The sharded reconciler generates candidates once
  /// globally so it can split them by shard before the build.
  const CandidateList* candidates = nullptr;
  /// Apply the builder's own co-author constraint marking. Callers that
  /// reconcile condensed datasets disable it — a condensed reference's
  /// association list is the union over its members, so marking all author
  /// pairs of a condensed article would forbid pairs no original article
  /// constrains — and inject constraint pairs computed on the original
  /// dataset via feedback.distinct instead (the identical graph effect).
  bool mark_coauthor_constraints = true;
  /// Stage candidate pairs shard-by-shard (see ShardStagePlan). Null means
  /// the ordinary blocked parallel staging.
  const ShardStagePlan* shard_plan = nullptr;
};

/// Builds the dependency graph for `dataset` under `options`. `budget`
/// (optional) carries the run's execution budget (DESIGN.md §10): probes
/// fire at candidate batches and staging-chunk boundaries, and a stop
/// truncates evidence seeding / association wiring at the next chunk — a
/// degraded but structurally consistent graph. Constraint marking and
/// feedback application always run in full.
BuiltGraph BuildDependencyGraph(const Dataset& dataset,
                                const ReconcilerOptions& options,
                                BudgetTracker* budget = nullptr,
                                const BuildOverrides& overrides = {});

/// Extends an existing graph with nodes for `pairs` (candidate pairs that
/// involve references added after the graph was built) and wires their
/// association dependencies; co-author constraints are applied for article
/// references with id >= `first_new_ref`. Call graph->AddReferences()
/// before this. Returns the new reference-pair nodes in processing order
/// (venues, persons, articles) for the solver to enqueue. A `budget` stop
/// truncates evidence seeding exactly as in BuildDependencyGraph; pairs
/// not yet applied are dropped (fewer merges, still a valid partition).
std::vector<NodeId> ExtendDependencyGraph(
    const Dataset& dataset, const ReconcilerOptions& options,
    const std::vector<std::pair<RefId, RefId>>& pairs, RefId first_new_ref,
    BuiltGraph& built, BudgetTracker* budget = nullptr);

}  // namespace recon

#endif  // RECON_CORE_GRAPH_BUILDER_H_
