// The queue-driven fixed-point solver at the heart of Figure 4. Exposed
// (rather than buried in reconciler.cc) so that incremental reconciliation
// can keep one solver alive across batches of new references.

#ifndef RECON_CORE_SOLVER_H_
#define RECON_CORE_SOLVER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/graph_builder.h"
#include "core/options.h"
#include "core/reconciler_stats.h"
#include "model/dataset.h"
#include "util/budget.h"
#include "util/ring_buffer.h"
#include "util/union_find.h"

namespace recon {

/// Runs the reconciliation fixed point over a built dependency graph.
///
/// The solver owns the active-node queue and the reference union-find that
/// canonicalizes merged references for enrichment. It may be re-entered:
/// enqueue more nodes (e.g. for newly added references) and call Run()
/// again; merged state, non-merge constraints, and cluster canonicalization
/// carry over.
class FixedPointSolver {
 public:
  /// `dataset`, `built` and `stats` must outlive the solver. `budget`
  /// (optional, must outlive the solver while set) carries the run's
  /// execution budget; without one the solver still degrades gracefully
  /// at its convergence safety cap instead of aborting.
  FixedPointSolver(const Dataset& dataset, BuiltGraph& built,
                   const ReconcilerOptions& options, ReconcileStats* stats,
                   BudgetTracker* budget = nullptr);

  FixedPointSolver(const FixedPointSolver&) = delete;
  FixedPointSolver& operator=(const FixedPointSolver&) = delete;

  /// Marks `nodes` active and appends them to the queue (dead, non-merge,
  /// and already-queued nodes are skipped).
  void EnqueueNodes(const std::vector<NodeId>& nodes);

  /// Drains the queue to the fixed point (§3.2). With
  /// options.parallel_fixed_point and more than one resolved thread, the
  /// drain runs as deterministic wavefront rounds (DESIGN.md §9): the
  /// frontier is scored in parallel, side effects are committed serially in
  /// exact sequential queue order, and output is byte-identical to the
  /// one-node-at-a-time drain.
  ///
  /// Budget exhaustion or cancellation (DESIGN.md §10) never aborts: the
  /// current pop finishes (merge, enrichment, and propagation pushes
  /// included), then the drain freezes — no further pops — leaving the
  /// pending queue intact, so a later Run() with a fresh budget resumes
  /// exactly where this one stopped. Iteration and merge budgets stop
  /// after byte-identical prefixes of the canonical commit sequence, so
  /// their results are identical at every thread count.
  void Run();

  /// Replaces the budget tracker for the next Run() (nullptr restores the
  /// solver's own unlimited tracker). The incremental reconciler installs
  /// a fresh tracker per flush.
  void set_budget(BudgetTracker* budget) {
    budget_ = budget != nullptr ? budget : own_budget_.get();
  }

  /// True when a previous Run() froze with queued work remaining (a
  /// degraded stop); the next Run() continues the drain.
  bool HasPendingWork() const { return !queue_.empty(); }

  /// §3.4 step 3: post-fixpoint propagation of negative evidence. Called
  /// by the reconciler after Run() when constraints are enabled.
  ///
  /// With `closure_only` the pass skips source pairs whose demotions
  /// cannot touch a merged node and therefore cannot change this run's
  /// closure — the partition is identical, and a degraded (early-frozen)
  /// solve pays for constraint enforcement in proportion to the merges it
  /// actually made. Only valid when the solver is discarded afterwards
  /// (the batch path): the skipped kNonMerge demotions persist as
  /// negative evidence that later Run()s consult, so the incremental
  /// reconciler must propagate in full.
  void PropagateNegativeEvidence(bool closure_only = false);

  /// Transitive closure over merged pairs. Also reports the directly
  /// merged pairs when `merged_pairs` is non-null.
  std::vector<int> Closure(
      std::vector<std::pair<RefId, RefId>>* merged_pairs) const;

  /// Grows the reference universe (call after Dataset/graph grew).
  void GrowReferences(int count) { refs_.Grow(count); }

  /// The union-find over references maintained by enrichment.
  UnionFind& refs() { return refs_; }

 private:
  // ---- Parallel wavefront rounds (options_.parallel_fixed_point) --------
  // A round snapshots the head of the queue — up to parallel_frontier_max
  // nodes — as the frontier (its order — FIFO plus strong-boolean queue
  // jumps — is the canonical sort key), scores
  // every frontier node in parallel as a pure read of the frozen graph,
  // then pops and commits exactly like the sequential drain. A parallel
  // score is committed only if the node's generation stamp (Node::gen)
  // still matches the value read while scoring; otherwise an earlier
  // commit of this round changed one of its inputs and the node is
  // re-scored serially. Since committed values and all side-effect
  // ordering equal the sequential solver's, output is byte-identical by
  // construction at every thread count.

  /// What the parallel score phase records per frontier node; consumed by
  /// the serial commit.
  struct ScoreRecord {
    double score = 0;
    /// Node::gen at scoring time; a mismatch at commit means stale.
    uint32_t gen = 0;
    /// In-edge scans the serial computation would have performed.
    int64_t scans = 0;
    /// In-edge scans a valid cache would have avoided.
    int64_t avoided = 0;
    /// True when the score required a full cache rebuild; `cache` then
    /// holds the rebuilt summary to install at commit.
    bool rebuilt = false;
    EvidenceCache cache;
  };

  /// One wavefront round: snapshot, parallel score, serial commit of the
  /// whole frontier (plus any queue-jumping nodes enqueued mid-round).
  /// Returns false when the round froze early on a budget stop.
  bool RunWavefrontRound(int64_t* iterations, int64_t iteration_cap);
  /// Budget gate before every queue pop: probes the tracker and spends one
  /// iteration. True = freeze the drain now (the pending pop stays queued).
  bool StopBeforePop(int64_t* iterations, int64_t iteration_cap);
  /// Pure read: computes what Step would compute for `id` right now,
  /// including the stat deltas the serial path would record.
  void ScoreNode(NodeId id, ScoreRecord* rec) const;
  /// Step variant that consumes a fresh parallel score (or re-scores
  /// serially on a generation mismatch).
  void StepWithRecord(NodeId id, const ScoreRecord& rec);

  void Step(NodeId id);
  /// The write half of Step: state transition, merge, enrichment, delta
  /// pushes, dependent re-activation, generation bumps.
  void Commit(NodeId id, Node& node, double computed);
  void EnrichReferences(NodeId id);
  void Enqueue(NodeId id, bool front);
  /// The uncached full recomputation; in-edge reads land in `*scans`.
  double ComputeSimilarity(const Node& node, int64_t* scans) const;

  // ---- Delta-propagated evidence caching (options_.evidence_cache) ----
  // Each node's EvidenceCache is born valid (empty node, empty summary)
  // and kept equal to what a full in-edge rescan would produce: the graph
  // layer absorbs additive mutations (new edges, statics), Step() pushes a
  // node's raised sim along its real-valued out-edges and bumps merged-
  // neighbor counts along boolean out-edges at the merge transition, and
  // subtractive surgery (non-merge demotion, lost fold inputs) invalidates
  // the affected caches so they rescan exactly once on their next
  // recomputation. See DESIGN.md, "Delta-propagated evidence caching".

  /// Like ComputeSimilarity but served from the node's cache, rebuilding
  /// it first when invalid. Returns the identical value.
  double CachedSimilarity(Node& node);
  /// Full in-edge rescan into `*cache` (the one-time fallback, and the
  /// parallel score path's side-effect-free rebuild). Leaves it valid.
  void BuildCacheSummary(const Node& node, EvidenceCache* cache,
                         int64_t* scans) const;
  /// The similarity a given (valid) evidence summary yields for `node`.
  double ScoreFromCache(const Node& node, const EvidenceCache& cache) const;
  /// Offers `node.sim` to every real-valued dependent's valid cache.
  void PushSimDelta(const Node& node);
  /// Bumps merged-neighbor counts in boolean dependents' valid caches.
  /// Called exactly once per node, at its kMerged transition.
  void PushMergeDelta(const Node& node);

  const Dataset& dataset_;
  BuiltGraph& built_;
  DependencyGraph& graph_;
  const ReconcilerOptions& options_;
  ReconcileStats* stats_;
  /// Fallback tracker (unlimited budget) for callers that pass none, so
  /// the drain has exactly one budget code path.
  std::unique_ptr<BudgetTracker> own_budget_;
  BudgetTracker* budget_;
  /// Merge budget for the current Run() (0 = unlimited) and the merges
  /// committed so far in it.
  int64_t merge_cap_ = 0;
  int64_t merges_this_run_ = 0;
  UnionFind refs_;
  RingDeque<NodeId> queue_;

  // Wavefront scratch, reused across rounds. record_round_[n] names the
  // round whose records_[record_index_[n]] belongs to node n; consuming or
  // discarding a record zeroes it (0 is never a live round id).
  std::vector<NodeId> frontier_;
  std::vector<ScoreRecord> records_;
  std::vector<uint32_t> record_round_;
  std::vector<uint32_t> record_index_;
  uint32_t round_id_ = 0;
};

}  // namespace recon

#endif  // RECON_CORE_SOLVER_H_
