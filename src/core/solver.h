// The queue-driven fixed-point solver at the heart of Figure 4. Exposed
// (rather than buried in reconciler.cc) so that incremental reconciliation
// can keep one solver alive across batches of new references.

#ifndef RECON_CORE_SOLVER_H_
#define RECON_CORE_SOLVER_H_

#include <deque>
#include <utility>
#include <vector>

#include "core/graph_builder.h"
#include "core/options.h"
#include "core/reconciler_stats.h"
#include "model/dataset.h"
#include "util/union_find.h"

namespace recon {

/// Runs the reconciliation fixed point over a built dependency graph.
///
/// The solver owns the active-node queue and the reference union-find that
/// canonicalizes merged references for enrichment. It may be re-entered:
/// enqueue more nodes (e.g. for newly added references) and call Run()
/// again; merged state, non-merge constraints, and cluster canonicalization
/// carry over.
class FixedPointSolver {
 public:
  /// `dataset`, `built` and `stats` must outlive the solver.
  FixedPointSolver(const Dataset& dataset, BuiltGraph& built,
                   const ReconcilerOptions& options, ReconcileStats* stats);

  FixedPointSolver(const FixedPointSolver&) = delete;
  FixedPointSolver& operator=(const FixedPointSolver&) = delete;

  /// Marks `nodes` active and appends them to the queue (dead, non-merge,
  /// and already-queued nodes are skipped).
  void EnqueueNodes(const std::vector<NodeId>& nodes);

  /// Drains the queue to the fixed point (§3.2).
  void Run();

  /// §3.4 step 3: post-fixpoint propagation of negative evidence. Called
  /// by the reconciler after Run() when constraints are enabled.
  void PropagateNegativeEvidence();

  /// Transitive closure over merged pairs. Also reports the directly
  /// merged pairs when `merged_pairs` is non-null.
  std::vector<int> Closure(
      std::vector<std::pair<RefId, RefId>>* merged_pairs) const;

  /// Grows the reference universe (call after Dataset/graph grew).
  void GrowReferences(int count) { refs_.Grow(count); }

  /// The union-find over references maintained by enrichment.
  UnionFind& refs() { return refs_; }

 private:
  void Step(NodeId id);
  void EnrichReferences(NodeId id);
  void Enqueue(NodeId id, bool front);
  double ComputeSimilarity(const Node& node) const;

  // ---- Delta-propagated evidence caching (options_.evidence_cache) ----
  // Each node's EvidenceCache is born valid (empty node, empty summary)
  // and kept equal to what a full in-edge rescan would produce: the graph
  // layer absorbs additive mutations (new edges, statics), Step() pushes a
  // node's raised sim along its real-valued out-edges and bumps merged-
  // neighbor counts along boolean out-edges at the merge transition, and
  // subtractive surgery (non-merge demotion, lost fold inputs) invalidates
  // the affected caches so they rescan exactly once on their next
  // recomputation. See DESIGN.md, "Delta-propagated evidence caching".

  /// Like ComputeSimilarity but served from the node's cache, rebuilding
  /// it first when invalid. Returns the identical value.
  double CachedSimilarity(Node& node);
  /// Full in-edge rescan into `node.cache` (the one-time fallback).
  void RebuildCache(Node& node);
  /// Offers `node.sim` to every real-valued dependent's valid cache.
  void PushSimDelta(const Node& node);
  /// Bumps merged-neighbor counts in boolean dependents' valid caches.
  /// Called exactly once per node, at its kMerged transition.
  void PushMergeDelta(const Node& node);

  const Dataset& dataset_;
  BuiltGraph& built_;
  DependencyGraph& graph_;
  const ReconcilerOptions& options_;
  ReconcileStats* stats_;
  UnionFind refs_;
  std::deque<NodeId> queue_;
};

}  // namespace recon

#endif  // RECON_CORE_SOLVER_H_
