// The queue-driven fixed-point solver at the heart of Figure 4. Exposed
// (rather than buried in reconciler.cc) so that incremental reconciliation
// can keep one solver alive across batches of new references.

#ifndef RECON_CORE_SOLVER_H_
#define RECON_CORE_SOLVER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/graph_builder.h"
#include "core/options.h"
#include "core/reconciler_stats.h"
#include "model/dataset.h"
#include "util/budget.h"
#include "util/ring_buffer.h"
#include "util/union_find.h"

namespace recon {

/// Runs the reconciliation fixed point over a built dependency graph.
///
/// The solver owns the active-node queue and the reference union-find that
/// canonicalizes merged references for enrichment. It may be re-entered:
/// enqueue more nodes (e.g. for newly added references) and call Run()
/// again; merged state, non-merge constraints, and cluster canonicalization
/// carry over.
class FixedPointSolver {
 public:
  /// `dataset`, `built` and `stats` must outlive the solver. `budget`
  /// (optional, must outlive the solver while set) carries the run's
  /// execution budget; without one the solver still degrades gracefully
  /// at its convergence safety cap instead of aborting.
  FixedPointSolver(const Dataset& dataset, BuiltGraph& built,
                   const ReconcilerOptions& options, ReconcileStats* stats,
                   BudgetTracker* budget = nullptr);

  FixedPointSolver(const FixedPointSolver&) = delete;
  FixedPointSolver& operator=(const FixedPointSolver&) = delete;

  /// Marks `nodes` active and appends them to the queue (dead, non-merge,
  /// and already-queued nodes are skipped).
  void EnqueueNodes(const std::vector<NodeId>& nodes);

  /// Drains the queue to the fixed point (§3.2). With
  /// options.parallel_fixed_point the drain runs as deterministic
  /// wavefront rounds (DESIGN.md §9, §13): the frontier is scored in
  /// parallel, then committed in canonical queue order with runs of
  /// merge-free disjoint regions executed concurrently (region-partitioned
  /// commit). The schedule is a pure function of the snapshot, so output
  /// is byte-identical at every thread count — including one, which runs
  /// the same rounds inline (so round stats stay comparable across thread
  /// counts).
  ///
  /// Budget exhaustion or cancellation (DESIGN.md §10) never aborts: the
  /// current pop finishes (merge, enrichment, and propagation pushes
  /// included), then the drain freezes — no further pops — leaving the
  /// pending queue intact, so a later Run() with a fresh budget resumes
  /// exactly where this one stopped. Iteration and merge budgets stop
  /// after byte-identical prefixes of the canonical commit sequence, so
  /// their results are identical at every thread count.
  void Run();

  /// Replaces the budget tracker for the next Run() (nullptr restores the
  /// solver's own unlimited tracker). The incremental reconciler installs
  /// a fresh tracker per flush.
  void set_budget(BudgetTracker* budget) {
    budget_ = budget != nullptr ? budget : own_budget_.get();
  }

  /// True when a previous Run() froze with queued work remaining (a
  /// degraded stop); the next Run() continues the drain.
  bool HasPendingWork() const { return !queue_.empty(); }

  /// §3.4 step 3: post-fixpoint propagation of negative evidence. Called
  /// by the reconciler after Run() when constraints are enabled.
  ///
  /// With `closure_only` the pass skips source pairs whose demotions
  /// cannot touch a merged node and therefore cannot change this run's
  /// closure — the partition is identical, and a degraded (early-frozen)
  /// solve pays for constraint enforcement in proportion to the merges it
  /// actually made. Only valid when the solver is discarded afterwards
  /// (the batch path): the skipped kNonMerge demotions persist as
  /// negative evidence that later Run()s consult, so the incremental
  /// reconciler must propagate in full.
  void PropagateNegativeEvidence(bool closure_only = false);

  /// Transitive closure over merged pairs. Each reference maps to its
  /// cluster's smallest member id (canonical, independent of merge order).
  /// Also reports the directly merged pairs when `merged_pairs` is
  /// non-null.
  std::vector<int> Closure(
      std::vector<std::pair<RefId, RefId>>* merged_pairs) const;

  /// Grows the reference universe (call after Dataset/graph grew).
  void GrowReferences(int count) { refs_.Grow(count); }

  /// The union-find over references maintained by enrichment.
  UnionFind& refs() { return refs_; }

 private:
  // ---- Parallel wavefront rounds (options_.parallel_fixed_point) --------
  // A round snapshots the head of the queue — up to parallel_frontier_max
  // nodes — as the frontier (its order — FIFO plus strong-boolean queue
  // jumps — is the canonical sort key), scores
  // every frontier node in parallel as a pure read of the frozen graph,
  // then pops and commits exactly like the sequential drain. A parallel
  // score is committed only if the node's generation stamp (Node::gen)
  // still matches the value read while scoring; otherwise an earlier
  // commit of this round changed one of its inputs and the node is
  // re-scored serially. Since committed values and all side-effect
  // ordering equal the sequential solver's, output is byte-identical by
  // construction at every thread count.

  /// What the parallel score phase records per frontier node; consumed by
  /// the serial commit.
  struct ScoreRecord {
    double score = 0;
    /// Node::gen at scoring time; a mismatch at commit means stale.
    uint32_t gen = 0;
    /// In-edge scans the serial computation would have performed.
    int64_t scans = 0;
    /// In-edge scans a valid cache would have avoided.
    int64_t avoided = 0;
    /// True when the score required a full cache rebuild; `cache` then
    /// holds the rebuilt summary to install at commit.
    bool rebuilt = false;
    EvidenceCache cache;
  };

  /// One wavefront round: snapshot, parallel score, region partition, then
  /// commit in canonical order with parallel waves (plus any queue-jumping
  /// nodes enqueued mid-round, which commit serially in place).
  /// Returns false when the round froze early on a budget stop.
  bool RunWavefrontRound(int64_t* iterations, int64_t iteration_cap);
  /// Budget gate before every queue pop: probes the tracker and spends one
  /// iteration. True = freeze the drain now (the pending pop stays queued).
  bool StopBeforePop(int64_t* iterations, int64_t iteration_cap);
  /// Pure read: computes what Step would compute for `id` right now,
  /// including the stat deltas the serial path would record.
  void ScoreNode(NodeId id, ScoreRecord* rec) const;
  /// Step variant that consumes a fresh parallel score (or re-scores
  /// serially on a generation mismatch).
  void StepWithRecord(NodeId id, const ScoreRecord& rec);

  void Step(NodeId id);
  /// The write half of Step: state transition, merge, enrichment, delta
  /// pushes, dependent re-activation, generation bumps.
  void Commit(NodeId id, Node& node, double computed);
  void EnrichReferences(NodeId id);
  void Enqueue(NodeId id, bool front);
  /// The uncached full recomputation; in-edge reads land in `*scans`.
  double ComputeSimilarity(NodeId id, int64_t* scans) const;

  // ---- Region-partitioned parallel commit (DESIGN.md §13) ---------------
  // The commit phase walks pops in canonical order; consecutive pops whose
  // regions contain no predicted merge batch into a *wave*, and a wave's
  // disjoint regions execute concurrently. A region is the union-find
  // closure of the frontier under claim(i) = {node_i} ∪ out(node_i): every
  // node a frontier commit can write — and every frontier node whose
  // inputs it can change — is claimed, so two different regions never
  // touch the same node and in-wave commits commute with each other.
  // Predicted merges (and nodes popped without a record) flush the wave
  // and commit serially at their exact canonical position, because merge
  // side effects (folds, enrichment, queue jumps) are unbounded by claims.

  /// One frontier pop batched into the pending wave.
  struct WaveEntry {
    NodeId id = kInvalidNode;
    uint32_t rec = 0;  ///< Frontier index (names records_/region_parent_).
  };

  /// Pre-image of one node written during an in-wave commit: restoring
  /// snapshots in reverse log order rewinds the region to any member
  /// boundary. Nodes are slim (edges live in CSR pools, which in-wave
  /// commits never touch), so a full copy is cheap and exact.
  struct WaveUndo {
    uint32_t pos;   ///< Wave position of the committing member.
    NodeId id;      ///< Node about to be written.
    Node snapshot;  ///< Its bytes immediately before the write.
  };

  /// Cumulative region counters after each committed member; the join adds
  /// the last mark that survives a rollback (or the final mark when none
  /// was needed), so replayed commits are never double-counted.
  struct WaveMemberMark {
    uint32_t pos;
    int64_t hits;
    int64_t rescores;
    int64_t discards;
    int64_t scans;
    int64_t avoided;
    int64_t rebuilds;
    int64_t delta_pushes;
    int64_t recomputations;
  };

  /// Per-region commit context: members in canonical order, buffered
  /// enqueues tagged with the committing pop's wave position, the undo
  /// log, and private stat counters merged serially at the wave join.
  struct WaveRegionCtx {
    std::vector<uint32_t> members;  ///< Positions into wave_, ascending.
    std::vector<std::pair<uint32_t, NodeId>> enqueues;
    std::vector<WaveUndo> undo;
    std::vector<WaveMemberMark> marks;
    int64_t hits = 0;
    int64_t rescores = 0;
    int64_t discards = 0;
    int64_t scans = 0;
    int64_t avoided = 0;
    int64_t rebuilds = 0;
    int64_t delta_pushes = 0;
    int64_t recomputations = 0;
    /// First members-ordinal whose re-score crossed the merge threshold
    /// (execution stopped just before its first write), or UINT32_MAX.
    uint32_t deferred_from = UINT32_MAX;

    void Clear() {
      members.clear();
      enqueues.clear();
      undo.clear();
      marks.clear();
      hits = rescores = discards = scans = avoided = rebuilds = 0;
      delta_pushes = recomputations = 0;
      deferred_from = UINT32_MAX;
    }
  };

  /// Phase 1b: union-find over frontier indices via the claim table, then
  /// fold per-node merge predictions into per-region heavy flags.
  void PartitionFrontier(size_t frontier_size);
  uint32_t RegionFind(uint32_t x);
  /// Executes and clears the pending wave: groups entries by region,
  /// commits regions concurrently, then joins serially — probing the
  /// budget once per member in canonical order (wave pops defer their
  /// per-pop probes to this join; light commits never change budget state,
  /// so each probe observes exactly what it would have in place), merging
  /// stats, and splicing buffered enqueues into the queue in canonical
  /// push order. If any region's re-score crossed the merge threshold,
  /// every commit at or after the first crossing position is rolled back
  /// from the undo logs and those members are re-injected at the queue
  /// front (their regions marked heavy), so the pop loop replays them
  /// serially in exact canonical order — merges and their unbounded side
  /// effects included; the replayed pops were never probed here, so each
  /// re-pop probes and counts normally. Returns false when a join probe
  /// froze the drain: members from the stop position on are rolled back
  /// and stashed in wave_reinject_, exactly as if never popped.
  bool FlushWave(int64_t* iterations, int64_t iteration_cap);
  /// Pushes wave_reinject_ onto the queue front in canonical order, with
  /// records re-armed and their regions marked heavy for serial replay.
  void ReinjectWave();
  /// In-wave serial commit of one region, members in canonical order.
  void ExecuteWaveRegion(WaveRegionCtx& ctx);
  /// The merge-free half of Commit() with ctx-buffered side effects.
  void WaveCommitLight(NodeId id, Node& node, double computed,
                       WaveRegionCtx& ctx, uint32_t pos);
  /// CachedSimilarity made side-effect free: a cache rebuild lands in
  /// *fresh (installed by the caller only on commit) and the stat deltas
  /// in *rebuilt / *scans / *avoided, so a deferral leaves the node — and
  /// the run's counters — bitwise as the sequential drain would find them.
  double WaveRescore(NodeId id, const Node& node, EvidenceCache* fresh,
                     bool* rebuilt, int64_t* scans, int64_t* avoided) const;
  void WaveEnqueue(NodeId id, WaveRegionCtx& ctx, uint32_t pos);

  // ---- Delta-propagated evidence caching (options_.evidence_cache) ----
  // Each node's EvidenceCache is born valid (empty node, empty summary)
  // and kept equal to what a full in-edge rescan would produce: the graph
  // layer absorbs additive mutations (new edges, statics), Step() pushes a
  // node's raised sim along its real-valued out-edges and bumps merged-
  // neighbor counts along boolean out-edges at the merge transition, and
  // subtractive surgery (non-merge demotion, lost fold inputs) invalidates
  // the affected caches so they rescan exactly once on their next
  // recomputation. See DESIGN.md, "Delta-propagated evidence caching".

  /// Like ComputeSimilarity but served from the node's cache, rebuilding
  /// it first when invalid. Returns the identical value.
  double CachedSimilarity(NodeId id, Node& node);
  /// Full in-edge rescan into `*cache` (the one-time fallback, and the
  /// parallel score path's side-effect-free rebuild). Leaves it valid.
  void BuildCacheSummary(NodeId id, EvidenceCache* cache,
                         int64_t* scans) const;
  /// The similarity a given (valid) evidence summary yields for `node`.
  double ScoreFromCache(const Node& node, const EvidenceCache& cache) const;
  /// Offers `node.sim` to every real-valued dependent's valid cache.
  void PushSimDelta(NodeId id, const Node& node);
  /// Bumps merged-neighbor counts in boolean dependents' valid caches.
  /// Called exactly once per node, at its kMerged transition.
  void PushMergeDelta(NodeId id);

  const Dataset& dataset_;
  BuiltGraph& built_;
  DependencyGraph& graph_;
  const ReconcilerOptions& options_;
  ReconcileStats* stats_;
  /// Fallback tracker (unlimited budget) for callers that pass none, so
  /// the drain has exactly one budget code path.
  std::unique_ptr<BudgetTracker> own_budget_;
  BudgetTracker* budget_;
  /// Merge budget for the current Run() (0 = unlimited) and the merges
  /// committed so far in it.
  int64_t merge_cap_ = 0;
  int64_t merges_this_run_ = 0;
  UnionFind refs_;
  RingDeque<NodeId> queue_;

  // Wavefront scratch, reused across rounds. record_round_[n] names the
  // round whose records_[record_index_[n]] belongs to node n; consuming or
  // discarding a record zeroes it (0 is never a live round id).
  std::vector<NodeId> frontier_;
  std::vector<ScoreRecord> records_;
  std::vector<uint32_t> record_round_;
  std::vector<uint32_t> record_index_;
  uint32_t round_id_ = 0;

  // Region-partition scratch, reused across rounds. claim_stamp_/
  // claim_owner_ are per node (stamped with round_id_); the rest are per
  // frontier index. region_ctx_stamp_ entries stay valid across waves
  // because wave_seq_ never repeats.
  std::vector<uint32_t> claim_stamp_;
  std::vector<uint32_t> claim_owner_;
  std::vector<uint32_t> region_parent_;
  std::vector<char> region_heavy_;
  std::vector<uint32_t> region_ctx_stamp_;
  std::vector<uint32_t> region_ctx_id_;
  std::vector<WaveEntry> wave_;
  std::vector<WaveRegionCtx> wave_regions_;
  size_t num_wave_regions_ = 0;
  uint32_t wave_seq_ = 0;
  /// The enqueue splice buffer (surviving back-pushes, canonical order).
  std::vector<std::pair<uint32_t, NodeId>> wave_splice_;
  /// Members the last FlushWave() rolled back, in canonical order; the
  /// pop loop re-queues them (ReinjectWave) for serial replay. None of
  /// them has consumed a budget probe or an iteration: the join only
  /// probes positions before the rollback point, so each canonical pop is
  /// probed and counted exactly once — at the join if its commit
  /// survived, at its re-pop if it rolled back.
  std::vector<WaveEntry> wave_reinject_;
};

}  // namespace recon

#endif  // RECON_CORE_SOLVER_H_
