#include "core/candidates.h"

#include "core/canopy.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "runtime/parallel.h"
#include "sim/value_store.h"
#include "strsim/email.h"
#include "strsim/person_name.h"
#include "strsim/venue.h"
#include "util/string_util.h"

namespace recon {

namespace {

/// Precomputed features of an interned value, or null when no store is in
/// play (tests, value_store off) — callers then analyze the raw string.
const ValueFeatures* FindFeatures(const ValuePool* pool,
                                  const ValueStore* store, ValueDomain domain,
                                  const std::string& raw) {
  if (pool == nullptr || store == nullptr) return nullptr;
  const ValueId id = pool->Find(domain, raw);
  if (id == kInvalidValue || !store->Covers(id)) return nullptr;
  return &store->features(id);
}

// Key namespaces. Person name tokens and email account cores share the
// "n:" namespace on purpose: that is what lets "Stonebraker, M." land in
// the same block as "stonebraker@csail.mit.edu".
constexpr char kNameSpace[] = "n:";
constexpr char kEmailSpace[] = "e:";
constexpr char kTitleSpace[] = "t:";
// Typo-tolerant prefix keys: last names and account cores share 4-char
// prefix blocks so a mid-word typo still lands next to its original.
constexpr char kPrefixSpace[] = "p4:";
constexpr char kVenueSpace[] = "v:";

std::string StripAccountCore(const std::string& account) {
  std::string core;
  for (char c : account) {
    if (c == '.' || c == '_' || c == '-') continue;
    core.push_back(c);
  }
  while (!core.empty() && core.back() >= '0' && core.back() <= '9') {
    core.pop_back();
  }
  return core;
}

void AppendPersonKeys(const Dataset& dataset, RefId ref,
                      const SchemaBinding& binding, const ValuePool* pool,
                      const ValueStore* store,
                      std::vector<std::string>& keys) {
  const Reference& r = dataset.reference(ref);
  if (binding.person_name >= 0) {
    const ValueDomain name_domain{binding.person, binding.person_name};
    for (const std::string& raw : r.atomic_values(binding.person_name)) {
      const ValueFeatures* f = FindFeatures(pool, store, name_domain, raw);
      strsim::PersonName parsed;
      if (f == nullptr) parsed = strsim::ParsePersonName(raw);
      const strsim::PersonName& name = (f != nullptr) ? f->name : parsed;
      if (!name.last.empty()) {
        // Last names are the discriminative key; adding first-name keys for
        // structured names would put every "Robert *" in one giant block.
        keys.push_back(kNameSpace + name.last);
        if (name.last.size() >= 4) {
          keys.push_back(kPrefixSpace + name.last.substr(0, 4));
        }
      } else {
        // Bare first names / nicknames ("mike"): key on the canonical
        // given name so they meet matching email account cores.
        for (const auto& given : name.given) {
          if (given.is_initial || given.text.size() < 2) continue;
          keys.push_back(kNameSpace +
                         strsim::CanonicalGivenName(given.text));
        }
      }
    }
  }
  if (binding.person_email >= 0) {
    const ValueDomain email_domain{binding.person, binding.person_email};
    for (const std::string& raw : r.atomic_values(binding.person_email)) {
      const ValueFeatures* f = FindFeatures(pool, store, email_domain, raw);
      strsim::EmailAddress parsed;
      if (f == nullptr) parsed = strsim::ParseEmail(raw);
      const strsim::EmailAddress& email = (f != nullptr) ? f->email : parsed;
      if (email.account.empty()) continue;
      keys.push_back(kEmailSpace + email.ToString());
      const std::string core = StripAccountCore(email.account);
      if (core.size() >= 3) {
        keys.push_back(kNameSpace + core);
        if (core.size() >= 4) {
          keys.push_back(kPrefixSpace + core.substr(0, 4));
        }
        const std::string canonical = strsim::CanonicalGivenName(core);
        if (canonical != core) keys.push_back(kNameSpace + canonical);
        // Initial-pattern accounts ("repstein", "epsteinr") land in the
        // last-name block once the leading/trailing letter is stripped.
        if (core.size() >= 5) {
          keys.push_back(kNameSpace + core.substr(1));
          keys.push_back(kNameSpace + core.substr(0, core.size() - 1));
        }
      }
      // Separator-delimited parts ("robert.epstein") meet both last-name
      // and bare-first-name blocks.
      std::string part;
      for (const char c : email.account + ".") {
        if (c == '.' || c == '_' || c == '-' || c == '@') {
          if (part.size() >= 3 && part != core) {
            keys.push_back(kNameSpace + part);
            if (part.size() >= 4) {
              keys.push_back(kPrefixSpace + part.substr(0, 4));
            }
          }
          part.clear();
        } else if (c < '0' || c > '9') {
          part.push_back(c);
        }
      }
    }
  }
}

void AppendArticleKeys(const Dataset& dataset, RefId ref,
                       const SchemaBinding& binding, const ValuePool* pool,
                       const ValueStore* store,
                       std::vector<std::string>& keys) {
  if (binding.article_title < 0) return;
  const Reference& r = dataset.reference(ref);
  const ValueDomain title_domain{binding.article, binding.article_title};
  for (const std::string& title : r.atomic_values(binding.article_title)) {
    const ValueFeatures* f = FindFeatures(pool, store, title_domain, title);
    std::vector<std::string> tokenized;
    if (f == nullptr) tokenized = Tokenize(title);
    const std::vector<std::string>& tokens =
        (f != nullptr) ? f->title.tokens : tokenized;
    for (const std::string& token : tokens) {
      if (token.size() < 3 || IsDigits(token)) continue;
      keys.push_back(kTitleSpace + token);
    }
  }
}

void AppendVenueKeys(const Dataset& dataset, RefId ref,
                     const SchemaBinding& binding, const ValuePool* pool,
                     const ValueStore* store,
                     std::vector<std::string>& keys) {
  if (binding.venue_name < 0) return;
  const Reference& r = dataset.reference(ref);
  const ValueDomain name_domain{binding.venue, binding.venue_name};
  for (const std::string& name : r.atomic_values(binding.venue_name)) {
    const ValueFeatures* f = FindFeatures(pool, store, name_domain, name);
    std::vector<std::string> expanded_local;
    if (f == nullptr) expanded_local = strsim::VenueContentTokens(name);
    const std::vector<std::string>& content =
        (f != nullptr) ? f->venue.expanded : expanded_local;
    for (const std::string& token : content) {
      keys.push_back(kVenueSpace + token);
    }
    const std::string acronym =
        (f != nullptr) ? f->venue.acronym : strsim::VenueAcronym(name);
    if (acronym.size() >= 3) keys.push_back(kVenueSpace + acronym);
  }
}

}  // namespace

std::vector<std::string> BlockingKeys(const Dataset& dataset, RefId ref,
                                      const SchemaBinding& binding,
                                      const ValuePool* pool,
                                      const ValueStore* store) {
  std::vector<std::string> keys;
  const int class_id = dataset.reference(ref).class_id();
  if (class_id == binding.person) {
    AppendPersonKeys(dataset, ref, binding, pool, store, keys);
  } else if (class_id == binding.article) {
    AppendArticleKeys(dataset, ref, binding, pool, store, keys);
  } else if (class_id == binding.venue) {
    AppendVenueKeys(dataset, ref, binding, pool, store, keys);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

CandidateList GenerateCandidates(const Dataset& dataset,
                                 const SchemaBinding& binding,
                                 const ReconcilerOptions& options,
                                 BudgetTracker* budget, const ValuePool* pool,
                                 const ValueStore* store) {
  CandidateList out;

  if (options.use_blocking && options.use_canopies) {
    CanopyOptions canopy;
    canopy.loose_threshold = options.canopy_loose_threshold;
    canopy.tight_threshold = options.canopy_tight_threshold;
    canopy.max_canopy_size = options.max_canopy_size;
    canopy.num_threads = options.num_threads;
    return GenerateCanopyCandidates(dataset, binding, canopy, budget, pool,
                                    store);
  }

  if (!options.use_blocking) {
    // All same-class pairs, for small datasets and ablations; probe per
    // class (batch boundary) so a budget stop truncates to a class prefix.
    for (int class_id = 0; class_id < dataset.schema().num_classes();
         ++class_id) {
      if (budget != nullptr && budget->Probe(ProbePoint::kCandidates)) break;
      const std::vector<RefId> refs = dataset.ReferencesOfClass(class_id);
      for (size_t i = 0; i < refs.size(); ++i) {
        for (size_t j = i + 1; j < refs.size(); ++j) {
          out.emplace_back(refs[i], refs[j]);
        }
      }
    }
    return out;
  }

  // Key extraction (parsing-heavy) runs in parallel; each reference writes
  // its own slot, so no synchronization is needed. The index build stays
  // serial: it is cheap hashing, and a fixed insertion order keeps the map
  // identical for every thread count.
  const RefId num_refs = dataset.num_references();
  std::vector<std::vector<std::string>> keys_of(num_refs);
  runtime::ParallelFor(options.num_threads, 0, num_refs, /*grain=*/256,
                       [&](int64_t ref) {
                         if (budget != nullptr && (ref % 256) == 0 &&
                             budget->ShouldAbandonParallelWork()) {
                           return;
                         }
                         keys_of[ref] =
                             BlockingKeys(dataset, static_cast<RefId>(ref),
                                          binding, pool, store);
                       });
  if (budget != nullptr) budget->ResolveAsyncStop();
  // Serial index build, probing every 256 references: a budget stop
  // truncates blocking to a reference-id prefix (still a valid — merely
  // smaller — candidate set).
  std::unordered_map<std::string, std::vector<RefId>> blocks;
  for (RefId ref = 0; ref < num_refs; ++ref) {
    if (budget != nullptr && (ref % 256) == 0 &&
        budget->Probe(ProbePoint::kCandidates)) {
      break;
    }
    for (std::string& key : keys_of[ref]) {
      blocks[std::move(key)].push_back(ref);
    }
  }

  const int lanes = runtime::ResolveNumThreads(options.num_threads);
  if (lanes <= 1) {
    int64_t block_index = 0;
    for (const auto& [key, members] : blocks) {
      // Batch boundary: one probe per 64 blocks expanded.
      if (budget != nullptr && (block_index++ % 64) == 0 &&
          budget->Probe(ProbePoint::kCandidates)) {
        break;
      }
      if (static_cast<int>(members.size()) > options.max_block_size) continue;
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          out.emplace_back(std::min(members[i], members[j]),
                           std::max(members[i], members[j]));
        }
      }
    }
    // Deterministic order regardless of hash iteration. Emit-all then
    // sort + unique: a pair sharing several blocks collapses here, for a
    // fraction of the cost of a hash probe per emitted pair, and a budget
    // stop truncates to a block prefix either way.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  // Parallel pair expansion: one shard per block of blocking keys, dedup by
  // sort + unique afterwards — the final sorted unique pair set is exactly
  // what the serial seen-set path produces.
  std::vector<const std::vector<RefId>*> block_members;
  block_members.reserve(blocks.size());
  for (const auto& [key, members] : blocks) {
    if (static_cast<int>(members.size()) > options.max_block_size) continue;
    block_members.push_back(&members);
  }
  const runtime::BlockPlan plan = runtime::PlanBlocks(
      options.num_threads, 0, static_cast<int64_t>(block_members.size()),
      /*grain=*/0);
  runtime::ShardedCollector<std::pair<RefId, RefId>> collector(plan);
  runtime::ParallelForBlocked(
      options.num_threads, 0, static_cast<int64_t>(block_members.size()),
      plan.grain, [&](const runtime::Block& block) {
        std::vector<std::pair<RefId, RefId>>& shard =
            collector.shard(block.index);
        for (int64_t k = block.begin; k < block.end; ++k) {
          if (budget != nullptr && ((k - block.begin) % 64) == 0 &&
              budget->ShouldAbandonParallelWork()) {
            return;
          }
          const std::vector<RefId>& members = *block_members[k];
          for (size_t i = 0; i < members.size(); ++i) {
            for (size_t j = i + 1; j < members.size(); ++j) {
              shard.emplace_back(std::min(members[i], members[j]),
                                 std::max(members[i], members[j]));
            }
          }
        }
      });
  if (budget != nullptr) budget->ResolveAsyncStop();
  out = collector.Drain();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

CandidateList CandidateIndex::AddReferences(const Dataset& dataset,
                                            RefId first,
                                            const ValuePool* pool,
                                            const ValueStore* store) {
  // Index the new references, remembering which blocks they joined.
  std::vector<std::string> touched;
  for (RefId ref = first; ref < dataset.num_references(); ++ref) {
    for (std::string& key : BlockingKeys(dataset, ref, binding_, pool, store)) {
      auto [it, inserted] = blocks_.try_emplace(std::move(key));
      it->second.push_back(ref);
      touched.push_back(it->first);
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Pairs: each new member against every other member of its blocks.
  // Duplicates (a pair meeting in several touched blocks) collapse in the
  // final sort + unique instead of a per-pair hash probe.
  CandidateList out;
  for (const std::string& key : touched) {
    const std::vector<RefId>& members = blocks_.at(key);
    if (static_cast<int>(members.size()) > options_.max_block_size) continue;
    for (const RefId a : members) {
      if (a < first) continue;  // Old members pair only with new ones.
      for (const RefId b : members) {
        if (b >= a) break;  // Members are in insertion (= id) order.
        out.emplace_back(b, a);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace recon
