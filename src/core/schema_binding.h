// Resolves the well-known classes/attributes of the PIM and Cora schemas
// to ids, tolerating absent attributes (Cora has no Person.email).

#ifndef RECON_CORE_SCHEMA_BINDING_H_
#define RECON_CORE_SCHEMA_BINDING_H_

#include "model/schema.h"

namespace recon {

/// Attribute/class ids for the personal-information domain. Absent classes
/// and attributes are -1; wiring code checks before use.
struct SchemaBinding {
  int person = -1;
  int article = -1;
  int venue = -1;

  int person_name = -1;
  int person_email = -1;
  int person_coauthor = -1;
  int person_contact = -1;

  int article_title = -1;
  int article_year = -1;
  int article_pages = -1;
  int article_authors = -1;
  int article_venue = -1;

  int venue_name = -1;
  int venue_year = -1;
  int venue_location = -1;

  /// Looks up every known name; missing entries stay -1.
  static SchemaBinding Resolve(const Schema& schema);
};

}  // namespace recon

#endif  // RECON_CORE_SCHEMA_BINDING_H_
