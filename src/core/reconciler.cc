#include "core/reconciler.h"

#include <algorithm>
#include <map>

#include "core/premerge.h"
#include "core/solver.h"
#include "strsim/simd_dispatch.h"
#include "util/timer.h"

namespace recon {

namespace {

/// Lifts a condensed-space result back to the original references,
/// including the key merges the premerge itself performed.
ReconcileResult ExpandResult(const PremergeResult& premerge,
                             ReconcileResult condensed) {
  ReconcileResult result;
  result.stats = condensed.stats;
  result.cluster = ExpandClusters(premerge, condensed.cluster);
  for (const auto& [a, b] : condensed.merged_pairs) {
    result.merged_pairs.emplace_back(premerge.original_rep[a],
                                     premerge.original_rep[b]);
  }
  for (RefId id = 0;
       id < static_cast<RefId>(premerge.condensed_of.size()); ++id) {
    const RefId rep = premerge.original_rep[premerge.condensed_of[id]];
    if (rep != id) result.merged_pairs.emplace_back(rep, id);
  }
  return result;
}

}  // namespace

int ReconcileResult::NumPartitionsOfClass(const Dataset& dataset,
                                          int class_id) const {
  std::map<int, int> seen;
  int count = 0;
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    if (dataset.reference(id).class_id() != class_id) continue;
    if (seen.emplace(cluster[id], 1).second) ++count;
  }
  return count;
}

std::vector<std::vector<RefId>> ReconcileResult::PartitionsOfClass(
    const Dataset& dataset, int class_id) const {
  std::map<int, std::vector<RefId>> by_cluster;
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    if (dataset.reference(id).class_id() != class_id) continue;
    by_cluster[cluster[id]].push_back(id);
  }
  std::vector<std::vector<RefId>> partitions;
  partitions.reserve(by_cluster.size());
  for (auto& [rep, members] : by_cluster) {
    partitions.push_back(std::move(members));
  }
  std::sort(partitions.begin(), partitions.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return partitions;
}

ReconcileResult Reconciler::Run(const Dataset& dataset) const {
  // One tracker for the whole run: the deadline covers candidate
  // generation, graph build, and the solve together (DESIGN.md §10).
  BudgetTracker tracker(options_.budget, options_.cancel,
                        options_.probe_hook);
  if (options_.premerge_equal_emails) {
    const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
    PremergeResult premerge = PremergeEqualEmails(dataset, binding);
    if (premerge.condensed.num_references() < dataset.num_references()) {
      // Feedback pairs are in original-reference space; remap them.
      ReconcilerOptions condensed_options = options_;
      condensed_options.feedback = Feedback{};
      auto remap = [&](const std::vector<std::pair<int32_t, int32_t>>& in,
                       std::vector<std::pair<int32_t, int32_t>>& out) {
        for (const auto& [a, b] : in) {
          if (a < 0 || b < 0 ||
              a >= static_cast<int32_t>(premerge.condensed_of.size()) ||
              b >= static_cast<int32_t>(premerge.condensed_of.size())) {
            continue;
          }
          const RefId ca = premerge.condensed_of[a];
          const RefId cb = premerge.condensed_of[b];
          if (ca != cb) out.emplace_back(ca, cb);
        }
      };
      remap(options_.feedback.same, condensed_options.feedback.same);
      remap(options_.feedback.distinct,
            condensed_options.feedback.distinct);

      Timer build_timer;
      BuiltGraph built = BuildDependencyGraph(premerge.condensed,
                                              condensed_options, &tracker);
      const double build_seconds = build_timer.ElapsedSeconds();
      const Reconciler condensed_reconciler(condensed_options);
      ReconcileResult condensed = condensed_reconciler.RunOnGraph(
          premerge.condensed, built, &tracker);
      condensed.stats.build_seconds = build_seconds;
      return ExpandResult(premerge, std::move(condensed));
    }
  }
  Timer build_timer;
  BuiltGraph built = BuildDependencyGraph(dataset, options_, &tracker);
  const double build_seconds = build_timer.ElapsedSeconds();
  ReconcileResult result = RunOnGraph(dataset, built, &tracker);
  result.stats.build_seconds = build_seconds;
  return result;
}

ReconcileResult Reconciler::RunOnGraph(const Dataset& dataset,
                                       BuiltGraph& built) const {
  BudgetTracker tracker(options_.budget, options_.cancel,
                        options_.probe_hook);
  return RunOnGraph(dataset, built, &tracker);
}

ReconcileResult Reconciler::RunOnGraph(const Dataset& dataset,
                                       BuiltGraph& built,
                                       BudgetTracker* budget) const {
  ReconcileResult result;
  result.stats.num_candidates = built.num_candidates;
  result.stats.num_nodes = built.graph->num_nodes();
  result.stats.num_pair_comparisons = built.num_pair_comparisons;
  result.stats.num_value_analyses = built.num_value_analyses;
  result.stats.num_sim_memo_hits = built.num_sim_memo_hits;
  result.stats.num_sim_memo_misses = built.num_sim_memo_misses;
  if (built.sim_memo != nullptr) {
    result.stats.num_sim_memo_evictions = built.sim_memo->evictions();
    result.stats.num_sim_memo_bypasses = built.sim_memo->bypasses();
    result.stats.sim_memo_bytes = built.sim_memo->bytes();
  }
  if (built.feature_store != nullptr) {
    result.stats.value_store_bytes = built.feature_store->approximate_bytes();
    result.stats.signature_bytes = built.feature_store->signature_bytes();
  }
  result.stats.num_prefilter_skips = built.num_prefilter_skips;
  result.stats.num_prefilter_exact = built.num_prefilter_exact;
  result.stats.simd_dispatch =
      strsim::SimdLevelName(strsim::ActiveSimdLevel());

  Timer solve_timer;
  FixedPointSolver solver(dataset, built, options_, &result.stats, budget);
  solver.EnqueueNodes(built.initial_queue);
  solver.Run();
  // Degraded or not: constraints are always enforced and the transitive
  // closure always computed, so the result is a valid partition even when
  // the solve froze early (DESIGN.md §10). The solver is discarded after
  // this call, so closure-only propagation suffices — it keeps the
  // epilogue cost proportional to the merges made, which matters under a
  // tight deadline where the graph froze with everything still alive.
  if (options_.constraints) solver.PropagateNegativeEvidence(true);
  result.cluster = solver.Closure(&result.merged_pairs);
  result.stats.solve_seconds = solve_timer.ElapsedSeconds();
  result.stats.num_live_nodes = built.graph->num_live_nodes();
  result.stats.num_edges = built.graph->num_edges();
  const GraphBytes gb = built.graph->bytes();
  result.stats.graph_bytes = static_cast<int64_t>(gb.total());
  result.stats.graph_node_bytes = static_cast<int64_t>(gb.nodes);
  result.stats.graph_edge_bytes = static_cast<int64_t>(gb.edges);
  result.stats.graph_index_bytes = static_cast<int64_t>(gb.indices);
  result.stats.stop_reason = budget->stop_reason();
  result.stats.num_budget_probes = budget->num_probes();
  return result;
}

}  // namespace recon
