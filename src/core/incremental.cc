#include "core/incremental.h"

#include "util/logging.h"
#include "util/timer.h"

namespace recon {

IncrementalReconciler::IncrementalReconciler(Dataset initial,
                                             ReconcilerOptions options)
    : dataset_(std::move(initial)), options_(std::move(options)) {
  // Start from an empty graph over the right schema; the initial
  // references flow through the same incremental path as later batches,
  // so both are reconciled by identical code.
  const Dataset empty(dataset_.schema());
  built_ = BuildDependencyGraph(empty, options_);
  built_.graph->AddReferences(dataset_.num_references());
  index_ = std::make_unique<CandidateIndex>(built_.binding, options_);
  solver_ = std::make_unique<FixedPointSolver>(dataset_, built_, options_,
                                               &stats_);
}

IncrementalReconciler::~IncrementalReconciler() = default;

RefId IncrementalReconciler::AddReference(Reference ref, int gold_entity,
                                          Provenance provenance) {
  const RefId id = dataset_.AddReference(std::move(ref), gold_entity,
                                         provenance);
  built_.graph->AddReferences(1);
  return id;
}

void IncrementalReconciler::Flush() {
  const RefId total = dataset_.num_references();
  if (flushed_until_ >= total) return;

  Timer timer;
  const int new_refs = total - solver_->refs().size();
  if (new_refs > 0) solver_->GrowReferences(new_refs);

  const CandidateList pairs = index_->AddReferences(dataset_, flushed_until_);
  const std::vector<NodeId> new_nodes =
      ExtendDependencyGraph(dataset_, options_, pairs, flushed_until_, built_);
  stats_.build_seconds += timer.ElapsedSeconds();

  timer.Restart();
  solver_->EnqueueNodes(new_nodes);
  solver_->Run();
  if (options_.constraints) solver_->PropagateNegativeEvidence();
  stats_.solve_seconds += timer.ElapsedSeconds();

  flushed_until_ = total;
  closure_valid_ = false;
}

const std::vector<int>& IncrementalReconciler::clusters() {
  Flush();
  if (!closure_valid_) {
    merged_pairs_.clear();
    clusters_ = solver_->Closure(&merged_pairs_);
    closure_valid_ = true;
  }
  return clusters_;
}

ReconcileResult IncrementalReconciler::result() {
  ReconcileResult out;
  out.cluster = clusters();  // Flushes and refreshes the closure.
  out.merged_pairs = merged_pairs_;
  out.stats = stats_;
  out.stats.num_candidates = built_.num_candidates;
  out.stats.num_nodes = built_.graph->num_nodes();
  out.stats.num_live_nodes = built_.graph->num_live_nodes();
  out.stats.num_edges = built_.graph->num_edges();
  return out;
}

}  // namespace recon
