#include "core/incremental.h"

#include "strsim/simd_dispatch.h"
#include "util/logging.h"
#include "util/timer.h"

namespace recon {

IncrementalReconciler::IncrementalReconciler(Dataset initial,
                                             ReconcilerOptions options)
    : dataset_(std::move(initial)), options_(std::move(options)) {
  // Start from an empty graph over the right schema; the initial
  // references flow through the same incremental path as later batches,
  // so both are reconciled by identical code.
  const Dataset empty(dataset_.schema());
  built_ = BuildDependencyGraph(empty, options_);
  built_.graph->AddReferences(dataset_.num_references());
  index_ = std::make_unique<CandidateIndex>(built_.binding, options_);
  solver_ = std::make_unique<FixedPointSolver>(dataset_, built_, options_,
                                               &stats_);
}

IncrementalReconciler::~IncrementalReconciler() = default;

RefId IncrementalReconciler::AddReference(Reference ref, int gold_entity,
                                          Provenance provenance) {
  const RefId id = dataset_.AddReference(std::move(ref), gold_entity,
                                         provenance);
  built_.graph->AddReferences(1);
  return id;
}

void IncrementalReconciler::Flush() {
  const RefId total = dataset_.num_references();
  // Also re-enter when a budgeted earlier flush froze the solve with
  // queued work: each Flush() spends a fresh budget allotment, resuming
  // the drain exactly where it stopped (DESIGN.md §10).
  if (flushed_until_ >= total && !solver_->HasPendingWork()) return;

  // Per-flush budget epoch: the options' deadline / iteration / merge
  // limits apply to this flush alone.
  BudgetTracker tracker(options_.budget, options_.cancel,
                        options_.probe_hook);
  solver_->set_budget(&tracker);

  Timer timer;
  if (flushed_until_ < total) {
    const int new_refs = total - solver_->refs().size();
    if (new_refs > 0) solver_->GrowReferences(new_refs);

    // Intern and analyze the new batch's values first, so candidate
    // generation can read precomputed features; ExtendDependencyGraph's
    // own interning pass then finds everything already present.
    InternReferenceValues(dataset_, flushed_until_, built_);
    const CandidateList pairs =
        index_->AddReferences(dataset_, flushed_until_, &built_.values,
                              built_.feature_store.get());
    const std::vector<NodeId> new_nodes = ExtendDependencyGraph(
        dataset_, options_, pairs, flushed_until_, built_, &tracker);
    solver_->EnqueueNodes(new_nodes);
  }
  stats_.build_seconds += timer.ElapsedSeconds();

  timer.Restart();
  solver_->Run();
  // Constraints are enforced even on a degraded stop (DESIGN.md §10).
  if (options_.constraints) solver_->PropagateNegativeEvidence();
  stats_.solve_seconds += timer.ElapsedSeconds();
  stats_.stop_reason = tracker.stop_reason();
  stats_.num_budget_probes += tracker.num_probes();

  // The tracker dies with this scope; restore the solver's own unlimited
  // fallback before it does.
  solver_->set_budget(nullptr);
  flushed_until_ = total;
  closure_valid_ = false;
}

const std::vector<int>& IncrementalReconciler::clusters() {
  Flush();
  if (!closure_valid_) {
    merged_pairs_.clear();
    clusters_ = solver_->Closure(&merged_pairs_);
    closure_valid_ = true;
  }
  return clusters_;
}

ReconcileResult IncrementalReconciler::result() {
  ReconcileResult out;
  out.cluster = clusters();  // Flushes and refreshes the closure.
  out.merged_pairs = merged_pairs_;
  out.stats = stats_;
  out.stats.num_candidates = built_.num_candidates;
  out.stats.num_nodes = built_.graph->num_nodes();
  out.stats.num_live_nodes = built_.graph->num_live_nodes();
  out.stats.num_edges = built_.graph->num_edges();
  const GraphBytes gb = built_.graph->bytes();
  out.stats.graph_bytes = static_cast<int64_t>(gb.total());
  out.stats.graph_node_bytes = static_cast<int64_t>(gb.nodes);
  out.stats.graph_edge_bytes = static_cast<int64_t>(gb.edges);
  out.stats.graph_index_bytes = static_cast<int64_t>(gb.indices);
  out.stats.num_pair_comparisons = built_.num_pair_comparisons;
  out.stats.num_value_analyses = built_.num_value_analyses;
  out.stats.num_sim_memo_hits = built_.num_sim_memo_hits;
  out.stats.num_sim_memo_misses = built_.num_sim_memo_misses;
  if (built_.sim_memo != nullptr) {
    out.stats.num_sim_memo_evictions = built_.sim_memo->evictions();
    out.stats.num_sim_memo_bypasses = built_.sim_memo->bypasses();
    out.stats.sim_memo_bytes = built_.sim_memo->bytes();
  }
  if (built_.feature_store != nullptr) {
    out.stats.value_store_bytes = built_.feature_store->approximate_bytes();
    out.stats.signature_bytes = built_.feature_store->signature_bytes();
  }
  out.stats.num_prefilter_skips = built_.num_prefilter_skips;
  out.stats.num_prefilter_exact = built_.num_prefilter_exact;
  out.stats.simd_dispatch = strsim::SimdLevelName(strsim::ActiveSimdLevel());
  return out;
}

}  // namespace recon
