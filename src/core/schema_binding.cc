#include "core/schema_binding.h"

namespace recon {

SchemaBinding SchemaBinding::Resolve(const Schema& schema) {
  SchemaBinding b;
  b.person = schema.FindClass("Person");
  b.article = schema.FindClass("Article");
  b.venue = schema.FindClass("Venue");

  if (b.person >= 0) {
    const ClassDef& person = schema.class_def(b.person);
    b.person_name = person.FindAttribute("name");
    b.person_email = person.FindAttribute("email");
    b.person_coauthor = person.FindAttribute("coAuthor");
    b.person_contact = person.FindAttribute("emailContact");
  }
  if (b.article >= 0) {
    const ClassDef& article = schema.class_def(b.article);
    b.article_title = article.FindAttribute("title");
    b.article_year = article.FindAttribute("year");
    b.article_pages = article.FindAttribute("pages");
    b.article_authors = article.FindAttribute("authoredBy");
    b.article_venue = article.FindAttribute("publishedIn");
  }
  if (b.venue >= 0) {
    const ClassDef& venue = schema.class_def(b.venue);
    b.venue_name = venue.FindAttribute("name");
    b.venue_year = venue.FindAttribute("year");
    b.venue_location = venue.FindAttribute("location");
  }
  return b;
}

}  // namespace recon
