#include "core/graph_builder.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/candidates.h"
#include "runtime/parallel.h"
#include "sim/comparators.h"
#include "sim/evidence.h"
#include "sim/value_store.h"
#include "strsim/email.h"
#include "strsim/person_name.h"
#include "strsim/signature.h"
#include "strsim/simd_dispatch.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace recon {

namespace {

/// Feature kinds for every bound atomic attribute, so the ValueStore knows
/// how to analyze each domain without depending on SchemaBinding itself.
ValueKindSchema MakeValueKindSchema(const SchemaBinding& b) {
  ValueKindSchema schema;
  auto add = [&](int class_id, int attr, FeatureKind kind) {
    if (class_id >= 0 && attr >= 0) {
      schema.kinds.emplace_back(ValueDomain{class_id, attr}, kind);
    }
  };
  add(b.person, b.person_name, FeatureKind::kPersonName);
  add(b.person, b.person_email, FeatureKind::kEmail);
  add(b.article, b.article_title, FeatureKind::kTitle);
  add(b.article, b.article_year, FeatureKind::kYear);
  add(b.article, b.article_pages, FeatureKind::kPages);
  add(b.venue, b.venue_name, FeatureKind::kVenueName);
  add(b.venue, b.venue_year, FeatureKind::kYear);
  add(b.venue, b.venue_location, FeatureKind::kLocation);
  return schema;
}

/// Evidence staged for one candidate reference pair before its node is
/// created (the node is only created when some evidence exists).
struct StagedEvidence {
  struct ValueNodeSpec {
    ValueId v1;
    ValueId v2;
    double sim;
    int evidence;
    /// Reference-pair merge marks this value pair merged (venue names).
    bool propagate_merge;
  };
  std::vector<ValueNodeSpec> value_nodes;
  std::vector<std::pair<int, double>> statics;  // (evidence, sim)
  bool empty() const { return value_nodes.empty() && statics.empty(); }
};

/// One candidate pair's staged comparison result. Staging is read-only
/// against the dataset and value pool, so pairs are staged in parallel; the
/// graph mutations they imply are applied serially, in candidate order.
struct StagedPair {
  RefId r1 = kInvalidRef;
  RefId r2 = kInvalidRef;
  int class_id = -1;
  bool non_merge = false;
  StagedEvidence evidence;
};

/// A person name analyzed once on the raw fallback path: the parse plus the
/// lowercased raw form (the identical-abbreviation check needs the latter).
struct FallbackName {
  strsim::PersonName name;
  std::string lower;
};

/// Per-lane staging scratch. Caches only affect speed, never values: a
/// cache hit returns exactly what the comparator would have computed. The
/// counters feed ReconcileStats and are accumulated serially in lane order
/// after staging, so totals are deterministic.
struct StageScratch {
  std::unordered_map<std::string, FallbackName> name_cache;
  std::unordered_map<std::string, strsim::EmailAddress> email_cache;
  std::unordered_map<MemoKey, float, MemoKeyHash> sim_cache;
  int64_t pair_comparisons = 0;
  int64_t value_analyses = 0;
  int64_t memo_hits = 0;
  int64_t memo_misses = 0;
  int64_t prefilter_skips = 0;
  int64_t prefilter_exact = 0;
};

/// Staged pairs are applied (and association wiring probed) in chunks of
/// this many items; each chunk boundary is one kBuild budget probe.
constexpr int64_t kBuildChunk = 256;

// ---- Blocked batch scoring (store-on path; DESIGN.md §16) ---------------
//
// With the value store on, lanes no longer score pair-at-a-time. Each lane
// gathers the ValueId cross products of up to kScoreBlock candidate pairs
// into per-evidence task arrays (scratch reused across the lane's blocks —
// zero steady-state allocation), sweeps each evidence kind over the whole
// block (title tasks pass the signature prefilter first, skipping pairs
// that provably cannot reach the seed), and then assembles every pair's
// StagedEvidence in exactly the order the per-pair path produces. The
// gated article/venue secondary channels gather in a second wave after
// wave-1 assembly, so the "primary evidence required" semantics and the
// comparison counts are unchanged. Byte-identical by construction.

constexpr int kScoreBlock = 256;

/// One cross-product comparison gathered for a block sweep.
struct SimTask {
  ValueId v1 = kInvalidValue;
  ValueId v2 = kInvalidValue;
  float memo_sim = 0;     ///< Non-static result (memo float rounding).
  double static_sim = 0;  ///< v1 == v2 result at double precision.
  bool is_static = false;
  bool skipped = false;   ///< Title prefilter: provably below seed.
};

/// Half-open range into a per-evidence task array.
struct TaskRange {
  int32_t begin = 0;
  int32_t end = 0;
};

/// Wave-1 gather record for one candidate pair in a block.
struct PairPlan {
  int64_t out_index = -1;  ///< Position in the staged[] array.
  RefId r1 = kInvalidRef;
  RefId r2 = kInvalidRef;
  int class_id = -1;
  TaskRange name, email, ne_ab, ne_ba;  ///< Person channels.
  TaskRange primary;                    ///< Article title / venue name.
  TaskRange secondary1, secondary2;     ///< Year+pages / year+location.
  bool both_have_names = false;
};

/// Per-lane batch scratch: task arrays per evidence kind, the block's
/// pair plans, and the flat signature words the prefilter sweep XORs.
struct BatchLane {
  std::vector<SimTask> tasks[kNumEvidence];
  std::vector<PairPlan> plan;
  std::vector<uint64_t> gram_a, gram_b, tok_a, tok_b;
  std::vector<int32_t> gram_pop, tok_pop, title_task;
};

class GraphBuilder {
 public:
  GraphBuilder(const Dataset& dataset, const ReconcilerOptions& options,
               BudgetTracker* budget, const BuildOverrides& overrides = {})
      : dataset_(dataset),
        options_(options),
        overrides_(overrides),
        binding_(SchemaBinding::Resolve(dataset.schema())),
        own_budget_(budget == nullptr
                        ? std::make_unique<BudgetTracker>(Budget{})
                        : nullptr),
        budget_(budget != nullptr ? budget : own_budget_.get()) {}

  BuiltGraph Build() {
    BuiltGraph out;
    out.binding = binding_;
    out.graph = std::make_unique<DependencyGraph>(dataset_.num_references());
    graph_ = out.graph.get();
    values_ = &out.values;
    built_ = &out;
    if (options_.value_store) {
      out.feature_store =
          std::make_shared<ValueStore>(MakeValueKindSchema(binding_));
      out.sim_memo = std::make_shared<SimMemo>();
    }
    store_ = out.feature_store.get();
    memo_ = out.sim_memo.get();
    ConfigureMemoBudget();

    // Values are interned up front (serially, in reference order — an order
    // fixed regardless of thread count, so ValueIds are stable) and
    // analyzed once each, so candidate generation and the comparison stage
    // are read-only against the pool and the store and can fan out across
    // threads. Interning probes no budget, so the probe sequence is
    // unchanged by the store being on or off.
    InternAtomicValues(/*first_ref=*/0);
    if (store_ != nullptr) store_->Sync(*values_);

    CandidateList generated;
    if (overrides_.candidates == nullptr) {
      generated = GenerateCandidates(dataset_, binding_, options_, budget_,
                                     values_, store_);
    }
    const CandidateList& candidates =
        overrides_.candidates != nullptr ? *overrides_.candidates : generated;
    out.num_candidates = static_cast<int>(candidates.size());

    // Step 1 (§3.1): atomic-attribute comparison, node seeding, and
    // constraint marking. Sizing the CSR pools from the candidate count
    // up front cuts rehash and relocation churn during the apply loop.
    graph_->ReserveBuild(candidates.size());
    SeedPairs(candidates);
    // Constraint 1: authors of one article are distinct persons. Creates
    // non-merge nodes even where no atomic similarity exists (§3.4).
    if (options_.constraints && overrides_.mark_coauthor_constraints) {
      MarkCoAuthorConstraints(/*first_ref=*/0);
    }

    // User feedback (§7): confirmed matches and non-matches become forced
    // and non-merge nodes respectively.
    ApplyFeedback();

    // Step 2 (§3.1): association dependencies between existing nodes.
    WireAssociations(/*start_node=*/0);

    // The graph shape is now settled for the solve: pack the CSR pools
    // tight (folds and solver delta pushes mutate in place from here).
    graph_->Compact();

    // Initial queue: venues, then persons, then articles, then the rest.
    BuildInitialQueue(/*start_node=*/0, &out.initial_queue);

    // Class similarity functions.
    out.class_sims.resize(dataset_.schema().num_classes());
    if (binding_.person >= 0) {
      out.class_sims[binding_.person] =
          MakeClassSimilarity("Person", options_.params);
    }
    if (binding_.article >= 0) {
      out.class_sims[binding_.article] =
          MakeClassSimilarity("Article", options_.params);
    }
    if (binding_.venue >= 0) {
      out.class_sims[binding_.venue] =
          MakeClassSimilarity("Venue", options_.params);
    }
    return out;
  }

  /// Incremental extension: seeds `pairs` into `built`, applies co-author
  /// constraints for references >= first_new_ref, wires associations of
  /// the new nodes, and returns them in processing order.
  std::vector<NodeId> Extend(
      const std::vector<std::pair<RefId, RefId>>& pairs, RefId first_new_ref,
      BuiltGraph& built) {
    graph_ = built.graph.get();
    values_ = &built.values;
    binding_ = built.binding;
    built_ = &built;
    store_ = built.feature_store.get();
    memo_ = built.sim_memo.get();
    ConfigureMemoBudget();
    built.num_candidates += static_cast<int>(pairs.size());

    const NodeId start_node = graph_->num_nodes();
    InternAtomicValues(first_new_ref);
    if (store_ != nullptr) store_->Sync(*values_);
    graph_->ReserveBuild(pairs.size());
    SeedPairs(pairs);
    if (options_.constraints) MarkCoAuthorConstraints(first_new_ref);
    WireAssociations(start_node);

    // Re-pack the pools: extension appends fragment the shared buffers
    // (relocations leave garbage) and a flush is the natural boundary.
    graph_->Compact();

    std::vector<NodeId> new_queue;
    BuildInitialQueue(start_node, &new_queue);
    return new_queue;
  }

 private:
  // ---- Step 1: atomic comparisons ---------------------------------------

  /// Interns every atomic value staging will look up, in (reference, field,
  /// value) order — an order fixed regardless of thread count, so ValueIds
  /// are stable across runs and thread counts.
  void InternAtomicValues(RefId first_ref) {
    for (RefId id = first_ref; id < dataset_.num_references(); ++id) {
      const Reference& r = dataset_.reference(id);
      const int class_id = r.class_id();
      auto intern_field = [&](int owner_class, int attr) {
        if (owner_class < 0 || attr < 0 || class_id != owner_class) return;
        for (const std::string& raw : r.atomic_values(attr)) {
          values_->Intern(ValueDomain{owner_class, attr}, raw);
        }
      };
      intern_field(binding_.person, binding_.person_name);
      intern_field(binding_.person, binding_.person_email);
      intern_field(binding_.article, binding_.article_title);
      intern_field(binding_.article, binding_.article_year);
      intern_field(binding_.article, binding_.article_pages);
      intern_field(binding_.venue, binding_.venue_name);
      intern_field(binding_.venue, binding_.venue_year);
      intern_field(binding_.venue, binding_.venue_location);
    }
  }

  /// Stages every pair — in parallel when options_.num_threads allows it —
  /// then applies the staged graph mutations serially in pair order, so
  /// the resulting graph is identical to seeding one pair at a time. A
  /// budget stop truncates the apply loop at a chunk boundary: the graph
  /// then holds a prefix of the canonical pair order, which is
  /// structurally consistent (every applied pair is complete). With a
  /// shard plan (DESIGN.md §14) the staging order changes — shard-major,
  /// per-shard budget epochs, then the cross-shard boundary pass — but
  /// staging is pure and the apply order is unchanged, so the graph stays
  /// byte-identical to the monolithic build's.
  void SeedPairs(const std::vector<std::pair<RefId, RefId>>& pairs) {
    const int64_t n = static_cast<int64_t>(pairs.size());
    std::vector<StagedPair> staged(pairs.size());
    if (overrides_.shard_plan != nullptr &&
        overrides_.shard_plan->num_shards > 1) {
      StageSharded(pairs, *overrides_.shard_plan, &staged);
    } else {
      StageBlocked(pairs, &staged);
    }
    if (store_ != nullptr) {
      built_->num_value_analyses = store_->num_analyses();
    }
    for (int64_t i = 0; i < n; ++i) {
      if (i % kBuildChunk == 0) {
        ReportGraphMemory();
        if (budget_->Probe(ProbePoint::kBuild)) return;
      }
      ApplyStagedPair(staged[i]);
    }
    ReportGraphMemory();
  }

  /// Monolithic staging: blocked lanes over the candidate order.
  void StageBlocked(const std::vector<std::pair<RefId, RefId>>& pairs,
                    std::vector<StagedPair>* staged) {
    const int64_t n = static_cast<int64_t>(pairs.size());
    const runtime::BlockPlan plan =
        runtime::PlanBlocks(options_.num_threads, 0, n, /*grain=*/0);
    std::vector<StageScratch> scratch(plan.num_lanes);
    std::vector<BatchLane> batch(store_ != nullptr ? plan.num_lanes : 0);
    runtime::ParallelForBlocked(
        options_.num_threads, 0, n, plan.grain,
        [&](const runtime::Block& block) {
          StageScratch& lane_scratch = scratch[block.lane];
          if (store_ != nullptr) {
            StageSpanBatched(
                pairs, block.end - block.begin,
                [&](int64_t t) { return block.begin + t; },
                [&] { return budget_->ShouldAbandonParallelWork(); },
                lane_scratch, batch[block.lane], staged);
            return;
          }
          for (int64_t i = block.begin; i < block.end; ++i) {
            // A default-constructed StagedPair applies as a no-op, so
            // abandoning a block mid-way (cancel / deadline already
            // decided the run) leaves `staged` safe to consume.
            if ((i - block.begin) % 64 == 0 &&
                budget_->ShouldAbandonParallelWork()) {
              return;
            }
            StagePair(pairs[i].first, pairs[i].second, lane_scratch,
                      &(*staged)[i]);
          }
        });
    budget_->ResolveAsyncStop();
    // Serial, lane-order accumulation keeps the totals deterministic. With
    // the store on, analyses happen in Sync (one per distinct value), so
    // the cumulative store count is authoritative instead of the lanes.
    for (const StageScratch& lane : scratch) {
      AccumulateScratch(lane);
    }
  }

  /// Lane counters roll into the build totals serially, in lane order.
  void AccumulateScratch(const StageScratch& lane) {
    built_->num_pair_comparisons += lane.pair_comparisons;
    built_->num_value_analyses += lane.value_analyses;
    built_->num_sim_memo_hits += lane.memo_hits;
    built_->num_sim_memo_misses += lane.memo_misses;
    built_->num_prefilter_skips += lane.prefilter_skips;
    built_->num_prefilter_exact += lane.prefilter_exact;
  }

  /// Shard-major staging: every intra-shard pair is staged on its shard's
  /// lane under that shard's budget epoch (one lane per shard, shards in
  /// parallel on the pool), then the cross-shard boundary pairs are staged
  /// blocked under the build's own budget. Pure staging in a different
  /// grouping; the staged array is indexed by candidate position either
  /// way.
  void StageSharded(const std::vector<std::pair<RefId, RefId>>& pairs,
                    const ShardStagePlan& plan,
                    std::vector<StagedPair>* staged) {
    const int64_t n = static_cast<int64_t>(pairs.size());
    const int k = plan.num_shards;
    const std::vector<int>& shard_of = *plan.shard_of;
    // Bucket candidate positions: shard s for intra pairs, slot k for the
    // boundary.
    std::vector<std::vector<int64_t>> bucket(k + 1);
    for (int64_t i = 0; i < n; ++i) {
      const int s1 = shard_of[pairs[i].first];
      const int s2 = shard_of[pairs[i].second];
      bucket[s1 == s2 ? s1 : k].push_back(i);
    }

    std::vector<StageScratch> shard_scratch(k);
    std::vector<BatchLane> shard_batch(store_ != nullptr ? k : 0);
    std::vector<double> lane_seconds(k, 0);
    Timer phase_timer;
    runtime::ParallelFor(
        options_.num_threads, 0, k, /*grain=*/1, [&](int64_t s) {
          Timer lane_timer;
          BudgetTracker* epoch =
              s < static_cast<int64_t>(plan.shard_budgets.size())
                  ? plan.shard_budgets[s]
                  : nullptr;
          StageScratch& scratch = shard_scratch[s];
          const std::vector<int64_t>& mine = bucket[s];
          auto abandon = [&] {
            return (epoch != nullptr && epoch->ShouldAbandonParallelWork()) ||
                   budget_->ShouldAbandonParallelWork();
          };
          if (store_ != nullptr) {
            StageSpanBatched(pairs, static_cast<int64_t>(mine.size()),
                             [&](int64_t t) { return mine[t]; }, abandon,
                             scratch, shard_batch[s], staged);
            lane_seconds[s] = lane_timer.ElapsedSeconds();
            return;
          }
          for (size_t j = 0; j < mine.size(); ++j) {
            if (j % 64 == 0 && abandon()) {
              return;
            }
            const int64_t i = mine[j];
            StagePair(pairs[i].first, pairs[i].second, scratch,
                      &(*staged)[i]);
          }
          lane_seconds[s] = lane_timer.ElapsedSeconds();
        });
    for (BudgetTracker* epoch : plan.shard_budgets) {
      if (epoch != nullptr) epoch->ResolveAsyncStop();
    }
    const double shard_phase_seconds = phase_timer.ElapsedSeconds();

    // Boundary pass: the pairs whose members landed in different shards,
    // staged blocked across the full pool under the build's budget.
    const std::vector<int64_t>& boundary = bucket[k];
    const int64_t nb = static_cast<int64_t>(boundary.size());
    const runtime::BlockPlan bplan =
        runtime::PlanBlocks(options_.num_threads, 0, nb, /*grain=*/0);
    std::vector<StageScratch> boundary_scratch(bplan.num_lanes);
    std::vector<BatchLane> boundary_batch(store_ != nullptr ? bplan.num_lanes
                                                            : 0);
    Timer boundary_timer;
    runtime::ParallelForBlocked(
        options_.num_threads, 0, nb, bplan.grain,
        [&](const runtime::Block& block) {
          StageScratch& lane_scratch = boundary_scratch[block.lane];
          if (store_ != nullptr) {
            StageSpanBatched(
                pairs, block.end - block.begin,
                [&](int64_t t) { return boundary[block.begin + t]; },
                [&] { return budget_->ShouldAbandonParallelWork(); },
                lane_scratch, boundary_batch[block.lane], staged);
            return;
          }
          for (int64_t j = block.begin; j < block.end; ++j) {
            if ((j - block.begin) % 64 == 0 &&
                budget_->ShouldAbandonParallelWork()) {
              return;
            }
            const int64_t i = boundary[j];
            StagePair(pairs[i].first, pairs[i].second, lane_scratch,
                      &(*staged)[i]);
          }
        });
    budget_->ResolveAsyncStop();
    const double boundary_seconds = boundary_timer.ElapsedSeconds();

    // Shard order then boundary lane order: deterministic totals.
    for (const StageScratch& scratch : shard_scratch) {
      AccumulateScratch(scratch);
    }
    for (const StageScratch& scratch : boundary_scratch) {
      AccumulateScratch(scratch);
    }

    if (plan.stats != nullptr) {
      plan.stats->shard_pairs.assign(k, 0);
      for (int s = 0; s < k; ++s) {
        plan.stats->shard_pairs[s] =
            static_cast<int64_t>(bucket[s].size());
      }
      plan.stats->shard_lane_seconds = lane_seconds;
      plan.stats->shard_phase_seconds = shard_phase_seconds;
      plan.stats->boundary_pairs = nb;
      plan.stats->boundary_seconds = boundary_seconds;
    }
  }

  void StagePair(RefId r1, RefId r2, StageScratch& scratch,
                 StagedPair* out) const {
    out->r1 = r1;
    out->r2 = r2;
    out->class_id = dataset_.reference(r1).class_id();
    if (out->class_id == binding_.person) {
      StagePerson(r1, r2, scratch, &out->evidence, &out->non_merge);
    } else if (out->class_id == binding_.article) {
      StageArticle(r1, r2, scratch, &out->evidence);
    } else if (out->class_id == binding_.venue) {
      StageVenue(r1, r2, scratch, &out->evidence);
    }
  }

  void ApplyStagedPair(const StagedPair& pair) {
    if (pair.evidence.empty() && !pair.non_merge) return;

    const NodeId m = graph_->AddRefPairNode(pair.class_id, pair.r1, pair.r2);
    if (pair.non_merge) {
      // The evidence nodes are still attached below — the paper keeps
      // constrained pairs in the graph with their similarities ("we also
      // include nodes whose elements are ensured to be distinct"), which
      // is why Table 6 reports *more* nodes with constraints on. The
      // non-merge state keeps the pair out of the queue regardless.
      // SetNodeState keeps dependent evidence caches honest when an
      // incremental extension demotes an existing node.
      graph_->SetNodeState(m, NodeState::kNonMerge);
    }
    for (const auto& [evidence, sim] : pair.evidence.statics) {
      graph_->AddStaticReal(m, evidence, sim);
    }
    for (const auto& spec : pair.evidence.value_nodes) {
      const NodeState state = (spec.sim >= options_.params.value_merge_threshold)
                                  ? NodeState::kMerged
                                  : NodeState::kInactive;
      const NodeId n =
          graph_->AddValuePairNode(spec.v1, spec.v2, spec.sim, state);
      graph_->AddEdge(n, m, DependencyKind::kRealValued, spec.evidence);
      if (spec.propagate_merge) {
        graph_->AddEdge(m, n, DependencyKind::kStrongBoolean, spec.evidence);
      }
    }
  }

  /// Compares the cross product of two value sets, staging static evidence
  /// for equal values and value nodes for pairs at or above `seed`.
  /// Read-only: values were interned (and analyzed) by InternAtomicValues /
  /// Sync, so the pool lookups always hit. With the store on, scoring runs
  /// over precomputed features through the shared memo; `raw_comparator`
  /// (a double(const std::string&, const std::string&) callable) is the
  /// fallback used when the store is off. Both paths round non-equal pair
  /// similarities through float, so results are byte-identical.
  template <typename RawComparator>
  void StageAtomic(const std::vector<std::string>& values1,
                   const std::vector<std::string>& values2,
                   ValueDomain domain1, ValueDomain domain2, int evidence,
                   double seed, bool propagate_merge,
                   RawComparator raw_comparator, StageScratch& scratch,
                   StagedEvidence* staged) const {
    for (const std::string& raw1 : values1) {
      const ValueId v1 = values_->Find(domain1, raw1);
      RECON_CHECK_NE(v1, kInvalidValue);
      for (const std::string& raw2 : values2) {
        const ValueId v2 = values_->Find(domain2, raw2);
        RECON_CHECK_NE(v2, kInvalidValue);
        ++scratch.pair_comparisons;
        if (v1 == v2) {
          // Equal interned values score at full double precision (they are
          // one element of the graph; the 1.0-equality shortcut paths in
          // the comparators make this exact anyway).
          const double sim =
              (store_ != nullptr)
                  ? FeaturePairSimilarity(evidence, store_->features(v1),
                                          store_->features(v2))
                  : raw_comparator(raw1, raw2);
          staged->statics.emplace_back(evidence, sim);
          continue;
        }
        double sim;
        if (store_ != nullptr) {
          sim = memo_->LookupOrCompute(
              evidence, v1, v2,
              [&] {
                return FeaturePairSimilarity(evidence, store_->features(v1),
                                             store_->features(v2));
              },
              &scratch.memo_hits, &scratch.memo_misses);
        } else {
          sim = CachedSim(evidence, v1, v2, raw1, raw2, raw_comparator,
                          scratch);
        }
        if (sim >= seed) {
          staged->value_nodes.push_back(
              {v1, v2, sim, evidence, propagate_merge});
        }
      }
    }
  }

  void StagePerson(RefId r1, RefId r2, StageScratch& scratch,
                   StagedEvidence* staged, bool* non_merge) const {
    const Reference& a = dataset_.reference(r1);
    const Reference& b = dataset_.reference(r2);
    const SimParams& p = options_.params;

    const ValueDomain name_domain{binding_.person, binding_.person_name};
    const ValueDomain email_domain{binding_.person, binding_.person_email};

    // Raw fallback comparators (store off): each side is analyzed once per
    // lane and reused across pairs instead of re-parsed per pair.
    auto raw_person_name = [&](const std::string& x, const std::string& y) {
      const FallbackName& fx = ParsedName(x, scratch);
      const FallbackName& fy = ParsedName(y, scratch);
      return PersonNameFieldSimilarity(fx.name, fx.lower, fy.name, fy.lower);
    };
    auto raw_email = [&](const std::string& x, const std::string& y) {
      return strsim::EmailSimilarity(ParsedEmail(x, scratch),
                                     ParsedEmail(y, scratch));
    };
    auto raw_name_email = [&](const std::string& x, const std::string& y) {
      return NameEmailFieldSimilarity(ParsedName(x, scratch).name,
                                      ParsedEmail(y, scratch));
    };

    bool shared_email = false;
    if (binding_.person_name >= 0) {
      StageAtomic(a.atomic_values(binding_.person_name),
                  b.atomic_values(binding_.person_name), name_domain,
                  name_domain, kEvPersonName, p.person_name_seed,
                  /*propagate_merge=*/false, raw_person_name,
                  scratch, staged);
      // Both sides carry names but none were even seed-similar: record
      // explicit zero evidence. Dissimilar names are soft negative
      // evidence — the name channel must not read as "unknown".
      const bool both_have_names =
          !a.atomic_values(binding_.person_name).empty() &&
          !b.atomic_values(binding_.person_name).empty();
      if (both_have_names) {
        bool any_name_evidence = false;
        for (const auto& [evidence, sim] : staged->statics) {
          if (evidence == kEvPersonName) any_name_evidence = true;
        }
        for (const auto& spec : staged->value_nodes) {
          if (spec.evidence == kEvPersonName) any_name_evidence = true;
        }
        if (!any_name_evidence) {
          staged->statics.emplace_back(kEvPersonName, 0.0);
        }
      }
    }
    if (binding_.person_email >= 0) {
      const auto& emails1 = a.atomic_values(binding_.person_email);
      const auto& emails2 = b.atomic_values(binding_.person_email);
      StageAtomic(emails1, emails2, email_domain, email_domain,
                  kEvPersonEmail, p.person_email_seed,
                  /*propagate_merge=*/false, raw_email, scratch,
                  staged);
      // StageAtomic already compared every email pair: identical values
      // became statics, the rest value nodes whenever sim >= seed (and the
      // seed is <= 1). A key match is therefore any staged email evidence
      // at similarity 1 — no need to re-run the comparator cross product.
      for (const auto& [evidence, sim] : staged->statics) {
        if (evidence == kEvPersonEmail && sim >= 1.0) shared_email = true;
      }
      for (const auto& spec : staged->value_nodes) {
        if (spec.evidence == kEvPersonEmail && spec.sim >= 1.0) {
          shared_email = true;
        }
      }
    }
    if (options_.evidence_level >= EvidenceLevel::kNameEmail &&
        binding_.person_name >= 0 && binding_.person_email >= 0) {
      StageAtomic(a.atomic_values(binding_.person_name),
                  b.atomic_values(binding_.person_email), name_domain,
                  email_domain, kEvPersonNameEmail, p.name_email_seed,
                  /*propagate_merge=*/false, raw_name_email,
                  scratch, staged);
      StageAtomic(b.atomic_values(binding_.person_name),
                  a.atomic_values(binding_.person_email), name_domain,
                  email_domain, kEvPersonNameEmail, p.name_email_seed,
                  /*propagate_merge=*/false, raw_name_email,
                  scratch, staged);
    }

    if (options_.constraints && !shared_email) {
      *non_merge = ViolatesNameConstraint(a, b, scratch) ||
                   ViolatesAccountConstraint(a, b, scratch);
    }
  }

  /// Constraint 2: same first name with a completely different last name
  /// (or vice versa) means distinct persons — unless an email is shared.
  bool ViolatesNameConstraint(const Reference& a, const Reference& b,
                              StageScratch& scratch) const {
    if (binding_.person_name < 0) return false;
    const auto& names1 = a.atomic_values(binding_.person_name);
    const auto& names2 = b.atomic_values(binding_.person_name);
    if (names1.empty() || names2.empty()) return false;
    bool any_contradiction = false;
    for (const std::string& n1 : names1) {
      const strsim::PersonName& pa = NameOf(n1, scratch);
      for (const std::string& n2 : names2) {
        const strsim::PersonName& pb = NameOf(n2, scratch);
        if (strsim::NamesContradict(pa, pb)) {
          any_contradiction = true;
        } else if (!pa.last.empty() && !pb.last.empty() &&
                   strsim::NamesCompatible(pa, pb)) {
          // Some *structured* value pair is fully consistent: no
          // constraint. (Bare first names are compatible with anything and
          // must not neutralize a contradiction between full names.)
          return false;
        }
      }
    }
    return any_contradiction;
  }

  /// Constraint 3: a person has a unique account per email server, so two
  /// references with different accounts on the same server are distinct.
  bool ViolatesAccountConstraint(const Reference& a, const Reference& b,
                                 StageScratch& scratch) const {
    if (binding_.person_email < 0) return false;
    for (const std::string& e1 : a.atomic_values(binding_.person_email)) {
      const strsim::EmailAddress& ea = EmailOf(e1, scratch);
      if (ea.server.empty()) continue;
      for (const std::string& e2 : b.atomic_values(binding_.person_email)) {
        const strsim::EmailAddress& eb = EmailOf(e2, scratch);
        if (ea.server == eb.server && ea.account != eb.account) return true;
      }
    }
    return false;
  }

  void StageArticle(RefId r1, RefId r2, StageScratch& scratch,
                    StagedEvidence* staged) const {
    const Reference& a = dataset_.reference(r1);
    const Reference& b = dataset_.reference(r2);
    const SimParams& p = options_.params;
    // Raw fallbacks analyze both sides inside the comparator on every
    // cache miss; the counter records those per-pair analyses the store
    // avoids.
    auto raw_title = [&](const std::string& x, const std::string& y) {
      scratch.value_analyses += 2;
      return TitleFieldSimilarity(x, y);
    };
    auto raw_year = [&](const std::string& x, const std::string& y) {
      scratch.value_analyses += 2;
      return YearFieldSimilarity(x, y);
    };
    auto raw_pages = [&](const std::string& x, const std::string& y) {
      scratch.value_analyses += 2;
      return PagesFieldSimilarity(x, y);
    };
    if (binding_.article_title >= 0) {
      const ValueDomain domain{binding_.article, binding_.article_title};
      StageAtomic(a.atomic_values(binding_.article_title),
                  b.atomic_values(binding_.article_title), domain, domain,
                  kEvArticleTitle, p.article_title_seed,
                  /*propagate_merge=*/false, raw_title, scratch, staged);
    }
    // Titles are required evidence for articles: without a title match the
    // pair is not worth a node.
    if (staged->empty()) return;
    if (binding_.article_year >= 0) {
      const ValueDomain domain{binding_.article, binding_.article_year};
      StageAtomic(a.atomic_values(binding_.article_year),
                  b.atomic_values(binding_.article_year), domain, domain,
                  kEvArticleYear, p.year_seed, /*propagate_merge=*/false,
                  raw_year, scratch, staged);
    }
    if (binding_.article_pages >= 0) {
      const ValueDomain domain{binding_.article, binding_.article_pages};
      StageAtomic(a.atomic_values(binding_.article_pages),
                  b.atomic_values(binding_.article_pages), domain, domain,
                  kEvArticlePages, p.pages_seed, /*propagate_merge=*/false,
                  raw_pages, scratch, staged);
    }
  }

  void StageVenue(RefId r1, RefId r2, StageScratch& scratch,
                  StagedEvidence* staged) const {
    const Reference& a = dataset_.reference(r1);
    const Reference& b = dataset_.reference(r2);
    const SimParams& p = options_.params;
    auto raw_venue_name = [&](const std::string& x, const std::string& y) {
      scratch.value_analyses += 2;
      return VenueNameFieldSimilarity(x, y);
    };
    auto raw_year = [&](const std::string& x, const std::string& y) {
      scratch.value_analyses += 2;
      return YearFieldSimilarity(x, y);
    };
    auto raw_location = [&](const std::string& x, const std::string& y) {
      scratch.value_analyses += 2;
      return LocationFieldSimilarity(x, y);
    };
    if (binding_.venue_name >= 0) {
      const ValueDomain domain{binding_.venue, binding_.venue_name};
      // Venue names propagate merges: reconciling two venues certifies
      // their names denote the same venue (Fig. 2's n6), which then feeds
      // every other venue pair carrying these names.
      StageAtomic(a.atomic_values(binding_.venue_name),
                  b.atomic_values(binding_.venue_name), domain, domain,
                  kEvVenueName, p.venue_name_seed, /*propagate_merge=*/true,
                  raw_venue_name, scratch, staged);
    }
    if (staged->empty()) return;  // Venue name evidence is required.
    if (binding_.venue_year >= 0) {
      const ValueDomain domain{binding_.venue, binding_.venue_year};
      StageAtomic(a.atomic_values(binding_.venue_year),
                  b.atomic_values(binding_.venue_year), domain, domain,
                  kEvVenueYear, p.year_seed, /*propagate_merge=*/false,
                  raw_year, scratch, staged);
    }
    if (binding_.venue_location >= 0) {
      const ValueDomain domain{binding_.venue, binding_.venue_location};
      StageAtomic(a.atomic_values(binding_.venue_location),
                  b.atomic_values(binding_.venue_location), domain, domain,
                  kEvVenueLocation, p.location_seed,
                  /*propagate_merge=*/false, raw_location, scratch, staged);
    }
  }

  // ---- Blocked batch scoring (store-on lanes) ----------------------------

  /// Seed threshold for an evidence channel — the same per-channel values
  /// the per-pair StageAtomic call sites pass.
  double SeedFor(int evidence) const {
    const SimParams& p = options_.params;
    switch (evidence) {
      case kEvPersonName:
        return p.person_name_seed;
      case kEvPersonEmail:
        return p.person_email_seed;
      case kEvPersonNameEmail:
        return p.name_email_seed;
      case kEvArticleTitle:
        return p.article_title_seed;
      case kEvArticleYear:
      case kEvVenueYear:
        return p.year_seed;
      case kEvArticlePages:
        return p.pages_seed;
      case kEvVenueName:
        return p.venue_name_seed;
      case kEvVenueLocation:
        return p.location_seed;
      default:
        return 0.0;
    }
  }

  /// Records one channel's value cross product as tasks, counting each
  /// comparison exactly where the per-pair path counts it.
  TaskRange GatherAtomic(const std::vector<std::string>& values1,
                         const std::vector<std::string>& values2,
                         ValueDomain domain1, ValueDomain domain2,
                         int evidence, StageScratch& scratch,
                         BatchLane& lane) const {
    std::vector<SimTask>& tasks = lane.tasks[evidence];
    TaskRange range;
    range.begin = static_cast<int32_t>(tasks.size());
    for (const std::string& raw1 : values1) {
      const ValueId v1 = values_->Find(domain1, raw1);
      RECON_CHECK_NE(v1, kInvalidValue);
      for (const std::string& raw2 : values2) {
        const ValueId v2 = values_->Find(domain2, raw2);
        RECON_CHECK_NE(v2, kInvalidValue);
        ++scratch.pair_comparisons;
        SimTask t;
        t.v1 = v1;
        t.v2 = v2;
        t.is_static = (v1 == v2);
        tasks.push_back(t);
      }
    }
    range.end = static_cast<int32_t>(tasks.size());
    return range;
  }

  /// Gathers every unconditional person channel (all four are staged by
  /// StagePerson regardless of what earlier channels produced).
  void GatherPerson(const Reference& a, const Reference& b,
                    StageScratch& scratch, BatchLane& lane,
                    PairPlan* plan) const {
    const ValueDomain name_domain{binding_.person, binding_.person_name};
    const ValueDomain email_domain{binding_.person, binding_.person_email};
    if (binding_.person_name >= 0) {
      plan->name = GatherAtomic(a.atomic_values(binding_.person_name),
                                b.atomic_values(binding_.person_name),
                                name_domain, name_domain, kEvPersonName,
                                scratch, lane);
      plan->both_have_names =
          !a.atomic_values(binding_.person_name).empty() &&
          !b.atomic_values(binding_.person_name).empty();
    }
    if (binding_.person_email >= 0) {
      plan->email = GatherAtomic(a.atomic_values(binding_.person_email),
                                 b.atomic_values(binding_.person_email),
                                 email_domain, email_domain, kEvPersonEmail,
                                 scratch, lane);
    }
    if (options_.evidence_level >= EvidenceLevel::kNameEmail &&
        binding_.person_name >= 0 && binding_.person_email >= 0) {
      plan->ne_ab = GatherAtomic(a.atomic_values(binding_.person_name),
                                 b.atomic_values(binding_.person_email),
                                 name_domain, email_domain,
                                 kEvPersonNameEmail, scratch, lane);
      plan->ne_ba = GatherAtomic(b.atomic_values(binding_.person_name),
                                 a.atomic_values(binding_.person_email),
                                 name_domain, email_domain,
                                 kEvPersonNameEmail, scratch, lane);
    }
  }

  /// Marks title tasks whose signature upper bound proves the exact
  /// comparator cannot reach the seed. One flat XOR-popcount sweep per
  /// signature kind covers the whole block. Skipping is sound because the
  /// bound is an upper bound (tests/strsim_kernel_test.cc asserts it) and
  /// the staging test is the strict `sim >= seed`: UB < seed implies
  /// sim <= UB < seed, so the pair stages nothing either way. Inactive at
  /// kScalar so `--no-simd` reproduces the exact legacy compute path.
  void PrefilterTitleTasks(BatchLane& lane, StageScratch& scratch) const {
    std::vector<SimTask>& tasks = lane.tasks[kEvArticleTitle];
    if (tasks.empty()) return;
    if (strsim::ActiveSimdLevel() == strsim::SimdLevel::kScalar) return;
    const double seed = options_.params.article_title_seed;
    // With a non-positive seed nothing can be proved skippable (the bound
    // never goes below zero), so don't pay for the sweep.
    if (seed <= 0.0) return;
    lane.title_task.clear();
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (!tasks[i].is_static) {
        lane.title_task.push_back(static_cast<int32_t>(i));
      }
    }
    const int count = static_cast<int>(lane.title_task.size());
    if (count == 0) return;
    lane.gram_a.resize(4 * static_cast<size_t>(count));
    lane.gram_b.resize(4 * static_cast<size_t>(count));
    lane.tok_a.resize(4 * static_cast<size_t>(count));
    lane.tok_b.resize(4 * static_cast<size_t>(count));
    lane.gram_pop.resize(count);
    lane.tok_pop.resize(count);
    for (int j = 0; j < count; ++j) {
      const SimTask& t = tasks[lane.title_task[j]];
      const ValueFeatures& fa = store_->features(t.v1);
      const ValueFeatures& fb = store_->features(t.v2);
      std::copy(fa.title_gram_sig.w, fa.title_gram_sig.w + 4,
                &lane.gram_a[4 * static_cast<size_t>(j)]);
      std::copy(fb.title_gram_sig.w, fb.title_gram_sig.w + 4,
                &lane.gram_b[4 * static_cast<size_t>(j)]);
      std::copy(fa.title_token_sig.w, fa.title_token_sig.w + 4,
                &lane.tok_a[4 * static_cast<size_t>(j)]);
      std::copy(fb.title_token_sig.w, fb.title_token_sig.w + 4,
                &lane.tok_b[4 * static_cast<size_t>(j)]);
    }
    strsim::BatchSigSymDiff(lane.gram_a.data(), lane.gram_b.data(), count,
                            lane.gram_pop.data());
    strsim::BatchSigSymDiff(lane.tok_a.data(), lane.tok_b.data(), count,
                            lane.tok_pop.data());
    for (int j = 0; j < count; ++j) {
      SimTask& t = tasks[lane.title_task[j]];
      const double ub = TitleSimilarityUpperBoundFromPops(
          lane.gram_pop[j], lane.tok_pop[j], store_->features(t.v1),
          store_->features(t.v2));
      if (ub < seed) {
        t.skipped = true;
        ++scratch.prefilter_skips;
      } else {
        ++scratch.prefilter_exact;
      }
    }
  }

  /// Scores every gathered task of one evidence kind: equal values at
  /// double precision, the rest through the shared memo with the same
  /// float rounding the per-pair path applies. Skipped tasks cost nothing.
  void SweepTasks(int evidence, StageScratch& scratch,
                  BatchLane& lane) const {
    for (SimTask& t : lane.tasks[evidence]) {
      if (t.is_static) {
        t.static_sim = FeaturePairSimilarity(
            evidence, store_->features(t.v1), store_->features(t.v2));
      } else if (!t.skipped) {
        t.memo_sim = memo_->LookupOrCompute(
            evidence, t.v1, t.v2,
            [&] {
              return FeaturePairSimilarity(evidence, store_->features(t.v1),
                                           store_->features(t.v2));
            },
            &scratch.memo_hits, &scratch.memo_misses);
      }
    }
  }

  /// Replays one channel's swept tasks into the pair's staged evidence in
  /// gather (= cross-product) order: statics for equal values, a value
  /// node when the memoized similarity reaches the channel seed — the
  /// exact appends StageAtomic makes.
  void AssembleRange(const TaskRange& range, int evidence,
                     bool propagate_merge, const BatchLane& lane,
                     StagedEvidence* staged) const {
    const std::vector<SimTask>& tasks = lane.tasks[evidence];
    const double seed = SeedFor(evidence);
    for (int32_t i = range.begin; i < range.end; ++i) {
      const SimTask& t = tasks[i];
      if (t.is_static) {
        staged->statics.emplace_back(evidence, t.static_sim);
        continue;
      }
      if (t.skipped) continue;
      const double sim = t.memo_sim;
      if (sim >= seed) {
        staged->value_nodes.push_back(
            {t.v1, t.v2, sim, evidence, propagate_merge});
      }
    }
  }

  /// Person assembly mirrors StagePerson line for line: name channel, the
  /// explicit-zero static when both sides had names but none matched, the
  /// email channel, the shared-email scan, the two name/email cross
  /// channels, then the constraints.
  void AssemblePerson(const PairPlan& plan, const BatchLane& lane,
                      StageScratch& scratch, StagedPair* out) const {
    StagedEvidence* staged = &out->evidence;
    AssembleRange(plan.name, kEvPersonName, /*propagate_merge=*/false, lane,
                  staged);
    if (plan.both_have_names) {
      bool any_name_evidence = false;
      for (const auto& [evidence, sim] : staged->statics) {
        if (evidence == kEvPersonName) any_name_evidence = true;
      }
      for (const auto& spec : staged->value_nodes) {
        if (spec.evidence == kEvPersonName) any_name_evidence = true;
      }
      if (!any_name_evidence) {
        staged->statics.emplace_back(kEvPersonName, 0.0);
      }
    }
    AssembleRange(plan.email, kEvPersonEmail, /*propagate_merge=*/false,
                  lane, staged);
    bool shared_email = false;
    for (const auto& [evidence, sim] : staged->statics) {
      if (evidence == kEvPersonEmail && sim >= 1.0) shared_email = true;
    }
    for (const auto& spec : staged->value_nodes) {
      if (spec.evidence == kEvPersonEmail && spec.sim >= 1.0) {
        shared_email = true;
      }
    }
    AssembleRange(plan.ne_ab, kEvPersonNameEmail, /*propagate_merge=*/false,
                  lane, staged);
    AssembleRange(plan.ne_ba, kEvPersonNameEmail, /*propagate_merge=*/false,
                  lane, staged);
    if (options_.constraints && !shared_email) {
      out->non_merge =
          ViolatesNameConstraint(dataset_.reference(plan.r1),
                                 dataset_.reference(plan.r2), scratch) ||
          ViolatesAccountConstraint(dataset_.reference(plan.r1),
                                    dataset_.reference(plan.r2), scratch);
    }
  }

  /// Stages `count` candidate pairs — positions `index(t)` for t in
  /// [0, count) — through the blocked batch path. `abandon()` is the
  /// lane's composite budget probe, checked every 64 gathered pairs just
  /// like the per-pair loops; an abandon truncates the gather but the
  /// pairs already gathered still sweep and assemble (both paths leave
  /// "some prefix staged, the rest default no-ops").
  template <typename IndexFn, typename AbandonFn>
  void StageSpanBatched(const std::vector<std::pair<RefId, RefId>>& pairs,
                        int64_t count, IndexFn index, AbandonFn abandon,
                        StageScratch& scratch, BatchLane& lane,
                        std::vector<StagedPair>* staged) const {
    for (int64_t base = 0; base < count; base += kScoreBlock) {
      const int64_t block_end = std::min(count, base + kScoreBlock);
      for (auto& tasks : lane.tasks) tasks.clear();
      lane.plan.clear();
      bool abandoned = false;

      // Wave 1: gather the channels every pair stages unconditionally —
      // all four person channels, article titles, venue names.
      for (int64_t t = base; t < block_end; ++t) {
        if ((t - base) % 64 == 0 && abandon()) {
          abandoned = true;
          break;
        }
        const int64_t i = index(t);
        StagedPair* out = &(*staged)[i];
        out->r1 = pairs[i].first;
        out->r2 = pairs[i].second;
        out->class_id = dataset_.reference(out->r1).class_id();
        PairPlan plan;
        plan.out_index = i;
        plan.r1 = out->r1;
        plan.r2 = out->r2;
        plan.class_id = out->class_id;
        const Reference& a = dataset_.reference(plan.r1);
        const Reference& b = dataset_.reference(plan.r2);
        if (plan.class_id == binding_.person) {
          GatherPerson(a, b, scratch, lane, &plan);
        } else if (plan.class_id == binding_.article &&
                   binding_.article_title >= 0) {
          const ValueDomain domain{binding_.article, binding_.article_title};
          plan.primary = GatherAtomic(
              a.atomic_values(binding_.article_title),
              b.atomic_values(binding_.article_title), domain, domain,
              kEvArticleTitle, scratch, lane);
        } else if (plan.class_id == binding_.venue &&
                   binding_.venue_name >= 0) {
          const ValueDomain domain{binding_.venue, binding_.venue_name};
          plan.primary = GatherAtomic(a.atomic_values(binding_.venue_name),
                                      b.atomic_values(binding_.venue_name),
                                      domain, domain, kEvVenueName, scratch,
                                      lane);
        }
        lane.plan.push_back(plan);
      }

      PrefilterTitleTasks(lane, scratch);
      SweepTasks(kEvPersonName, scratch, lane);
      SweepTasks(kEvPersonEmail, scratch, lane);
      SweepTasks(kEvPersonNameEmail, scratch, lane);
      SweepTasks(kEvArticleTitle, scratch, lane);
      SweepTasks(kEvVenueName, scratch, lane);

      // Wave-1 assembly, and wave-2 gather for the pairs that earned it:
      // article year/pages and venue year/location are staged only when
      // the primary channel produced evidence (the `staged->empty()`
      // gates in StageArticle / StageVenue), so both the staged output
      // and the comparison counts match the per-pair path.
      for (PairPlan& plan : lane.plan) {
        StagedPair* out = &(*staged)[plan.out_index];
        if (plan.class_id == binding_.person) {
          AssemblePerson(plan, lane, scratch, out);
          continue;
        }
        const Reference& a = dataset_.reference(plan.r1);
        const Reference& b = dataset_.reference(plan.r2);
        if (plan.class_id == binding_.article) {
          AssembleRange(plan.primary, kEvArticleTitle,
                        /*propagate_merge=*/false, lane, &out->evidence);
          if (out->evidence.empty()) continue;
          if (binding_.article_year >= 0) {
            const ValueDomain domain{binding_.article, binding_.article_year};
            plan.secondary1 = GatherAtomic(
                a.atomic_values(binding_.article_year),
                b.atomic_values(binding_.article_year), domain, domain,
                kEvArticleYear, scratch, lane);
          }
          if (binding_.article_pages >= 0) {
            const ValueDomain domain{binding_.article,
                                     binding_.article_pages};
            plan.secondary2 = GatherAtomic(
                a.atomic_values(binding_.article_pages),
                b.atomic_values(binding_.article_pages), domain, domain,
                kEvArticlePages, scratch, lane);
          }
        } else if (plan.class_id == binding_.venue) {
          AssembleRange(plan.primary, kEvVenueName,
                        /*propagate_merge=*/true, lane, &out->evidence);
          if (out->evidence.empty()) continue;
          if (binding_.venue_year >= 0) {
            const ValueDomain domain{binding_.venue, binding_.venue_year};
            plan.secondary1 = GatherAtomic(
                a.atomic_values(binding_.venue_year),
                b.atomic_values(binding_.venue_year), domain, domain,
                kEvVenueYear, scratch, lane);
          }
          if (binding_.venue_location >= 0) {
            const ValueDomain domain{binding_.venue,
                                     binding_.venue_location};
            plan.secondary2 = GatherAtomic(
                a.atomic_values(binding_.venue_location),
                b.atomic_values(binding_.venue_location), domain, domain,
                kEvVenueLocation, scratch, lane);
          }
        }
      }

      SweepTasks(kEvArticleYear, scratch, lane);
      SweepTasks(kEvArticlePages, scratch, lane);
      SweepTasks(kEvVenueYear, scratch, lane);
      SweepTasks(kEvVenueLocation, scratch, lane);

      for (const PairPlan& plan : lane.plan) {
        StagedEvidence* staged_ev = &(*staged)[plan.out_index].evidence;
        if (plan.class_id == binding_.article) {
          AssembleRange(plan.secondary1, kEvArticleYear,
                        /*propagate_merge=*/false, lane, staged_ev);
          AssembleRange(plan.secondary2, kEvArticlePages,
                        /*propagate_merge=*/false, lane, staged_ev);
        } else if (plan.class_id == binding_.venue) {
          AssembleRange(plan.secondary1, kEvVenueYear,
                        /*propagate_merge=*/false, lane, staged_ev);
          AssembleRange(plan.secondary2, kEvVenueLocation,
                        /*propagate_merge=*/false, lane, staged_ev);
        }
      }

      if (abandoned) return;
    }
  }

  // ---- Constraint 1 ------------------------------------------------------

  void MarkCoAuthorConstraints(RefId first_ref) {
    if (binding_.article < 0 || binding_.article_authors < 0) return;
    for (RefId id = first_ref; id < dataset_.num_references(); ++id) {
      const Reference& ref = dataset_.reference(id);
      if (ref.class_id() != binding_.article) continue;
      const auto& authors = ref.associations(binding_.article_authors);
      for (size_t i = 0; i < authors.size(); ++i) {
        for (size_t j = i + 1; j < authors.size(); ++j) {
          NodeId node = graph_->FindRefPair(authors[i], authors[j]);
          if (node == kInvalidNode) {
            node = graph_->AddRefPairNode(binding_.person, authors[i],
                                          authors[j]);
          }
          graph_->SetNodeState(node, NodeState::kNonMerge);
        }
      }
    }
  }

  void ApplyFeedback() {
    auto valid_pair = [&](RefId a, RefId b) {
      return a >= 0 && b >= 0 && a != b && a < dataset_.num_references() &&
             b < dataset_.num_references() &&
             dataset_.reference(a).class_id() ==
                 dataset_.reference(b).class_id();
    };
    for (const auto& [a, b] : options_.feedback.same) {
      if (!valid_pair(a, b)) continue;
      const NodeId node = graph_->AddRefPairNode(
          dataset_.reference(a).class_id(), a, b);
      graph_->mutable_node(node).forced_merge = true;
      // Overrides an earlier non-merge (and re-admits the node's evidence
      // into dependent caches).
      graph_->SetNodeState(node, NodeState::kInactive);
    }
    for (const auto& [a, b] : options_.feedback.distinct) {
      if (!valid_pair(a, b)) continue;
      const NodeId node = graph_->AddRefPairNode(
          dataset_.reference(a).class_id(), a, b);
      graph_->mutable_node(node).forced_merge = false;
      graph_->SetNodeState(node, NodeState::kNonMerge);
    }
  }

  // ---- Step 2: association wiring ---------------------------------------

  void WireAssociations(NodeId start_node) {
    if (options_.evidence_level < EvidenceLevel::kArticle) return;
    const int total = graph_->num_nodes();
    for (NodeId m = start_node; m < total; ++m) {
      // Wiring only adds evidence; a budget stop truncates it at a chunk
      // boundary (the current node's wiring always completes).
      if ((m - start_node) % kBuildChunk == 0) {
        ReportGraphMemory();
        if (budget_->Probe(ProbePoint::kBuild)) return;
      }
      const Node& node = graph_->node(m);
      if (!node.IsRefPair() || node.dead) continue;
      if (node.state == NodeState::kNonMerge) continue;
      if (node.class_id == binding_.article) {
        WireArticlePair(m);
      } else if (node.class_id == binding_.person &&
                 options_.evidence_level >= EvidenceLevel::kContact) {
        WirePersonContacts(m);
      }
    }
  }

  void WireArticlePair(NodeId m) {
    const Node& node = graph_->node(m);
    const Reference& a1 = dataset_.reference(node.a);
    const Reference& a2 = dataset_.reference(node.b);

    if (binding_.article_authors >= 0) {
      const auto& authors1 = a1.associations(binding_.article_authors);
      const auto& authors2 = a2.associations(binding_.article_authors);
      for (const RefId p : authors1) {
        for (const RefId q : authors2) {
          if (p == q) {
            // The same extracted person reference authors both: identity
            // evidence for the articles (the paper's self node (a, a)).
            graph_->AddStaticReal(m, kEvArticleAuthors, 1.0);
            continue;
          }
          const NodeId n = graph_->FindRefPair(p, q);
          if (n == kInvalidNode) continue;
          if (graph_->node(n).state == NodeState::kNonMerge) continue;
          // Author similarity feeds the article comparison; an article
          // merge (almost) implies its aligned authors merge.
          graph_->AddEdge(n, m, DependencyKind::kRealValued,
                          kEvArticleAuthors);
          graph_->AddEdge(m, n, DependencyKind::kStrongBoolean,
                          kEvPersonArticle);
        }
      }
    }

    if (binding_.article_venue >= 0) {
      const auto& venues1 = a1.associations(binding_.article_venue);
      const auto& venues2 = a2.associations(binding_.article_venue);
      for (const RefId v1 : venues1) {
        for (const RefId v2 : venues2) {
          if (v1 == v2) {
            graph_->AddStaticReal(m, kEvArticleVenue, 1.0);
            continue;
          }
          const NodeId n = graph_->FindRefPair(v1, v2);
          if (n == kInvalidNode) continue;
          if (graph_->node(n).state == NodeState::kNonMerge) continue;
          graph_->AddEdge(n, m, DependencyKind::kRealValued,
                          kEvArticleVenue);
          graph_->AddEdge(m, n, DependencyKind::kStrongBoolean,
                          kEvVenueArticle);
        }
      }
    }
  }

  void WirePersonContacts(NodeId m) {
    const Node& node = graph_->node(m);
    const std::vector<RefId> contacts1 = ContactsOf(node.a);
    const std::vector<RefId> contacts2 = ContactsOf(node.b);
    if (contacts1.empty() || contacts2.empty()) return;
    const int64_t cross = static_cast<int64_t>(contacts1.size()) *
                          static_cast<int64_t>(contacts2.size());
    if (cross > options_.max_assoc_cross) return;

    int shared = 0;
    for (const RefId c1 : contacts1) {
      for (const RefId c2 : contacts2) {
        if (c1 == c2) {
          ++shared;
          continue;
        }
        const NodeId n = graph_->FindRefPair(c1, c2);
        if (n == kInvalidNode || n == m) continue;
        if (graph_->node(n).state == NodeState::kNonMerge) continue;
        // Bidirectional weak dependency (Fig. 2b: m6 <-> m7).
        graph_->AddEdge(n, m, DependencyKind::kWeakBoolean,
                        kEvPersonContact);
        graph_->AddEdge(m, n, DependencyKind::kWeakBoolean,
                        kEvPersonContact);
      }
    }
    if (shared > 0) {
      Node& mutable_m = graph_->mutable_node(m);
      const int16_t before = mutable_m.static_weak;
      mutable_m.static_weak =
          static_cast<int16_t>(std::min(32000, before + shared));
      // Static weak counts are a base term of the cached summary; absorb
      // the increase so the cache stays valid.
      if (mutable_m.cache.valid) {
        mutable_m.cache.weak_merged += mutable_m.static_weak - before;
      }
    }
  }

  std::vector<RefId> ContactsOf(RefId ref) {
    std::vector<RefId> contacts;
    const Reference& r = dataset_.reference(ref);
    if (binding_.person_coauthor >= 0) {
      const auto& coauthors = r.associations(binding_.person_coauthor);
      contacts.insert(contacts.end(), coauthors.begin(), coauthors.end());
    }
    if (binding_.person_contact >= 0) {
      const auto& mail = r.associations(binding_.person_contact);
      contacts.insert(contacts.end(), mail.begin(), mail.end());
    }
    std::sort(contacts.begin(), contacts.end());
    contacts.erase(std::unique(contacts.begin(), contacts.end()),
                   contacts.end());
    return contacts;
  }

  // ---- Queue and helpers -------------------------------------------------

  void BuildInitialQueue(NodeId start_node, std::vector<NodeId>* queue) {
    auto append_class = [&](int class_id) {
      if (class_id < 0) return;
      for (NodeId id = start_node; id < graph_->num_nodes(); ++id) {
        const Node& node = graph_->node(id);
        if (node.IsRefPair() && !node.dead &&
            node.state != NodeState::kNonMerge &&
            node.class_id == class_id) {
          queue->push_back(id);
        }
      }
    };
    append_class(binding_.venue);
    append_class(binding_.person);
    append_class(binding_.article);
    for (int c = 0; c < dataset_.schema().num_classes(); ++c) {
      if (c == binding_.venue || c == binding_.person || c == binding_.article) {
        continue;
      }
      append_class(c);
    }
  }

  /// Raw-fallback analysis caches: each distinct string is analyzed once
  /// per lane; a cache miss is one value analysis for the stats.
  const FallbackName& ParsedName(const std::string& raw,
                                 StageScratch& scratch) const {
    auto [it, inserted] = scratch.name_cache.try_emplace(raw);
    if (inserted) {
      it->second.name = strsim::ParsePersonName(raw);
      it->second.lower = ToLower(raw);
      ++scratch.value_analyses;
    }
    return it->second;
  }

  const strsim::EmailAddress& ParsedEmail(const std::string& raw,
                                          StageScratch& scratch) const {
    auto [it, inserted] = scratch.email_cache.try_emplace(raw);
    if (inserted) {
      it->second = strsim::ParseEmail(raw);
      ++scratch.value_analyses;
    }
    return it->second;
  }

  /// Parsed person name of an interned name value: store features when the
  /// store is on, per-lane fallback cache otherwise.
  const strsim::PersonName& NameOf(const std::string& raw,
                                   StageScratch& scratch) const {
    if (store_ != nullptr) {
      const ValueId id = values_->Find(
          ValueDomain{binding_.person, binding_.person_name}, raw);
      RECON_CHECK_NE(id, kInvalidValue);
      return store_->features(id).name;
    }
    return ParsedName(raw, scratch).name;
  }

  const strsim::EmailAddress& EmailOf(const std::string& raw,
                                      StageScratch& scratch) const {
    if (store_ != nullptr) {
      const ValueId id = values_->Find(
          ValueDomain{binding_.person, binding_.person_email}, raw);
      RECON_CHECK_NE(id, kInvalidValue);
      return store_->features(id).email;
    }
    return ParsedEmail(raw, scratch);
  }

  template <typename Comparator>
  double CachedSim(int evidence, ValueId v1, ValueId v2,
                   const std::string& raw1, const std::string& raw2,
                   Comparator& comparator, StageScratch& scratch) const {
    // Same-attribute comparators are symmetric and cross-attribute pairs
    // always arrive in (name, email) order, so the unordered key is safe.
    const MemoKey key = SimMemo::MakeKey(evidence, v1, v2);
    auto [it, inserted] = scratch.sim_cache.try_emplace(key, 0.0f);
    if (inserted) {
      it->second = static_cast<float>(comparator(raw1, raw2));
    }
    return it->second;
  }

  /// Sizes the shared memo: the configured bound, shrunk to fit under the
  /// run's soft memory budget when one is set. The memo degrades on its
  /// own (eviction, then bypass) — it never trips the budget, whose
  /// estimate stays graph-only so budget stops are identical with the
  /// store on or off.
  void ConfigureMemoBudget() {
    if (memo_ == nullptr) return;
    int64_t bound = options_.sim_memo_max_bytes;
    const int64_t soft = budget_->budget().soft_max_memory_bytes;
    if (soft > 0) bound = std::min(bound, soft);
    memo_->set_max_bytes(bound);
  }

  /// Updates the budget's soft memory estimate from the current graph
  /// shape (each edge is stored twice: in the source's out list and the
  /// target's in list).
  void ReportGraphMemory() {
    budget_->ReportMemoryEstimate(
        static_cast<int64_t>(graph_->num_nodes()) *
            static_cast<int64_t>(sizeof(Node)) +
        2 * static_cast<int64_t>(graph_->num_edges()) *
            static_cast<int64_t>(sizeof(Edge)));
  }

  const Dataset& dataset_;
  const ReconcilerOptions& options_;
  /// By value: the caller's default `{}` temporary dies at the ctor.
  BuildOverrides overrides_;
  SchemaBinding binding_;
  /// Fallback unlimited tracker for callers that pass none, so the build
  /// has exactly one budget code path.
  std::unique_ptr<BudgetTracker> own_budget_;
  BudgetTracker* budget_;
  DependencyGraph* graph_ = nullptr;
  ValuePool* values_ = nullptr;
  BuiltGraph* built_ = nullptr;
  /// Owned by built_ (shared_ptr); null when options_.value_store is off.
  ValueStore* store_ = nullptr;
  SimMemo* memo_ = nullptr;
};

}  // namespace

void InternReferenceValues(const Dataset& dataset, RefId first_ref,
                           BuiltGraph& built) {
  const SchemaBinding& b = built.binding;
  for (RefId id = first_ref; id < dataset.num_references(); ++id) {
    const Reference& r = dataset.reference(id);
    const int class_id = r.class_id();
    auto intern_field = [&](int owner_class, int attr) {
      if (owner_class < 0 || attr < 0 || class_id != owner_class) return;
      for (const std::string& raw : r.atomic_values(attr)) {
        built.values.Intern(ValueDomain{owner_class, attr}, raw);
      }
    };
    intern_field(b.person, b.person_name);
    intern_field(b.person, b.person_email);
    intern_field(b.article, b.article_title);
    intern_field(b.article, b.article_year);
    intern_field(b.article, b.article_pages);
    intern_field(b.venue, b.venue_name);
    intern_field(b.venue, b.venue_year);
    intern_field(b.venue, b.venue_location);
  }
  if (built.feature_store != nullptr) built.feature_store->Sync(built.values);
}

BuiltGraph BuildDependencyGraph(const Dataset& dataset,
                                const ReconcilerOptions& options,
                                BudgetTracker* budget,
                                const BuildOverrides& overrides) {
  return GraphBuilder(dataset, options, budget, overrides).Build();
}

std::vector<NodeId> ExtendDependencyGraph(
    const Dataset& dataset, const ReconcilerOptions& options,
    const std::vector<std::pair<RefId, RefId>>& pairs, RefId first_new_ref,
    BuiltGraph& built, BudgetTracker* budget) {
  return GraphBuilder(dataset, options, budget)
      .Extend(pairs, first_new_ref, built);
}

}  // namespace recon
