#include "core/solver.h"

#include <algorithm>

#include "runtime/parallel.h"
#include "sim/class_sim.h"
#include "util/logging.h"
#include "util/timer.h"

namespace recon {


FixedPointSolver::FixedPointSolver(const Dataset& dataset, BuiltGraph& built,
                                   const ReconcilerOptions& options,
                                   ReconcileStats* stats,
                                   BudgetTracker* budget)
    : dataset_(dataset),
      built_(built),
      graph_(*built.graph),
      options_(options),
      stats_(stats),
      own_budget_(budget == nullptr
                      ? std::make_unique<BudgetTracker>(Budget{})
                      : nullptr),
      budget_(budget != nullptr ? budget : own_budget_.get()),
      refs_(dataset.num_references()) {}

void FixedPointSolver::EnqueueNodes(const std::vector<NodeId>& nodes) {
  for (const NodeId id : nodes) {
    Node& node = graph_.mutable_node(id);
    if (node.dead || node.queued || node.state == NodeState::kNonMerge) {
      continue;
    }
    if (node.state == NodeState::kInactive) node.state = NodeState::kActive;
    node.queued = true;
    queue_.push_back(id);
  }
}

bool FixedPointSolver::StopBeforePop(int64_t* iterations,
                                     int64_t iteration_cap) {
  if (budget_->Probe(ProbePoint::kSolveCommit)) return true;
  if (*iterations >= iteration_cap) {
    // The configured budget — or, unconfigured, the convergence safety
    // cap — is spent. Either way this is the degraded-stop path, never an
    // abort: constraints and the closure still run on the frozen state.
    if (!budget_->budget().HasIterationLimit()) {
      RECON_LOG(Warning) << "Fixed point did not converge within the "
                         << iteration_cap
                         << "-iteration safety cap; freezing the solve";
    }
    budget_->ForceStop(StopReason::kIterationBudget);
    return true;
  }
  ++*iterations;
  return false;
}

void FixedPointSolver::Run() {
  const int64_t iteration_cap =
      budget_->budget().HasIterationLimit()
          ? budget_->budget().max_solver_iterations
          : 500LL * std::max(1, graph_.num_nodes()) + 1000;
  merge_cap_ = budget_->budget().HasMergeLimit()
                   ? budget_->budget().max_merges
                   : 0;
  merges_this_run_ = 0;
  int64_t iterations = 0;
  // One thread runs the same wavefront rounds inline: the schedule is a
  // pure function of the snapshot, so this keeps output and round stats
  // byte-identical across every thread count (and gives the perf bench a
  // comparable threads=1 row).
  const bool wavefront = options_.parallel_fixed_point;
  if (!wavefront) {
    // The whole sequential drain is one "round" for probing purposes; the
    // per-pop kSolveCommit probes inside the loop carry the budget checks.
    budget_->Probe(ProbePoint::kSolveRound);
    Timer timer;
    while (!queue_.empty()) {
      if (StopBeforePop(&iterations, iteration_cap)) break;
      Step(queue_.pop_front());
    }
    stats_->solve_commit_seconds += timer.ElapsedSeconds();
    stats_->solver_iterations += iterations;
    stats_->stop_reason = budget_->stop_reason();
    return;
  }

  const size_t min_frontier =
      static_cast<size_t>(std::max(1, options_.parallel_frontier_min));
  while (!queue_.empty()) {
    if (budget_->Probe(ProbePoint::kSolveRound)) break;
    if (queue_.size() >= min_frontier) {
      if (!RunWavefrontRound(&iterations, iteration_cap)) break;
    } else {
      // Short queue: a round would cost more in dispatch than it saves.
      // Drain serially until the queue refills (a propagation wave fanning
      // out) or empties. Identical semantics either way.
      Timer timer;
      bool frozen = false;
      while (!queue_.empty() && queue_.size() < min_frontier) {
        if (StopBeforePop(&iterations, iteration_cap)) {
          frozen = true;
          break;
        }
        Step(queue_.pop_front());
      }
      stats_->solve_commit_seconds += timer.ElapsedSeconds();
      if (frozen) break;
    }
  }
  stats_->solver_iterations += iterations;
  stats_->stop_reason = budget_->stop_reason();
}

bool FixedPointSolver::RunWavefrontRound(int64_t* iterations,
                                         int64_t iteration_cap) {
  if (++round_id_ == 0) ++round_id_;  // 0 marks "no record"; skip on wrap.
  const size_t max_frontier = static_cast<size_t>(
      std::max(options_.parallel_frontier_min, options_.parallel_frontier_max));
  const size_t frontier_size = std::min(queue_.size(), max_frontier);
  frontier_.resize(frontier_size);
  for (size_t i = 0; i < frontier_size; ++i) frontier_[i] = queue_[i];
  if (records_.size() < frontier_size) records_.resize(frontier_size);
  const size_t num_nodes = static_cast<size_t>(graph_.num_nodes());
  if (record_round_.size() < num_nodes) {
    record_round_.resize(num_nodes, 0);
    record_index_.resize(num_nodes, 0);
  }

  // Phase 1 — parallel score: a pure read of the graph frozen at the
  // snapshot. Each block writes only its own frontier slots, so the phase
  // is race-free and the records are independent of the block -> thread
  // assignment.
  Timer score_timer;
  runtime::ParallelForBlocked(
      options_.num_threads, 0, static_cast<int64_t>(frontier_size),
      /*grain=*/-1, [this](const runtime::Block& block) {
        for (int64_t i = block.begin; i < block.end; ++i) {
          // Cancellation / deadline probe inside the pool (read-only, no
          // counter mutation): scores are speculative, so abandoning them
          // affects wall time only — the serial check below guarantees no
          // abandoned record is ever consumed.
          if ((i - block.begin) % 64 == 0 &&
              budget_->ShouldAbandonParallelWork()) {
            return;
          }
          ScoreNode(frontier_[static_cast<size_t>(i)],
                    &records_[static_cast<size_t>(i)]);
        }
      });
  const double score_seconds = score_timer.ElapsedSeconds();
  if (budget_->ShouldAbandonParallelWork()) {
    // A pool thread (or this one) observed cancellation or the deadline:
    // some records may be unscored. Nothing was committed and nothing was
    // popped, so freezing here keeps the whole frontier queued. Both
    // conditions are sticky/monotone, so the serial re-check always
    // agrees with whatever the workers saw.
    budget_->ResolveAsyncStop();
    return false;
  }
  for (size_t i = 0; i < frontier_size; ++i) {
    record_round_[frontier_[i]] = round_id_;
    record_index_[frontier_[i]] = static_cast<uint32_t>(i);
  }
  PartitionFrontier(frontier_size);

  // Phase 2 — commit in exact canonical pop order: pop from the live
  // queue (which interleaves queue-jumping nodes enqueued by commits with
  // the rest of the frontier) until every snapshot member has been popped.
  // Pops from merge-free regions batch into the pending wave (committed,
  // concurrently across regions, when the wave flushes); a pop from a
  // heavy region — or one without a live record, jumped in mid-round or
  // re-activated after its pop — flushes the wave and then commits
  // serially, at its exact canonical position.
  const int64_t hits_before = stats_->num_score_hits;
  const int64_t rescores_before = stats_->num_serial_rescores;
  const int64_t discards_before = stats_->num_score_discards;
  Timer commit_timer;
  size_t committed = 0;
  bool frozen = false;
  while (true) {
    if (committed >= frontier_size) {
      if (!FlushWave(iterations, iteration_cap)) {
        frozen = true;
        break;
      }
      if (wave_reinject_.empty()) break;
      // The round's last wave rolled back: keep popping until its members
      // have replayed serially. None of them has consumed a probe or an
      // iteration yet (the join stops probing at the rollback point), so
      // the re-pops probe and count normally — each canonical pop exactly
      // once, like the sequential drain's.
      committed -= wave_reinject_.size();
      ReinjectWave();
    }
    // Peek before popping: when the front is not batchable (heavy region,
    // or no live record — jumped in mid-round or re-activated), the
    // pending wave must flush BEFORE the pop. A flush can commit serially
    // (lone-entry wave) and merge, and a merge's queue-jumping pushes land
    // at the queue front — canonically ahead of this node; popping first
    // would commit it past them. After the flush the loop re-examines
    // whatever the front is now (a jumper, a re-injected rollback member,
    // or the same node with the wave drained).
    const NodeId front = queue_[0];
    const bool batchable =
        record_round_[front] == round_id_ &&
        !region_heavy_[region_parent_[record_index_[front]]];
    if (batchable) {
      // No probe and no iteration here: wave pops carry their per-pop
      // budget probes at the flush join, in canonical order, so a budget
      // stop lands between the same two canonical pops as the sequential
      // drain's (light commits never change budget state, and a stop
      // rolls the tail of the wave back as if never popped).
      queue_.pop_front();
      record_round_[front] = 0;
      ++committed;
      wave_.push_back({front, record_index_[front]});
      continue;
    }
    if (!wave_.empty()) {
      if (!FlushWave(iterations, iteration_cap)) {
        frozen = true;
        break;
      }
      if (!wave_reinject_.empty()) {
        // Rolled-back members precede the front canonically; they replay
        // serially, probing and counting at their re-pops.
        committed -= wave_reinject_.size();
        ReinjectWave();
      }
      continue;
    }
    if (StopBeforePop(iterations, iteration_cap)) {
      // Freeze mid-round: uncommitted frontier nodes stay queued, and
      // their stale records are never consumed (a future round re-stamps).
      // The commit prefix equals the sequential drain's, so iteration- and
      // merge-budget stops stay byte-identical at every thread count.
      frozen = true;
      break;
    }
    const NodeId id = queue_.pop_front();
    if (record_round_[id] == round_id_) {
      record_round_[id] = 0;
      ++committed;
      StepWithRecord(id, records_[record_index_[id]]);
    } else {
      Step(id);
    }
  }
  if (frozen) {
    // A join probe may have frozen mid-wave; its rolled-back members go
    // back to the queue unexecuted, exactly as if never popped, and a
    // resumed drain re-pops them against the fresh budget epoch. The
    // serial probe site only fires with the wave already flushed.
    if (!wave_reinject_.empty()) ReinjectWave();
  }
  const double commit_seconds = commit_timer.ElapsedSeconds();

  ++stats_->num_solver_rounds;
  stats_->num_parallel_scored += static_cast<int64_t>(frontier_size);
  stats_->solve_score_seconds += score_seconds;
  stats_->solve_commit_seconds += commit_seconds;
  stats_->solve_rounds.push_back(
      {static_cast<int64_t>(frontier_size),
       stats_->num_score_hits - hits_before,
       stats_->num_serial_rescores - rescores_before,
       stats_->num_score_discards - discards_before, score_seconds,
       commit_seconds});
  return !frozen;
}

uint32_t FixedPointSolver::RegionFind(uint32_t x) {
  while (region_parent_[x] != x) {
    region_parent_[x] = region_parent_[region_parent_[x]];  // Path halving.
    x = region_parent_[x];
  }
  return x;
}

void FixedPointSolver::PartitionFrontier(size_t frontier_size) {
  const size_t num_nodes = static_cast<size_t>(graph_.num_nodes());
  if (claim_stamp_.size() < num_nodes) {
    claim_stamp_.resize(num_nodes, 0);
    claim_owner_.resize(num_nodes, 0);
  }
  if (region_ctx_stamp_.size() < frontier_size) {
    region_ctx_stamp_.resize(frontier_size, 0);
    region_ctx_id_.resize(frontier_size, 0);
  }
  region_parent_.resize(frontier_size);
  for (uint32_t i = 0; i < frontier_size; ++i) region_parent_[i] = i;

  // Claim pass: frontier index i claims its own node and every
  // out-neighbor; a node claimed twice unions the claimants. Claims cover
  // every node a merge-free commit writes (its own fields; dependents'
  // gen, cache, and queued flag) and every frontier input a re-score
  // reads: s in in(i) implies i in out(s), so any frontier writer of i's
  // inputs claimed i and shares its region.
  for (uint32_t i = 0; i < frontier_size; ++i) {
    const NodeId id = frontier_[i];
    const auto claim = [this, i](NodeId n) {
      if (claim_stamp_[n] == round_id_) {
        const uint32_t a = RegionFind(i);
        const uint32_t b = RegionFind(claim_owner_[n]);
        if (a != b) {
          // Smaller root wins: a region's id is its smallest member.
          if (a < b) {
            region_parent_[b] = a;
          } else {
            region_parent_[a] = b;
          }
        }
      } else {
        claim_stamp_[n] = round_id_;
        claim_owner_[n] = i;
      }
    };
    claim(id);
    for (const Edge& e : graph_.out_edges(id)) claim(e.node);
  }

  // Finalize roots and fold per-node merge predictions into per-region
  // heavy flags. A committing node merges only if its raised similarity
  // reaches the threshold; within a merge-free region a member's sim can
  // still rise past its snapshot score (a same-region commit feeds it), so
  // this prediction is optimistic — ExecuteWaveRegion re-checks before
  // every write and defers to the serial tail when it was wrong.
  region_heavy_.assign(frontier_size, 0);
  for (uint32_t i = 0; i < frontier_size; ++i) {
    region_parent_[i] = RegionFind(i);
    const Node& node = graph_.node(frontier_[i]);
    if (node.dead || node.state == NodeState::kNonMerge ||
        node.state == NodeState::kMerged) {
      continue;  // Discarded or merge-branch-free at commit: never heavy.
    }
    const double threshold = node.IsRefPair()
                                 ? options_.params.merge_threshold
                                 : options_.params.value_merge_threshold;
    // Predict the sim exactly as Commit would store it — raised to the
    // FLOAT cast of the score. A double score one ulp under the threshold
    // can round up across it, so comparing the double directly would
    // classify a merging commit as light.
    float predicted = node.sim;
    if (records_[i].score > predicted) {
      predicted = static_cast<float>(records_[i].score);
    }
    if (predicted >= threshold) {
      region_heavy_[region_parent_[i]] = 1;
    }
  }
}

bool FixedPointSolver::FlushWave(int64_t* iterations, int64_t iteration_cap) {
  const size_t n = wave_.size();
  if (n == 0) return true;
  if (n == 1) {
    // A lone pop gains nothing from region dispatch; StepWithRecord is the
    // identical commit at the identical position (its deferred pop probe
    // fires here, just before the commit).
    const WaveEntry entry = wave_[0];
    wave_.clear();
    if (StopBeforePop(iterations, iteration_cap)) {
      wave_reinject_.push_back(entry);
      return false;
    }
    StepWithRecord(entry.id, records_[entry.rec]);
    return true;
  }
  if (++wave_seq_ == 0) ++wave_seq_;

  // Group wave entries by region root; regions are ordered by first
  // appearance (= ascending smallest wave position, a fixed tie-break).
  num_wave_regions_ = 0;
  for (uint32_t pos = 0; pos < static_cast<uint32_t>(n); ++pos) {
    const uint32_t root = region_parent_[wave_[pos].rec];
    if (region_ctx_stamp_[root] != wave_seq_) {
      region_ctx_stamp_[root] = wave_seq_;
      region_ctx_id_[root] = static_cast<uint32_t>(num_wave_regions_);
      if (num_wave_regions_ == wave_regions_.size()) {
        wave_regions_.emplace_back();
      }
      wave_regions_[num_wave_regions_].Clear();
      ++num_wave_regions_;
    }
    wave_regions_[region_ctx_id_[root]].members.push_back(pos);
  }

  // Commit disjoint regions concurrently; grain 1 lets lanes claim the
  // next region as they free up. Members within a region run in canonical
  // order, so with one thread (inline) this is the same schedule and the
  // same result. Regions never touch a common node (the claim closure),
  // so in-wave commits are race-free and commute.
  runtime::ParallelForBlocked(
      options_.num_threads, 0, static_cast<int64_t>(num_wave_regions_),
      /*grain=*/1, [this](const runtime::Block& block) {
        for (int64_t r = block.begin; r < block.end; ++r) {
          ExecuteWaveRegion(wave_regions_[static_cast<size_t>(r)]);
        }
      });

  // Serial join. First locate the earliest threshold crossing across all
  // regions: commits at positions before it are exactly what the
  // sequential drain would have produced; everything at or after it must
  // be unwound, because the crossing commit is a merge whose side effects
  // (folds, enrichment, queue jumps) are unbounded by claims and reach
  // nodes those later commits already read.
  uint32_t p_cross = UINT32_MAX;
  for (size_t r = 0; r < num_wave_regions_; ++r) {
    const WaveRegionCtx& ctx = wave_regions_[r];
    if (ctx.deferred_from != UINT32_MAX) {
      p_cross = std::min(p_cross, ctx.members[ctx.deferred_from]);
    }
  }

  // The wave pops' deferred budget probes, one per member in canonical
  // order, stopping at the crossing (its members replay serially and probe
  // at their re-pops instead). Light commits never change budget state —
  // merges are exactly what defers — so each probe observes the same
  // state it would have seen at its pop. A stop at position p freezes the
  // drain there: the tail at >= p rolls back as if never popped, so the
  // frozen prefix equals the sequential drain's to the byte.
  uint32_t p_stop = UINT32_MAX;
  const uint32_t probe_limit =
      std::min(p_cross, static_cast<uint32_t>(n));
  for (uint32_t p = 0; p < probe_limit; ++p) {
    if (StopBeforePop(iterations, iteration_cap)) {
      p_stop = p;
      break;
    }
  }
  const bool frozen = p_stop != UINT32_MAX;
  const uint32_t p_min = frozen ? p_stop : p_cross;

  if (p_min != UINT32_MAX) {
    // Rollback: restore pre-images of every write at positions >= p_min in
    // reverse log order (regions are node-disjoint, so cross-region
    // restore order is immaterial), then clear the queued flag set by
    // dropped buffered enqueues.
    for (size_t r = 0; r < num_wave_regions_; ++r) {
      std::vector<WaveUndo>& undo = wave_regions_[r].undo;
      size_t cut = undo.size();
      while (cut > 0 && undo[cut - 1].pos >= p_min) --cut;
      for (size_t u = undo.size(); u-- > cut;) {
        graph_.mutable_node(undo[u].id) = undo[u].snapshot;
      }
    }
    for (size_t r = 0; r < num_wave_regions_; ++r) {
      for (const std::pair<uint32_t, NodeId>& enq : wave_regions_[r].enqueues) {
        if (enq.first >= p_min) graph_.mutable_node(enq.second).queued = false;
      }
    }
  }

  // Merge each region's counters at its surviving member boundary (the
  // final mark when nothing rolled back) and gather surviving enqueues.
  wave_splice_.clear();
  for (size_t r = 0; r < num_wave_regions_; ++r) {
    WaveRegionCtx& ctx = wave_regions_[r];
    const WaveMemberMark* last = nullptr;
    for (const WaveMemberMark& mark : ctx.marks) {
      if (mark.pos >= p_min) break;
      last = &mark;
    }
    if (last != nullptr) {
      stats_->num_score_hits += last->hits;
      stats_->num_serial_rescores += last->rescores;
      stats_->num_score_discards += last->discards;
      stats_->num_inedge_scans += last->scans;
      stats_->num_inedge_scans_avoided += last->avoided;
      stats_->num_cache_rebuilds += last->rebuilds;
      stats_->num_delta_pushes += last->delta_pushes;
      stats_->num_recomputations += last->recomputations;
    }
    for (const std::pair<uint32_t, NodeId>& enq : ctx.enqueues) {
      if (enq.first < p_min) wave_splice_.push_back(enq);
    }
  }
  ++stats_->num_commit_waves;
  stats_->num_commit_regions += static_cast<int64_t>(num_wave_regions_);
  stats_->num_wave_commits +=
      static_cast<int64_t>(p_min == UINT32_MAX ? n : p_min);

  // Splice: push surviving buffered enqueues exactly as the sequential
  // drain would have — ascending committing position, commit-internal
  // order preserved (a position names one commit, so the stable sort never
  // interleaves two commits' pushes).
  std::stable_sort(
      wave_splice_.begin(), wave_splice_.end(),
      [](const std::pair<uint32_t, NodeId>& a,
         const std::pair<uint32_t, NodeId>& b) { return a.first < b.first; });
  for (const std::pair<uint32_t, NodeId>& push : wave_splice_) {
    Node& node = graph_.mutable_node(push.second);
    if (node.state == NodeState::kInactive) node.state = NodeState::kActive;
    queue_.push_back(push.second);
  }

  // Stash rolled-back members for the caller to re-inject at the queue
  // front in canonical order — after any pop of its own it must re-queue
  // behind them. On a crossing, they replay serially (their regions turn
  // heavy): the crossing merge commits at its exact canonical position,
  // everything after it re-executes against post-merge state, and each
  // replayed pop probes and counts at its re-pop — the join never probed
  // it. On a frozen stop they simply stay queued for a resumed drain.
  if (p_min != UINT32_MAX) {
    wave_reinject_.assign(wave_.begin() + p_min, wave_.end());
    if (!frozen) {
      stats_->num_commit_deferrals += static_cast<int64_t>(n - p_min);
    }
  }
  wave_.clear();
  return !frozen;
}

void FixedPointSolver::ReinjectWave() {
  for (size_t j = wave_reinject_.size(); j-- > 0;) {
    const WaveEntry& entry = wave_reinject_[j];
    queue_.push_front(entry.id);
    record_round_[entry.id] = round_id_;
    record_index_[entry.id] = entry.rec;
    region_heavy_[region_parent_[entry.rec]] = 1;
  }
  wave_reinject_.clear();
}

void FixedPointSolver::ExecuteWaveRegion(WaveRegionCtx& ctx) {
  for (size_t k = 0; k < ctx.members.size(); ++k) {
    const uint32_t pos = ctx.members[k];
    const WaveEntry& entry = wave_[pos];
    Node& node = graph_.mutable_node(entry.id);
    const ScoreRecord& rec = records_[entry.rec];

    // A member's inputs can only have changed through earlier same-region
    // commits, so a stale generation stamp means a re-score is needed; run
    // it side-effect free first — if the fresh score crosses the merge
    // threshold the light prediction was wrong, execution stops with this
    // member bitwise untouched, and the join rolls the wave back to the
    // crossing position for an exact serial replay.
    const bool discard = node.dead || node.state == NodeState::kNonMerge;
    const bool hit = node.gen == rec.gen;
    EvidenceCache fresh;
    bool rebuilt = false;
    int64_t scans = 0;
    int64_t avoided = 0;
    double computed = 0;
    if (!discard && !hit) {
      computed =
          WaveRescore(entry.id, node, &fresh, &rebuilt, &scans, &avoided);
      const double threshold = node.IsRefPair()
                                   ? options_.params.merge_threshold
                                   : options_.params.value_merge_threshold;
      // Same float cast Commit applies before its threshold test: a double
      // score one ulp under the threshold can round up across it.
      float predicted = node.sim;
      if (computed > predicted) predicted = static_cast<float>(computed);
      if (predicted >= threshold && node.state != NodeState::kMerged) {
        ctx.deferred_from = static_cast<uint32_t>(k);
        return;
      }
    }

    // All writes from here on are undone via the snapshot if a later
    // member of any region crosses at an earlier position.
    ctx.undo.push_back({pos, entry.id, node});
    node.queued = false;
    if (discard) {
      ++ctx.discards;
    } else if (hit) {
      // Fresh score. A hit cannot cross the merge threshold: its inputs —
      // and therefore its score and snapshot sim — are unchanged, and the
      // region would have been classified heavy.
      if (node.state == NodeState::kActive) node.state = NodeState::kInactive;
      ++ctx.hits;
      ctx.scans += rec.scans;
      ctx.avoided += rec.avoided;
      if (rec.rebuilt) {
        ++ctx.rebuilds;
        node.cache = rec.cache;
      }
      WaveCommitLight(entry.id, node, rec.score, ctx, pos);
    } else {
      if (node.state == NodeState::kActive) node.state = NodeState::kInactive;
      if (rebuilt) {
        node.cache = fresh;
        ++ctx.rebuilds;
      }
      ctx.scans += scans;
      ctx.avoided += avoided;
      ++ctx.rescores;
      WaveCommitLight(entry.id, node, computed, ctx, pos);
    }
    ctx.marks.push_back({pos, ctx.hits, ctx.rescores, ctx.discards, ctx.scans,
                         ctx.avoided, ctx.rebuilds, ctx.delta_pushes,
                         ctx.recomputations});
  }
}

void FixedPointSolver::WaveCommitLight(NodeId id, Node& node, double computed,
                                       WaveRegionCtx& ctx, uint32_t pos) {
  ++ctx.recomputations;
  const double old_sim = node.sim;
  if (computed > node.sim) node.sim = static_cast<float>(computed);
  const bool increased = node.sim > old_sim + options_.params.epsilon;
  if (node.sim > old_sim) {
    // Dependents' generation stamps and caches are about to change;
    // snapshot them first so a wave rollback can restore their pre-images
    // (every one is claimed by this region, so no other region logs them).
    for (const Edge& e : graph_.out_edges(id)) {
      if (e.kind == DependencyKind::kRealValued) {
        ctx.undo.push_back({pos, e.node, graph_.node(e.node)});
      }
    }
    for (const Edge& e : graph_.out_edges(id)) {
      if (e.kind == DependencyKind::kRealValued) {
        ++graph_.mutable_node(e.node).gen;
      }
    }
    if (options_.evidence_cache) {
      // PushSimDelta with the context's counter.
      for (const Edge& e : graph_.out_edges(id)) {
        if (e.kind != DependencyKind::kRealValued) continue;
        EvidenceCache& cache = graph_.mutable_node(e.node).cache;
        if (!cache.valid) continue;
        cache.Offer(e.evidence, node.sim);
        ++ctx.delta_pushes;
      }
    }
  }
  if (increased && options_.propagation) {
    for (const Edge& e : graph_.out_edges(id)) {
      if (e.kind == DependencyKind::kRealValued) {
        WaveEnqueue(e.node, ctx, pos);
      }
    }
  }
}

double FixedPointSolver::WaveRescore(NodeId id, const Node& node,
                                     EvidenceCache* fresh, bool* rebuilt,
                                     int64_t* scans, int64_t* avoided) const {
  if (!options_.evidence_cache) return ComputeSimilarity(id, scans);
  if (node.forced_merge) return 1.0;
  if (!node.cache.valid) {
    BuildCacheSummary(id, fresh, scans);
    *rebuilt = true;
    return ScoreFromCache(node, *fresh);
  }
  *avoided += graph_.in_degree(id);
  return ScoreFromCache(node, node.cache);
}

void FixedPointSolver::WaveEnqueue(NodeId id, WaveRegionCtx& ctx,
                                   uint32_t pos) {
  Node& node = graph_.mutable_node(id);
  if (node.dead || node.queued || node.state == NodeState::kNonMerge) {
    return;
  }
  if (node.sim >= 1.0f) return;
  // The queued flag is the global dedup and is safe to set here — the
  // target is claimed by this region. The kInactive -> kActive flip waits
  // for the serial splice: scoring never distinguishes the two states, and
  // deferring it keeps every cross-region access during a wave on disjoint
  // fields.
  node.queued = true;
  ctx.enqueues.emplace_back(pos, id);
}

void FixedPointSolver::ScoreNode(NodeId id, ScoreRecord* rec) const {
  const Node& node = graph_.node(id);
  rec->gen = node.gen;
  rec->scans = 0;
  rec->avoided = 0;
  rec->rebuilt = false;
  rec->score = node.sim;
  // Dead and demoted nodes are skipped at commit before the score is read.
  if (node.dead || node.state == NodeState::kNonMerge) return;
  if (node.forced_merge) {
    rec->score = 1.0;  // Matches both serial paths: no scans, no rebuild.
    return;
  }
  if (options_.evidence_cache) {
    if (!node.cache.valid) {
      rec->rebuilt = true;
      BuildCacheSummary(id, &rec->cache, &rec->scans);
      rec->score = ScoreFromCache(node, rec->cache);
    } else {
      rec->avoided = graph_.in_degree(id);
      rec->score = ScoreFromCache(node, node.cache);
    }
    return;
  }
  rec->score = ComputeSimilarity(id, &rec->scans);
}

void FixedPointSolver::Step(NodeId id) {
  Node& node = graph_.mutable_node(id);
  node.queued = false;
  if (node.dead || node.state == NodeState::kNonMerge) return;
  if (node.state == NodeState::kActive) node.state = NodeState::kInactive;
  const double computed =
      options_.evidence_cache
          ? CachedSimilarity(id, node)
          : ComputeSimilarity(id, &stats_->num_inedge_scans);
  Commit(id, node, computed);
}

void FixedPointSolver::StepWithRecord(NodeId id, const ScoreRecord& rec) {
  Node& node = graph_.mutable_node(id);
  node.queued = false;
  if (node.dead || node.state == NodeState::kNonMerge) {
    ++stats_->num_score_discards;  // Folded or demoted since the snapshot.
    return;
  }
  if (node.state == NodeState::kActive) node.state = NodeState::kInactive;
  double computed;
  if (node.gen == rec.gen) {
    // No input changed since the parallel score: the recorded value and
    // stat deltas are exactly what the serial computation would produce.
    ++stats_->num_score_hits;
    computed = rec.score;
    stats_->num_inedge_scans += rec.scans;
    stats_->num_inedge_scans_avoided += rec.avoided;
    if (rec.rebuilt) {
      ++stats_->num_cache_rebuilds;
      node.cache = rec.cache;
    }
  } else {
    // An earlier commit of this round mutated an input; the parallel
    // score is stale. Re-score serially against current state.
    ++stats_->num_serial_rescores;
    computed = options_.evidence_cache
                   ? CachedSimilarity(id, node)
                   : ComputeSimilarity(id, &stats_->num_inedge_scans);
  }
  Commit(id, node, computed);
}

void FixedPointSolver::Commit(NodeId id, Node& node, double computed) {
  ++stats_->num_recomputations;
  const double old_sim = node.sim;
  // Similarities are monotone non-decreasing (§3.2 termination).
  if (computed > node.sim) node.sim = static_cast<float>(computed);
  const bool increased = node.sim > old_sim + options_.params.epsilon;

  // Any raise — even one below epsilon, which re-activates nobody — must
  // reach dependents' caches and generation stamps: a full rescan reads
  // current sims, so both have to as well.
  if (node.sim > old_sim) {
    for (const Edge& e : graph_.out_edges(id)) {
      if (e.kind == DependencyKind::kRealValued) {
        ++graph_.mutable_node(e.node).gen;
      }
    }
    if (options_.evidence_cache) PushSimDelta(id, node);
  }

  if (increased && options_.propagation) {
    for (const Edge& e : graph_.out_edges(id)) {
      if (e.kind == DependencyKind::kRealValued) Enqueue(e.node, false);
    }
  }

  const double threshold = node.IsRefPair()
                               ? options_.params.merge_threshold
                               : options_.params.value_merge_threshold;
  if (node.sim >= threshold && node.state != NodeState::kMerged) {
    node.state = NodeState::kMerged;
    ++stats_->num_merges;
    ++merges_this_run_;
    if (merge_cap_ > 0 && merges_this_run_ >= merge_cap_) {
      // The budget is spent, but this commit — deltas, propagation
      // pushes, enrichment — still completes: it is one deterministic
      // unit. The drain freezes before the next pop.
      budget_->ForceStop(StopReason::kMergeBudget);
    }
    for (const Edge& e : graph_.out_edges(id)) {
      if (e.kind != DependencyKind::kRealValued) {
        ++graph_.mutable_node(e.node).gen;  // Boolean counts changed.
      }
    }
    if (options_.evidence_cache) PushMergeDelta(id);
    if (options_.propagation) {
      // Strong-boolean dependents jump the queue (§3.2 heuristics).
      for (const Edge& e : graph_.out_edges(id)) {
        if (e.kind == DependencyKind::kStrongBoolean) {
          Enqueue(e.node, options_.strong_neighbors_jump_queue);
        }
      }
      for (const Edge& e : graph_.out_edges(id)) {
        if (e.kind == DependencyKind::kWeakBoolean) Enqueue(e.node, false);
      }
    }
    if (node.IsRefPair() && options_.enrichment) {
      EnrichReferences(id);
    }
  }
}

void FixedPointSolver::EnrichReferences(NodeId id) {
  // Capture the pair first; MergeReferences does not add nodes but the
  // node reference would alias mutable graph state.
  const RefId a = static_cast<RefId>(graph_.node(id).a);
  const RefId b = static_cast<RefId>(graph_.node(id).b);
  const int keep = refs_.Union(a, b);
  const RefId gone = (keep == a) ? b : a;
  MergeRefsResult result = graph_.MergeReferences(keep, gone);
  stats_->num_folds += static_cast<int64_t>(result.folded.size());
  for (const NodeId m : result.gained_inputs) Enqueue(m, false);
}

void FixedPointSolver::Enqueue(NodeId id, bool front) {
  Node& node = graph_.mutable_node(id);
  if (node.dead || node.queued || node.state == NodeState::kNonMerge) {
    return;
  }
  if (node.sim >= 1.0f) return;  // Cannot increase further (§3.2).
  node.queued = true;
  if (node.state == NodeState::kInactive) node.state = NodeState::kActive;
  if (front) {
    queue_.push_front(id);
  } else {
    queue_.push_back(id);
  }
}

double FixedPointSolver::ComputeSimilarity(NodeId id,
                                           int64_t* scans) const {
  const Node& node = graph_.node(id);
  if (node.forced_merge) return 1.0;  // User-confirmed match.
  if (!node.IsRefPair()) {
    // Value pairs: initial string similarity, lifted to 1 when a merged
    // strong-boolean neighbor certifies the values denote one entity
    // (Fig. 2's n6 after the venues merge).
    double sim = node.sim;
    for (const Edge& e : graph_.in_edges(id)) {
      ++*scans;
      if (e.kind == DependencyKind::kStrongBoolean &&
          graph_.node(e.node).state == NodeState::kMerged) {
        sim = 1.0;
        break;
      }
    }
    return sim;
  }

  EvidenceSummary evidence;
  for (const StaticReal& entry : graph_.static_real(id)) {
    evidence.Offer(entry.type, entry.sim);
  }
  evidence.strong_merged = node.static_strong;
  evidence.weak_merged = node.static_weak;
  *scans += graph_.in_degree(id);
  for (const Edge& e : graph_.in_edges(id)) {
    const Node& src = graph_.node(e.node);
    if (src.dead) continue;
    switch (e.kind) {
      case DependencyKind::kRealValued:
        if (src.state != NodeState::kNonMerge) {
          evidence.Offer(e.evidence, src.sim);
        }
        break;
      case DependencyKind::kStrongBoolean:
        if (src.state == NodeState::kMerged) ++evidence.strong_merged;
        break;
      case DependencyKind::kWeakBoolean:
        if (src.state == NodeState::kMerged) ++evidence.weak_merged;
        break;
    }
  }
  const ClassSimilarity* sim_fn = built_.class_sims[node.class_id].get();
  RECON_CHECK(sim_fn != nullptr)
      << "No similarity function for class " << node.class_id;
  return sim_fn->Compute(evidence);
}

double FixedPointSolver::CachedSimilarity(NodeId id, Node& node) {
  if (node.forced_merge) return 1.0;  // User-confirmed match.
  if (!node.cache.valid) {
    BuildCacheSummary(id, &node.cache, &stats_->num_inedge_scans);
    ++stats_->num_cache_rebuilds;
  } else {
    stats_->num_inedge_scans_avoided += graph_.in_degree(id);
  }
  return ScoreFromCache(node, node.cache);
}

double FixedPointSolver::ScoreFromCache(const Node& node,
                                        const EvidenceCache& cache) const {
  if (!node.IsRefPair()) {
    return cache.strong_merged > 0 ? 1.0 : node.sim;
  }
  EvidenceSummary evidence;
  for (int e = 0; e < kNumEvidence; ++e) {
    evidence.best[e] = cache.best[e];
  }
  evidence.strong_merged = cache.strong_merged;
  evidence.weak_merged = cache.weak_merged;
  const ClassSimilarity* sim_fn = built_.class_sims[node.class_id].get();
  RECON_CHECK(sim_fn != nullptr)
      << "No similarity function for class " << node.class_id;
  return sim_fn->Compute(evidence);
}

void FixedPointSolver::BuildCacheSummary(NodeId id, EvidenceCache* cache,
                                         int64_t* scans) const {
  const Node& node = graph_.node(id);
  cache->Reset();
  if (!node.IsRefPair()) {
    // Value pairs only care whether *any* strong-boolean neighbor merged;
    // stop at the first, like the uncached path does.
    for (const Edge& e : graph_.in_edges(id)) {
      ++*scans;
      if (e.kind == DependencyKind::kStrongBoolean &&
          graph_.node(e.node).state == NodeState::kMerged) {
        cache->strong_merged = 1;
        break;
      }
    }
    cache->valid = true;
    return;
  }
  for (const StaticReal& entry : graph_.static_real(id)) {
    cache->Offer(entry.type, entry.sim);
  }
  cache->strong_merged = node.static_strong;
  cache->weak_merged = node.static_weak;
  *scans += graph_.in_degree(id);
  for (const Edge& e : graph_.in_edges(id)) {
    const Node& src = graph_.node(e.node);
    if (src.dead) continue;
    switch (e.kind) {
      case DependencyKind::kRealValued:
        if (src.state != NodeState::kNonMerge) {
          cache->Offer(e.evidence, src.sim);
        }
        break;
      case DependencyKind::kStrongBoolean:
        if (src.state == NodeState::kMerged) ++cache->strong_merged;
        break;
      case DependencyKind::kWeakBoolean:
        if (src.state == NodeState::kMerged) ++cache->weak_merged;
        break;
    }
  }
  cache->valid = true;
}

void FixedPointSolver::PushSimDelta(NodeId id, const Node& node) {
  for (const Edge& e : graph_.out_edges(id)) {
    if (e.kind != DependencyKind::kRealValued) continue;
    EvidenceCache& cache = graph_.mutable_node(e.node).cache;
    if (!cache.valid) continue;  // The eventual rebuild reads node.sim.
    cache.Offer(e.evidence, node.sim);
    ++stats_->num_delta_pushes;
  }
}

void FixedPointSolver::PushMergeDelta(NodeId id) {
  for (const Edge& e : graph_.out_edges(id)) {
    if (e.kind == DependencyKind::kRealValued) continue;
    EvidenceCache& cache = graph_.mutable_node(e.node).cache;
    if (!cache.valid) continue;
    if (e.kind == DependencyKind::kStrongBoolean) {
      ++cache.strong_merged;
    } else {
      ++cache.weak_merged;
    }
    ++stats_->num_delta_pushes;
  }
}

void FixedPointSolver::PropagateNegativeEvidence(bool closure_only) {
  std::vector<NodeId> non_merge_nodes;
  for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
    const Node& node = graph_.node(id);
    if (!node.dead && node.IsRefPair() &&
        node.state == NodeState::kNonMerge) {
      non_merge_nodes.push_back(id);
    }
  }
  // A demotion changes the closure only when the demoted node is merged.
  // Both demotion candidates for source (r1, r2) are adjacent to r1 or
  // r2, so when neither reference touches any merged pair the source can
  // be skipped outright in closure-only mode.
  std::vector<char> touches_merge;
  if (closure_only) {
    touches_merge.assign(dataset_.num_references(), 0);
    for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
      const Node& node = graph_.node(id);
      if (!node.dead && node.IsRefPair() &&
          node.state == NodeState::kMerged) {
        touches_merge[node.a] = 1;
        touches_merge[node.b] = 1;
      }
    }
  }
  for (const NodeId lid : non_merge_nodes) {
    const Node& l = graph_.node(lid);
    const RefId r1 = static_cast<RefId>(l.a);
    const RefId r2 = static_cast<RefId>(l.b);
    if (closure_only && !touches_merge[r1] && !touches_merge[r2]) continue;
    // Copy: we only flip states, but keep iteration order stable.
    const auto around_span = graph_.NodesOfRef(r1);
    const std::vector<NodeId> around(around_span.begin(), around_span.end());
    for (const NodeId mid : around) {
      if (mid == lid) continue;
      const Node& m = graph_.node(mid);
      if (m.dead || !m.IsRefPair()) continue;
      const RefId r3 = static_cast<RefId>(m.Other(r1));
      if (r3 == r2) continue;
      const NodeId nid = graph_.FindRefPair(r2, r3);
      if (nid == kInvalidNode) continue;
      const Node& n = graph_.node(nid);
      if (n.dead) continue;
      // Demote the weaker side so r1 and r2 cannot be glued through r3
      // (deterministic tie-break on node id). SetNodeState invalidates
      // dependent caches: a non-merge source no longer contributes
      // real-valued evidence, which matters if the solver is re-entered.
      const NodeId lower =
          (m.sim > n.sim || (m.sim == n.sim && mid < nid)) ? nid : mid;
      graph_.SetNodeState(lower, NodeState::kNonMerge);
    }
  }
}

std::vector<int> FixedPointSolver::Closure(
    std::vector<std::pair<RefId, RefId>>* merged_pairs) const {
  UnionFind closure(dataset_.num_references());
  for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
    const Node& node = graph_.node(id);
    if (node.dead || !node.IsRefPair()) continue;
    if (node.state == NodeState::kMerged) {
      closure.Union(node.a, node.b);
      if (merged_pairs != nullptr) {
        merged_pairs->emplace_back(static_cast<RefId>(node.a),
                                   static_cast<RefId>(node.b));
      }
    }
  }
  // Canonicalize every cluster to its smallest member. Raw union-find
  // representatives depend on union order (union by size), so equivalent
  // merge sequences could label the same partition differently; the
  // minimum member is a stable, order-independent id that byte-identity
  // contracts (src/shard/, incremental flushes) can compare directly.
  std::vector<int> cluster(dataset_.num_references());
  std::vector<int> canonical(dataset_.num_references(), -1);
  for (int i = 0; i < dataset_.num_references(); ++i) {
    const int root = closure.Find(i);
    if (canonical[root] < 0) canonical[root] = i;  // Ascending i: minimum.
    cluster[i] = canonical[root];
  }
  return cluster;
}

}  // namespace recon
