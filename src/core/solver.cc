#include "core/solver.h"

#include <algorithm>

#include "runtime/parallel.h"
#include "sim/class_sim.h"
#include "util/logging.h"
#include "util/timer.h"

namespace recon {

FixedPointSolver::FixedPointSolver(const Dataset& dataset, BuiltGraph& built,
                                   const ReconcilerOptions& options,
                                   ReconcileStats* stats,
                                   BudgetTracker* budget)
    : dataset_(dataset),
      built_(built),
      graph_(*built.graph),
      options_(options),
      stats_(stats),
      own_budget_(budget == nullptr
                      ? std::make_unique<BudgetTracker>(Budget{})
                      : nullptr),
      budget_(budget != nullptr ? budget : own_budget_.get()),
      refs_(dataset.num_references()) {}

void FixedPointSolver::EnqueueNodes(const std::vector<NodeId>& nodes) {
  for (const NodeId id : nodes) {
    Node& node = graph_.mutable_node(id);
    if (node.dead || node.queued || node.state == NodeState::kNonMerge) {
      continue;
    }
    if (node.state == NodeState::kInactive) node.state = NodeState::kActive;
    node.queued = true;
    queue_.push_back(id);
  }
}

bool FixedPointSolver::StopBeforePop(int64_t* iterations,
                                     int64_t iteration_cap) {
  if (budget_->Probe(ProbePoint::kSolveCommit)) return true;
  if (*iterations >= iteration_cap) {
    // The configured budget — or, unconfigured, the convergence safety
    // cap — is spent. Either way this is the degraded-stop path, never an
    // abort: constraints and the closure still run on the frozen state.
    if (!budget_->budget().HasIterationLimit()) {
      RECON_LOG(Warning) << "Fixed point did not converge within the "
                         << iteration_cap
                         << "-iteration safety cap; freezing the solve";
    }
    budget_->ForceStop(StopReason::kIterationBudget);
    return true;
  }
  ++*iterations;
  return false;
}

void FixedPointSolver::Run() {
  const int64_t iteration_cap =
      budget_->budget().HasIterationLimit()
          ? budget_->budget().max_solver_iterations
          : 500LL * std::max(1, graph_.num_nodes()) + 1000;
  merge_cap_ = budget_->budget().HasMergeLimit()
                   ? budget_->budget().max_merges
                   : 0;
  merges_this_run_ = 0;
  int64_t iterations = 0;
  const bool wavefront =
      options_.parallel_fixed_point &&
      runtime::ResolveNumThreads(options_.num_threads) > 1;
  if (!wavefront) {
    // The whole sequential drain is one "round" for probing purposes; the
    // per-pop kSolveCommit probes inside the loop carry the budget checks.
    budget_->Probe(ProbePoint::kSolveRound);
    Timer timer;
    while (!queue_.empty()) {
      if (StopBeforePop(&iterations, iteration_cap)) break;
      Step(queue_.pop_front());
    }
    stats_->solve_commit_seconds += timer.ElapsedSeconds();
    stats_->solver_iterations += iterations;
    stats_->stop_reason = budget_->stop_reason();
    return;
  }

  const size_t min_frontier =
      static_cast<size_t>(std::max(1, options_.parallel_frontier_min));
  while (!queue_.empty()) {
    if (budget_->Probe(ProbePoint::kSolveRound)) break;
    if (queue_.size() >= min_frontier) {
      if (!RunWavefrontRound(&iterations, iteration_cap)) break;
    } else {
      // Short queue: a round would cost more in dispatch than it saves.
      // Drain serially until the queue refills (a propagation wave fanning
      // out) or empties. Identical semantics either way.
      Timer timer;
      bool frozen = false;
      while (!queue_.empty() && queue_.size() < min_frontier) {
        if (StopBeforePop(&iterations, iteration_cap)) {
          frozen = true;
          break;
        }
        Step(queue_.pop_front());
      }
      stats_->solve_commit_seconds += timer.ElapsedSeconds();
      if (frozen) break;
    }
  }
  stats_->solver_iterations += iterations;
  stats_->stop_reason = budget_->stop_reason();
}

bool FixedPointSolver::RunWavefrontRound(int64_t* iterations,
                                         int64_t iteration_cap) {
  if (++round_id_ == 0) ++round_id_;  // 0 marks "no record"; skip on wrap.
  const size_t max_frontier = static_cast<size_t>(
      std::max(options_.parallel_frontier_min, options_.parallel_frontier_max));
  const size_t frontier_size = std::min(queue_.size(), max_frontier);
  frontier_.resize(frontier_size);
  for (size_t i = 0; i < frontier_size; ++i) frontier_[i] = queue_[i];
  if (records_.size() < frontier_size) records_.resize(frontier_size);
  const size_t num_nodes = static_cast<size_t>(graph_.num_nodes());
  if (record_round_.size() < num_nodes) {
    record_round_.resize(num_nodes, 0);
    record_index_.resize(num_nodes, 0);
  }

  // Phase 1 — parallel score: a pure read of the graph frozen at the
  // snapshot. Each block writes only its own frontier slots, so the phase
  // is race-free and the records are independent of the block -> thread
  // assignment.
  Timer score_timer;
  runtime::ParallelForBlocked(
      options_.num_threads, 0, static_cast<int64_t>(frontier_size),
      /*grain=*/-1, [this](const runtime::Block& block) {
        for (int64_t i = block.begin; i < block.end; ++i) {
          // Cancellation / deadline probe inside the pool (read-only, no
          // counter mutation): scores are speculative, so abandoning them
          // affects wall time only — the serial check below guarantees no
          // abandoned record is ever consumed.
          if ((i - block.begin) % 64 == 0 &&
              budget_->ShouldAbandonParallelWork()) {
            return;
          }
          ScoreNode(frontier_[static_cast<size_t>(i)],
                    &records_[static_cast<size_t>(i)]);
        }
      });
  const double score_seconds = score_timer.ElapsedSeconds();
  if (budget_->ShouldAbandonParallelWork()) {
    // A pool thread (or this one) observed cancellation or the deadline:
    // some records may be unscored. Nothing was committed and nothing was
    // popped, so freezing here keeps the whole frontier queued. Both
    // conditions are sticky/monotone, so the serial re-check always
    // agrees with whatever the workers saw.
    budget_->ResolveAsyncStop();
    return false;
  }
  for (size_t i = 0; i < frontier_size; ++i) {
    record_round_[frontier_[i]] = round_id_;
    record_index_[frontier_[i]] = static_cast<uint32_t>(i);
  }

  // Phase 2 — serial commit in exact sequential order: pop from the live
  // queue (which interleaves queue-jumping nodes enqueued by commits with
  // the rest of the frontier) until every snapshot member has been popped.
  // Nodes without a live record — jumped in mid-round or re-activated
  // after their pop — take the ordinary serial Step.
  const int64_t hits_before = stats_->num_score_hits;
  const int64_t rescores_before = stats_->num_serial_rescores;
  const int64_t discards_before = stats_->num_score_discards;
  Timer commit_timer;
  size_t committed = 0;
  bool frozen = false;
  while (committed < frontier_size) {
    if (StopBeforePop(iterations, iteration_cap)) {
      // Freeze mid-round: uncommitted frontier nodes stay queued; their
      // stale records are never consumed (a future round re-stamps). The
      // commit prefix equals the sequential drain's, so iteration- and
      // merge-budget stops stay byte-identical at every thread count.
      frozen = true;
      break;
    }
    const NodeId id = queue_.pop_front();
    if (record_round_[id] == round_id_) {
      record_round_[id] = 0;
      ++committed;
      StepWithRecord(id, records_[record_index_[id]]);
    } else {
      Step(id);
    }
  }
  const double commit_seconds = commit_timer.ElapsedSeconds();

  ++stats_->num_solver_rounds;
  stats_->num_parallel_scored += static_cast<int64_t>(frontier_size);
  stats_->solve_score_seconds += score_seconds;
  stats_->solve_commit_seconds += commit_seconds;
  stats_->solve_rounds.push_back(
      {static_cast<int64_t>(frontier_size),
       stats_->num_score_hits - hits_before,
       stats_->num_serial_rescores - rescores_before,
       stats_->num_score_discards - discards_before, score_seconds,
       commit_seconds});
  return !frozen;
}

void FixedPointSolver::ScoreNode(NodeId id, ScoreRecord* rec) const {
  const Node& node = graph_.node(id);
  rec->gen = node.gen;
  rec->scans = 0;
  rec->avoided = 0;
  rec->rebuilt = false;
  rec->score = node.sim;
  // Dead and demoted nodes are skipped at commit before the score is read.
  if (node.dead || node.state == NodeState::kNonMerge) return;
  if (node.forced_merge) {
    rec->score = 1.0;  // Matches both serial paths: no scans, no rebuild.
    return;
  }
  if (options_.evidence_cache) {
    if (!node.cache.valid) {
      rec->rebuilt = true;
      BuildCacheSummary(node, &rec->cache, &rec->scans);
      rec->score = ScoreFromCache(node, rec->cache);
    } else {
      rec->avoided = static_cast<int64_t>(node.in.size());
      rec->score = ScoreFromCache(node, node.cache);
    }
    return;
  }
  rec->score = ComputeSimilarity(node, &rec->scans);
}

void FixedPointSolver::Step(NodeId id) {
  Node& node = graph_.mutable_node(id);
  node.queued = false;
  if (node.dead || node.state == NodeState::kNonMerge) return;
  if (node.state == NodeState::kActive) node.state = NodeState::kInactive;
  const double computed =
      options_.evidence_cache
          ? CachedSimilarity(node)
          : ComputeSimilarity(node, &stats_->num_inedge_scans);
  Commit(id, node, computed);
}

void FixedPointSolver::StepWithRecord(NodeId id, const ScoreRecord& rec) {
  Node& node = graph_.mutable_node(id);
  node.queued = false;
  if (node.dead || node.state == NodeState::kNonMerge) {
    ++stats_->num_score_discards;  // Folded or demoted since the snapshot.
    return;
  }
  if (node.state == NodeState::kActive) node.state = NodeState::kInactive;
  double computed;
  if (node.gen == rec.gen) {
    // No input changed since the parallel score: the recorded value and
    // stat deltas are exactly what the serial computation would produce.
    ++stats_->num_score_hits;
    computed = rec.score;
    stats_->num_inedge_scans += rec.scans;
    stats_->num_inedge_scans_avoided += rec.avoided;
    if (rec.rebuilt) {
      ++stats_->num_cache_rebuilds;
      node.cache = rec.cache;
    }
  } else {
    // An earlier commit of this round mutated an input; the parallel
    // score is stale. Re-score serially against current state.
    ++stats_->num_serial_rescores;
    computed = options_.evidence_cache
                   ? CachedSimilarity(node)
                   : ComputeSimilarity(node, &stats_->num_inedge_scans);
  }
  Commit(id, node, computed);
}

void FixedPointSolver::Commit(NodeId id, Node& node, double computed) {
  ++stats_->num_recomputations;
  const double old_sim = node.sim;
  // Similarities are monotone non-decreasing (§3.2 termination).
  if (computed > node.sim) node.sim = static_cast<float>(computed);
  const bool increased = node.sim > old_sim + options_.params.epsilon;

  // Any raise — even one below epsilon, which re-activates nobody — must
  // reach dependents' caches and generation stamps: a full rescan reads
  // current sims, so both have to as well.
  if (node.sim > old_sim) {
    for (const Edge& e : node.out) {
      if (e.kind == DependencyKind::kRealValued) {
        ++graph_.mutable_node(e.node).gen;
      }
    }
    if (options_.evidence_cache) PushSimDelta(node);
  }

  if (increased && options_.propagation) {
    for (const Edge& e : node.out) {
      if (e.kind == DependencyKind::kRealValued) Enqueue(e.node, false);
    }
  }

  const double threshold = node.IsRefPair()
                               ? options_.params.merge_threshold
                               : options_.params.value_merge_threshold;
  if (node.sim >= threshold && node.state != NodeState::kMerged) {
    node.state = NodeState::kMerged;
    ++stats_->num_merges;
    ++merges_this_run_;
    if (merge_cap_ > 0 && merges_this_run_ >= merge_cap_) {
      // The budget is spent, but this commit — deltas, propagation
      // pushes, enrichment — still completes: it is one deterministic
      // unit. The drain freezes before the next pop.
      budget_->ForceStop(StopReason::kMergeBudget);
    }
    for (const Edge& e : node.out) {
      if (e.kind != DependencyKind::kRealValued) {
        ++graph_.mutable_node(e.node).gen;  // Boolean counts changed.
      }
    }
    if (options_.evidence_cache) PushMergeDelta(node);
    if (options_.propagation) {
      // Strong-boolean dependents jump the queue (§3.2 heuristics).
      for (const Edge& e : node.out) {
        if (e.kind == DependencyKind::kStrongBoolean) {
          Enqueue(e.node, options_.strong_neighbors_jump_queue);
        }
      }
      for (const Edge& e : node.out) {
        if (e.kind == DependencyKind::kWeakBoolean) Enqueue(e.node, false);
      }
    }
    if (node.IsRefPair() && options_.enrichment) {
      EnrichReferences(id);
    }
  }
}

void FixedPointSolver::EnrichReferences(NodeId id) {
  // Capture the pair first; MergeReferences does not add nodes but the
  // node reference would alias mutable graph state.
  const RefId a = static_cast<RefId>(graph_.node(id).a);
  const RefId b = static_cast<RefId>(graph_.node(id).b);
  const int keep = refs_.Union(a, b);
  const RefId gone = (keep == a) ? b : a;
  MergeRefsResult result = graph_.MergeReferences(keep, gone);
  stats_->num_folds += static_cast<int64_t>(result.folded.size());
  for (const NodeId m : result.gained_inputs) Enqueue(m, false);
}

void FixedPointSolver::Enqueue(NodeId id, bool front) {
  Node& node = graph_.mutable_node(id);
  if (node.dead || node.queued || node.state == NodeState::kNonMerge) {
    return;
  }
  if (node.sim >= 1.0f) return;  // Cannot increase further (§3.2).
  node.queued = true;
  if (node.state == NodeState::kInactive) node.state = NodeState::kActive;
  if (front) {
    queue_.push_front(id);
  } else {
    queue_.push_back(id);
  }
}

double FixedPointSolver::ComputeSimilarity(const Node& node,
                                           int64_t* scans) const {
  if (node.forced_merge) return 1.0;  // User-confirmed match.
  if (!node.IsRefPair()) {
    // Value pairs: initial string similarity, lifted to 1 when a merged
    // strong-boolean neighbor certifies the values denote one entity
    // (Fig. 2's n6 after the venues merge).
    double sim = node.sim;
    for (const Edge& e : node.in) {
      ++*scans;
      if (e.kind == DependencyKind::kStrongBoolean &&
          graph_.node(e.node).state == NodeState::kMerged) {
        sim = 1.0;
        break;
      }
    }
    return sim;
  }

  EvidenceSummary evidence;
  for (const auto& [type, sim] : node.static_real) {
    evidence.Offer(type, sim);
  }
  evidence.strong_merged = node.static_strong;
  evidence.weak_merged = node.static_weak;
  *scans += static_cast<int64_t>(node.in.size());
  for (const Edge& e : node.in) {
    const Node& src = graph_.node(e.node);
    if (src.dead) continue;
    switch (e.kind) {
      case DependencyKind::kRealValued:
        if (src.state != NodeState::kNonMerge) {
          evidence.Offer(e.evidence, src.sim);
        }
        break;
      case DependencyKind::kStrongBoolean:
        if (src.state == NodeState::kMerged) ++evidence.strong_merged;
        break;
      case DependencyKind::kWeakBoolean:
        if (src.state == NodeState::kMerged) ++evidence.weak_merged;
        break;
    }
  }
  const ClassSimilarity* sim_fn = built_.class_sims[node.class_id].get();
  RECON_CHECK(sim_fn != nullptr)
      << "No similarity function for class " << node.class_id;
  return sim_fn->Compute(evidence);
}

double FixedPointSolver::CachedSimilarity(Node& node) {
  if (node.forced_merge) return 1.0;  // User-confirmed match.
  if (!node.cache.valid) {
    BuildCacheSummary(node, &node.cache, &stats_->num_inedge_scans);
    ++stats_->num_cache_rebuilds;
  } else {
    stats_->num_inedge_scans_avoided += static_cast<int64_t>(node.in.size());
  }
  return ScoreFromCache(node, node.cache);
}

double FixedPointSolver::ScoreFromCache(const Node& node,
                                        const EvidenceCache& cache) const {
  if (!node.IsRefPair()) {
    return cache.strong_merged > 0 ? 1.0 : node.sim;
  }
  EvidenceSummary evidence;
  for (int e = 0; e < kNumEvidence; ++e) {
    evidence.best[e] = cache.best[e];
  }
  evidence.strong_merged = cache.strong_merged;
  evidence.weak_merged = cache.weak_merged;
  const ClassSimilarity* sim_fn = built_.class_sims[node.class_id].get();
  RECON_CHECK(sim_fn != nullptr)
      << "No similarity function for class " << node.class_id;
  return sim_fn->Compute(evidence);
}

void FixedPointSolver::BuildCacheSummary(const Node& node,
                                         EvidenceCache* cache,
                                         int64_t* scans) const {
  cache->Reset();
  if (!node.IsRefPair()) {
    // Value pairs only care whether *any* strong-boolean neighbor merged;
    // stop at the first, like the uncached path does.
    for (const Edge& e : node.in) {
      ++*scans;
      if (e.kind == DependencyKind::kStrongBoolean &&
          graph_.node(e.node).state == NodeState::kMerged) {
        cache->strong_merged = 1;
        break;
      }
    }
    cache->valid = true;
    return;
  }
  for (const auto& [type, sim] : node.static_real) {
    cache->Offer(type, sim);
  }
  cache->strong_merged = node.static_strong;
  cache->weak_merged = node.static_weak;
  *scans += static_cast<int64_t>(node.in.size());
  for (const Edge& e : node.in) {
    const Node& src = graph_.node(e.node);
    if (src.dead) continue;
    switch (e.kind) {
      case DependencyKind::kRealValued:
        if (src.state != NodeState::kNonMerge) {
          cache->Offer(e.evidence, src.sim);
        }
        break;
      case DependencyKind::kStrongBoolean:
        if (src.state == NodeState::kMerged) ++cache->strong_merged;
        break;
      case DependencyKind::kWeakBoolean:
        if (src.state == NodeState::kMerged) ++cache->weak_merged;
        break;
    }
  }
  cache->valid = true;
}

void FixedPointSolver::PushSimDelta(const Node& node) {
  for (const Edge& e : node.out) {
    if (e.kind != DependencyKind::kRealValued) continue;
    EvidenceCache& cache = graph_.mutable_node(e.node).cache;
    if (!cache.valid) continue;  // The eventual rebuild reads node.sim.
    cache.Offer(e.evidence, node.sim);
    ++stats_->num_delta_pushes;
  }
}

void FixedPointSolver::PushMergeDelta(const Node& node) {
  for (const Edge& e : node.out) {
    if (e.kind == DependencyKind::kRealValued) continue;
    EvidenceCache& cache = graph_.mutable_node(e.node).cache;
    if (!cache.valid) continue;
    if (e.kind == DependencyKind::kStrongBoolean) {
      ++cache.strong_merged;
    } else {
      ++cache.weak_merged;
    }
    ++stats_->num_delta_pushes;
  }
}

void FixedPointSolver::PropagateNegativeEvidence(bool closure_only) {
  std::vector<NodeId> non_merge_nodes;
  for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
    const Node& node = graph_.node(id);
    if (!node.dead && node.IsRefPair() &&
        node.state == NodeState::kNonMerge) {
      non_merge_nodes.push_back(id);
    }
  }
  // A demotion changes the closure only when the demoted node is merged.
  // Both demotion candidates for source (r1, r2) are adjacent to r1 or
  // r2, so when neither reference touches any merged pair the source can
  // be skipped outright in closure-only mode.
  std::vector<char> touches_merge;
  if (closure_only) {
    touches_merge.assign(dataset_.num_references(), 0);
    for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
      const Node& node = graph_.node(id);
      if (!node.dead && node.IsRefPair() &&
          node.state == NodeState::kMerged) {
        touches_merge[node.a] = 1;
        touches_merge[node.b] = 1;
      }
    }
  }
  for (const NodeId lid : non_merge_nodes) {
    const Node& l = graph_.node(lid);
    const RefId r1 = static_cast<RefId>(l.a);
    const RefId r2 = static_cast<RefId>(l.b);
    if (closure_only && !touches_merge[r1] && !touches_merge[r2]) continue;
    // Copy: we only flip states, but keep iteration order stable.
    const std::vector<NodeId> around = graph_.NodesOfRef(r1);
    for (const NodeId mid : around) {
      if (mid == lid) continue;
      const Node& m = graph_.node(mid);
      if (m.dead || !m.IsRefPair()) continue;
      const RefId r3 = static_cast<RefId>(m.Other(r1));
      if (r3 == r2) continue;
      const NodeId nid = graph_.FindRefPair(r2, r3);
      if (nid == kInvalidNode) continue;
      const Node& n = graph_.node(nid);
      if (n.dead) continue;
      // Demote the weaker side so r1 and r2 cannot be glued through r3
      // (deterministic tie-break on node id). SetNodeState invalidates
      // dependent caches: a non-merge source no longer contributes
      // real-valued evidence, which matters if the solver is re-entered.
      const NodeId lower =
          (m.sim > n.sim || (m.sim == n.sim && mid < nid)) ? nid : mid;
      graph_.SetNodeState(lower, NodeState::kNonMerge);
    }
  }
}

std::vector<int> FixedPointSolver::Closure(
    std::vector<std::pair<RefId, RefId>>* merged_pairs) const {
  UnionFind closure(dataset_.num_references());
  for (NodeId id = 0; id < graph_.num_nodes(); ++id) {
    const Node& node = graph_.node(id);
    if (node.dead || !node.IsRefPair()) continue;
    if (node.state == NodeState::kMerged) {
      closure.Union(node.a, node.b);
      if (merged_pairs != nullptr) {
        merged_pairs->emplace_back(static_cast<RefId>(node.a),
                                   static_cast<RefId>(node.b));
      }
    }
  }
  std::vector<int> cluster(dataset_.num_references());
  for (int i = 0; i < dataset_.num_references(); ++i) {
    cluster[i] = closure.Find(i);
  }
  return cluster;
}

}  // namespace recon
