// Reconciler configuration, including the ablation switches that define the
// paper's experimental variants (Table 5 / Figure 6).

#ifndef RECON_CORE_OPTIONS_H_
#define RECON_CORE_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/params.h"
#include "util/budget.h"

namespace recon {

/// User feedback on specific reference pairs (paper §7: "use user feedback
/// to adjust similarity functions and improve future reconciliation").
/// Confirmed matches act like key-attribute equality; confirmed
/// non-matches become non-merge constraints, with all of §3.4's negative
/// propagation applied to them.
struct Feedback {
  std::vector<std::pair<int32_t, int32_t>> same;
  std::vector<std::pair<int32_t, int32_t>> distinct;

  bool empty() const { return same.empty() && distinct.empty(); }
};

/// Cumulative evidence levels of the component-contribution study (§5.3).
/// Each level includes everything below it.
enum class EvidenceLevel {
  kAttrWise = 0,  ///< Same-attribute comparisons only (names, emails, ...).
  kNameEmail,     ///< + cross-attribute name vs email evidence.
  kArticle,       ///< + article <-> person and article <-> venue wiring.
  kContact,       ///< + common coAuthor / emailContact weak evidence.
};

/// Execution modes of Table 5, as two orthogonal switches:
///   TRADITIONAL = {false, false}, PROPAGATION = {true, false},
///   MERGE = {false, true}, FULL = {true, true}.
struct ReconcilerOptions {
  EvidenceLevel evidence_level = EvidenceLevel::kContact;

  /// Reconciliation propagation (§3.2): re-activate dependent nodes when a
  /// similarity increases or a pair merges. Off = one pass in dependency
  /// order.
  bool propagation = true;

  /// Reference enrichment (§3.3): fold the pair nodes of merged references
  /// so attribute values and evidence accumulate.
  bool enrichment = true;

  /// Negative evidence (§3.4): non-merge constraints and their
  /// post-fixpoint propagation.
  bool constraints = true;

  /// Similarity parameters (thresholds, weights, beta/gamma).
  SimParams params;

  /// User-confirmed matches and non-matches, injected into the graph as
  /// merged / non-merge nodes before the fixed point.
  Feedback feedback;

  /// Key-attribute pre-merging (§3.4): collapse Person references sharing
  /// an email address before building the graph. A large speedup on
  /// email-heavy datasets, and required for very popular entities whose
  /// raw blocks would be unmanageable. Applies to IndepDec as well (equal
  /// emails are a key under either algorithm).
  bool premerge_equal_emails = true;

  /// Delta-propagated evidence caching in the fixed-point solver (DESIGN.md
  /// §8): each node keeps its evidence summary cached; a neighbor's sim
  /// rise or merge pushes a delta along the out-edges instead of the
  /// dependent rescanning every in-edge on recomputation. Graph surgery
  /// invalidates affected caches, which then rescan exactly once. Output is
  /// byte-identical either way; off = the straightforward full rescan.
  bool evidence_cache = true;

  /// Interned value store with precomputed similarity features (DESIGN.md
  /// §11): every distinct attribute value is analyzed once — parsed,
  /// lowercased, tokenized, n-grammed — at graph-build time, and all
  /// comparators run over the shared read-only features instead of raw
  /// strings; a bounded pairwise similarity memo sits on top. Output is
  /// byte-identical on or off at every thread count; off = per-call raw
  /// string analysis with small per-lane caches.
  bool value_store = true;

  /// Byte bound for the pairwise similarity memo (only read when
  /// value_store is on). The effective bound is the minimum of this and the
  /// headroom under Budget::soft_max_memory_bytes; a bound too small to be
  /// useful turns the memo into a pass-through (never an abort).
  int64_t sim_memo_max_bytes = int64_t{64} << 20;

  /// Queue discipline (§3.2): when a pair merges, its strong-boolean
  /// dependents are inserted at the *front* of the queue. Off = FIFO for
  /// everything; exposed for the queue-discipline ablation bench.
  bool strong_neighbors_jump_queue = true;

  /// Candidate generation: blocks larger than this are skipped (their key
  /// is too common to be discriminative).
  int max_block_size = 1000;
  /// Use canopy clustering (McCallum et al. [27]) instead of inverted-index
  /// blocking for candidate generation (see core/canopy.h).
  bool use_canopies = false;
  /// Canopy thresholds (only read when use_canopies is set); see
  /// core/canopy.h for semantics.
  double canopy_loose_threshold = 0.15;
  double canopy_tight_threshold = 0.55;
  int max_canopy_size = 2000;
  /// Disable blocking entirely (all same-class pairs become candidates).
  /// Only sensible for small datasets and the blocking ablation bench.
  bool use_blocking = true;
  /// Association wiring skips pairs whose contact-list cross product
  /// exceeds this bound (guards against mailing-list-like references).
  int max_assoc_cross = 20000;

  /// Threads for the parallel phases (candidate generation, canopy feature
  /// extraction, pairwise scoring during graph build, and — when
  /// parallel_fixed_point is on — the solve phase's wavefront scoring):
  /// 0 = all hardware threads, 1 = run everything on the calling thread.
  /// Output is identical for every value (see runtime/parallel.h and
  /// DESIGN.md §9).
  int num_threads = 1;

  /// Canopy-sharded reconciliation (src/shard/, DESIGN.md §14): partition
  /// the references by blocking key into this many shards, stage every
  /// intra-shard candidate pair's evidence shard-parallel on the runtime
  /// pool (per-shard budget epochs), stage the cross-shard pairs in a
  /// boundary pass, then solve in the single canonical order — output is
  /// byte-identical to the monolithic run for every shard and thread
  /// count. 1 (default) = the monolithic staging layout. Only honored by
  /// entry points that route through shard::ShardedReconcile
  /// (reconcile_cli --shards, bench/perf_shard, tests); Reconciler::Run
  /// itself never shards.
  int num_shards = 1;

  /// Parallel wavefront execution of the fixed-point solve (DESIGN.md §9):
  /// each round snapshots the active queue, recomputes the frontier's
  /// similarities in parallel (a pure read), then applies merges,
  /// enrichment, and graph surgery serially in exact sequential queue
  /// order; scores whose inputs were mutated by an earlier commit in the
  /// same round are detected by generation stamps and re-scored serially.
  /// Takes effect only when num_threads resolves to more than one thread;
  /// output is byte-identical to the sequential drain either way. Off =
  /// always drain one node at a time.
  bool parallel_fixed_point = true;

  /// Queues shorter than this run serially even under parallel_fixed_point:
  /// dispatching a round on a near-empty frontier costs more than it saves.
  /// Exposed mainly so tests can force rounds on tiny graphs.
  int parallel_frontier_min = 256;

  /// A round's frontier is at most this many nodes (the head of the queue).
  /// Scoring the whole queue at once wastes most of the parallel work on
  /// long queues: the first commits' merges fold or re-stamp nodes far
  /// behind them, so late-queue scores arrive dead or stale. Chunking keeps
  /// scoring close to commit time. The boundary depends only on queue
  /// length, never on the thread count, so counters stay deterministic.
  int parallel_frontier_max = 8192;

  /// Execution budget for one run (one batch Run() or one incremental
  /// Flush()): wall-clock deadline, solver iteration and merge limits,
  /// soft memory cap. Default = unlimited. Exhaustion never aborts: the
  /// pipeline freezes the solve at the next probe point, still enforces
  /// constraints and computes the transitive closure, and reports the
  /// StopReason in ReconcileStats (DESIGN.md §10). Iteration/merge-budget
  /// stops are byte-identical at every thread count; deadline stops are
  /// wall-clock-dependent by nature.
  Budget budget;

  /// Optional cooperative cancellation: the caller keeps the token and may
  /// RequestCancel() from any thread; the run degrades to a valid partial
  /// partition at its next probe point (StopReason::kCancelled).
  std::shared_ptr<CancellationToken> cancel;

  /// Test-only seam: observes every budget probe and may inject stops
  /// deterministically (util/fault_injection.h). Leave null in production.
  std::shared_ptr<ProbeHook> probe_hook;

  /// Returns the DepGraph configuration (the paper's full algorithm).
  static ReconcilerOptions DepGraph() { return ReconcilerOptions{}; }

  /// Returns the IndepDec configuration: attribute-wise evidence, one pass,
  /// no enrichment, no constraints — the "candidate standard reference
  /// reconciliation approach" of §5.2.
  static ReconcilerOptions IndepDec() {
    ReconcilerOptions options;
    options.evidence_level = EvidenceLevel::kAttrWise;
    options.propagation = false;
    options.enrichment = false;
    options.constraints = false;
    return options;
  }
};

}  // namespace recon

#endif  // RECON_CORE_OPTIONS_H_
