// Similarity-parameter tuning from labeled data (paper §4: "training
// data, when available, can be used to learn or tune similarity functions
// for specific classes", and §7's learning direction).
//
// A seeded local random search over the SimParams leaf weights and
// boolean-evidence parameters, scored by pairwise F-measure on a labeled
// training dataset. Deliberately simple: the dependency-graph framework is
// the contribution; the tuner shows the parameters are learnable, not that
// search is clever.

#ifndef RECON_CORE_TUNER_H_
#define RECON_CORE_TUNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.h"
#include "model/dataset.h"

namespace recon {

/// Search configuration.
struct TunerOptions {
  uint64_t seed = 1;
  /// Candidate evaluations (each is a full reconciliation run).
  int iterations = 25;
  /// Relative perturbation magnitude per tunable.
  double mutation_scale = 0.20;
  /// Class whose pairwise F-measure is maximized.
  std::string target_class = "Person";
};

/// Search outcome.
struct TunerReport {
  SimParams best_params;
  double initial_f1 = 0;
  double best_f1 = 0;
  /// Best-so-far F after each evaluation (length == iterations).
  std::vector<double> history;
};

/// Tunes `base.params` on `train` (which must carry gold labels) and
/// returns the best parameters found. `base`'s algorithm switches
/// (evidence level, propagation, ...) are held fixed.
TunerReport TuneParams(const Dataset& train, const ReconcilerOptions& base,
                       const TunerOptions& tuner_options);

}  // namespace recon

#endif  // RECON_CORE_TUNER_H_
