// Key-attribute pre-merging — the paper's §3.4 closing optimization:
// "the dependency graph can be pruned at the very beginning using
// inexpensive reference comparisons, e.g., merging Person references that
// have the same email address. This preprocessing can significantly reduce
// the size of the dependency graph."
//
// Besides speed, pre-merging is what keeps extremely popular entities
// (the dataset owner appears in almost every message) tractable: their
// thousands of references collapse into one enriched reference before any
// pairwise comparison happens.

#ifndef RECON_CORE_PREMERGE_H_
#define RECON_CORE_PREMERGE_H_

#include <vector>

#include "core/schema_binding.h"
#include "model/dataset.h"
#include "util/union_find.h"

namespace recon {

/// A condensed dataset and the mapping back to the original references.
struct PremergeResult {
  Dataset condensed;
  /// Original reference id -> condensed reference id.
  std::vector<RefId> condensed_of;
  /// Condensed reference id -> smallest original member id.
  std::vector<RefId> original_rep;
};

/// Groups Person references sharing an email address (case-insensitive)
/// into single enriched references: atomic values are unioned, association
/// links are remapped to condensed ids. References of other classes are
/// passed through (with associations remapped). The first member's gold
/// label and provenance are kept.
PremergeResult PremergeEqualEmails(const Dataset& dataset,
                                   const SchemaBinding& binding);

/// Condenses `dataset` by the disjoint sets of `groups` (a union-find over
/// its reference ids): each set becomes one enriched reference with unioned
/// atomic values and associations remapped to condensed ids (self-links
/// dropped). Condensed ids are assigned in ascending order of each set's
/// smallest member, so original_rep is strictly increasing — a clustering of
/// the condensed dataset whose representatives are smallest condensed
/// members therefore expands (ExpandClusters) to smallest-original-member
/// representatives. The email premerge and the sharded reconciler's
/// fold-and-residual pass (src/shard/) are both built on this.
PremergeResult CondenseByGroups(const Dataset& dataset, UnionFind& groups);

/// Lifts a clustering of the condensed dataset back to the original
/// references, with canonical representatives drawn from the original ids.
std::vector<int> ExpandClusters(const PremergeResult& premerge,
                                const std::vector<int>& condensed_clusters);

}  // namespace recon

#endif  // RECON_CORE_PREMERGE_H_
