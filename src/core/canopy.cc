#include "core/canopy.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "runtime/parallel.h"
#include "util/logging.h"

namespace recon {

namespace {

uint64_t PackPair(RefId a, RefId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

/// Per-class cheap-feature index: references as sets of token ids with
/// IDF weights, plus an inverted index for sparse similarity queries.
struct FeatureIndex {
  std::vector<RefId> refs;                     // Class members, id order.
  std::vector<std::vector<int>> tokens_of;     // Parallel to refs.
  std::vector<std::vector<int>> refs_of_token; // Inverted (local indices).
  std::vector<double> idf;                     // Per token id.
  std::vector<double> norm;                    // Per ref: sum of idf.
};

FeatureIndex BuildIndex(const Dataset& dataset,
                        const SchemaBinding& binding, int class_id,
                        int num_threads, BudgetTracker* budget,
                        const ValuePool* pool, const ValueStore* store) {
  FeatureIndex index;
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    if (dataset.reference(id).class_id() == class_id) {
      index.refs.push_back(id);
    }
  }
  // Key extraction (string parsing) is the expensive part; run it in
  // parallel, one slot per reference. Token-id interning stays serial in
  // member order, so ids are identical for every thread count. An
  // abandoned slot just contributes no tokens (cancel / deadline already
  // decided the run).
  std::vector<std::vector<std::string>> keys_of(index.refs.size());
  runtime::ParallelFor(num_threads, 0,
                       static_cast<int64_t>(index.refs.size()),
                       /*grain=*/256, [&](int64_t local) {
                         if (budget != nullptr && (local % 256) == 0 &&
                             budget->ShouldAbandonParallelWork()) {
                           return;
                         }
                         keys_of[local] = BlockingKeys(
                             dataset, index.refs[local], binding, pool,
                             store);
                       });
  if (budget != nullptr) budget->ResolveAsyncStop();
  std::unordered_map<std::string, int> token_ids;
  for (std::vector<std::string>& keys : keys_of) {
    std::vector<int> tokens;
    for (const std::string& key : keys) {
      auto [it, inserted] =
          token_ids.try_emplace(key, static_cast<int>(token_ids.size()));
      tokens.push_back(it->second);
    }
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    index.tokens_of.push_back(std::move(tokens));
  }

  const int num_tokens = static_cast<int>(token_ids.size());
  std::vector<int> df(num_tokens, 0);
  index.refs_of_token.resize(num_tokens);
  for (size_t local = 0; local < index.refs.size(); ++local) {
    for (const int token : index.tokens_of[local]) {
      ++df[token];
      index.refs_of_token[token].push_back(static_cast<int>(local));
    }
  }
  index.idf.resize(num_tokens);
  const double n = std::max<size_t>(1, index.refs.size());
  for (int t = 0; t < num_tokens; ++t) {
    index.idf[t] = std::log(1.0 + n / (1.0 + df[t]));
  }
  index.norm.resize(index.refs.size());
  for (size_t local = 0; local < index.refs.size(); ++local) {
    double total = 0;
    for (const int token : index.tokens_of[local]) total += index.idf[token];
    index.norm[local] = total;
  }
  return index;
}

}  // namespace

CandidateList GenerateCanopyCandidates(const Dataset& dataset,
                                       const SchemaBinding& binding,
                                       const CanopyOptions& options,
                                       BudgetTracker* budget,
                                       const ValuePool* pool,
                                       const ValueStore* store) {
  RECON_CHECK_GE(options.tight_threshold, options.loose_threshold);
  CandidateList out;
  std::unordered_set<uint64_t> seen;
  bool stopped = false;

  for (int class_id = 0;
       class_id < dataset.schema().num_classes() && !stopped; ++class_id) {
    const FeatureIndex index =
        BuildIndex(dataset, binding, class_id, options.num_threads, budget,
                   pool, store);
    const size_t n = index.refs.size();
    std::vector<char> removed(n, 0);  // Within tight threshold of a center.
    std::vector<double> shared(n, 0.0);
    std::vector<int> touched;

    for (size_t center = 0; center < n; ++center) {
      if (removed[center]) continue;
      // One probe per canopy center; a stop truncates the sweep to a
      // prefix of the deterministic center order.
      if (budget != nullptr && budget->Probe(ProbePoint::kCanopy)) {
        stopped = true;
        break;
      }
      // Sparse IDF-weighted overlap with every reference sharing a token.
      touched.clear();
      for (const int token : index.tokens_of[center]) {
        for (const int other : index.refs_of_token[token]) {
          if (shared[other] == 0.0) touched.push_back(other);
          shared[other] += index.idf[token];
        }
      }
      // Collect the canopy.
      std::vector<int> canopy;
      for (const int other : touched) {
        // Overlap coefficient in IDF mass: shared / min(norms).
        const double denom =
            std::max(1e-9, std::min(index.norm[center], index.norm[other]));
        const double sim = shared[other] / denom;
        shared[other] = 0.0;
        if (static_cast<size_t>(other) == center) {
          continue;
        }
        if (sim >= options.loose_threshold) {
          canopy.push_back(other);
          if (sim >= options.tight_threshold) removed[other] = 1;
        }
      }
      removed[center] = 1;
      if (static_cast<int>(canopy.size()) + 1 > options.max_canopy_size) {
        continue;  // Ubiquitous-feature canopy: skip, like huge blocks.
      }
      // Pairs: center with members, and members among themselves.
      canopy.push_back(static_cast<int>(center));
      for (size_t i = 0; i < canopy.size(); ++i) {
        for (size_t j = i + 1; j < canopy.size(); ++j) {
          const RefId a = index.refs[canopy[i]];
          const RefId b = index.refs[canopy[j]];
          if (seen.insert(PackPair(a, b)).second) {
            out.emplace_back(std::min(a, b), std::max(a, b));
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace recon
