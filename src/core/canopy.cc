#include "core/canopy.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "runtime/parallel.h"
#include "util/logging.h"

namespace recon {

namespace {

/// Per-class cheap-feature index: references as sets of token ids with
/// IDF weights, plus an inverted index for sparse similarity queries.
struct FeatureIndex {
  std::vector<RefId> refs;                     // Class members, id order.
  std::vector<std::vector<int>> tokens_of;     // Parallel to refs.
  std::vector<std::vector<int>> refs_of_token; // Inverted (local indices).
  std::vector<double> idf;                     // Per token id.
  std::vector<double> norm;                    // Per ref: sum of idf.
};

FeatureIndex BuildIndex(const Dataset& dataset,
                        const SchemaBinding& binding, int class_id,
                        int num_threads, BudgetTracker* budget,
                        const ValuePool* pool, const ValueStore* store) {
  FeatureIndex index;
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    if (dataset.reference(id).class_id() == class_id) {
      index.refs.push_back(id);
    }
  }
  // Key extraction (string parsing) is the expensive part; run it in
  // parallel, one slot per reference. Token-id interning stays serial in
  // member order, so ids are identical for every thread count. An
  // abandoned slot just contributes no tokens (cancel / deadline already
  // decided the run).
  std::vector<std::vector<std::string>> keys_of(index.refs.size());
  runtime::ParallelFor(num_threads, 0,
                       static_cast<int64_t>(index.refs.size()),
                       /*grain=*/256, [&](int64_t local) {
                         if (budget != nullptr && (local % 256) == 0 &&
                             budget->ShouldAbandonParallelWork()) {
                           return;
                         }
                         keys_of[local] = BlockingKeys(
                             dataset, index.refs[local], binding, pool,
                             store);
                       });
  if (budget != nullptr) budget->ResolveAsyncStop();
  std::unordered_map<std::string, int> token_ids;
  for (std::vector<std::string>& keys : keys_of) {
    std::vector<int> tokens;
    for (const std::string& key : keys) {
      auto [it, inserted] =
          token_ids.try_emplace(key, static_cast<int>(token_ids.size()));
      tokens.push_back(it->second);
    }
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    index.tokens_of.push_back(std::move(tokens));
  }

  const int num_tokens = static_cast<int>(token_ids.size());
  std::vector<int> df(num_tokens, 0);
  index.refs_of_token.resize(num_tokens);
  for (size_t local = 0; local < index.refs.size(); ++local) {
    for (const int token : index.tokens_of[local]) {
      ++df[token];
      index.refs_of_token[token].push_back(static_cast<int>(local));
    }
  }
  index.idf.resize(num_tokens);
  const double n = std::max<size_t>(1, index.refs.size());
  for (int t = 0; t < num_tokens; ++t) {
    index.idf[t] = std::log(1.0 + n / (1.0 + df[t]));
  }
  index.norm.resize(index.refs.size());
  for (size_t local = 0; local < index.refs.size(); ++local) {
    double total = 0;
    for (const int token : index.tokens_of[local]) total += index.idf[token];
    index.norm[local] = total;
  }
  return index;
}

/// The sequential center sweep over one class. Returns false if a budget
/// stop truncated the sweep (serial mode probes per center; parallel mode
/// passes an abandonment predicate instead). The sweep order is inherent:
/// each center consumes the not-yet-removed candidate set in id order, so
/// only whole classes parallelize, never the centers within one.
template <typename StopFn>
bool SweepClass(const FeatureIndex& index, const CanopyOptions& options,
                StopFn&& should_stop, CandidateList* out) {
  const size_t n = index.refs.size();
  std::vector<char> removed(n, 0);  // Within tight threshold of a center.
  std::vector<double> shared(n, 0.0);
  std::vector<int> touched;
  // Pairs recurring across the class's canopies collapse in one sort +
  // unique at sweep exit instead of a hash probe per emitted pair. The
  // dedup is per class — classes partition the references, so no pair can
  // recur across classes — and a truncated sweep dedups the same prefix
  // of centers, so the stop contract is unchanged.
  const size_t first = out->size();
  auto finish = [&](bool complete) {
    std::sort(out->begin() + first, out->end());
    out->erase(std::unique(out->begin() + first, out->end()), out->end());
    return complete;
  };

  for (size_t center = 0; center < n; ++center) {
    if (removed[center]) continue;
    // One stop check per canopy center; a stop truncates the sweep to a
    // prefix of the deterministic center order.
    if (should_stop()) return finish(false);
    // Sparse IDF-weighted overlap with every reference sharing a token.
    touched.clear();
    for (const int token : index.tokens_of[center]) {
      for (const int other : index.refs_of_token[token]) {
        if (shared[other] == 0.0) touched.push_back(other);
        shared[other] += index.idf[token];
      }
    }
    // Collect the canopy.
    std::vector<int> canopy;
    for (const int other : touched) {
      // Overlap coefficient in IDF mass: shared / min(norms).
      const double denom =
          std::max(1e-9, std::min(index.norm[center], index.norm[other]));
      const double sim = shared[other] / denom;
      shared[other] = 0.0;
      if (static_cast<size_t>(other) == center) {
        continue;
      }
      if (sim >= options.loose_threshold) {
        canopy.push_back(other);
        if (sim >= options.tight_threshold) removed[other] = 1;
      }
    }
    removed[center] = 1;
    if (static_cast<int>(canopy.size()) + 1 > options.max_canopy_size) {
      continue;  // Ubiquitous-feature canopy: skip, like huge blocks.
    }
    // Pairs: center with members, and members among themselves.
    canopy.push_back(static_cast<int>(center));
    for (size_t i = 0; i < canopy.size(); ++i) {
      for (size_t j = i + 1; j < canopy.size(); ++j) {
        const RefId a = index.refs[canopy[i]];
        const RefId b = index.refs[canopy[j]];
        out->emplace_back(std::min(a, b), std::max(a, b));
      }
    }
  }
  return finish(true);
}

}  // namespace

CandidateList GenerateCanopyCandidates(const Dataset& dataset,
                                       const SchemaBinding& binding,
                                       const CanopyOptions& options,
                                       BudgetTracker* budget,
                                       const ValuePool* pool,
                                       const ValueStore* store) {
  RECON_CHECK_GE(options.tight_threshold, options.loose_threshold);
  const int num_classes = dataset.schema().num_classes();
  const int lanes = runtime::ResolveNumThreads(options.num_threads);
  std::vector<CandidateList> per_class(num_classes);

  if (lanes <= 1 || num_classes <= 1) {
    // Serial: budget probes fire per canopy center (the deterministic
    // truncation contract of DESIGN.md §10); a stop also skips the
    // remaining classes.
    bool stopped = false;
    for (int class_id = 0; class_id < num_classes && !stopped; ++class_id) {
      const FeatureIndex index =
          BuildIndex(dataset, binding, class_id, options.num_threads, budget,
                     pool, store);
      stopped = !SweepClass(
          index, options,
          [&] {
            return budget != nullptr && budget->Probe(ProbePoint::kCanopy);
          },
          &per_class[class_id]);
    }
  } else {
    // Parallel: one lane per class; each class's center sweep stays
    // sequential (centers consume the candidate set in order). The final
    // sorted list is identical to the serial path's because classes
    // partition the references — no pair crosses classes, so concatenation
    // order washes out in the sort. Probe() is serial-only; lanes poll the
    // async stop flag per center instead, exactly like the other parallel
    // phases (runtime/parallel.h).
    runtime::ParallelFor(
        options.num_threads, 0, num_classes, /*grain=*/1,
        [&](int64_t class_id) {
          if (budget != nullptr && budget->ShouldAbandonParallelWork()) {
            return;
          }
          const FeatureIndex index =
              BuildIndex(dataset, binding, static_cast<int>(class_id),
                         options.num_threads, budget, pool, store);
          SweepClass(
              index, options,
              [&] {
                return budget != nullptr &&
                       budget->ShouldAbandonParallelWork();
              },
              &per_class[class_id]);
        });
    if (budget != nullptr) budget->ResolveAsyncStop();
  }

  CandidateList out;
  size_t total = 0;
  for (const CandidateList& list : per_class) total += list.size();
  out.reserve(total);
  for (CandidateList& list : per_class) {
    out.insert(out.end(), list.begin(), list.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace recon
