// Canopy clustering for candidate generation — McCallum, Nigam & Ungar
// (KDD 2000), the paper's reference [27] and the stated inspiration for
// its dependency-graph pruning ("we follow the spirit of the canopy
// mechanism to reduce the size of our dependency graph").
//
// A cheap IDF-weighted token similarity places references into overlapping
// canopies: each unprocessed reference seeds a canopy; everything within
// the *loose* threshold joins it; everything within the *tight* threshold
// stops seeding canopies of its own. Only pairs sharing a canopy are
// compared by the expensive machinery. An alternative to the default
// inverted-index blocking; `bench/ablation_blocking` compares them.

#ifndef RECON_CORE_CANOPY_H_
#define RECON_CORE_CANOPY_H_

#include "core/candidates.h"
#include "core/options.h"
#include "core/schema_binding.h"
#include "model/dataset.h"
#include "util/budget.h"

namespace recon {

/// Canopy thresholds over the cheap similarity (IDF-weighted overlap of
/// blocking-key tokens, in [0, 1]). Requires tight >= loose.
struct CanopyOptions {
  double loose_threshold = 0.15;
  double tight_threshold = 0.55;
  /// Canopies larger than this contribute no pairs (ubiquitous-token
  /// safety valve, like max_block_size for blocking).
  int max_canopy_size = 2000;
  /// Threads for feature extraction and the per-class canopy sweeps (see
  /// ReconcilerOptions::num_threads). Classes sweep in parallel, one lane
  /// each; the center sweep within a class is inherently sequential
  /// (centers consume the candidate set in order) and stays so. The
  /// sorted candidate list is identical for every thread count.
  int num_threads = 1;
};

/// Generates candidate pairs via canopy clustering, per class,
/// deterministically (canopy centers are picked in reference-id order).
/// A `budget` stop (probed per canopy center) truncates the sweep after
/// the current center's canopy; pairs collected so far are returned.
/// `pool`/`store` (optional) supply precomputed value features to key
/// extraction; the canopies are identical with or without them.
CandidateList GenerateCanopyCandidates(const Dataset& dataset,
                                       const SchemaBinding& binding,
                                       const CanopyOptions& options,
                                       BudgetTracker* budget = nullptr,
                                       const ValuePool* pool = nullptr,
                                       const ValueStore* store = nullptr);

}  // namespace recon

#endif  // RECON_CORE_CANOPY_H_
