// Blocked parallel loops over index ranges, with grain-size control and a
// deterministic sharded result collector.
//
// Model: a range [begin, end) is cut into fixed-size blocks of `grain`
// indices; up to `num_threads` lanes claim blocks from an atomic counter.
// Which lane executes which block is nondeterministic, but the block
// decomposition itself depends only on (range, grain) — so any output
// placed in a per-block shard and concatenated in block order is equal to
// the serial result regardless of thread count (ShardedCollector below).
//
// num_threads follows ReconcilerOptions::num_threads: 0 = all hardware
// threads, 1 = run inline on the calling thread (no pool involved), n > 1 =
// n lanes. Lanes beyond the first are tasks on ThreadPool::Global(); the
// calling thread is always lane 0 and helps drain the pool while waiting,
// which makes nested parallel loops deadlock-free.
//
// The first exception thrown by a body cancels the remaining blocks (each
// lane stops claiming new ones) and is rethrown on the calling thread.

#ifndef RECON_RUNTIME_PARALLEL_H_
#define RECON_RUNTIME_PARALLEL_H_

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace recon::runtime {

/// Resolves a user-facing thread count: 0 (or negative) = all hardware
/// threads, otherwise the value itself.
int ResolveNumThreads(int num_threads);

/// One contiguous chunk of a blocked loop.
struct Block {
  int64_t begin = 0;
  int64_t end = 0;
  /// Block number in serial iteration order; indexes shards.
  size_t index = 0;
  /// Executing lane in [0, num_lanes). Two blocks with the same lane never
  /// run concurrently, so per-lane scratch (caches) needs no locking — but
  /// the block -> lane assignment is nondeterministic, so lane-indexed
  /// state must never determine output contents or order.
  size_t lane = 0;
};

/// The block decomposition a loop over [begin, end) will use: resolved
/// grain (> 0) and block count. Compute it up front when sizing a
/// ShardedCollector or per-lane scratch for the same loop.
struct BlockPlan {
  int64_t grain = 1;
  size_t num_blocks = 0;
  int num_lanes = 1;
};
BlockPlan PlanBlocks(int num_threads, int64_t begin, int64_t end,
                     int64_t grain);

namespace internal {

using BlockFn = void (*)(void* ctx, const Block& block);

/// Type-erased core: runs `fn(ctx, block)` for every block of the plan.
void RunBlocked(const BlockPlan& plan, int64_t begin, int64_t end, void* ctx,
                BlockFn fn);

}  // namespace internal

/// Runs `body(block)` over every block of [begin, end). grain <= 0 picks a
/// default that yields several blocks per lane (for load balance).
template <typename Body>
void ParallelForBlocked(int num_threads, int64_t begin, int64_t end,
                        int64_t grain, Body&& body) {
  using Fn = std::remove_reference_t<Body>;
  const BlockPlan plan = PlanBlocks(num_threads, begin, end, grain);
  internal::RunBlocked(plan, begin, end, const_cast<Fn*>(&body),
                       [](void* ctx, const Block& block) {
                         (*static_cast<Fn*>(ctx))(block);
                       });
}

/// Runs `body(i)` for every i in [begin, end), blocked by `grain`.
template <typename Body>
void ParallelFor(int num_threads, int64_t begin, int64_t end, int64_t grain,
                 Body&& body) {
  ParallelForBlocked(num_threads, begin, end, grain,
                     [&body](const Block& block) {
                       for (int64_t i = block.begin; i < block.end; ++i) {
                         body(i);
                       }
                     });
}

/// Computes `map(block)` per block and folds the partials with `reduce` in
/// block order: the result is identical to a serial left fold over blocks
/// for any thread count (floating-point results included).
template <typename T, typename Map, typename Reduce>
T ParallelReduce(int num_threads, int64_t begin, int64_t end, int64_t grain,
                 T identity, Map&& map, Reduce&& reduce) {
  const BlockPlan plan = PlanBlocks(num_threads, begin, end, grain);
  std::vector<T> partials(plan.num_blocks, identity);
  ParallelForBlocked(num_threads, begin, end, plan.grain,
                     [&](const Block& block) {
                       partials[block.index] = map(block);
                     });
  T total = std::move(identity);
  for (T& partial : partials) total = reduce(std::move(total), partial);
  return total;
}

/// Deterministic output collector for a blocked loop: each block appends to
/// its own shard (no locking — shards are distinct vector elements), and
/// Drain() concatenates the shards in block order, yielding exactly the
/// sequence a serial loop would have produced.
template <typename T>
class ShardedCollector {
 public:
  explicit ShardedCollector(size_t num_blocks) : shards_(num_blocks) {}
  explicit ShardedCollector(const BlockPlan& plan)
      : shards_(plan.num_blocks) {}

  std::vector<T>& shard(size_t block) { return shards_[block]; }

  /// Moves every shard's contents into one vector, in block order. The
  /// collector is empty afterwards.
  std::vector<T> Drain() {
    size_t total = 0;
    for (const std::vector<T>& shard : shards_) total += shard.size();
    std::vector<T> out;
    out.reserve(total);
    for (std::vector<T>& shard : shards_) {
      for (T& item : shard) out.push_back(std::move(item));
      shard.clear();
      shard.shrink_to_fit();
    }
    return out;
  }

 private:
  std::vector<std::vector<T>> shards_;
};

}  // namespace recon::runtime

#endif  // RECON_RUNTIME_PARALLEL_H_
