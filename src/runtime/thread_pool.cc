#include "runtime/thread_pool.h"

#include <algorithm>
#include <utility>

namespace recon::runtime {

ThreadPool::ThreadPool(int num_workers) {
  const int n = std::max(1, num_workers);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<unsigned>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const unsigned slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mu);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  num_queued_.fetch_add(1, std::memory_order_release);
  // Holding wake_mu_ while notifying closes the check-then-wait race: a
  // worker that saw num_queued_ == 0 is either already waiting (and gets
  // the notify) or still holds wake_mu_ (and we block until it waits).
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  const unsigned start =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  return RunTaskFrom(start);
}

bool ThreadPool::RunTaskFrom(unsigned home) {
  if (num_queued_.load(std::memory_order_acquire) == 0) return false;
  const size_t n = queues_.size();
  for (size_t i = 0; i < n; ++i) {
    WorkerQueue& queue = *queues_[(home + i) % n];
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(queue.mu);
      if (queue.tasks.empty()) continue;
      if (i == 0) {  // Own deque: LIFO for locality.
        task = std::move(queue.tasks.front());
        queue.tasks.pop_front();
      } else {  // Steal from the back.
        task = std::move(queue.tasks.back());
        queue.tasks.pop_back();
      }
    }
    num_queued_.fetch_sub(1, std::memory_order_release);
    task();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned home) {
  for (;;) {
    if (RunTaskFrom(home)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (num_queued_.load(std::memory_order_acquire) > 0) continue;
    if (stopping_) return;
    wake_cv_.wait(lock);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(HardwareConcurrency());
  return *pool;
}

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace recon::runtime
