#include "runtime/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace recon::runtime {

int ResolveNumThreads(int num_threads) {
  if (num_threads <= 0) return ThreadPool::HardwareConcurrency();
  return num_threads;
}

BlockPlan PlanBlocks(int num_threads, int64_t begin, int64_t end,
                     int64_t grain) {
  BlockPlan plan;
  plan.num_lanes = ResolveNumThreads(num_threads);
  const int64_t n = std::max<int64_t>(0, end - begin);
  if (grain <= 0) {
    // Several blocks per lane so a slow block does not strand the others,
    // without degenerating into per-index scheduling overhead.
    grain = std::max<int64_t>(1, n / (8 * plan.num_lanes));
  }
  plan.grain = grain;
  plan.num_blocks = static_cast<size_t>((n + grain - 1) / grain);
  return plan;
}

namespace internal {

namespace {

/// State shared by the lanes of one blocked loop.
struct LoopState {
  std::atomic<size_t> next_block{0};
  std::atomic<int> live_tasks{0};
  std::atomic<bool> cancelled{false};
  std::mutex error_mu;
  std::exception_ptr error;
};

}  // namespace

void RunBlocked(const BlockPlan& plan, int64_t begin, int64_t end, void* ctx,
                BlockFn fn) {
  if (plan.num_blocks == 0) return;
  auto run_block = [&](size_t index, size_t lane) {
    Block block;
    block.begin = begin + static_cast<int64_t>(index) * plan.grain;
    block.end = std::min(end, block.begin + plan.grain);
    block.index = index;
    block.lane = lane;
    fn(ctx, block);
  };

  const int lanes = std::min<int64_t>(
      plan.num_lanes, static_cast<int64_t>(plan.num_blocks));
  if (lanes <= 1) {
    // Serial path: no pool, no atomics, exceptions propagate directly.
    for (size_t b = 0; b < plan.num_blocks; ++b) run_block(b, 0);
    return;
  }

  LoopState state;
  auto drain = [&](size_t lane) {
    for (;;) {
      if (state.cancelled.load(std::memory_order_relaxed)) return;
      const size_t b =
          state.next_block.fetch_add(1, std::memory_order_relaxed);
      if (b >= plan.num_blocks) return;
      try {
        run_block(b, lane);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state.error_mu);
          if (!state.error) state.error = std::current_exception();
        }
        state.cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  ThreadPool& pool = ThreadPool::Global();
  const int spawned = lanes - 1;
  state.live_tasks.store(spawned, std::memory_order_relaxed);
  for (int i = 0; i < spawned; ++i) {
    // The task only touches `state`/`drain`, which outlive it: RunBlocked
    // does not return until live_tasks drops to zero.
    pool.Submit([&state, &drain, lane = static_cast<size_t>(i) + 1] {
      drain(lane);
      state.live_tasks.fetch_sub(1, std::memory_order_release);
    });
  }
  drain(0);
  // Help the pool while our lanes finish: this thread may pick up our own
  // not-yet-started lane tasks or anything else queued (including tasks of
  // a nested loop), so waiting always makes progress.
  while (state.live_tasks.load(std::memory_order_acquire) != 0) {
    if (!pool.RunOneTask()) std::this_thread::yield();
  }
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace internal

}  // namespace recon::runtime
