// Work-stealing thread pool: the execution substrate for the blocked
// parallel loops in runtime/parallel.h (in the spirit of the gbbs/pbbslib
// scheduler layer that parallel graph algorithms build on).
//
// Tasks are distributed round-robin across per-worker deques; a worker pops
// from the front of its own deque and steals from the back of the others.
// External threads participate through RunOneTask(), which is what makes
// nested parallel loops deadlock-free: a thread waiting for a loop to finish
// keeps executing queued tasks instead of blocking.

#ifndef RECON_RUNTIME_THREAD_POOL_H_
#define RECON_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace recon::runtime {

class ThreadPool {
 public:
  /// Starts `num_workers` worker threads (clamped to >= 1).
  explicit ThreadPool(int num_workers);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker (or on any thread that
  /// calls RunOneTask before a worker gets to it).
  void Submit(std::function<void()> task);

  /// Runs one queued task on the calling thread; returns false when every
  /// deque was empty. Safe to call from workers and external threads alike.
  bool RunOneTask();

  /// Process-wide pool, created on first use with HardwareConcurrency()
  /// workers. Parallel loops draw lanes from this pool no matter how few
  /// they need, so repeated loops never pay thread startup.
  static ThreadPool& Global();

  /// std::thread::hardware_concurrency(), but never 0.
  static int HardwareConcurrency();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(unsigned home);
  /// Pops from queue `home`, else steals, starting the scan at `home`.
  bool RunTaskFrom(unsigned home);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  /// Queued-but-unstarted task count; lets idle workers sleep without a
  /// lost-wakeup race (checked under wake_mu_ before waiting).
  std::atomic<int> num_queued_{0};
  std::atomic<unsigned> next_queue_{0};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stopping_ = false;  // Guarded by wake_mu_.
};

}  // namespace recon::runtime

#endif  // RECON_RUNTIME_THREAD_POOL_H_
