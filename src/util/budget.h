// Execution budgets and cooperative cancellation for the reconciliation
// pipeline (DESIGN.md §10).
//
// The fixed point is naturally *anytime*: similarities only rise toward the
// fixed point, so freezing the solve early and still running constraint
// enforcement plus transitive closure yields a valid — merely less
// complete — partition. A Budget bounds a run (wall-clock deadline, solver
// iterations, merges, soft memory estimate) and a CancellationToken lets
// another thread request a stop; both are observed cooperatively at cheap,
// deterministic probe points (candidate batches, canopy centers,
// graph-builder staging chunks, solver round/commit boundaries). On
// exhaustion the pipeline never aborts: it finishes the current
// deterministic unit, freezes the solve, and degrades gracefully,
// reporting a StopReason in ReconcileStats.

#ifndef RECON_UTIL_BUDGET_H_
#define RECON_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace recon {

/// Why a reconciliation run stopped. kConverged is the normal fixed-point
/// exit; every other reason marks a degraded (but valid) early stop.
enum class StopReason {
  kConverged = 0,       ///< Queue drained to the fixed point.
  kDeadline,            ///< Wall-clock deadline expired.
  kIterationBudget,     ///< Solver iteration budget (or safety cap) spent.
  kMergeBudget,         ///< Merge budget spent.
  kMemoryBudget,        ///< Soft memory estimate exceeded the budget.
  kCancelled,           ///< CancellationToken fired.
};

/// Short stable name ("converged", "deadline", ...).
const char* StopReasonToString(StopReason reason);

/// The deterministic probe-point families, one per pipeline phase. Fault
/// injection (util/fault_injection.h) addresses probes as (point, index).
enum class ProbePoint {
  kCandidates = 0,  ///< Candidate-generation batch boundaries.
  kCanopy,          ///< Canopy-sweep center boundaries.
  kBuild,           ///< Graph-builder staging chunk boundaries.
  kSolveRound,      ///< Solver round / serial-segment boundaries.
  kSolveCommit,     ///< Solver commit boundaries (one per queue pop).
};
inline constexpr int kNumProbePoints = 5;

/// Short stable name ("candidates", "canopy", ...).
const char* ProbePointToString(ProbePoint point);

/// Limits for one reconciliation run (one batch Run() or one incremental
/// Flush()). Zero (or negative) means "no limit" for every field; a
/// default-constructed Budget changes nothing except that the solver's
/// convergence safety cap degrades instead of aborting.
struct Budget {
  /// Wall-clock deadline for the whole run, measured from the creation of
  /// the run's BudgetTracker (graph build included).
  double deadline_ms = 0;
  /// Maximum fixed-point iterations (queue pops) per solver Run(). When 0
  /// the solver still applies its convergence safety cap of
  /// 500 * num_nodes + 1000.
  int64_t max_solver_iterations = 0;
  /// Maximum merges per solver Run().
  int64_t max_merges = 0;
  /// Soft cap on the estimated graph memory footprint, checked at build
  /// staging chunks ("soft": the estimate is nodes/edges arithmetic, not an
  /// allocator measurement, and the current chunk always completes).
  int64_t soft_max_memory_bytes = 0;

  bool HasDeadline() const { return deadline_ms > 0; }
  bool HasIterationLimit() const { return max_solver_iterations > 0; }
  bool HasMergeLimit() const { return max_merges > 0; }
  bool HasMemoryLimit() const { return soft_max_memory_bytes > 0; }
  bool Unlimited() const {
    return !HasDeadline() && !HasIterationLimit() && !HasMergeLimit() &&
           !HasMemoryLimit();
  }
};

/// Thread-safe cancellation flag. The party that wants to stop a run keeps
/// a shared_ptr and calls RequestCancel() from any thread; the pipeline
/// polls cancelled() at its probe points. Sticky: once cancelled, always
/// cancelled.
class CancellationToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Test seam: observes every budget probe, in probe order, and may inject
/// a simulated stop. Production runs leave it unset; the deterministic
/// fault-injection harness (util/fault_injection.h, tests only) implements
/// it to fire "budget exhausted" / "cancel" at the Nth probe of a phase.
/// Called only from serial probe sites, never concurrently.
class ProbeHook {
 public:
  virtual ~ProbeHook() = default;
  /// `index` is the 0-based count of prior probes at `point` within this
  /// tracker. Return kConverged to let the run continue, or any other
  /// reason to stop it as if that budget had been exhausted.
  virtual StopReason OnProbe(ProbePoint point, int64_t index) = 0;
};

/// Run-scoped companion of a Budget: owns the deadline epoch, the sticky
/// stop reason, and the probe counters. Created per batch Run() /
/// incremental Flush() and threaded through candidate generation, graph
/// build, and the solver. Probe() and ForceStop() are called from serial
/// pipeline code only; ShouldAbandonParallelWork() and stopped() are safe
/// from any thread.
class BudgetTracker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit BudgetTracker(const Budget& budget,
                         std::shared_ptr<const CancellationToken> cancel =
                             nullptr,
                         std::shared_ptr<ProbeHook> hook = nullptr)
      : budget_(budget),
        cancel_(std::move(cancel)),
        hook_(std::move(hook)),
        start_(Clock::now()) {
    if (budget_.HasDeadline()) {
      deadline_ = start_ + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   budget_.deadline_ms));
    }
  }

  BudgetTracker(const BudgetTracker&) = delete;
  BudgetTracker& operator=(const BudgetTracker&) = delete;

  /// One deterministic probe. Returns true when the run must degrade-stop
  /// (sticky). Cheap when nothing is configured: a counter increment and a
  /// few null checks. The wall clock is read only every
  /// kDeadlineStride-th probe, so probes stay affordable on per-commit
  /// granularity.
  bool Probe(ProbePoint point) {
    const int64_t index = probes_[static_cast<int>(point)]++;
    ++num_probes_;
    if (stopped()) return true;
    if (hook_ != nullptr) {
      const StopReason injected = hook_->OnProbe(point, index);
      if (injected != StopReason::kConverged) {
        ForceStop(injected);
        return true;
      }
    }
    if (cancel_ != nullptr && cancel_->cancelled()) {
      ForceStop(StopReason::kCancelled);
      return true;
    }
    if (budget_.HasMemoryLimit() &&
        memory_estimate_.load(std::memory_order_relaxed) >
            budget_.soft_max_memory_bytes) {
      ForceStop(StopReason::kMemoryBudget);
      return true;
    }
    if (budget_.HasDeadline() && num_probes_ % kDeadlineStride == 1 &&
        Clock::now() >= deadline_) {
      ForceStop(StopReason::kDeadline);
      return true;
    }
    return false;
  }

  /// Marks the run stopped for `reason`. The first reason wins; later
  /// calls are no-ops. Serial pipeline code only.
  void ForceStop(StopReason reason) {
    if (reason == StopReason::kConverged) return;
    StopReason expected = StopReason::kConverged;
    stop_reason_.compare_exchange_strong(expected, reason,
                                         std::memory_order_acq_rel);
  }

  /// True once any budget fired or cancellation was requested and seen.
  bool stopped() const {
    return stop_reason_.load(std::memory_order_acquire) !=
           StopReason::kConverged;
  }

  /// kConverged while the run is live or finished normally; the degraded
  /// reason otherwise.
  StopReason stop_reason() const {
    return stop_reason_.load(std::memory_order_acquire);
  }

  /// Read-only check for code running on pool threads (the wavefront's
  /// parallel score phase, staging blocks): whether in-flight speculative
  /// work has become pointless. Never mutates probe counters or the stop
  /// reason — the owning serial code re-checks at its next probe, so
  /// abandoning here affects wall time only, never output.
  bool ShouldAbandonParallelWork() const {
    if (stopped()) return true;
    if (cancel_ != nullptr && cancel_->cancelled()) return true;
    if (budget_.HasDeadline() && Clock::now() >= deadline_) return true;
    return false;
  }

  /// Serial follow-up to a true ShouldAbandonParallelWork(): records the
  /// stop reason (cancellation wins over deadline) so the pipeline freezes
  /// deterministically after the parallel phase. No-op when neither holds
  /// or a reason is already set.
  void ResolveAsyncStop() {
    if (stopped()) return;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      ForceStop(StopReason::kCancelled);
      return;
    }
    if (budget_.HasDeadline() && Clock::now() >= deadline_) {
      ForceStop(StopReason::kDeadline);
    }
  }

  /// Updates the soft memory estimate (bytes); compared against the budget
  /// at the next probe. Relaxed: the estimate is advisory.
  void ReportMemoryEstimate(int64_t bytes) {
    memory_estimate_.store(bytes, std::memory_order_relaxed);
  }

  const Budget& budget() const { return budget_; }
  /// Total probes across all points.
  int64_t num_probes() const { return num_probes_; }
  /// Probes at one point.
  int64_t probes_at(ProbePoint point) const {
    return probes_[static_cast<int>(point)];
  }
  /// Milliseconds since the tracker (= run) started.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  /// Wall-clock reads are amortized over this many probes. The stride is a
  /// probe-count property, so *which* probes read the clock is
  /// deterministic; when the read happens in wall time of course is not.
  static constexpr int64_t kDeadlineStride = 16;

  const Budget budget_;
  const std::shared_ptr<const CancellationToken> cancel_;
  const std::shared_ptr<ProbeHook> hook_;
  const Clock::time_point start_;
  Clock::time_point deadline_{};
  std::atomic<StopReason> stop_reason_{StopReason::kConverged};
  std::atomic<int64_t> memory_estimate_{0};
  int64_t num_probes_ = 0;
  int64_t probes_[kNumProbePoints] = {};
};

}  // namespace recon

#endif  // RECON_UTIL_BUDGET_H_
