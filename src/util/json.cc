#include "util/json.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace recon::json {

namespace {

const std::string kEmptyString;
const std::vector<Value> kEmptyArray;
const std::vector<Value::Member> kEmptyMembers;
const Value kNullValue;

constexpr int kMaxDepth = 64;

}  // namespace

int64_t Value::AsInt(int64_t def) const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble) return static_cast<int64_t>(double_);
  return def;
}

double Value::AsDouble(double def) const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  return def;
}

const std::string& Value::AsString() const {
  return kind_ == Kind::kString ? string_ : kEmptyString;
}

size_t Value::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

const std::vector<Value>& Value::items() const {
  return kind_ == Kind::kArray ? items_ : kEmptyArray;
}

Value& Value::Append(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(v));
  return items_.back();
}

const std::vector<Value::Member>& Value::members() const {
  return kind_ == Kind::kObject ? members_ : kEmptyMembers;
}

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* found = Find(key);
  return found != nullptr ? *found : kNullValue;
}

Value& Value::Set(std::string key, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return m.second;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return members_.back().second;
}

void AppendQuoted(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string Quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendQuoted(s, &out);
  return out;
}

std::string NumberToString(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void Value::AppendTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += std::to_string(int_);
      return;
    case Kind::kDouble:
      *out += NumberToString(double_);
      return;
    case Kind::kString:
      AppendQuoted(string_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        items_[i].AppendTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendQuoted(members_[i].first, out);
        out->push_back(':');
        members_[i].second.AppendTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  AppendTo(&out);
  return out;
}

void Value::PrettyTo(std::string* out, int depth) const {
  const auto indent = [out](int d) { out->append(2 * d, ' '); };
  switch (kind_) {
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < items_.size(); ++i) {
        indent(depth + 1);
        items_[i].PrettyTo(out, depth + 1);
        if (i + 1 < items_.size()) out->push_back(',');
        out->push_back('\n');
      }
      indent(depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        indent(depth + 1);
        AppendQuoted(members_[i].first, out);
        *out += ": ";
        members_[i].second.PrettyTo(out, depth + 1);
        if (i + 1 < members_.size()) out->push_back(',');
        out->push_back('\n');
      }
      indent(depth);
      out->push_back('}');
      return;
    }
    default:
      AppendTo(out);
  }
}

std::string Value::Pretty() const {
  std::string out;
  PrettyTo(&out, 0);
  out.push_back('\n');
  return out;
}

// ---- Parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Value> Run() {
    SkipWhitespace();
    Value root;
    Status status = ParseValue(&root, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(what + " at byte " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 64 levels");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (ConsumeWord("null")) {
          *out = Value();
          return Status();
        }
        return Error("invalid literal");
      case 't':
        if (ConsumeWord("true")) {
          *out = Value(true);
          return Status();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = Value(false);
          return Status();
        }
        return Error("invalid literal");
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return Status();
    for (;;) {
      Value item;
      Status status = ParseValue(&item, depth + 1);
      if (!status.ok()) return status;
      out->Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
      SkipWhitespace();
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return Status();
    for (;;) {
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      Value key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      Value item;
      status = ParseValue(&item, depth + 1);
      if (!status.ok()) return status;
      // Duplicate keys: last wins (the common lenient-reader behaviour).
      out->Set(std::string(key.AsString()), std::move(item));
      SkipWhitespace();
      if (Consume('}')) return Status();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
      SkipWhitespace();
    }
  }

  /// Appends the UTF-8 encoding of `cp` to `out`.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return false;
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  Status ParseString(Value* out) {
    ++pos_;  // '"'
    std::string result;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        *out = Value(std::move(result));
        return Status();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        result.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': result.push_back('"'); break;
        case '\\': result.push_back('\\'); break;
        case '/': result.push_back('/'); break;
        case 'n': result.push_back('\n'); break;
        case 'r': result.push_back('\r'); break;
        case 't': result.push_back('\t'); break;
        case 'b': result.push_back('\b'); break;
        case 'f': result.push_back('\f'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return Error("invalid \\u escape");
          // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            uint32_t low = 0;
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              if (!ParseHex4(&low)) return Error("invalid \\u escape");
              if (low >= 0xDC00 && low <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
              } else {
                return Error("invalid low surrogate");
              }
            } else {
              return Error("lone high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(cp, &result);
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("invalid number");
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = Value(static_cast<int64_t>(parsed));
        return Status();
      }
      // Fall through to double on int64 overflow.
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    *out = Value(parsed);
    return Status();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace recon::json
