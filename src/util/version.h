// One version / build-info string for every user-facing surface:
// `reconcile_cli --version`, `reconcile_serve --version`, and the
// service's /healthz endpoint all report exactly this, so a deployment can
// be identified from any of them.

#ifndef RECON_UTIL_VERSION_H_
#define RECON_UTIL_VERSION_H_

namespace recon {

/// Bare semantic version, bumped per structural PR (see CHANGES.md).
inline constexpr const char kReconVersion[] = "0.6.0";

/// Full build-info line.
inline const char* ReconBuildInfo() {
  return "recon 0.6.0 (reference reconciliation; C++20)";
}

}  // namespace recon

#endif  // RECON_UTIL_VERSION_H_
