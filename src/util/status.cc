#include "util/status.h"

namespace recon {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace recon
