#include "util/union_find.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace recon {

UnionFind::UnionFind(int size) : num_sets_(size) {
  RECON_CHECK_GE(size, 0);
  parent_.resize(size);
  size_.assign(size, 1);
  for (int i = 0; i < size; ++i) parent_[i] = i;
}

void UnionFind::Grow(int count) {
  RECON_CHECK_GE(count, 0);
  const int old_size = size();
  parent_.resize(old_size + count);
  size_.resize(old_size + count, 1);
  for (int i = old_size; i < old_size + count; ++i) parent_[i] = i;
  num_sets_ += count;
}

int UnionFind::Find(int x) {
  RECON_DCHECK(x >= 0 && x < size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // Path halving.
    x = parent_[x];
  }
  return x;
}

int UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return ra;
  // Union by size; deterministic tie-break on index.
  if (size_[ra] < size_[rb] || (size_[ra] == size_[rb] && rb < ra)) {
    std::swap(ra, rb);
  }
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return ra;
}

std::vector<std::vector<int>> UnionFind::Groups() {
  std::map<int, std::vector<int>> by_root;
  for (int i = 0; i < size(); ++i) by_root[Find(i)].push_back(i);
  std::vector<std::vector<int>> groups;
  groups.reserve(by_root.size());
  for (auto& [root, members] : by_root) groups.push_back(std::move(members));
  // std::map iterates roots in increasing order, and Find preserves the
  // invariant that each member list is built in increasing index order, so
  // groups are ordered by smallest element already.
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.front() < b.front();
            });
  return groups;
}

}  // namespace recon
