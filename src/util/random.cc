#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace recon {

int Random::NextWeighted(const std::vector<double>& weights) {
  RECON_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    RECON_CHECK_GE(w, 0);
    total += w;
  }
  RECON_CHECK_GT(total, 0);
  double x = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Random::NextZipf(int n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(*this);
}

ZipfSampler::ZipfSampler(int n, double s) {
  RECON_CHECK_GT(n, 0);
  cdf_.resize(n);
  double acc = 0;
  for (int k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (int k = 0; k < n; ++k) cdf_[k] /= acc;
}

int ZipfSampler::Sample(Random& rng) const {
  double x = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
  if (it == cdf_.end()) return static_cast<int>(cdf_.size()) - 1;
  return static_cast<int>(it - cdf_.begin());
}

}  // namespace recon
