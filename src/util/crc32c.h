// CRC32C (Castagnoli) checksums for the durability subsystem (DESIGN.md
// §15): every WAL record and checkpoint payload carries one so recovery can
// tell a torn or corrupted tail from valid data. Software table-driven
// implementation — small, dependency-free, and fast enough for the record
// sizes the service writes (the WAL is fsync-bound, not checksum-bound).

#ifndef RECON_UTIL_CRC32C_H_
#define RECON_UTIL_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace recon {

namespace crc32c_internal {

inline const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        // Reflected Castagnoli polynomial (0x1EDC6F41).
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32c_internal

/// CRC32C of `data`; `seed` chains multi-part checksums (pass a previous
/// result to extend it).
inline uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0) {
  const auto& table = crc32c_internal::Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

/// Named differently from the pointer overload: a `const char*` argument
/// would otherwise be ambiguous between `const void*` and `string_view`.
inline uint32_t Crc32cOf(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace recon

#endif  // RECON_UTIL_CRC32C_H_
