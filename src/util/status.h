// Minimal Status / StatusOr error-reporting types.
//
// The library avoids exceptions; fallible operations (parsing, configuration
// validation, file I/O) return Status or StatusOr<T>.

#ifndef RECON_UTIL_STATUS_H_
#define RECON_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace recon {

/// Error categories, a small subset of the canonical codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

/// Returns a short human-readable name for `code` ("OK", "INVALID_ARGUMENT"…).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result with an optional message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Constructs from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    RECON_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    RECON_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    RECON_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    RECON_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace recon

/// Propagates a non-OK status to the caller.
#define RECON_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::recon::Status _status = (expr);           \
    if (!_status.ok()) return _status;          \
  } while (false)

#endif  // RECON_UTIL_STATUS_H_
