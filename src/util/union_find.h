// Disjoint-set (union-find) with path halving and union by size.
//
// Used by the reconciler both for reference enrichment (canonicalizing
// merged references) and for the final transitive closure over merge
// decisions.

#ifndef RECON_UTIL_UNION_FIND_H_
#define RECON_UTIL_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace recon {

/// Disjoint sets over the integers [0, size).
class UnionFind {
 public:
  /// Creates `size` singleton sets.
  explicit UnionFind(int size);

  /// Returns the canonical representative of x's set.
  int Find(int x);

  /// Merges the sets of a and b. Returns the representative of the merged
  /// set. The representative of the *larger* set wins ties deterministically
  /// (smaller index wins when sizes are equal).
  int Union(int a, int b);

  /// True if a and b are in the same set.
  bool Connected(int a, int b) { return Find(a) == Find(b); }

  /// Size of x's set.
  int SetSize(int x) { return size_[Find(x)]; }

  /// Appends `count` fresh singleton elements.
  void Grow(int count);

  /// Number of disjoint sets.
  int num_sets() const { return num_sets_; }

  /// Total number of elements.
  int size() const { return static_cast<int>(parent_.size()); }

  /// Groups elements by set. Each inner vector is non-empty and sorted;
  /// groups are ordered by their smallest element.
  std::vector<std::vector<int>> Groups();

 private:
  std::vector<int32_t> parent_;
  std::vector<int32_t> size_;
  int num_sets_;
};

}  // namespace recon

#endif  // RECON_UTIL_UNION_FIND_H_
