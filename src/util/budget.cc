#include "util/budget.h"

namespace recon {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged:
      return "converged";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kIterationBudget:
      return "iteration-budget";
    case StopReason::kMergeBudget:
      return "merge-budget";
    case StopReason::kMemoryBudget:
      return "memory-budget";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* ProbePointToString(ProbePoint point) {
  switch (point) {
    case ProbePoint::kCandidates:
      return "candidates";
    case ProbePoint::kCanopy:
      return "canopy";
    case ProbePoint::kBuild:
      return "build";
    case ProbePoint::kSolveRound:
      return "solve-round";
    case ProbePoint::kSolveCommit:
      return "solve-commit";
  }
  return "unknown";
}

}  // namespace recon
