// Lightweight logging and assertion macros.
//
// The library does not use exceptions (per the project style); programmer
// errors and violated invariants terminate the process through RECON_CHECK.

#ifndef RECON_UTIL_LOGGING_H_
#define RECON_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace recon {

/// Severity levels for LogMessage.
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// Accumulates a log line and emits it to stderr on destruction.
/// kFatal messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << SeverityTag(severity) << " " << Basename(file) << ":" << line
            << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    std::cerr << stream_.str() << std::endl;
    if (severity_ == LogSeverity::kFatal) {
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* SeverityTag(LogSeverity severity) {
    switch (severity) {
      case LogSeverity::kInfo:
        return "I";
      case LogSeverity::kWarning:
        return "W";
      case LogSeverity::kError:
        return "E";
      case LogSeverity::kFatal:
        return "F";
    }
    return "?";
  }

  static const char* Basename(const char* file) {
    const char* slash = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') slash = p + 1;
    }
    return slash;
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace recon

#define RECON_LOG(severity)                                              \
  ::recon::LogMessage(::recon::LogSeverity::k##severity, __FILE__,       \
                      __LINE__)                                          \
      .stream()

// Aborts with a message when `condition` is false. Usable as a stream:
//   RECON_CHECK(x > 0) << "x was " << x;
#define RECON_CHECK(condition)                                  \
  while (!(condition))                                          \
  ::recon::LogMessage(::recon::LogSeverity::kFatal, __FILE__,   \
                      __LINE__)                                 \
          .stream()                                             \
      << "Check failed: " #condition " "

#define RECON_CHECK_EQ(a, b) RECON_CHECK((a) == (b))
#define RECON_CHECK_NE(a, b) RECON_CHECK((a) != (b))
#define RECON_CHECK_LT(a, b) RECON_CHECK((a) < (b))
#define RECON_CHECK_LE(a, b) RECON_CHECK((a) <= (b))
#define RECON_CHECK_GT(a, b) RECON_CHECK((a) > (b))
#define RECON_CHECK_GE(a, b) RECON_CHECK((a) >= (b))

#ifdef NDEBUG
#define RECON_DCHECK(condition) RECON_CHECK(true || (condition))
#else
#define RECON_DCHECK(condition) RECON_CHECK(condition)
#endif

#endif  // RECON_UTIL_LOGGING_H_
