// Minimal, dependency-free JSON reader/writer (RFC 8259 subset).
//
// Shared by the reconciliation service (src/service/) for the OpenRefine
// wire protocol and by the bench harnesses' `--json` output (via
// bench::JsonLog), replacing the ad-hoc hand-rolled string emission that
// mis-escaped control characters. Deliberately small: an ordered DOM
// (json::Value), a recursive-descent parser with a depth cap, and a compact
// writer whose number formatting ("%.17g" for doubles, undecorated
// integers) round-trips every value the system produces.

#ifndef RECON_UTIL_JSON_H_
#define RECON_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace recon::json {

/// An ordered JSON document node. Objects preserve insertion order (the
/// OpenRefine protocol keys responses by caller-chosen query ids, and
/// stable order keeps responses byte-deterministic).
class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Member = std::pair<std::string, Value>;

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT: implicit by design.
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(int i) : kind_(Kind::kInt), int_(i) {}  // NOLINT
  Value(int64_t i) : kind_(Kind::kInt), int_(i) {}  // NOLINT
  Value(uint64_t i)  // NOLINT
      : kind_(Kind::kInt), int_(static_cast<int64_t>(i)) {}
  Value(double d) : kind_(Kind::kDouble), double_(d) {}  // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  Value(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT

  /// Explicit factories for the (empty) container kinds.
  static Value Array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Loose accessors: the default is returned on kind mismatch, so callers
  /// validating foreign input can probe without branching on kind() first.
  bool AsBool(bool def = false) const {
    return kind_ == Kind::kBool ? bool_ : def;
  }
  int64_t AsInt(int64_t def = 0) const;
  double AsDouble(double def = 0.0) const;
  const std::string& AsString() const;  ///< Empty string on mismatch.

  /// Array / object element count; 0 for scalars.
  size_t size() const;

  // ---- Array access -------------------------------------------------------
  /// Items of an array (empty for non-arrays).
  const std::vector<Value>& items() const;
  /// Appends to an array; a null value silently becomes an array first.
  Value& Append(Value v);

  // ---- Object access ------------------------------------------------------
  /// Members of an object (empty for non-objects).
  const std::vector<Member>& members() const;
  /// First member named `key`, or nullptr.
  const Value* Find(std::string_view key) const;
  /// Member lookup that never fails: a shared null value when absent.
  const Value& at(std::string_view key) const;
  /// Sets `key` (overwriting the first existing member of that name); a
  /// null value silently becomes an object first. Returns the stored value.
  Value& Set(std::string key, Value v);

  // ---- Serialization ------------------------------------------------------
  /// Appends the compact serialization (no whitespace) to `out`.
  void AppendTo(std::string* out) const;
  /// Compact serialization.
  std::string Dump() const;
  /// Indented serialization (2-space, trailing newline) for human surfaces.
  std::string Pretty() const;

 private:
  void PrettyTo(std::string* out, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Appends `s` as a quoted JSON string, escaping quotes, backslashes,
/// and every control character (RFC 8259 §7).
void AppendQuoted(std::string_view s, std::string* out);

/// Quoted, escaped form of `s`.
std::string Quoted(std::string_view s);

/// The writer's double formatting ("%.17g": shortest round-trip-safe form
/// produced by a fixed format). Exposed so emitters that need to match the
/// writer byte-for-byte (bench gates) share it.
std::string NumberToString(double value);

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// garbage is an error). Depth is capped at 64 nested containers; numbers
/// without '.', exponent, or overflow parse as kInt. Errors carry a byte
/// offset.
StatusOr<Value> Parse(std::string_view text);

}  // namespace recon::json

#endif  // RECON_UTIL_JSON_H_
