#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace recon {

namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool IsAsciiAlnum(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char AsciiUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiLower(c);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiUpper(c);
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsAsciiSpace(s[begin])) ++begin;
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && !IsAsciiAlnum(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && IsAsciiAlnum(s[i])) ++i;
    if (i > start) {
      std::string token(s.substr(start, i - start));
      for (char& c : token) c = AsciiLower(c);
      out.push_back(std::move(token));
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) break;
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  out.append(s.substr(pos));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace recon
