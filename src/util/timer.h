// Wall-clock timer for benchmarks and progress reporting.

#ifndef RECON_UTIL_TIMER_H_
#define RECON_UTIL_TIMER_H_

#include <chrono>

namespace recon {

/// Measures elapsed wall time from construction or the last Restart().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since the epoch.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since the epoch.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace recon

#endif  // RECON_UTIL_TIMER_H_
