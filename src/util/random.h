// Deterministic pseudo-random number generation for data synthesis.
//
// All dataset generators in this repository are seeded, so every experiment
// is reproducible bit-for-bit. We use xoshiro256** seeded via SplitMix64,
// which is fast, high quality, and has a stable cross-platform definition
// (unlike std::mt19937 distributions, whose outputs vary across standard
// library implementations).

#ifndef RECON_UTIL_RANDOM_H_
#define RECON_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace recon {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** PRNG with convenience sampling helpers.
class Random {
 public:
  explicit Random(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    RECON_CHECK_GT(bound, 0u);
    // Debiased modulo via rejection sampling.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    RECON_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty vector with a positive total weight.
  int NextWeighted(const std::vector<double>& weights);

  /// Samples from a (truncated) Zipf distribution over [0, n) with
  /// exponent s: P(k) proportional to 1 / (k + 1)^s. Linear-time setup per
  /// call is avoided by callers caching a ZipfSampler instead where hot.
  int NextZipf(int n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns a reference to a uniformly chosen element. Requires non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    RECON_CHECK(!items.empty());
    return items[NextBounded(items.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Precomputed cumulative table for repeated Zipf sampling.
class ZipfSampler {
 public:
  /// P(k) proportional to 1 / (k + 1)^s over k in [0, n).
  ZipfSampler(int n, double s);

  /// Samples an index in [0, n).
  int Sample(Random& rng) const;

  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace recon

#endif  // RECON_UTIL_RANDOM_H_
