// A minimal atomic shared_ptr cell: Load() pins the current value, Store()
// publishes a replacement. Semantically std::atomic<std::shared_ptr<T>>,
// and implemented the same way libstdc++ implements that (a pointer-sized
// spinlock around the refcount bump) — but with a release unlock on the
// load path. libstdc++ 12 unlocks load() with memory_order_relaxed, so a
// reader's critical section does not formally happen-before the next
// writer's; that is undefined behaviour on paper and a ThreadSanitizer
// report in practice. This cell keeps every unlock a release, making the
// protocol provably race-free (and TSan-clean, which tools/check_tsan.sh
// enforces for the service layer built on it).
//
// Costs: Load() is one atomic exchange + one refcount increment + one
// atomic store; the critical sections are a few instructions, so readers
// contend for nanoseconds, never for the duration of any caller work.

#ifndef RECON_UTIL_ATOMIC_SHARED_PTR_H_
#define RECON_UTIL_ATOMIC_SHARED_PTR_H_

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

namespace recon {

template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  explicit AtomicSharedPtr(std::shared_ptr<T> initial)
      : value_(std::move(initial)) {}

  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

  /// Pins and returns the current value.
  std::shared_ptr<T> Load() const {
    Lock();
    std::shared_ptr<T> pinned = value_;
    Unlock();
    return pinned;
  }

  /// Publishes `next`. The previous value's reference is dropped outside
  /// the critical section, so even a last-reference destructor never runs
  /// under the lock.
  void Store(std::shared_ptr<T> next) {
    Lock();
    value_.swap(next);
    Unlock();
  }

 private:
  void Lock() const {
    int spins = 0;
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // The critical sections are tiny; brief spinning wins, but yield
      // eventually in case the holder was descheduled.
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> value_;  // Guarded by locked_.
};

}  // namespace recon

#endif  // RECON_UTIL_ATOMIC_SHARED_PTR_H_
