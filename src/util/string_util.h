// Basic string helpers shared across the library.

#ifndef RECON_UTIL_STRING_UTIL_H_
#define RECON_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace recon {

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any ASCII whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Splits into maximal alphanumeric token runs, lowercased.
/// "Dong, X." -> {"dong", "x"}.
std::vector<std::string> Tokenize(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character is an ASCII digit (and the string is non-empty).
bool IsDigits(std::string_view s);

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace recon

#endif  // RECON_UTIL_STRING_UTIL_H_
