// A power-of-two ring buffer deque for trivially copyable elements.
//
// Built for the fixed-point solver's active-node queue: std::deque allocates
// and frees fixed-size chunks as the queue breathes with every propagation
// wave, which shows up as allocator traffic in perf_fixedpoint. RingDeque
// keeps one contiguous buffer that only ever grows (doubling), so steady-
// state push/pop is a store, a load, and a mask.

#ifndef RECON_UTIL_RING_BUFFER_H_
#define RECON_UTIL_RING_BUFFER_H_

#include <cstddef>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace recon {

/// Double-ended queue over a single power-of-two buffer. Indexing is
/// front-relative: (*this)[0] is the element pop_front would return.
template <typename T>
class RingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingDeque relinearizes with plain copies");

 public:
  explicit RingDeque(size_t initial_capacity = 0) {
    if (initial_capacity > 0) buffer_.resize(CapacityFor(initial_capacity));
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  const T& operator[](size_t i) const {
    return buffer_[(head_ + i) & (buffer_.size() - 1)];
  }

  void push_back(const T& value) {
    if (size_ == buffer_.size()) Grow();
    buffer_[(head_ + size_) & (buffer_.size() - 1)] = value;
    ++size_;
  }

  void push_front(const T& value) {
    if (size_ == buffer_.size()) Grow();
    head_ = (head_ + buffer_.size() - 1) & (buffer_.size() - 1);
    buffer_[head_] = value;
    ++size_;
  }

  T pop_front() {
    RECON_CHECK(size_ > 0) << "pop_front on empty RingDeque";
    const T value = buffer_[head_];
    head_ = (head_ + 1) & (buffer_.size() - 1);
    --size_;
    return value;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  size_t capacity() const { return buffer_.size(); }

 private:
  static size_t CapacityFor(size_t n) {
    size_t capacity = kMinCapacity;
    while (capacity < n) capacity <<= 1;
    return capacity;
  }

  void Grow() {
    std::vector<T> grown(buffer_.empty() ? kMinCapacity : buffer_.size() * 2);
    for (size_t i = 0; i < size_; ++i) grown[i] = (*this)[i];
    buffer_ = std::move(grown);
    head_ = 0;
  }

  static constexpr size_t kMinCapacity = 16;

  std::vector<T> buffer_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace recon

#endif  // RECON_UTIL_RING_BUFFER_H_
