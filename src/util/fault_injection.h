// Deterministic fault injection for the budget/cancellation subsystem.
// Tests only: nothing under src/ includes this header; it exists so every
// degradation path (each StopReason at each pipeline phase) is
// unit-testable without timing flakiness. Install via
// ReconcilerOptions::probe_hook.

#ifndef RECON_UTIL_FAULT_INJECTION_H_
#define RECON_UTIL_FAULT_INJECTION_H_

#include <cstdint>

#include "util/budget.h"

namespace recon {

/// Fires a chosen StopReason at the Nth probe of a chosen probe point:
/// deterministic by construction, because probe indices depend only on the
/// input and the configuration, never on wall time or scheduling (the
/// probe-point contract, DESIGN.md §10).
class FaultInjector : public ProbeHook {
 public:
  /// Fire `reason` at the `fire_at`-th probe (0-based) of `point`. Sticky:
  /// every later probe of `point` fires too, so the pipeline stops at the
  /// first one it actually reaches.
  FaultInjector(ProbePoint point, int64_t fire_at, StopReason reason)
      : point_(point), fire_at_(fire_at), reason_(reason) {}

  StopReason OnProbe(ProbePoint point, int64_t index) override {
    ++seen_[static_cast<int>(point)];
    if (point == point_ && index >= fire_at_) {
      ++fired_;
      return reason_;
    }
    return StopReason::kConverged;
  }

  /// Times the injected fault was returned (the tracker stops the run at
  /// the first, so this is normally 0 or 1).
  int64_t fired() const { return fired_; }
  /// Probes observed at `point` (for asserting a phase was reached).
  int64_t seen(ProbePoint point) const {
    return seen_[static_cast<int>(point)];
  }

 private:
  const ProbePoint point_;
  const int64_t fire_at_;
  const StopReason reason_;
  int64_t fired_ = 0;
  int64_t seen_[kNumProbePoints] = {};
};

/// Records probe traffic without ever injecting: for asserting which
/// phases probe (and how often) on a healthy run.
class ProbeRecorder : public ProbeHook {
 public:
  StopReason OnProbe(ProbePoint point, int64_t index) override {
    (void)index;
    ++seen_[static_cast<int>(point)];
    return StopReason::kConverged;
  }

  int64_t seen(ProbePoint point) const {
    return seen_[static_cast<int>(point)];
  }

 private:
  int64_t seen_[kNumProbePoints] = {};
};

}  // namespace recon

#endif  // RECON_UTIL_FAULT_INJECTION_H_
