// Deterministic fault injection.
//
// Two layers share this header:
//   * The budget/cancellation layer (FaultInjector / ProbeRecorder):
//     tests-only, installed via ReconcilerOptions::probe_hook, fires a
//     chosen StopReason at a chosen pipeline probe (DESIGN.md §10).
//   * The durable-I/O layer (IoFaultHook / IoFaultInjector): threaded
//     through every WAL and checkpoint write of the service durability
//     subsystem (DESIGN.md §15) via DurabilityOptions::io_fault, so crash
//     recovery is testable at every individual I/O operation — torn tails,
//     short writes, failed fsyncs, crashes mid-checkpoint — without
//     actually killing the process. Production leaves the hook null; the
//     fast path is one pointer test per durable op.

#ifndef RECON_UTIL_FAULT_INJECTION_H_
#define RECON_UTIL_FAULT_INJECTION_H_

#include <cstdint>

#include "util/budget.h"

namespace recon {

/// Fires a chosen StopReason at the Nth probe of a chosen probe point:
/// deterministic by construction, because probe indices depend only on the
/// input and the configuration, never on wall time or scheduling (the
/// probe-point contract, DESIGN.md §10).
class FaultInjector : public ProbeHook {
 public:
  /// Fire `reason` at the `fire_at`-th probe (0-based) of `point`. Sticky:
  /// every later probe of `point` fires too, so the pipeline stops at the
  /// first one it actually reaches.
  FaultInjector(ProbePoint point, int64_t fire_at, StopReason reason)
      : point_(point), fire_at_(fire_at), reason_(reason) {}

  StopReason OnProbe(ProbePoint point, int64_t index) override {
    ++seen_[static_cast<int>(point)];
    if (point == point_ && index >= fire_at_) {
      ++fired_;
      return reason_;
    }
    return StopReason::kConverged;
  }

  /// Times the injected fault was returned (the tracker stops the run at
  /// the first, so this is normally 0 or 1).
  int64_t fired() const { return fired_; }
  /// Probes observed at `point` (for asserting a phase was reached).
  int64_t seen(ProbePoint point) const {
    return seen_[static_cast<int>(point)];
  }

 private:
  const ProbePoint point_;
  const int64_t fire_at_;
  const StopReason reason_;
  int64_t fired_ = 0;
  int64_t seen_[kNumProbePoints] = {};
};

/// Records probe traffic without ever injecting: for asserting which
/// phases probe (and how often) on a healthy run.
class ProbeRecorder : public ProbeHook {
 public:
  StopReason OnProbe(ProbePoint point, int64_t index) override {
    (void)index;
    ++seen_[static_cast<int>(point)];
    return StopReason::kConverged;
  }

  int64_t seen(ProbePoint point) const {
    return seen_[static_cast<int>(point)];
  }

 private:
  int64_t seen_[kNumProbePoints] = {};
};

// ---------------------------------------------------------------------------
// Durable-I/O fault layer (service WAL + checkpoints, DESIGN.md §15).
// ---------------------------------------------------------------------------

/// Every durable-storage operation the WAL and checkpoint writers perform.
/// All durable I/O happens on the ingest thread under the service's ingest
/// mutex, so for a given workload the op sequence — and therefore each op's
/// global index — is deterministic: a fault sweep over indices 0..N-1
/// exercises every crash point exactly once.
enum class IoOp {
  kWalCreate = 0,      ///< Create a WAL segment and write its header.
  kWalAppend,          ///< Append one WAL record frame.
  kWalSync,            ///< fsync the WAL file.
  kCheckpointWrite,    ///< Write the checkpoint temp file.
  kCheckpointSync,     ///< fsync the checkpoint temp file.
  kCheckpointRename,   ///< Atomically rename the temp file into place.
  kDirSync,            ///< fsync the data directory (persist renames/links).
  kRemove,             ///< Unlink a stale WAL segment or checkpoint.
};
inline constexpr int kNumIoOps = 8;

inline const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kWalCreate: return "wal-create";
    case IoOp::kWalAppend: return "wal-append";
    case IoOp::kWalSync: return "wal-sync";
    case IoOp::kCheckpointWrite: return "checkpoint-write";
    case IoOp::kCheckpointSync: return "checkpoint-sync";
    case IoOp::kCheckpointRename: return "checkpoint-rename";
    case IoOp::kDirSync: return "dir-sync";
    case IoOp::kRemove: return "remove";
  }
  return "unknown";
}

/// What the hook tells the I/O layer to do for one operation.
enum class IoFault {
  kNone = 0,    ///< Perform the op normally.
  kCrash,       ///< Simulated crash *before* the op: nothing reaches disk.
  kTornWrite,   ///< Write roughly half the payload, then simulated crash —
                ///< the on-disk tail is torn mid-record.
  kError,       ///< The op fails (EIO-style: short write, failed fsync)
                ///< but the process lives. Not sticky at the hook.
};

/// Consulted before every durable I/O op. Return kNone to proceed.
class IoFaultHook {
 public:
  virtual ~IoFaultHook() = default;
  virtual IoFault OnIo(IoOp op) = 0;
};

/// Fires a chosen IoFault at the `fire_at`-th durable I/O op (0-based,
/// counted across all op kinds). Crash-kind faults are sticky: once a
/// simulated crash fires, every later op also "crashes", because a dead
/// process performs no I/O — the service degrades to rejecting writes and
/// the test restarts from the surviving files. kError fires exactly once.
class IoFaultInjector : public IoFaultHook {
 public:
  IoFaultInjector(IoFault fault, int64_t fire_at)
      : fault_(fault), fire_at_(fire_at) {}

  IoFault OnIo(IoOp op) override {
    const int64_t index = ops_++;
    ++seen_[static_cast<int>(op)];
    if (crashed_) return IoFault::kCrash;
    if (index == fire_at_ && fault_ != IoFault::kNone) {
      ++fired_;
      if (fault_ == IoFault::kCrash || fault_ == IoFault::kTornWrite) {
        crashed_ = true;
      }
      return fault_;
    }
    return IoFault::kNone;
  }

  /// Total durable ops observed — run once with fault kNone to size a
  /// crash sweep (every index in [0, ops()) is a distinct fault point).
  int64_t ops() const { return ops_; }
  /// Times the configured fault was injected (0 or 1).
  int64_t fired() const { return fired_; }
  /// Ops observed of one kind (for asserting a path was reached).
  int64_t seen(IoOp op) const { return seen_[static_cast<int>(op)]; }
  /// True once a crash-kind fault has fired.
  bool crashed() const { return crashed_; }

 private:
  const IoFault fault_;
  const int64_t fire_at_;
  int64_t ops_ = 0;
  int64_t fired_ = 0;
  bool crashed_ = false;
  int64_t seen_[kNumIoOps] = {};
};

}  // namespace recon

#endif  // RECON_UTIL_FAULT_INJECTION_H_
