// Email-address parsing, email-email similarity, and the cross-attribute
// name-vs-email comparator central to the paper's Person reconciliation
// ("stonebraker@csail.mit.edu" supports "Stonebraker, M.").

#ifndef RECON_STRSIM_EMAIL_H_
#define RECON_STRSIM_EMAIL_H_

#include <string>
#include <string_view>

#include "strsim/person_name.h"

namespace recon::strsim {

/// A parsed email address, lowercased. A string without '@' is treated as a
/// bare account with an empty server.
struct EmailAddress {
  std::string account;
  std::string server;

  bool empty() const { return account.empty() && server.empty(); }
  std::string ToString() const {
    return server.empty() ? account : account + "@" + server;
  }
};

/// Parses `raw` into account and server, lowercasing both.
EmailAddress ParseEmail(std::string_view raw);

/// Similarity of two email addresses in [0, 1]. Exact match is 1.0; the
/// same account on different servers scores high (people migrate servers);
/// near-equal accounts catch typos.
double EmailSimilarity(const EmailAddress& a, const EmailAddress& b);
double EmailSimilarity(std::string_view a, std::string_view b);

/// Evidence in [0, 1] that `email`'s account encodes `name`: contains the
/// last name, matches first/last initial patterns ("repstein", "epstein.r",
/// "robert.epstein"), equals a (canonicalized) first name or nickname, etc.
double NameEmailSimilarity(const PersonName& name, const EmailAddress& email);
double NameEmailSimilarity(std::string_view name, std::string_view email);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_EMAIL_H_
