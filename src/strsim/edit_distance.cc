#include "strsim/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace recon::strsim {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0) return m;

  // Single-row DP; `row[j]` holds the distance between a-prefix (current i)
  // and b-prefix of length j.
  std::vector<int> row(n + 1);
  for (int j = 0; j <= n; ++j) row[j] = j;
  for (int i = 1; i <= m; ++i) {
    int diagonal = row[0];  // row[i-1][0]
    row[0] = i;
    for (int j = 1; j <= n; ++j) {
      int above = row[j];
      int cost = (b[i - 1] == a[j - 1]) ? 0 : 1;
      row[j] = std::min({above + 1, row[j - 1] + 1, diagonal + cost});
      diagonal = above;
    }
  }
  return row[n];
}

int BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                               int bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (m - n > bound) return bound + 1;
  if (n == 0) return m;

  std::vector<int> row(n + 1);
  for (int j = 0; j <= n; ++j) row[j] = j;
  for (int i = 1; i <= m; ++i) {
    int diagonal = row[0];
    row[0] = i;
    int row_min = row[0];
    for (int j = 1; j <= n; ++j) {
      int above = row[j];
      int cost = (b[i - 1] == a[j - 1]) ? 0 : 1;
      row[j] = std::min({above + 1, row[j - 1] + 1, diagonal + cost});
      diagonal = above;
      row_min = std::min(row_min, row[j]);
    }
    if (row_min > bound) return bound + 1;
  }
  return std::min(row[n], bound + 1);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace recon::strsim
