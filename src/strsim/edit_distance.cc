#include "strsim/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "strsim/bitparallel.h"
#include "strsim/simd_dispatch.h"

namespace recon::strsim {

namespace {

// Row scratch for the scalar DP: a stack buffer covers the common case,
// a thread-local vector the rest — no per-call heap allocation either way.
constexpr int kStackRow = 128;

int* RowScratch(int n, int* stack_row) {
  if (n < kStackRow) return stack_row;
  thread_local std::vector<int> row;
  if (static_cast<int>(row.size()) < n + 1) row.resize(n + 1);
  return row.data();
}

}  // namespace

int ScalarLevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0) return m;

  // Single-row DP; `row[j]` holds the distance between a-prefix (current i)
  // and b-prefix of length j.
  int stack_row[kStackRow];
  int* row = RowScratch(n, stack_row);
  for (int j = 0; j <= n; ++j) row[j] = j;
  for (int i = 1; i <= m; ++i) {
    int diagonal = row[0];  // row[i-1][0]
    row[0] = i;
    for (int j = 1; j <= n; ++j) {
      int above = row[j];
      int cost = (b[i - 1] == a[j - 1]) ? 0 : 1;
      row[j] = std::min({above + 1, row[j - 1] + 1, diagonal + cost});
      diagonal = above;
    }
  }
  return row[n];
}

int ScalarBoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                     int bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (m - n > bound) return bound + 1;
  if (n == 0) return m;

  int stack_row[kStackRow];
  int* row = RowScratch(n, stack_row);
  for (int j = 0; j <= n; ++j) row[j] = j;
  for (int i = 1; i <= m; ++i) {
    int diagonal = row[0];
    row[0] = i;
    int row_min = row[0];
    for (int j = 1; j <= n; ++j) {
      int above = row[j];
      int cost = (b[i - 1] == a[j - 1]) ? 0 : 1;
      row[j] = std::min({above + 1, row[j - 1] + 1, diagonal + cost});
      diagonal = above;
      row_min = std::min(row_min, row[j]);
    }
    if (row_min > bound) return bound + 1;
  }
  return std::min(row[n], bound + 1);
}

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (ActiveSimdLevel() == SimdLevel::kScalar) {
    return ScalarLevenshteinDistance(a, b);
  }
  return MyersLevenshteinDistance(a, b);
}

int BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                               int bound) {
  if (ActiveSimdLevel() == SimdLevel::kScalar) {
    return ScalarBoundedLevenshteinDistance(a, b, bound);
  }
  return MyersBoundedLevenshteinDistance(a, b, bound);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace recon::strsim
