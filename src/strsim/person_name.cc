#include "strsim/person_name.h"

#include <algorithm>
#include <unordered_map>

#include "strsim/jaro_winkler.h"
#include "util/string_util.h"

namespace recon::strsim {

namespace {

// Similarity credit for given-name component matches that are compatible
// but not literally equal full names.
constexpr double kFullVsInitialMatch = 0.95;
constexpr double kInitialVsInitialMatch = 0.85;

// Thresholds used by the compatibility / contradiction predicates.
constexpr double kSameNameThreshold = 0.95;
constexpr double kDifferentNameThreshold = 0.70;
constexpr double kCompatibleLastThreshold = 0.75;
constexpr double kCompatibleGivenThreshold = 0.70;

const std::unordered_map<std::string, std::string>& NicknameMap() {
  static const auto* map = new std::unordered_map<std::string, std::string>{
      {"mike", "michael"},    {"mick", "michael"},
      {"bob", "robert"},      {"rob", "robert"},
      {"bobby", "robert"},    {"bill", "william"},
      {"will", "william"},    {"billy", "william"},
      {"dick", "richard"},    {"rick", "richard"},
      {"rich", "richard"},    {"jim", "james"},
      {"jimmy", "james"},     {"tom", "thomas"},
      {"tommy", "thomas"},    {"dave", "david"},
      {"dan", "daniel"},      {"danny", "daniel"},
      {"joe", "joseph"},      {"joey", "joseph"},
      {"chris", "christopher"}, {"kate", "katherine"},
      {"katie", "katherine"}, {"kathy", "katherine"},
      {"liz", "elizabeth"},   {"beth", "elizabeth"},
      {"betty", "elizabeth"}, {"sue", "susan"},
      {"andy", "andrew"},     {"drew", "andrew"},
      {"tony", "anthony"},    {"steve", "steven"},
      {"ed", "edward"},       {"eddie", "edward"},
      {"ted", "theodore"},    {"fred", "frederick"},
      {"sam", "samuel"},      {"alex", "alexander"},
      {"ben", "benjamin"},    {"matt", "matthew"},
      {"nick", "nicholas"},   {"pete", "peter"},
      {"ron", "ronald"},      {"ken", "kenneth"},
      {"greg", "gregory"},    {"jeff", "jeffrey"},
      {"jen", "jennifer"},    {"jenny", "jennifer"},
      {"peggy", "margaret"},  {"meg", "margaret"},
      {"maggie", "margaret"}, {"gene", "eugene"},
      {"larry", "lawrence"},  {"harry", "harold"},
      {"jack", "john"},       {"johnny", "john"},
      {"don", "donald"},      {"ray", "raymond"},
      {"vicky", "victoria"},  {"trish", "patricia"},
  };
  return *map;
}

// Appends the given-name components encoded by one raw token.
// "Robert" -> full "robert"; "S." -> initial "s"; "R.S." -> initials "r","s".
void AppendGivenToken(std::string_view token,
                      std::vector<GivenName>& out) {
  const bool had_dot = token.find('.') != std::string_view::npos;
  std::string letters;
  for (char c : token) {
    if (c != '.' && c != ',') letters.push_back(c);
  }
  letters = ToLower(letters);
  if (letters.empty()) return;
  if (had_dot && letters.size() >= 2 && letters.size() <= 3) {
    // Packed initials such as "R.S." or "J.E.B".
    for (char c : letters) out.push_back({std::string(1, c), true});
  } else if (letters.size() == 1) {
    out.push_back({letters, true});
  } else {
    out.push_back({letters, false});
  }
}

std::string StripTrailingPunct(std::string_view s) {
  while (!s.empty() && (s.back() == '.' || s.back() == ',')) {
    s.remove_suffix(1);
  }
  return std::string(s);
}

// Two complete name components (full given names, or last names) either
// agree up to a typo or they are different names: "Meixia" is not "Mei",
// "Romero" is not "Compton", no matter how charitable Jaro-Winkler feels
// about short strings or shared letters. Scores below the typo band are
// crushed.
double CompleteComponentSimilarity(const std::string& a,
                                   const std::string& b) {
  if (a == b) return 1.0;
  const double jw = JaroWinklerSimilarity(a, b);
  constexpr double kTypoBand = 0.93;
  return jw >= kTypoBand ? jw : 0.5 * jw;
}

// Similarity of two aligned given-name components.
double GivenComponentSimilarity(const GivenName& a, const GivenName& b) {
  if (!a.is_initial && !b.is_initial) {
    return CompleteComponentSimilarity(CanonicalGivenName(a.text),
                                       CanonicalGivenName(b.text));
  }
  if (a.is_initial && b.is_initial) {
    return a.text == b.text ? kInitialVsInitialMatch : 0.0;
  }
  const GivenName& initial = a.is_initial ? a : b;
  const GivenName& full = a.is_initial ? b : a;
  // Match the initial against both the literal and the canonical full name
  // ("B." matches "Bob" directly; "R." matches "Bob" via "robert").
  if (!full.text.empty() && full.text[0] == initial.text[0]) {
    return kFullVsInitialMatch;
  }
  const std::string canonical = CanonicalGivenName(full.text);
  if (!canonical.empty() && canonical[0] == initial.text[0]) {
    return kFullVsInitialMatch;
  }
  return 0.0;
}

// Mean similarity of positionally aligned given-name lists. Extra trailing
// components on one side (e.g. a middle initial the other reference lacks)
// are treated as missing information, not as disagreement.
double AlignedGivenSimilarity(const std::vector<GivenName>& a,
                              const std::vector<GivenName>& b) {
  const size_t aligned = std::min(a.size(), b.size());
  if (aligned == 0) return -1.0;  // Signals "no comparable given names".
  double total = 0;
  for (size_t i = 0; i < aligned; ++i) {
    total += GivenComponentSimilarity(a[i], b[i]);
  }
  return total / static_cast<double>(aligned);
}

}  // namespace

bool PersonName::HasFullGivenName() const {
  return std::any_of(given.begin(), given.end(),
                     [](const GivenName& g) { return !g.is_initial; });
}

bool PersonName::IsFullName() const {
  return !last.empty() && HasFullGivenName();
}

std::string PersonName::InitialKey() const {
  std::string key;
  if (!given.empty()) key.push_back(given[0].text[0]);
  if (!last.empty()) {
    if (!key.empty()) key.push_back(' ');
    key.append(last);
  }
  return key;
}

std::string PersonName::DebugString() const {
  std::string out;
  for (const auto& g : given) {
    if (!out.empty()) out.push_back(' ');
    out.append(g.text);
    if (g.is_initial) out.push_back('.');
  }
  out.append(" / ");
  out.append(last);
  return out;
}

PersonName ParsePersonName(std::string_view raw) {
  PersonName name;
  const std::string_view trimmed = TrimView(raw);
  if (trimmed.empty()) return name;

  const size_t comma = trimmed.find(',');
  if (comma != std::string_view::npos) {
    // "Last, First [Middle...]" or "Last, F.M."
    const std::vector<std::string> last_tokens =
        SplitWhitespace(trimmed.substr(0, comma));
    std::vector<std::string> cleaned;
    for (const auto& t : last_tokens) {
      std::string c = ToLower(StripTrailingPunct(t));
      if (!c.empty()) cleaned.push_back(std::move(c));
    }
    name.last = Join(cleaned, " ");
    for (const auto& token : SplitWhitespace(trimmed.substr(comma + 1))) {
      AppendGivenToken(token, name.given);
    }
    return name;
  }

  const std::vector<std::string> tokens = SplitWhitespace(trimmed);
  if (tokens.size() == 1) {
    name.single_token = true;
    AppendGivenToken(tokens[0], name.given);
    return name;
  }
  // "First [Middle...] Last".
  name.last = ToLower(StripTrailingPunct(tokens.back()));
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    AppendGivenToken(tokens[i], name.given);
  }
  return name;
}

std::string CanonicalGivenName(std::string_view name) {
  const std::string lower = ToLower(name);
  auto it = NicknameMap().find(lower);
  return it != NicknameMap().end() ? it->second : lower;
}

double PersonNameSimilarity(const PersonName& a, const PersonName& b) {
  const bool a_empty = a.given.empty() && a.last.empty();
  const bool b_empty = b.given.empty() && b.last.empty();
  if (a_empty || b_empty) return 0.0;

  // Single ambiguous tokens: try the token as a first name and as a last
  // name against the structured side; apply an ambiguity discount.
  if (a.single_token || b.single_token) {
    const PersonName& single = a.single_token ? a : b;
    const PersonName& other = a.single_token ? b : a;
    if (single.given.empty()) return 0.0;
    const std::string token = CanonicalGivenName(single.given[0].text);
    double best = 0;
    if (other.single_token) {
      if (!other.given.empty()) {
        best = JaroWinklerSimilarity(
            token, CanonicalGivenName(other.given[0].text));
      }
    } else {
      for (const auto& g : other.given) {
        if (g.is_initial) {
          if (!token.empty() && token[0] == g.text[0]) {
            best = std::max(best, 0.7);
          }
        } else {
          best = std::max(
              best, JaroWinklerSimilarity(token, CanonicalGivenName(g.text)));
        }
      }
      if (!other.last.empty()) {
        best = std::max(best, JaroWinklerSimilarity(token, other.last));
      }
    }
    return 0.8 * best;
  }

  const double last_sim = CompleteComponentSimilarity(a.last, b.last);
  const double given_sim = AlignedGivenSimilarity(a.given, b.given);
  if (given_sim < 0) {
    // One side has no given names at all: rely on last names alone, at
    // reduced confidence.
    return 0.75 * last_sim;
  }
  // Given names carry more weight than last names: a shared surname with
  // clearly different given names — and equally a shared given name with a
  // different surname — must score below the range where corroborating
  // evidence could tip the pair over the merge threshold.
  return 0.45 * last_sim + 0.55 * given_sim;
}

double PersonNameSimilarity(std::string_view a, std::string_view b) {
  return PersonNameSimilarity(ParsePersonName(a), ParsePersonName(b));
}

bool NamesContradict(const PersonName& a, const PersonName& b) {
  if (a.single_token || b.single_token) return false;
  const bool both_have_last = !a.last.empty() && !b.last.empty();
  const bool both_have_full_first = !a.given.empty() && !b.given.empty() &&
                                    !a.given[0].is_initial &&
                                    !b.given[0].is_initial;
  if (!both_have_last || !both_have_full_first) return false;

  const double last_sim = JaroWinklerSimilarity(a.last, b.last);
  const double first_sim =
      JaroWinklerSimilarity(CanonicalGivenName(a.given[0].text),
                            CanonicalGivenName(b.given[0].text));
  const bool same_last = last_sim >= kSameNameThreshold;
  const bool same_first = first_sim >= kSameNameThreshold;
  const bool different_last = last_sim < kDifferentNameThreshold;
  const bool different_first = first_sim < kDifferentNameThreshold;
  return (same_first && different_last) || (same_last && different_first);
}

bool NamesCompatible(const PersonName& a, const PersonName& b) {
  if (a.single_token || b.single_token) return true;
  if (!a.last.empty() && !b.last.empty()) {
    if (JaroWinklerSimilarity(a.last, b.last) < kCompatibleLastThreshold) {
      return false;
    }
  }
  const size_t aligned = std::min(a.given.size(), b.given.size());
  for (size_t i = 0; i < aligned; ++i) {
    const GivenName& ga = a.given[i];
    const GivenName& gb = b.given[i];
    if (!ga.is_initial && !gb.is_initial) {
      if (JaroWinklerSimilarity(CanonicalGivenName(ga.text),
                                CanonicalGivenName(gb.text)) <
          kCompatibleGivenThreshold) {
        return false;
      }
    } else if (GivenComponentSimilarity(ga, gb) == 0.0) {
      return false;
    }
  }
  return true;
}

}  // namespace recon::strsim
