// Runtime CPU dispatch for the string-similarity kernels (DESIGN.md §16).
//
// One process-global level, detected once at startup and optionally
// lowered (never raised) by the RECON_SIMD environment variable or
// SetSimdLevel(). Every kernel call reads the active level with a relaxed
// atomic load; the level is expected to be set before worker threads
// start scoring (reconcile_cli --no-simd, test forcing), so there is no
// ordering requirement beyond the value itself.
//
// Levels:
//   kScalar  — reference row-DP kernels, prefilter off. This is the
//              "kernels off" switch used by the differential tests and
//              identity gates; no CPU lacks it.
//   kGeneric — portable 64-bit bit-parallel kernels (Myers Levenshtein,
//              builtin popcount signatures). The NEON-safe fallback:
//              needs nothing beyond a 64-bit ALU.
//   kSse42   — bit-parallel kernels + hardware POPCNT for the signature
//              sweeps (x86 with SSE4.2/POPCNT).
//   kAvx2    — adds the 256-bit XOR+popcount batch signature sweep.

#ifndef RECON_STRSIM_SIMD_DISPATCH_H_
#define RECON_STRSIM_SIMD_DISPATCH_H_

#include <string_view>

namespace recon::strsim {

enum class SimdLevel : int {
  kScalar = 0,
  kGeneric = 1,
  kSse42 = 2,
  kAvx2 = 3,
};

/// Highest level the running CPU supports (computed once, cached).
SimdLevel DetectedSimdLevel();

/// The level kernels actually use. Initialized on first use to
/// DetectedSimdLevel() clamped by RECON_SIMD (values: scalar, generic,
/// sse42, avx2, auto; unknown values are ignored).
SimdLevel ActiveSimdLevel();

/// Forces the active level, clamped to DetectedSimdLevel(). Returns the
/// level actually installed. Intended for startup flags (--no-simd) and
/// the differential tests; not thread-safe against in-flight scoring.
SimdLevel SetSimdLevel(SimdLevel level);

/// Re-reads RECON_SIMD and resets the active level accordingly (tests).
SimdLevel ReinitSimdLevelFromEnv();

/// "scalar" / "generic" / "sse42" / "avx2".
const char* SimdLevelName(SimdLevel level);

/// Parses a level name (as accepted by RECON_SIMD). Returns false and
/// leaves `out` untouched on unknown input. "auto" parses to the
/// detected level.
bool ParseSimdLevelName(std::string_view name, SimdLevel* out);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_SIMD_DISPATCH_H_
