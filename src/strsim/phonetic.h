// Phonetic codes for name matching — Soundex, the classic record-linkage
// device (Newcombe et al. 1959, the paper's reference [29], matched vital
// records with it). Used as an optional blocking key and a last-resort
// name comparator for badly misspelled names.

#ifndef RECON_STRSIM_PHONETIC_H_
#define RECON_STRSIM_PHONETIC_H_

#include <string>
#include <string_view>

namespace recon::strsim {

/// American Soundex: first letter + three digits ("Robert" -> "R163",
/// "Rupert" -> "R163", "Ashcraft" -> "A261"). Returns "" for input with no
/// ASCII letters.
std::string Soundex(std::string_view name);

/// True when both names have non-empty, equal Soundex codes.
bool SoundexEqual(std::string_view a, std::string_view b);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_PHONETIC_H_
