#include "strsim/tokens.h"

#include <algorithm>
#include <set>

#include "strsim/jaro_winkler.h"
#include "util/string_util.h"

namespace recon::strsim {

namespace {

// Returns (|A ∩ B|, |A|, |B|) over de-duplicated token sets.
struct SetCounts {
  size_t intersection;
  size_t size_a;
  size_t size_b;
};

SetCounts CountSets(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  std::set<std::string_view> sa(a.begin(), a.end());
  std::set<std::string_view> sb(b.begin(), b.end());
  size_t common = 0;
  for (const auto& t : sa) {
    if (sb.count(t) > 0) ++common;
  }
  return {common, sa.size(), sb.size()};
}

}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  SetCounts c = CountSets(a, b);
  const size_t unions = c.size_a + c.size_b - c.intersection;
  if (unions == 0) return 1.0;
  return static_cast<double>(c.intersection) / static_cast<double>(unions);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  SetCounts c = CountSets(a, b);
  if (c.size_a + c.size_b == 0) return 1.0;
  return 2.0 * static_cast<double>(c.intersection) /
         static_cast<double>(c.size_a + c.size_b);
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  SetCounts c = CountSets(a, b);
  const size_t smaller = std::min(c.size_a, c.size_b);
  if (smaller == 0) return (c.size_a == c.size_b) ? 1.0 : 0.0;
  return static_cast<double>(c.intersection) / static_cast<double>(smaller);
}

std::vector<std::string> CharacterNgrams(std::string_view s, int n) {
  std::vector<std::string> grams;
  if (s.empty() || n <= 0) return grams;
  std::string padded;
  padded.reserve(s.size() + 2 * (n - 1));
  padded.append(n - 1, '#');
  padded.append(ToLower(s));
  padded.append(n - 1, '$');
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, n));
  }
  return grams;
}

double NgramSimilarity(std::string_view a, std::string_view b, int n) {
  if (a.empty() && b.empty()) return 1.0;
  return JaccardSimilarity(CharacterNgrams(a, n), CharacterNgrams(b, n));
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double total = 0;
  for (const auto& ta : a) {
    double best = 0;
    for (const auto& tb : b) {
      best = std::max(best, JaroWinklerSimilarity(ta, tb));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  return 0.5 * (MongeElkanSimilarity(a, b) + MongeElkanSimilarity(b, a));
}

}  // namespace recon::strsim
