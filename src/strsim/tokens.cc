#include "strsim/tokens.h"

#include <algorithm>
#include <set>

#include "strsim/jaro_winkler.h"
#include "util/string_util.h"

namespace recon::strsim {

namespace {

// Returns (|A ∩ B|, |A|, |B|) over de-duplicated token sets.
struct SetCounts {
  size_t intersection;
  size_t size_a;
  size_t size_b;
};

SetCounts CountSets(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  std::set<std::string_view> sa(a.begin(), a.end());
  std::set<std::string_view> sb(b.begin(), b.end());
  size_t common = 0;
  for (const auto& t : sa) {
    if (sb.count(t) > 0) ++common;
  }
  return {common, sa.size(), sb.size()};
}

}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  SetCounts c = CountSets(a, b);
  const size_t unions = c.size_a + c.size_b - c.intersection;
  if (unions == 0) return 1.0;
  return static_cast<double>(c.intersection) / static_cast<double>(unions);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  SetCounts c = CountSets(a, b);
  if (c.size_a + c.size_b == 0) return 1.0;
  return 2.0 * static_cast<double>(c.intersection) /
         static_cast<double>(c.size_a + c.size_b);
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  SetCounts c = CountSets(a, b);
  const size_t smaller = std::min(c.size_a, c.size_b);
  if (smaller == 0) return (c.size_a == c.size_b) ? 1.0 : 0.0;
  return static_cast<double>(c.intersection) / static_cast<double>(smaller);
}

std::vector<std::string> CharacterNgrams(std::string_view s, int n) {
  std::vector<std::string> grams;
  if (s.empty() || n <= 0) return grams;
  std::string padded;
  padded.reserve(s.size() + 2 * (n - 1));
  padded.append(n - 1, '#');
  padded.append(ToLower(s));
  padded.append(n - 1, '$');
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, n));
  }
  return grams;
}

double NgramSimilarity(std::string_view a, std::string_view b, int n) {
  if (a.empty() && b.empty()) return 1.0;
  return NgramSetJaccard(BuildNgramSet(a, n), BuildNgramSet(b, n));
}

namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

NgramSet BuildNgramSet(std::string_view s, int n) {
  NgramSet set;
  set.n = n;
  if (s.empty() || n <= 0) return set;
  set.padded.reserve(s.size() + 2 * (n - 1));
  set.padded.append(n - 1, '#');
  set.padded.append(ToLower(s));
  set.padded.append(n - 1, '$');
  const size_t count = set.padded.size() - n + 1;
  set.grams.reserve(count);
  const std::string_view padded(set.padded);
  for (size_t i = 0; i < count; ++i) {
    set.grams.emplace_back(Fnv1a(padded.substr(i, n)),
                           static_cast<uint32_t>(i));
  }
  // Order by (hash, gram text) and deduplicate by the grams themselves, so
  // two distinct grams that collide in hash both survive.
  auto gram_at = [&](const std::pair<uint64_t, uint32_t>& g) {
    return padded.substr(g.second, n);
  };
  std::sort(set.grams.begin(), set.grams.end(),
            [&](const auto& x, const auto& y) {
              if (x.first != y.first) return x.first < y.first;
              return gram_at(x) < gram_at(y);
            });
  set.grams.erase(std::unique(set.grams.begin(), set.grams.end(),
                              [&](const auto& x, const auto& y) {
                                return x.first == y.first &&
                                       gram_at(x) == gram_at(y);
                              }),
                  set.grams.end());
  return set;
}

double NgramSetJaccard(const NgramSet& a, const NgramSet& b) {
  if (a.grams.empty() && b.grams.empty()) return 1.0;
  // Merge walk over the two sorted sets. Both are ordered by (hash, gram
  // text), so comparing hashes first and falling back to the gram bytes on
  // equal hashes is a total order — collision-safe set intersection.
  size_t i = 0;
  size_t j = 0;
  size_t common = 0;
  while (i < a.grams.size() && j < b.grams.size()) {
    const uint64_t ha = a.grams[i].first;
    const uint64_t hb = b.grams[j].first;
    if (ha < hb) {
      ++i;
    } else if (hb < ha) {
      ++j;
    } else {
      const std::string_view ga = a.gram(i);
      const std::string_view gb = b.gram(j);
      if (ga == gb) {
        ++common;
        ++i;
        ++j;
      } else if (ga < gb) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  const size_t unions = a.grams.size() + b.grams.size() - common;
  return static_cast<double>(common) / static_cast<double>(unions);
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double total = 0;
  for (const auto& ta : a) {
    double best = 0;
    for (const auto& tb : b) {
      best = std::max(best, JaroWinklerSimilarity(ta, tb));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  return 0.5 * (MongeElkanSimilarity(a, b) + MongeElkanSimilarity(b, a));
}

}  // namespace recon::strsim
