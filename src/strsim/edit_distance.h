// Levenshtein edit distance and derived normalized similarity.

#ifndef RECON_STRSIM_EDIT_DISTANCE_H_
#define RECON_STRSIM_EDIT_DISTANCE_H_

#include <string_view>

namespace recon::strsim {

/// Levenshtein distance (unit-cost insert / delete / substitute).
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with early exit: returns `bound + 1` as soon as the
/// distance provably exceeds `bound`. Useful for candidate filtering.
int BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                               int bound);

/// Normalized edit similarity: 1 - distance / max(|a|, |b|); 1.0 when both
/// strings are empty. Always in [0, 1].
double EditSimilarity(std::string_view a, std::string_view b);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_EDIT_DISTANCE_H_
