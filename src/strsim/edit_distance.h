// Levenshtein edit distance and derived normalized similarity.
//
// The public entry points dispatch on the active SIMD level (DESIGN.md
// §16): the Myers bit-parallel kernels at kGeneric and above, the scalar
// row-DP reference below. The Scalar* variants are exported so the
// differential tests and microbenches can pin the kernels against the
// reference regardless of the active level.

#ifndef RECON_STRSIM_EDIT_DISTANCE_H_
#define RECON_STRSIM_EDIT_DISTANCE_H_

#include <string_view>

namespace recon::strsim {

/// Levenshtein distance (unit-cost insert / delete / substitute).
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with early exit: returns `bound + 1` as soon as the
/// distance provably exceeds `bound`. Useful for candidate filtering.
int BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                               int bound);

/// Reference row-DP implementations (allocation-free: stack row for short
/// strings, thread-local scratch beyond). Always available; the kernels
/// must agree with these bit-for-bit.
int ScalarLevenshteinDistance(std::string_view a, std::string_view b);
int ScalarBoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                     int bound);

/// Normalized edit similarity: 1 - distance / max(|a|, |b|); 1.0 when both
/// strings are empty. Always in [0, 1].
double EditSimilarity(std::string_view a, std::string_view b);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_EDIT_DISTANCE_H_
