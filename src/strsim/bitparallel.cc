#include "strsim/bitparallel.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace recon::strsim {

namespace {

constexpr uint64_t kHighBit = 1ULL << 63;

// One Myers column step over one 64-row word. `eq` is the PEQ match mask
// for the current text character, `hin` the horizontal delta entering the
// word's top row (-1/0/+1), `out_mask` selects the row whose horizontal
// delta is returned (bit 63 to chain words; bit (m-1)%64 in the last word
// to maintain the row-m score). pv/mv are the word's vertical +1/-1 delta
// vectors. Formulation follows Hyyrö's block variant as used by edlib.
inline int ColumnStep(uint64_t eq, int hin, uint64_t* pv, uint64_t* mv,
                      uint64_t out_mask) {
  const uint64_t xv = eq | *mv;
  if (hin < 0) eq |= 1ULL;
  const uint64_t xh = (((eq & *pv) + *pv) ^ *pv) | eq;
  uint64_t ph = *mv | ~(xh | *pv);
  uint64_t mh = *pv & xh;
  int hout = 0;
  if (ph & out_mask) hout = 1;
  if (mh & out_mask) hout = -1;
  ph <<= 1;
  mh <<= 1;
  if (hin < 0) mh |= 1ULL;
  if (hin > 0) ph |= 1ULL;
  *pv = mh | ~(xv | ph);
  *mv = ph & xv;
  return hout;
}

// Single-word core (pattern length 1..64). When `bound` >= 0, returns
// bound + 1 as soon as the final distance provably exceeds it: after
// column j the distance can still drop by at most (n - j), so
// score_j - (n - j) is a valid lower bound on the result.
int MyersOneWord(std::string_view pattern, std::string_view text,
                 int bound) {
  uint64_t peq[256] = {};
  const int m = static_cast<int>(pattern.size());
  for (int i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= 1ULL << i;
  }
  uint64_t pv = ~0ULL;
  uint64_t mv = 0;
  int score = m;
  const uint64_t score_mask = 1ULL << (m - 1);
  const int n = static_cast<int>(text.size());
  for (int j = 0; j < n; ++j) {
    score += ColumnStep(peq[static_cast<unsigned char>(text[j])], 1, &pv,
                        &mv, score_mask);
    if (bound >= 0 && score - (n - 1 - j) > bound) return bound + 1;
  }
  return score;
}

// Multi-word core (pattern length > 64). Words chain horizontal deltas
// through bit 63; the last word tracks the score at row m via bit
// (m-1)%64 — bits above it hold rows past the pattern end and are inert
// (carries in the XH addition only propagate low-to-high). Thread-local
// scratch keeps the PEQ table and delta vectors allocation-free in
// steady state.
int MyersBlocked(std::string_view pattern, std::string_view text,
                 int bound) {
  const int m = static_cast<int>(pattern.size());
  const int n = static_cast<int>(text.size());
  const int words = (m + 63) / 64;

  thread_local std::vector<uint64_t> peq;    // [char * words + word]
  thread_local std::vector<uint64_t> pv;
  thread_local std::vector<uint64_t> mv;
  if (static_cast<int>(pv.size()) < words) {
    pv.resize(words);
    mv.resize(words);
  }
  if (static_cast<int>(peq.size()) < 256 * words) peq.resize(256 * words);
  std::memset(peq.data(), 0, sizeof(uint64_t) * 256 * words);
  for (int i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pattern[i]) * words + i / 64] |=
        1ULL << (i % 64);
  }
  for (int w = 0; w < words; ++w) {
    pv[w] = ~0ULL;
    mv[w] = 0;
  }

  int score = m;
  const uint64_t score_mask = 1ULL << ((m - 1) % 64);
  for (int j = 0; j < n; ++j) {
    const uint64_t* eq = &peq[static_cast<unsigned char>(text[j]) * words];
    int hin = 1;
    for (int w = 0; w + 1 < words; ++w) {
      hin = ColumnStep(eq[w], hin, &pv[w], &mv[w], kHighBit);
    }
    score += ColumnStep(eq[words - 1], hin, &pv[words - 1], &mv[words - 1],
                        score_mask);
    if (bound >= 0 && score - (n - 1 - j) > bound) return bound + 1;
  }
  return score;
}

}  // namespace

int MyersLevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return static_cast<int>(b.size());
  if (a.size() <= 64) return MyersOneWord(a, b, -1);
  return MyersBlocked(a, b, -1);
}

int MyersBoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                    int bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  // Matches the scalar reference on nonsense negative bounds too: the
  // length gap (>= 0) always "exceeds" them, so the answer is bound + 1.
  if (m - n > bound) return bound + 1;
  if (n == 0) return std::min(m, bound + 1);
  const int d = a.size() <= 64 ? MyersOneWord(a, b, bound)
                               : MyersBlocked(a, b, bound);
  return std::min(d, bound + 1);
}

}  // namespace recon::strsim
