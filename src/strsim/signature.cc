#include "strsim/signature.h"

#include <algorithm>
#include <string_view>

#include "strsim/simd_dispatch.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace recon::strsim {

namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

inline void SetBit(BitSig256* sig, uint64_t hash) {
  const unsigned bit = static_cast<unsigned>(hash & 255u);
  sig->w[bit >> 6] |= 1ULL << (bit & 63u);
}

int GenericSymDiff(const BitSig256& a, const BitSig256& b) {
  int pop = 0;
  for (int i = 0; i < 4; ++i) {
    pop += __builtin_popcountll(a.w[i] ^ b.w[i]);
  }
  return pop;
}

void GenericBatchSymDiff(const uint64_t* a, const uint64_t* b, int count,
                         int32_t* out) {
  for (int i = 0; i < count; ++i) {
    const uint64_t* pa = a + 4 * i;
    const uint64_t* pb = b + 4 * i;
    out[i] = __builtin_popcountll(pa[0] ^ pb[0]) +
             __builtin_popcountll(pa[1] ^ pb[1]) +
             __builtin_popcountll(pa[2] ^ pb[2]) +
             __builtin_popcountll(pa[3] ^ pb[3]);
  }
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("popcnt"))) int PopcntSymDiff(const BitSig256& a,
                                                    const BitSig256& b) {
  // With the popcnt target attribute the builtin lowers to the POPCNT
  // instruction instead of the bit-twiddling fallback.
  return static_cast<int>(__builtin_popcountll(a.w[0] ^ b.w[0]) +
                          __builtin_popcountll(a.w[1] ^ b.w[1]) +
                          __builtin_popcountll(a.w[2] ^ b.w[2]) +
                          __builtin_popcountll(a.w[3] ^ b.w[3]));
}

__attribute__((target("popcnt"))) void PopcntBatchSymDiff(
    const uint64_t* a, const uint64_t* b, int count, int32_t* out) {
  for (int i = 0; i < count; ++i) {
    const uint64_t* pa = a + 4 * i;
    const uint64_t* pb = b + 4 * i;
    out[i] = static_cast<int32_t>(__builtin_popcountll(pa[0] ^ pb[0]) +
                                  __builtin_popcountll(pa[1] ^ pb[1]) +
                                  __builtin_popcountll(pa[2] ^ pb[2]) +
                                  __builtin_popcountll(pa[3] ^ pb[3]));
  }
}

// One 256-bit XOR per record, popcounted with the classic nibble-LUT
// VPSHUFB + VPSADBW reduction — no per-word extracts in the loop body.
__attribute__((target("avx2"))) void Avx2BatchSymDiff(const uint64_t* a,
                                                      const uint64_t* b,
                                                      int count,
                                                      int32_t* out) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  for (int i = 0; i < count; ++i) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * i));
    const __m256i x = _mm256_xor_si256(va, vb);
    const __m256i lo = _mm256_and_si256(x, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi32(x, 4), low_mask);
    const __m256i nibbles = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                            _mm256_shuffle_epi8(lut, hi));
    const __m256i sums = _mm256_sad_epu8(nibbles, _mm256_setzero_si256());
    const __m128i folded = _mm_add_epi64(_mm256_castsi256_si128(sums),
                                         _mm256_extracti128_si256(sums, 1));
    out[i] = static_cast<int32_t>(_mm_cvtsi128_si64(folded) +
                                  _mm_extract_epi64(folded, 1));
  }
}
#endif

}  // namespace

BitSig256 GramSignature(const NgramSet& grams) {
  BitSig256 sig;
  for (const auto& [hash, offset] : grams.grams) {
    (void)offset;
    SetBit(&sig, hash);
  }
  sig.set_size = static_cast<uint32_t>(grams.size());
  return sig;
}

BitSig256 TokenSignature(const std::vector<std::string>& tokens) {
  BitSig256 sig;
  // Collapse duplicates by byte value, matching the std::set dedup in
  // JaccardSimilarity, so set_size is the exact distinct count.
  std::vector<std::string_view> distinct(tokens.begin(), tokens.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (const std::string_view t : distinct) SetBit(&sig, Fnv1a(t));
  sig.set_size = static_cast<uint32_t>(distinct.size());
  return sig;
}

int SigSymDiffLowerBound(const BitSig256& a, const BitSig256& b) {
#if defined(__x86_64__) || defined(__i386__)
  if (ActiveSimdLevel() >= SimdLevel::kSse42) return PopcntSymDiff(a, b);
#endif
  return GenericSymDiff(a, b);
}

double SigJaccardUpperBound(const BitSig256& a, const BitSig256& b) {
  return SigJaccardUpperBoundFromPop(SigSymDiffLowerBound(a, b),
                                     a.set_size, b.set_size);
}

void BatchSigSymDiff(const uint64_t* a, const uint64_t* b, int count,
                     int32_t* out) {
#if defined(__x86_64__) || defined(__i386__)
  const SimdLevel level = ActiveSimdLevel();
  if (level >= SimdLevel::kAvx2) return Avx2BatchSymDiff(a, b, count, out);
  if (level >= SimdLevel::kSse42) {
    return PopcntBatchSymDiff(a, b, count, out);
  }
#endif
  GenericBatchSymDiff(a, b, count, out);
}

int SigEditDistanceLowerBound(const BitSig256& a, const BitSig256& b,
                              int len_a, int len_b, int q) {
  return SigEditDistanceLowerBoundFromPop(SigSymDiffLowerBound(a, b),
                                          len_a, len_b, q);
}

}  // namespace recon::strsim
