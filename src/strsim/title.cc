#include "strsim/title.h"

#include <algorithm>

#include "strsim/edit_distance.h"
#include "strsim/tfidf.h"
#include "strsim/tokens.h"
#include "util/string_util.h"

namespace recon::strsim {

std::string NormalizeTitle(std::string_view title) {
  return Join(Tokenize(title), " ");
}

TitleFeatures AnalyzeTitle(std::string_view title) {
  TitleFeatures features;
  // Tokenize(title) == Tokenize(NormalizeTitle(title)) since normalization
  // is Join(Tokenize(title), " "), so one tokenize pass serves both fields.
  features.tokens = Tokenize(title);
  features.normalized = Join(features.tokens, " ");
  return features;
}

double TitleSimilarity(std::string_view a, std::string_view b,
                       const TfIdfModel* model) {
  return TitleSimilarity(AnalyzeTitle(a), AnalyzeTitle(b), model);
}

double TitleSimilarity(const TitleFeatures& a, const TitleFeatures& b,
                       const TfIdfModel* model) {
  if (a.normalized.empty() || b.normalized.empty()) return 0.0;
  if (a.normalized == b.normalized) return 1.0;

  const double edit = EditSimilarity(a.normalized, b.normalized);
  const double token_sim = (model != nullptr)
                               ? model->Similarity(a.tokens, b.tokens)
                               : JaccardSimilarity(a.tokens, b.tokens);
  return std::clamp(std::max(edit, token_sim), 0.0, 1.0);
}

std::optional<PageRange> ParsePages(std::string_view pages) {
  // Extract the first one or two integer runs.
  int values[2] = {0, 0};
  int count = 0;
  size_t i = 0;
  while (i < pages.size() && count < 2) {
    while (i < pages.size() && (pages[i] < '0' || pages[i] > '9')) ++i;
    if (i >= pages.size()) break;
    long value = 0;
    while (i < pages.size() && pages[i] >= '0' && pages[i] <= '9') {
      value = value * 10 + (pages[i] - '0');
      if (value > 1000000) value = 1000000;
      ++i;
    }
    values[count++] = static_cast<int>(value);
  }
  if (count == 0) return std::nullopt;
  PageRange range;
  range.first = values[0];
  range.last = (count == 2) ? values[1] : values[0];
  if (range.last < range.first) std::swap(range.first, range.last);
  return range;
}

PagesFeatures AnalyzePages(std::string_view pages) {
  PagesFeatures features;
  features.range = ParsePages(pages);
  features.trimmed = std::string(Trim(pages));
  return features;
}

double PagesSimilarity(std::string_view a, std::string_view b) {
  return PagesSimilarity(AnalyzePages(a), AnalyzePages(b));
}

double PagesSimilarity(const PagesFeatures& a, const PagesFeatures& b) {
  const auto& ra = a.range;
  const auto& rb = b.range;
  if (!ra.has_value() || !rb.has_value()) {
    if (a.trimmed.empty() || b.trimmed.empty()) return 0.0;
    return a.trimmed == b.trimmed ? 1.0 : 0.0;
  }
  if (ra->first == rb->first && ra->last == rb->last) return 1.0;
  if (ra->first == rb->first) return 0.8;
  if (ra->first <= rb->last && rb->first <= ra->last) return 0.5;
  return 0.0;
}

}  // namespace recon::strsim
