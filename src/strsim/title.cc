#include "strsim/title.h"

#include <algorithm>

#include "strsim/edit_distance.h"
#include "strsim/tfidf.h"
#include "strsim/tokens.h"
#include "util/string_util.h"

namespace recon::strsim {

std::string NormalizeTitle(std::string_view title) {
  return Join(Tokenize(title), " ");
}

double TitleSimilarity(std::string_view a, std::string_view b,
                       const TfIdfModel* model) {
  const std::string na = NormalizeTitle(a);
  const std::string nb = NormalizeTitle(b);
  if (na.empty() || nb.empty()) return 0.0;
  if (na == nb) return 1.0;

  const double edit = EditSimilarity(na, nb);
  const std::vector<std::string> ta = Tokenize(na);
  const std::vector<std::string> tb = Tokenize(nb);
  const double token_sim = (model != nullptr)
                               ? model->Similarity(ta, tb)
                               : JaccardSimilarity(ta, tb);
  return std::clamp(std::max(edit, token_sim), 0.0, 1.0);
}

std::optional<PageRange> ParsePages(std::string_view pages) {
  // Extract the first one or two integer runs.
  int values[2] = {0, 0};
  int count = 0;
  size_t i = 0;
  while (i < pages.size() && count < 2) {
    while (i < pages.size() && (pages[i] < '0' || pages[i] > '9')) ++i;
    if (i >= pages.size()) break;
    long value = 0;
    while (i < pages.size() && pages[i] >= '0' && pages[i] <= '9') {
      value = value * 10 + (pages[i] - '0');
      if (value > 1000000) value = 1000000;
      ++i;
    }
    values[count++] = static_cast<int>(value);
  }
  if (count == 0) return std::nullopt;
  PageRange range;
  range.first = values[0];
  range.last = (count == 2) ? values[1] : values[0];
  if (range.last < range.first) std::swap(range.first, range.last);
  return range;
}

double PagesSimilarity(std::string_view a, std::string_view b) {
  const auto ra = ParsePages(a);
  const auto rb = ParsePages(b);
  if (!ra.has_value() || !rb.has_value()) {
    const std::string ta = Trim(a);
    const std::string tb = Trim(b);
    if (ta.empty() || tb.empty()) return 0.0;
    return ta == tb ? 1.0 : 0.0;
  }
  if (ra->first == rb->first && ra->last == rb->last) return 1.0;
  if (ra->first == rb->first) return 0.8;
  if (ra->first <= rb->last && rb->first <= ra->last) return 0.5;
  return 0.0;
}

}  // namespace recon::strsim
