// TF-IDF weighted cosine similarity over token vectors, fitted on a corpus.
//
// Used for article titles, where rare tokens should dominate the comparison
// and ubiquitous tokens ("the", "system", "data") should count little.

#ifndef RECON_STRSIM_TFIDF_H_
#define RECON_STRSIM_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace recon::strsim {

/// A sparse TF-IDF vector: token id -> weight, pre-normalized to unit L2.
struct TfIdfVector {
  std::vector<std::pair<int, double>> entries;  // Sorted by token id.
};

/// Fits IDF weights on a corpus of documents and vectorizes documents for
/// cosine comparison. Out-of-vocabulary tokens at vectorization time get the
/// default IDF of an unseen token (log(1 + N)).
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Fits document frequencies. Each document is a token vector; duplicate
  /// tokens within one document count once toward document frequency.
  void Fit(const std::vector<std::vector<std::string>>& corpus);

  /// Adds one document to the model incrementally.
  void AddDocument(const std::vector<std::string>& doc);

  /// Converts a document to a unit-normalized sparse vector.
  TfIdfVector Vectorize(const std::vector<std::string>& doc) const;

  /// Cosine similarity of two unit vectors, in [0, 1] for non-negative
  /// weights. Returns 1.0 when both vectors are empty.
  static double Cosine(const TfIdfVector& a, const TfIdfVector& b);

  /// Convenience: vectorizes both documents and returns their cosine.
  double Similarity(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const;

  int num_documents() const { return num_documents_; }
  int vocabulary_size() const { return static_cast<int>(vocab_.size()); }

 private:
  double IdfOf(int df) const;

  std::unordered_map<std::string, int> vocab_;  // token -> id
  std::vector<int> document_frequency_;         // by token id
  int num_documents_ = 0;

  // Vectorize() must map tokens to stable ids even for unseen tokens;
  // unseen tokens get synthetic negative ids unique per call.
};

}  // namespace recon::strsim

#endif  // RECON_STRSIM_TFIDF_H_
