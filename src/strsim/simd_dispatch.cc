#include "strsim/simd_dispatch.h"

#include <atomic>
#include <cstdlib>

namespace recon::strsim {

namespace {

SimdLevel DetectOnce() {
#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return SimdLevel::kAvx2;
  }
  if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt")) {
    return SimdLevel::kSse42;
  }
  return SimdLevel::kGeneric;
#else
  return SimdLevel::kGeneric;
#endif
#else
  // Non-x86 (e.g. aarch64/NEON): the bit-parallel kernels are plain
  // 64-bit integer code, so the generic level is always available.
  return SimdLevel::kGeneric;
#endif
}

SimdLevel ClampToDetected(SimdLevel level) {
  const SimdLevel cap = DetectedSimdLevel();
  return static_cast<int>(level) > static_cast<int>(cap) ? cap : level;
}

SimdLevel LevelFromEnv() {
  SimdLevel level = DetectedSimdLevel();
  if (const char* env = std::getenv("RECON_SIMD")) {
    SimdLevel parsed;
    if (ParseSimdLevelName(env, &parsed)) level = ClampToDetected(parsed);
  }
  return level;
}

std::atomic<int>& ActiveCell() {
  static std::atomic<int> cell{static_cast<int>(LevelFromEnv())};
  return cell;
}

}  // namespace

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = DetectOnce();
  return detected;
}

SimdLevel ActiveSimdLevel() {
  return static_cast<SimdLevel>(
      ActiveCell().load(std::memory_order_relaxed));
}

SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel installed = ClampToDetected(level);
  ActiveCell().store(static_cast<int>(installed), std::memory_order_relaxed);
  return installed;
}

SimdLevel ReinitSimdLevelFromEnv() {
  const SimdLevel level = LevelFromEnv();
  ActiveCell().store(static_cast<int>(level), std::memory_order_relaxed);
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kGeneric: return "generic";
    case SimdLevel::kSse42: return "sse42";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

bool ParseSimdLevelName(std::string_view name, SimdLevel* out) {
  if (name == "scalar") { *out = SimdLevel::kScalar; return true; }
  if (name == "generic") { *out = SimdLevel::kGeneric; return true; }
  if (name == "sse42") { *out = SimdLevel::kSse42; return true; }
  if (name == "avx2") { *out = SimdLevel::kAvx2; return true; }
  if (name == "auto") { *out = DetectedSimdLevel(); return true; }
  return false;
}

}  // namespace recon::strsim
