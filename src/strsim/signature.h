// Fixed-width bit signatures with provable set-similarity upper bounds
// (DESIGN.md §16).
//
// A BitSig256 sketches a set of hashable elements: each element sets one
// of 256 bits (hash mod 256) and `set_size` records the EXACT distinct
// cardinality. The one inequality everything rests on:
//
//   popcount(sig_a XOR sig_b) <= |A Δ B|
//
// Every bit set in sig_a but not sig_b is witnessed by at least one
// element of A \ B (no element of B maps there), distinct bits have
// distinct witnesses (an element sets exactly one bit), and symmetrically
// for the other side. Collisions only ever LOWER the popcount, so the
// sketch under-counts the symmetric difference — which is exactly the
// conservative direction:
//
//   Jaccard(A, B) = (|A| + |B| - |AΔB|) / (|A| + |B| + |AΔB|)
//
// is decreasing in |AΔB|, so substituting the popcount lower bound yields
// an upper bound on Jaccard. Likewise one unit edit changes at most q
// distinct q-grams on each side of the gram-set symmetric difference, so
// |AΔB| <= 2q·d_edit gives a lower bound on edit distance and hence an
// upper bound on normalized edit similarity. tests/strsim_kernel_test.cc
// asserts both bound properties directly over randomized inputs.

#ifndef RECON_STRSIM_SIGNATURE_H_
#define RECON_STRSIM_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "strsim/tokens.h"

namespace recon::strsim {

struct BitSig256 {
  uint64_t w[4] = {0, 0, 0, 0};
  /// Exact number of distinct elements the signature was built from.
  uint32_t set_size = 0;
};

/// Signature of a prebuilt n-gram set (one bit per distinct gram, keyed
/// by the set's FNV-1a gram hashes).
BitSig256 GramSignature(const NgramSet& grams);

/// Signature of a token list; duplicates are collapsed exactly as the
/// std::set-based JaccardSimilarity collapses them.
BitSig256 TokenSignature(const std::vector<std::string>& tokens);

/// popcount(a XOR b): a lower bound on |A Δ B|. Uses the active SIMD
/// dispatch level (hardware POPCNT at kSse42 and above).
int SigSymDiffLowerBound(const BitSig256& a, const BitSig256& b);

/// Bound arithmetic factored out so blocked callers can feed popcounts
/// from a BatchSigSymDiff sweep: Jaccard upper bound from a symmetric-
/// difference lower bound `pop` and exact set sizes.
inline double SigJaccardUpperBoundFromPop(int pop, uint32_t sa,
                                          uint32_t sb) {
  if (sa == 0 && sb == 0) return 1.0;
  const double a = sa;
  const double b = sb;
  const double diff_bound = (a + b - pop) / (a + b + pop);
  const double size_bound =
      (a < b ? a : b) / (a > b ? a : b);
  const double bound = diff_bound < size_bound ? diff_bound : size_bound;
  return bound < 0.0 ? 0.0 : bound;
}

/// Edit-distance lower bound from a gram-set symmetric-difference lower
/// bound `pop` (q-gram lemma: one edit changes <= q grams per side).
inline int SigEditDistanceLowerBoundFromPop(int pop, int len_a, int len_b,
                                            int q) {
  const int gram_bound = (pop + 2 * q - 1) / (2 * q);
  const int len_bound = len_a > len_b ? len_a - len_b : len_b - len_a;
  return gram_bound > len_bound ? gram_bound : len_bound;
}

/// Upper bound on Jaccard(A, B) = |A∩B| / |A∪B|, from the symmetric-
/// difference lower bound combined with |A∩B| <= min(|A|,|B|) and
/// |A∪B| >= max(|A|,|B|). Returns 1.0 when both sets are empty (the
/// JaccardSimilarity convention). Always in [0, 1] and >= the exact
/// Jaccard of the underlying sets.
double SigJaccardUpperBound(const BitSig256& a, const BitSig256& b);

/// Lower bound on the Levenshtein distance between the two strings whose
/// q-gram sets produced `a` and `b` (lengths len_a / len_b):
/// max(|len_a - len_b|, ceil(symdiff_lb / (2q))).
int SigEditDistanceLowerBound(const BitSig256& a, const BitSig256& b,
                              int len_a, int len_b, int q);

/// Batch sweep for the blocked scoring path: out[i] = popcount of the
/// XOR of the i-th 256-bit records of `a` and `b` (contiguous 4-word
/// records, 32-byte stride). Dispatches to a 256-bit XOR + nibble-LUT
/// popcount kernel at kAvx2, hardware POPCNT at kSse42, and portable
/// builtins otherwise — all three produce identical results.
void BatchSigSymDiff(const uint64_t* a, const uint64_t* b, int count,
                     int32_t* out);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_SIGNATURE_H_
