// Token-set similarity measures (Jaccard, Dice, overlap, n-grams) and the
// Monge-Elkan hybrid comparator.

#ifndef RECON_STRSIM_TOKENS_H_
#define RECON_STRSIM_TOKENS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace recon::strsim {

/// Jaccard similarity |A ∩ B| / |A ∪ B| over token multiset supports
/// (duplicates collapsed). 1.0 when both are empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Dice coefficient 2|A ∩ B| / (|A| + |B|) over de-duplicated tokens.
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// Overlap coefficient |A ∩ B| / min(|A|, |B|) over de-duplicated tokens.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Character n-grams of `s` (lowercased), padded with '#'/'$' sentinels so
/// prefixes/suffixes are weighted. Returns the empty vector when s is empty.
std::vector<std::string> CharacterNgrams(std::string_view s, int n);

/// Jaccard over character n-grams. In [0, 1].
double NgramSimilarity(std::string_view a, std::string_view b, int n = 3);

/// A precomputed character n-gram set: the padded lowercase form plus its
/// distinct n-grams as (hash, offset) pairs, sorted by hash then gram text.
/// Built once per distinct value, it replaces materializing a
/// std::vector<std::string> of grams per comparison; the offsets keep the
/// actual gram bytes reachable, so hash collisions fall back to comparing
/// the grams themselves and never corrupt set arithmetic.
struct NgramSet {
  int n = 0;
  std::string padded;  ///< '#'-prefixed, '$'-suffixed lowercase form.
  /// Distinct grams as (FNV-1a hash, offset into `padded`), sorted by
  /// (hash, gram text).
  std::vector<std::pair<uint64_t, uint32_t>> grams;

  std::string_view gram(size_t i) const {
    return std::string_view(padded).substr(grams[i].second,
                                           static_cast<size_t>(n));
  }
  size_t size() const { return grams.size(); }
};

/// Builds the n-gram set of `s` (lowercased, sentinel-padded exactly like
/// CharacterNgrams). Empty for empty input or n <= 0.
NgramSet BuildNgramSet(std::string_view s, int n);

/// Jaccard over two prebuilt n-gram sets (same `n` expected). 1.0 when both
/// are empty; equals JaccardSimilarity over CharacterNgrams by construction.
double NgramSetJaccard(const NgramSet& a, const NgramSet& b);

/// Monge-Elkan: mean over tokens of `a` of the best Jaro-Winkler match in
/// `b`. Asymmetric; SymmetricMongeElkan averages both directions.
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);
double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_TOKENS_H_
