// Token-set similarity measures (Jaccard, Dice, overlap, n-grams) and the
// Monge-Elkan hybrid comparator.

#ifndef RECON_STRSIM_TOKENS_H_
#define RECON_STRSIM_TOKENS_H_

#include <string>
#include <string_view>
#include <vector>

namespace recon::strsim {

/// Jaccard similarity |A ∩ B| / |A ∪ B| over token multiset supports
/// (duplicates collapsed). 1.0 when both are empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Dice coefficient 2|A ∩ B| / (|A| + |B|) over de-duplicated tokens.
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// Overlap coefficient |A ∩ B| / min(|A|, |B|) over de-duplicated tokens.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Character n-grams of `s` (lowercased), padded with '#'/'$' sentinels so
/// prefixes/suffixes are weighted. Returns the empty vector when s is empty.
std::vector<std::string> CharacterNgrams(std::string_view s, int n);

/// Jaccard over character n-grams. In [0, 1].
double NgramSimilarity(std::string_view a, std::string_view b, int n = 3);

/// Monge-Elkan: mean over tokens of `a` of the best Jaro-Winkler match in
/// `b`. Asymmetric; SymmetricMongeElkan averages both directions.
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);
double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_TOKENS_H_
