#include "strsim/tfidf.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace recon::strsim {

void TfIdfModel::Fit(const std::vector<std::vector<std::string>>& corpus) {
  for (const auto& doc : corpus) AddDocument(doc);
}

void TfIdfModel::AddDocument(const std::vector<std::string>& doc) {
  ++num_documents_;
  std::set<std::string> unique(doc.begin(), doc.end());
  for (const auto& token : unique) {
    auto [it, inserted] =
        vocab_.try_emplace(token, static_cast<int>(vocab_.size()));
    if (inserted) document_frequency_.push_back(0);
    ++document_frequency_[it->second];
  }
}

double TfIdfModel::IdfOf(int df) const {
  // Smoothed IDF; df == 0 covers out-of-vocabulary tokens.
  return std::log(1.0 + static_cast<double>(num_documents_ + 1) /
                            static_cast<double>(df + 1));
}

TfIdfVector TfIdfModel::Vectorize(const std::vector<std::string>& doc) const {
  // Term frequencies keyed by (vocab id | synthetic OOV id).
  std::map<int, double> weights;
  int next_oov_id = -1;
  std::map<std::string, int> oov_ids;
  for (const auto& token : doc) {
    int id;
    auto it = vocab_.find(token);
    if (it != vocab_.end()) {
      id = it->second;
    } else {
      auto [oov_it, inserted] = oov_ids.try_emplace(token, next_oov_id);
      if (inserted) --next_oov_id;
      id = oov_it->second;
    }
    weights[id] += 1.0;
  }
  TfIdfVector vec;
  double norm_sq = 0;
  for (auto& [id, tf] : weights) {
    const int df = (id >= 0) ? document_frequency_[id] : 0;
    const double w = (1.0 + std::log(tf)) * IdfOf(df);
    vec.entries.emplace_back(id, w);
    norm_sq += w * w;
  }
  if (norm_sq > 0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [id, w] : vec.entries) w *= inv;
  }
  return vec;
}

double TfIdfModel::Cosine(const TfIdfVector& a, const TfIdfVector& b) {
  if (a.entries.empty() && b.entries.empty()) return 1.0;
  double dot = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].first < b.entries[j].first) {
      ++i;
    } else if (a.entries[i].first > b.entries[j].first) {
      ++j;
    } else {
      dot += a.entries[i].second * b.entries[j].second;
      ++i;
      ++j;
    }
  }
  return std::clamp(dot, 0.0, 1.0);
}

double TfIdfModel::Similarity(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) const {
  // Note: OOV ids are per-Vectorize-call, so shared OOV tokens across the
  // two documents would not match. Vectorize both in one id space instead.
  std::map<int, double> wa;
  std::map<int, double> wb;
  std::map<std::string, int> oov_ids;
  int next_oov_id = -1;
  auto accumulate = [&](const std::vector<std::string>& doc,
                        std::map<int, double>& out) {
    for (const auto& token : doc) {
      int id;
      auto it = vocab_.find(token);
      if (it != vocab_.end()) {
        id = it->second;
      } else {
        auto [oov_it, inserted] = oov_ids.try_emplace(token, next_oov_id);
        if (inserted) --next_oov_id;
        id = oov_it->second;
      }
      out[id] += 1.0;
    }
  };
  accumulate(a, wa);
  accumulate(b, wb);

  auto to_vector = [&](const std::map<int, double>& weights) {
    TfIdfVector vec;
    double norm_sq = 0;
    for (const auto& [id, tf] : weights) {
      const int df = (id >= 0) ? document_frequency_[id] : 0;
      const double w = (1.0 + std::log(tf)) * IdfOf(df);
      vec.entries.emplace_back(id, w);
      norm_sq += w * w;
    }
    if (norm_sq > 0) {
      const double inv = 1.0 / std::sqrt(norm_sq);
      for (auto& [id, w] : vec.entries) w *= inv;
    }
    return vec;
  };
  return Cosine(to_vector(wa), to_vector(wb));
}

}  // namespace recon::strsim
