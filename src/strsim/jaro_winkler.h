// Jaro and Jaro-Winkler string similarity, the workhorse comparators for
// short name-like strings in record linkage.

#ifndef RECON_STRSIM_JARO_WINKLER_H_
#define RECON_STRSIM_JARO_WINKLER_H_

#include <string_view>

namespace recon::strsim {

/// Jaro similarity in [0, 1]. 1.0 for two empty strings.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity: Jaro boosted by shared prefix (up to 4 chars)
/// with scaling factor `prefix_scale` (standard 0.1). In [0, 1].
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_JARO_WINKLER_H_
