// Person-name parsing and comparison.
//
// Handles the name variants that dominate personal information spaces and
// citation data: "Robert S. Epstein", "Epstein, R.S.", "R. Epstein",
// "Stonebraker, M.", bare first names / nicknames ("mike"), and middle
// names/initials. Comparison is initial-aware: a full given name matches a
// compatible initial, and contradictory full names are detected so the
// reconciler can use them as negative evidence (paper §3.4, constraint 2).

#ifndef RECON_STRSIM_PERSON_NAME_H_
#define RECON_STRSIM_PERSON_NAME_H_

#include <string>
#include <string_view>
#include <vector>

namespace recon::strsim {

/// One given-name component: either a full name ("robert") or an initial
/// ("r"). All text is lowercased.
struct GivenName {
  std::string text;
  bool is_initial = false;
};

/// A parsed person name. `last` may be empty (bare first name / nickname).
struct PersonName {
  std::vector<GivenName> given;
  std::string last;
  /// True when the raw string was a single token whose role (first or last
  /// name) is ambiguous; such a token is stored in `given` and comparison
  /// additionally tries it against the other name's last name.
  bool single_token = false;

  /// True if at least one given name is a full (non-initial) name.
  bool HasFullGivenName() const;
  /// True if both a full given name and a last name are present.
  bool IsFullName() const;
  /// Canonical "first-initial + last" key, e.g. "r epstein"; empty
  /// components omitted.
  std::string InitialKey() const;
  /// Debug form "given1 given2 / last".
  std::string DebugString() const;
};

/// Parses a raw name string. Supported forms:
///   "First [Middle...] Last", "Last, First [Middle...]",
///   "Last, F." / "Last, F.M." (packed initials), "F. M. Last",
///   single tokens ("mike").
PersonName ParsePersonName(std::string_view raw);

/// Maps common nicknames to canonical given names ("mike" -> "michael").
/// Returns the input (lowercased) when no mapping exists.
std::string CanonicalGivenName(std::string_view name);

/// Similarity of two parsed names, in [0, 1]. Initial-aware alignment of
/// given names plus Jaro-Winkler on last names; nickname canonicalization
/// applied to full given names.
double PersonNameSimilarity(const PersonName& a, const PersonName& b);

/// Convenience overload on raw strings.
double PersonNameSimilarity(std::string_view a, std::string_view b);

/// True if the two names cannot belong to the same person under the paper's
/// constraint 2: same first name but completely different last names, or
/// same last name but completely different (full) first names.
bool NamesContradict(const PersonName& a, const PersonName& b);

/// True if nothing in the two names contradicts: last names compatible
/// (equal-ish, or one missing) and aligned given names compatible
/// (initial-compatible or similar).
bool NamesCompatible(const PersonName& a, const PersonName& b);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_PERSON_NAME_H_
