// Myers-style bit-parallel Levenshtein distance (DESIGN.md §16).
//
// Exact — computes the same unit-cost edit distance as the scalar row-DP
// in edit_distance.cc, but processes 64 pattern rows per text character
// via word-packed PEQ match masks and carry-propagating column deltas
// (Myers 1999; multi-word carries after Hyyrö 2003 / edlib). The
// differential suite in tests/strsim_kernel_test.cc pins the equivalence
// over randomized ASCII/UTF-8/empty/long/near-bound inputs.

#ifndef RECON_STRSIM_BITPARALLEL_H_
#define RECON_STRSIM_BITPARALLEL_H_

#include <string_view>

namespace recon::strsim {

/// Exact Levenshtein distance, bit-parallel. Handles any lengths (the
/// shorter string becomes the word-packed pattern; a multi-word block
/// path covers patterns > 64 bytes using thread-local scratch).
int MyersLevenshteinDistance(std::string_view a, std::string_view b);

/// Bounded variant: returns `bound + 1` as soon as the distance provably
/// exceeds `bound` (length gap pre-check, then a per-column lower bound
/// of score_j - remaining_columns), otherwise the exact distance. Agrees
/// with ScalarBoundedLevenshteinDistance on every input, including
/// negative bounds (always "exceeded": returns bound + 1).
int MyersBoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                    int bound);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_BITPARALLEL_H_
