#include "strsim/email.h"

#include <algorithm>

#include "strsim/edit_distance.h"
#include "strsim/jaro_winkler.h"
#include "util/string_util.h"

namespace recon::strsim {

namespace {

// Strips separator characters from an account for pattern matching:
// "robert.epstein" -> "robertepstein".
std::string StripSeparators(std::string_view account) {
  std::string out;
  for (char c : account) {
    if (c != '.' && c != '_' && c != '-') out.push_back(c);
  }
  return out;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return !needle.empty() &&
         haystack.find(needle) != std::string_view::npos;
}

}  // namespace

EmailAddress ParseEmail(std::string_view raw) {
  EmailAddress email;
  const std::string lowered = ToLower(TrimView(raw));
  const size_t at = lowered.find('@');
  if (at == std::string::npos) {
    email.account = lowered;
  } else {
    email.account = lowered.substr(0, at);
    email.server = lowered.substr(at + 1);
  }
  return email;
}

double EmailSimilarity(const EmailAddress& a, const EmailAddress& b) {
  if (a.empty() || b.empty()) return 0.0;
  if (a.account == b.account) {
    if (a.server == b.server) return 1.0;
    // Same account, different server: strong when the servers are related
    // ("mit.edu" vs "csail.mit.edu"); only moderate otherwise — unrelated
    // servers routinely hand out the same account name.
    const bool related_server = Contains(a.server, b.server) ||
                                Contains(b.server, a.server);
    return related_server ? 0.95 : 0.70;
  }
  // Near-equal accounts: typos only. The band is deliberately tight —
  // "huang" vs "jhuang" is one edit but is the different-person signature
  // of initial-prefixed accounts, not a typo.
  const double account_sim = EditSimilarity(a.account, b.account);
  if (account_sim < 0.87 ||
      std::min(a.account.size(), b.account.size()) < 6) {
    return 0.0;
  }
  const double server_sim =
      (a.server == b.server) ? 1.0 : JaroWinklerSimilarity(a.server, b.server);
  return 0.7 * account_sim + 0.3 * server_sim;
}

double EmailSimilarity(std::string_view a, std::string_view b) {
  return EmailSimilarity(ParseEmail(a), ParseEmail(b));
}

double NameEmailSimilarity(const PersonName& name,
                           const EmailAddress& email) {
  if (email.account.empty()) return 0.0;
  const std::string account = StripSeparators(email.account);
  // Drop trailing digits ("epstein42").
  std::string core = account;
  while (!core.empty() && core.back() >= '0' && core.back() <= '9') {
    core.pop_back();
  }
  if (core.empty()) return 0.0;

  // Separator-delimited account parts ("howard.watson" -> howard, watson),
  // digits stripped. Name components are matched against whole parts or
  // against the whole core — never against interior substrings, which
  // would let "ward" match inside "howard".
  std::vector<std::string> parts;
  {
    std::string part;
    for (const char c : email.account) {
      if (c == '.' || c == '_' || c == '-') {
        if (!part.empty()) parts.push_back(part);
        part.clear();
      } else if (c < '0' || c > '9') {
        part.push_back(c);
      }
    }
    if (!part.empty()) parts.push_back(part);
  }

  const std::string& last = name.last;
  std::string first;
  std::string first_canonical;
  char first_initial = '\0';
  if (!name.given.empty()) {
    if (!name.given[0].is_initial) {
      first = name.given[0].text;
      first_canonical = CanonicalGivenName(first);
    }
    first_initial = name.given[0].text[0];
  }

  double best = 0.0;
  auto consider = [&best](double score) { best = std::max(best, score); };

  if (!last.empty() && !first.empty()) {
    // Full patterns: "robertepstein", "epsteinrobert".
    if (core == first + last || core == last + first ||
        core == first_canonical + last || core == last + first_canonical) {
      consider(0.95);
    }
  }
  if (!last.empty() && first_initial != '\0') {
    // Initial patterns: "repstein", "epsteinr".
    if (core == std::string(1, first_initial) + last ||
        core == last + std::string(1, first_initial)) {
      consider(0.9);
    }
  }
  if (last.size() >= 4) {
    if (core == last) consider(0.85);
    // Last name at a boundary of the packed core ("repstein",
    // "epsteinr", "epstein42") or as a separator-delimited part.
    if (core.size() > last.size() &&
        (StartsWith(core, last) || EndsWith(core, last))) {
      consider(0.8);
    }
    for (const std::string& part : parts) {
      if (part == last) consider(0.8);
    }
  }
  // First-name-only accounts are weak identity evidence: there is an
  // "arthur@" on every server.
  if (!first.empty() && (core == first || core == first_canonical)) {
    consider(0.65);
  }
  // Nickname accounts: "mike@..." for "Michael ..." (canonicalize the
  // account itself).
  if (!first_canonical.empty() && core.size() >= 3 &&
      CanonicalGivenName(core) == first_canonical) {
    consider(0.65);
  }
  if (first.size() >= 4) {
    if (core.size() > first.size() &&
        (StartsWith(core, first) || EndsWith(core, first))) {
      consider(0.5);
    }
    for (const std::string& part : parts) {
      if (part == first || part == first_canonical) consider(0.5);
    }
  }
  // Bare-initials accounts ("rse") are weak evidence.
  if (core.size() <= 3 && first_initial != '\0' && !last.empty() &&
      core.front() == first_initial && core.back() == last[0]) {
    consider(0.3);
  }
  return best;
}

double NameEmailSimilarity(std::string_view name, std::string_view email) {
  return NameEmailSimilarity(ParsePersonName(name), ParseEmail(email));
}

}  // namespace recon::strsim
