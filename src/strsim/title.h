// Article-title normalization and similarity, plus page-range comparison.

#ifndef RECON_STRSIM_TITLE_H_
#define RECON_STRSIM_TITLE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace recon::strsim {

class TfIdfModel;

/// Lowercases, strips punctuation, and collapses whitespace.
std::string NormalizeTitle(std::string_view title);

/// Precomputed title analysis: the normalized form plus its tokens. Building
/// this once per distinct title and comparing features avoids re-normalizing
/// and re-tokenizing per pair.
struct TitleFeatures {
  std::string normalized;           ///< NormalizeTitle(title).
  std::vector<std::string> tokens;  ///< Tokenize(title) == Tokenize(normalized).
};

/// Analyzes `title` once for repeated comparison.
TitleFeatures AnalyzeTitle(std::string_view title);

/// Title similarity in [0, 1]: the max of normalized edit similarity and
/// token-set similarity. When `model` is non-null, token similarity is
/// TF-IDF-weighted cosine (rare words dominate); otherwise plain Jaccard.
double TitleSimilarity(std::string_view a, std::string_view b,
                       const TfIdfModel* model = nullptr);

/// Feature-level overload; identical result to the raw-string form.
double TitleSimilarity(const TitleFeatures& a, const TitleFeatures& b,
                       const TfIdfModel* model = nullptr);

/// A parsed page range.
struct PageRange {
  int first = 0;
  int last = 0;
};

/// Parses "169-180", "169--180", "pp. 169-180", or a single page "169".
std::optional<PageRange> ParsePages(std::string_view pages);

/// Precomputed page analysis: the parsed range (when parseable) plus the
/// trimmed raw form used for the exact-string fallback.
struct PagesFeatures {
  std::optional<PageRange> range;
  std::string trimmed;  ///< Trim(pages).
};

/// Analyzes `pages` once for repeated comparison.
PagesFeatures AnalyzePages(std::string_view pages);

/// Page similarity: 1.0 for equal ranges, 0.8 for equal first page, 0.5 for
/// overlapping ranges, else 0. Unparseable inputs compare as exact strings.
double PagesSimilarity(std::string_view a, std::string_view b);

/// Feature-level overload; identical result to the raw-string form.
double PagesSimilarity(const PagesFeatures& a, const PagesFeatures& b);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_TITLE_H_
