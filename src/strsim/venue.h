// Venue-name similarity: acronym-aware, stopword-filtered token comparison
// for conference and journal names ("ACM SIGMOD" vs "ACM Conference on
// Management of Data").

#ifndef RECON_STRSIM_VENUE_H_
#define RECON_STRSIM_VENUE_H_

#include <string>
#include <string_view>
#include <vector>

namespace recon::strsim {

/// Lowercased content tokens of a venue name: stopwords and generic venue
/// words ("proceedings", "conference", "annual", …) removed, and known
/// acronyms (sigmod, vldb, …) expanded into their content words.
std::vector<std::string> VenueContentTokens(std::string_view name);

/// First-letter acronym of the content words of `name` *without* acronym
/// expansion ("Management of Data" -> "md"; organization tokens like "acm"
/// are kept as-is, not folded into the acronym).
std::string VenueAcronym(std::string_view name);

/// Precomputed venue-name analysis. VenueNameSimilarity tokenizes and
/// filters each side several ways; building this once per distinct venue
/// string hoists all of that out of the pairwise hot path.
struct VenueFeatures {
  std::string lower;                      ///< ToLower(name).
  std::vector<std::string> tokens;        ///< Tokenize(lower).
  std::string content;                    ///< Stopword-filtered tokens joined.
  std::string acronym;                    ///< VenueAcronym(lower).
  std::vector<std::string> raw_content;   ///< Tokens surviving content filter.
  std::vector<std::string> expanded;      ///< VenueContentTokens(lower).
};

/// Analyzes `name` once for repeated comparison.
VenueFeatures AnalyzeVenueName(std::string_view name);

/// Venue-name similarity in [0, 1]: max of normalized edit similarity,
/// acronym matching, and token-set similarity on expanded content tokens.
double VenueNameSimilarity(std::string_view a, std::string_view b);

/// Feature-level overload; identical result to the raw-string form.
double VenueNameSimilarity(const VenueFeatures& a, const VenueFeatures& b);

/// Precomputed year analysis: trimmed form plus the parsed numeric value
/// when the input is all digits.
struct YearFeatures {
  std::string trimmed;    ///< Trim(year).
  bool is_number = false; ///< IsDigits(trimmed) on a non-empty input.
  long value = 0;         ///< Parsed year when is_number.
};

/// Analyzes `year` once for repeated comparison.
YearFeatures AnalyzeYear(std::string_view year);

/// Year similarity: 1.0 if equal, 0.5 if within one year, else 0.
/// Non-numeric input scores by string equality.
double YearSimilarity(std::string_view a, std::string_view b);

/// Feature-level overload; identical result to the raw-string form.
double YearSimilarity(const YearFeatures& a, const YearFeatures& b);

/// Precomputed location analysis: lowercase form plus tokens.
struct LocationFeatures {
  std::string lower;                ///< ToLower(location).
  std::vector<std::string> tokens;  ///< Tokenize(location).
};

/// Analyzes `location` once for repeated comparison.
LocationFeatures AnalyzeLocation(std::string_view location);

/// Location similarity ("Austin, Texas" vs "Austin, TX"): token overlap
/// blended with Jaro-Winkler.
double LocationSimilarity(std::string_view a, std::string_view b);

/// Feature-level overload; identical result to the raw-string form.
double LocationSimilarity(const LocationFeatures& a, const LocationFeatures& b);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_VENUE_H_
