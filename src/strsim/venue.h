// Venue-name similarity: acronym-aware, stopword-filtered token comparison
// for conference and journal names ("ACM SIGMOD" vs "ACM Conference on
// Management of Data").

#ifndef RECON_STRSIM_VENUE_H_
#define RECON_STRSIM_VENUE_H_

#include <string>
#include <string_view>
#include <vector>

namespace recon::strsim {

/// Lowercased content tokens of a venue name: stopwords and generic venue
/// words ("proceedings", "conference", "annual", …) removed, and known
/// acronyms (sigmod, vldb, …) expanded into their content words.
std::vector<std::string> VenueContentTokens(std::string_view name);

/// First-letter acronym of the content words of `name` *without* acronym
/// expansion ("Management of Data" -> "md"; organization tokens like "acm"
/// are kept as-is, not folded into the acronym).
std::string VenueAcronym(std::string_view name);

/// Venue-name similarity in [0, 1]: max of normalized edit similarity,
/// acronym matching, and token-set similarity on expanded content tokens.
double VenueNameSimilarity(std::string_view a, std::string_view b);

/// Year similarity: 1.0 if equal, 0.5 if within one year, else 0.
/// Non-numeric input scores by string equality.
double YearSimilarity(std::string_view a, std::string_view b);

/// Location similarity ("Austin, Texas" vs "Austin, TX"): token overlap
/// blended with Jaro-Winkler.
double LocationSimilarity(std::string_view a, std::string_view b);

}  // namespace recon::strsim

#endif  // RECON_STRSIM_VENUE_H_
