#include "strsim/jaro_winkler.h"

#include <algorithm>
#include <vector>

namespace recon::strsim {

double JaroSimilarity(std::string_view a, std::string_view b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;

  const int match_window = std::max(0, std::max(n, m) / 2 - 1);
  std::vector<char> a_matched(n, 0);
  std::vector<char> b_matched(m, 0);

  int matches = 0;
  for (int i = 0; i < n; ++i) {
    const int lo = std::max(0, i - match_window);
    const int hi = std::min(m - 1, i + match_window);
    for (int j = lo; j <= hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = 1;
      b_matched[j] = 1;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions between the matched subsequences.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double mm = matches;
  return (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  const double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (static_cast<size_t>(prefix) < limit &&
         a[prefix] == b[prefix]) {
    ++prefix;
  }
  return jaro + prefix * prefix_scale * (1.0 - jaro);
}

}  // namespace recon::strsim
