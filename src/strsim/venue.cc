#include "strsim/venue.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "strsim/edit_distance.h"
#include "strsim/jaro_winkler.h"
#include "strsim/tokens.h"
#include "util/string_util.h"

namespace recon::strsim {

namespace {

const std::set<std::string>& VenueStopwords() {
  static const auto* words = new std::set<std::string>{
      "proceedings", "proc",     "of",     "the",       "on",
      "in",          "for",      "and",    "annual",    "international",
      "intl",        "conference", "conf", "symposium", "symp",
      "workshop",    "journal",  "trans",  "transactions",
      "meeting",     "record",   "review", "letters",   "th",
      "st",          "nd",       "rd",
  };
  return *words;
}

// Well-known venue acronyms expanded to their content words so that
// "SIGMOD" and "Management of Data" share tokens.
const std::unordered_map<std::string, std::vector<std::string>>&
AcronymExpansions() {
  static const auto* map =
      new std::unordered_map<std::string, std::vector<std::string>>{
          {"sigmod", {"management", "data"}},
          {"vldb", {"very", "large", "data", "bases"}},
          {"pods", {"principles", "database", "systems"}},
          {"icde", {"data", "engineering"}},
          {"kdd", {"knowledge", "discovery", "data", "mining"}},
          {"sigkdd", {"knowledge", "discovery", "data", "mining"}},
          {"cikm", {"information", "knowledge", "management"}},
          {"icml", {"machine", "learning"}},
          {"nips", {"neural", "information", "processing", "systems"}},
          {"aaai", {"artificial", "intelligence"}},
          {"ijcai", {"artificial", "intelligence"}},
          {"sosp", {"operating", "systems", "principles"}},
          {"osdi", {"operating", "systems", "design", "implementation"}},
          {"www", {"world", "wide", "web"}},
          {"sigir", {"information", "retrieval"}},
          {"stoc", {"theory", "computing"}},
          {"focs", {"foundations", "computer", "science"}},
          {"soda", {"discrete", "algorithms"}},
          {"cidr", {"innovative", "data", "systems", "research"}},
          {"edbt", {"extending", "database", "technology"}},
          {"dasfaa", {"database", "systems", "advanced", "applications"}},
          {"tods", {"database", "systems"}},
          {"tkde", {"knowledge", "data", "engineering"}},
          {"sigplan", {"programming", "languages"}},
          {"pldi", {"programming", "language", "design", "implementation"}},
          {"popl", {"principles", "programming", "languages"}},
      };
  return *map;
}

bool IsStopword(const std::string& token) {
  return VenueStopwords().count(token) > 0 || IsDigits(token);
}

}  // namespace

std::vector<std::string> VenueContentTokens(std::string_view name) {
  std::vector<std::string> out;
  for (const auto& token : Tokenize(name)) {
    if (IsStopword(token)) continue;
    auto it = AcronymExpansions().find(token);
    if (it != AcronymExpansions().end()) {
      for (const auto& word : it->second) out.push_back(word);
    } else {
      out.push_back(token);
    }
  }
  return out;
}

std::string VenueAcronym(std::string_view name) {
  std::string acronym;
  for (const auto& token : Tokenize(name)) {
    if (IsStopword(token)) continue;
    acronym.push_back(token[0]);
  }
  return acronym;
}

VenueFeatures AnalyzeVenueName(std::string_view name) {
  VenueFeatures f;
  f.lower = ToLower(name);
  f.tokens = Tokenize(f.lower);
  for (const auto& t : f.tokens) {
    if (IsStopword(t)) continue;
    if (!f.content.empty()) f.content.push_back(' ');
    f.content.append(t);
    f.acronym.push_back(t[0]);
    // VenueContentTokens on a single raw token either keeps or expands it;
    // the *raw* filtered view keeps the token itself when it survived
    // filtering in any form (it did: IsStopword was checked above, and
    // acronym expansion never yields an empty list).
    f.raw_content.push_back(t);
  }
  f.expanded = VenueContentTokens(f.lower);
  return f;
}

double VenueNameSimilarity(std::string_view a, std::string_view b) {
  return VenueNameSimilarity(AnalyzeVenueName(a), AnalyzeVenueName(b));
}

double VenueNameSimilarity(const VenueFeatures& a, const VenueFeatures& b) {
  if (a.lower.empty() || b.lower.empty()) return 0.0;
  if (a.lower == b.lower) return 1.0;

  // Edit similarity runs over the *content* words only: venue names share
  // long boilerplate templates ("...th Symposium on ..."), and raw edit
  // distance would make every symposium look like every other.
  double best = EditSimilarity(a.content, b.content);

  // Acronym match: one name is (or contains) the literal first-letter
  // acronym of the other ("vldb" vs "Very Large Data Bases").
  auto acronym_match = [](const std::vector<std::string>& short_tokens,
                          const std::string& acronym) {
    if (acronym.size() < 3) return false;
    for (const auto& t : short_tokens) {
      if (t == acronym) return true;
    }
    return false;
  };
  if (acronym_match(a.tokens, b.acronym) ||
      acronym_match(b.tokens, a.acronym)) {
    best = std::max(best, 0.92);
  }

  // Content-token similarity: raw tokens at full strength; tokens matched
  // only through the acronym-expansion dictionary are discounted — an
  // acronym is a hint, not proof ("SIGMOD" vs "Management of Data" should
  // need corroboration from merged articles, per the paper's Fig. 2).
  if (!a.raw_content.empty() && !b.raw_content.empty()) {
    const double dice = DiceSimilarity(a.raw_content, b.raw_content);
    const double monge = SymmetricMongeElkan(a.raw_content, b.raw_content);
    best = std::max(best, 0.7 * dice + 0.3 * monge);
  }
  if (!a.expanded.empty() && !b.expanded.empty()) {
    const double dice = DiceSimilarity(a.expanded, b.expanded);
    const double monge = SymmetricMongeElkan(a.expanded, b.expanded);
    best = std::max(best, 0.75 * (0.7 * dice + 0.3 * monge));
  }
  return std::clamp(best, 0.0, 1.0);
}

YearFeatures AnalyzeYear(std::string_view year) {
  YearFeatures f;
  f.trimmed = Trim(year);
  if (!f.trimmed.empty() && IsDigits(f.trimmed)) {
    f.is_number = true;
    // Saturating parse: absurdly long digit runs clamp instead of throwing.
    long value = 0;
    for (const char c : f.trimmed) {
      value = value * 10 + (c - '0');
      if (value > 100000000L) {
        value = 100000000L;
        break;
      }
    }
    f.value = value;
  }
  return f;
}

double YearSimilarity(std::string_view a, std::string_view b) {
  return YearSimilarity(AnalyzeYear(a), AnalyzeYear(b));
}

double YearSimilarity(const YearFeatures& a, const YearFeatures& b) {
  if (a.trimmed.empty() || b.trimmed.empty()) return 0.0;
  if (a.is_number && b.is_number) {
    const long diff = a.value > b.value ? a.value - b.value : b.value - a.value;
    if (diff == 0) return 1.0;
    if (diff == 1) return 0.5;
    return 0.0;
  }
  return a.trimmed == b.trimmed ? 1.0 : 0.0;
}

LocationFeatures AnalyzeLocation(std::string_view location) {
  LocationFeatures f;
  f.lower = ToLower(location);
  // Tokenize lowercases, so tokenizing the lowered form matches the raw one.
  f.tokens = Tokenize(f.lower);
  return f;
}

double LocationSimilarity(std::string_view a, std::string_view b) {
  return LocationSimilarity(AnalyzeLocation(a), AnalyzeLocation(b));
}

double LocationSimilarity(const LocationFeatures& a,
                          const LocationFeatures& b) {
  if (a.tokens.empty() || b.tokens.empty()) return 0.0;
  const double overlap = OverlapCoefficient(a.tokens, b.tokens);
  const double jw = JaroWinklerSimilarity(a.lower, b.lower);
  return std::clamp(std::max(overlap, jw), 0.0, 1.0);
}

}  // namespace recon::strsim
