#include "strsim/venue.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "strsim/edit_distance.h"
#include "strsim/jaro_winkler.h"
#include "strsim/tokens.h"
#include "util/string_util.h"

namespace recon::strsim {

namespace {

const std::set<std::string>& VenueStopwords() {
  static const auto* words = new std::set<std::string>{
      "proceedings", "proc",     "of",     "the",       "on",
      "in",          "for",      "and",    "annual",    "international",
      "intl",        "conference", "conf", "symposium", "symp",
      "workshop",    "journal",  "trans",  "transactions",
      "meeting",     "record",   "review", "letters",   "th",
      "st",          "nd",       "rd",
  };
  return *words;
}

// Well-known venue acronyms expanded to their content words so that
// "SIGMOD" and "Management of Data" share tokens.
const std::unordered_map<std::string, std::vector<std::string>>&
AcronymExpansions() {
  static const auto* map =
      new std::unordered_map<std::string, std::vector<std::string>>{
          {"sigmod", {"management", "data"}},
          {"vldb", {"very", "large", "data", "bases"}},
          {"pods", {"principles", "database", "systems"}},
          {"icde", {"data", "engineering"}},
          {"kdd", {"knowledge", "discovery", "data", "mining"}},
          {"sigkdd", {"knowledge", "discovery", "data", "mining"}},
          {"cikm", {"information", "knowledge", "management"}},
          {"icml", {"machine", "learning"}},
          {"nips", {"neural", "information", "processing", "systems"}},
          {"aaai", {"artificial", "intelligence"}},
          {"ijcai", {"artificial", "intelligence"}},
          {"sosp", {"operating", "systems", "principles"}},
          {"osdi", {"operating", "systems", "design", "implementation"}},
          {"www", {"world", "wide", "web"}},
          {"sigir", {"information", "retrieval"}},
          {"stoc", {"theory", "computing"}},
          {"focs", {"foundations", "computer", "science"}},
          {"soda", {"discrete", "algorithms"}},
          {"cidr", {"innovative", "data", "systems", "research"}},
          {"edbt", {"extending", "database", "technology"}},
          {"dasfaa", {"database", "systems", "advanced", "applications"}},
          {"tods", {"database", "systems"}},
          {"tkde", {"knowledge", "data", "engineering"}},
          {"sigplan", {"programming", "languages"}},
          {"pldi", {"programming", "language", "design", "implementation"}},
          {"popl", {"principles", "programming", "languages"}},
      };
  return *map;
}

bool IsStopword(const std::string& token) {
  return VenueStopwords().count(token) > 0 || IsDigits(token);
}

}  // namespace

std::vector<std::string> VenueContentTokens(std::string_view name) {
  std::vector<std::string> out;
  for (const auto& token : Tokenize(name)) {
    if (IsStopword(token)) continue;
    auto it = AcronymExpansions().find(token);
    if (it != AcronymExpansions().end()) {
      for (const auto& word : it->second) out.push_back(word);
    } else {
      out.push_back(token);
    }
  }
  return out;
}

std::string VenueAcronym(std::string_view name) {
  std::string acronym;
  for (const auto& token : Tokenize(name)) {
    if (IsStopword(token)) continue;
    acronym.push_back(token[0]);
  }
  return acronym;
}

double VenueNameSimilarity(std::string_view a, std::string_view b) {
  const std::string la = ToLower(a);
  const std::string lb = ToLower(b);
  if (la.empty() || lb.empty()) return 0.0;
  if (la == lb) return 1.0;

  // Edit similarity runs over the *content* words only: venue names share
  // long boilerplate templates ("...th Symposium on ..."), and raw edit
  // distance would make every symposium look like every other.
  const std::vector<std::string> tokens_a = Tokenize(la);
  const std::vector<std::string> tokens_b = Tokenize(lb);
  auto content_string = [](const std::vector<std::string>& tokens) {
    std::string out;
    for (const auto& t : tokens) {
      if (IsStopword(t)) continue;
      if (!out.empty()) out.push_back(' ');
      out.append(t);
    }
    return out;
  };
  double best = EditSimilarity(content_string(tokens_a),
                               content_string(tokens_b));

  // Acronym match: one name is (or contains) the literal first-letter
  // acronym of the other ("vldb" vs "Very Large Data Bases").
  auto acronym_match = [](const std::vector<std::string>& short_tokens,
                          std::string_view long_name) {
    const std::string acronym = VenueAcronym(long_name);
    if (acronym.size() < 3) return false;
    for (const auto& t : short_tokens) {
      if (t == acronym) return true;
    }
    return false;
  };
  if (acronym_match(tokens_a, lb) || acronym_match(tokens_b, la)) {
    best = std::max(best, 0.92);
  }

  // Content-token similarity: raw tokens at full strength; tokens matched
  // only through the acronym-expansion dictionary are discounted — an
  // acronym is a hint, not proof ("SIGMOD" vs "Management of Data" should
  // need corroboration from merged articles, per the paper's Fig. 2).
  auto raw_content = [](const std::vector<std::string>& tokens) {
    std::vector<std::string> out;
    for (const auto& t : tokens) {
      const std::vector<std::string> content = VenueContentTokens(t);
      // VenueContentTokens on a single raw token either keeps or expands
      // it; to get the *raw* filtered view, keep the token itself when it
      // survived filtering in any form.
      if (!content.empty()) out.push_back(t);
    }
    return out;
  };
  const std::vector<std::string> raw_a = raw_content(tokens_a);
  const std::vector<std::string> raw_b = raw_content(tokens_b);
  if (!raw_a.empty() && !raw_b.empty()) {
    const double dice = DiceSimilarity(raw_a, raw_b);
    const double monge = SymmetricMongeElkan(raw_a, raw_b);
    best = std::max(best, 0.7 * dice + 0.3 * monge);
  }
  const std::vector<std::string> expanded_a = VenueContentTokens(la);
  const std::vector<std::string> expanded_b = VenueContentTokens(lb);
  if (!expanded_a.empty() && !expanded_b.empty()) {
    const double dice = DiceSimilarity(expanded_a, expanded_b);
    const double monge = SymmetricMongeElkan(expanded_a, expanded_b);
    best = std::max(best, 0.75 * (0.7 * dice + 0.3 * monge));
  }
  return std::clamp(best, 0.0, 1.0);
}

double YearSimilarity(std::string_view a, std::string_view b) {
  const std::string ta = Trim(a);
  const std::string tb = Trim(b);
  if (ta.empty() || tb.empty()) return 0.0;
  if (IsDigits(ta) && IsDigits(tb)) {
    const long ya = std::stol(ta);
    const long yb = std::stol(tb);
    const long diff = ya > yb ? ya - yb : yb - ya;
    if (diff == 0) return 1.0;
    if (diff == 1) return 0.5;
    return 0.0;
  }
  return ta == tb ? 1.0 : 0.0;
}

double LocationSimilarity(std::string_view a, std::string_view b) {
  const std::vector<std::string> ta = Tokenize(a);
  const std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() || tb.empty()) return 0.0;
  const double overlap = OverlapCoefficient(ta, tb);
  const double jw = JaroWinklerSimilarity(ToLower(a), ToLower(b));
  return std::clamp(std::max(overlap, jw), 0.0, 1.0);
}

}  // namespace recon::strsim
