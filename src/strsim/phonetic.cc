#include "strsim/phonetic.h"

namespace recon::strsim {

namespace {

/// Soundex digit for a letter; '0' for vowels and 'w'/'y' (ignored but
/// separating), '7' for 'h'/'w' adjacency handling (see below).
char DigitOf(char c) {
  switch (c) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

char LowerAlpha(char c) {
  if (c >= 'A' && c <= 'Z') return static_cast<char>(c - 'A' + 'a');
  if (c >= 'a' && c <= 'z') return c;
  return '\0';
}

}  // namespace

std::string Soundex(std::string_view name) {
  // Collect letters only.
  std::string letters;
  for (const char raw : name) {
    const char c = LowerAlpha(raw);
    if (c != '\0') letters.push_back(c);
  }
  if (letters.empty()) return "";

  std::string code(1, static_cast<char>(letters[0] - 'a' + 'A'));
  char previous_digit = DigitOf(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    const char c = letters[i];
    const char digit = DigitOf(c);
    if (c == 'h' || c == 'w') {
      // 'h' and 'w' are transparent: they do not reset the previous digit.
      continue;
    }
    if (digit != '0' && digit != previous_digit) {
      code.push_back(digit);
    }
    previous_digit = digit;
  }
  code.resize(4, '0');
  return code;
}

bool SoundexEqual(std::string_view a, std::string_view b) {
  const std::string code_a = Soundex(a);
  return !code_a.empty() && code_a == Soundex(b);
}

}  // namespace recon::strsim
