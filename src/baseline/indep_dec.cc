#include "baseline/indep_dec.h"

#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/premerge.h"
#include "core/schema_binding.h"
#include "sim/class_sim.h"
#include "sim/comparators.h"
#include "sim/evidence.h"
#include "util/timer.h"
#include "util/union_find.h"

namespace recon {

namespace {

/// The comparators also have ValueFeatures overloads now, which makes the
/// bare names ambiguous as template arguments; pin the raw-string forms.
using RawComparator = double (*)(const std::string&, const std::string&);

/// Offers MAX over the value cross product to one evidence channel,
/// mirroring the graph's seed-threshold semantics: scores below the seed
/// leave the channel absent rather than contributing a low value.
void OfferAtomic(const std::vector<std::string>& values1,
                 const std::vector<std::string>& values2, int evidence,
                 double seed, RawComparator comparator,
                 EvidenceSummary* summary) {
  for (const std::string& v1 : values1) {
    for (const std::string& v2 : values2) {
      const double sim = comparator(v1, v2);
      if (sim >= seed) summary->Offer(evidence, sim);
    }
  }
}

}  // namespace

namespace {

/// Lifts a condensed-space result back to the original references.
ReconcileResult ExpandIndepResult(const PremergeResult& premerge,
                                  ReconcileResult condensed) {
  ReconcileResult result;
  result.stats = condensed.stats;
  result.cluster = ExpandClusters(premerge, condensed.cluster);
  for (const auto& [a, b] : condensed.merged_pairs) {
    result.merged_pairs.emplace_back(premerge.original_rep[a],
                                     premerge.original_rep[b]);
  }
  for (RefId id = 0; id < static_cast<RefId>(premerge.condensed_of.size());
       ++id) {
    const RefId rep = premerge.original_rep[premerge.condensed_of[id]];
    if (rep != id) result.merged_pairs.emplace_back(rep, id);
  }
  return result;
}

}  // namespace

ReconcileResult IndepDec::Run(const Dataset& dataset) const {
  if (options_.premerge_equal_emails) {
    const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
    PremergeResult premerge = PremergeEqualEmails(dataset, binding);
    if (premerge.condensed.num_references() < dataset.num_references()) {
      return ExpandIndepResult(premerge, RunCondensed(premerge.condensed));
    }
  }
  return RunCondensed(dataset);
}

ReconcileResult IndepDec::RunCondensed(const Dataset& dataset) const {
  Timer timer;
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
  const SimParams& p = options_.params;

  std::vector<std::unique_ptr<ClassSimilarity>> sims(
      dataset.schema().num_classes());
  if (binding.person >= 0) sims[binding.person] = MakeClassSimilarity("Person", p);
  if (binding.article >= 0) {
    sims[binding.article] = MakeClassSimilarity("Article", p);
  }
  if (binding.venue >= 0) sims[binding.venue] = MakeClassSimilarity("Venue", p);

  ReconcileResult result;
  const CandidateList candidates =
      GenerateCandidates(dataset, binding, options_);
  result.stats.num_candidates = static_cast<int>(candidates.size());

  UnionFind closure(dataset.num_references());
  for (const auto& [r1, r2] : candidates) {
    const Reference& a = dataset.reference(r1);
    const Reference& b = dataset.reference(r2);
    const int class_id = a.class_id();
    if (sims[class_id] == nullptr) continue;

    EvidenceSummary evidence;
    if (class_id == binding.person) {
      if (binding.person_name >= 0) {
        OfferAtomic(a.atomic_values(binding.person_name),
                    b.atomic_values(binding.person_name), kEvPersonName,
                    p.person_name_seed, PersonNameFieldSimilarity, &evidence);
        // Mirror the graph builder: dissimilar names on both sides are
        // explicit zero evidence, not missing information.
        if (!a.atomic_values(binding.person_name).empty() &&
            !b.atomic_values(binding.person_name).empty() &&
            !evidence.Has(kEvPersonName)) {
          evidence.Offer(kEvPersonName, 0.0);
        }
      }
      if (binding.person_email >= 0) {
        OfferAtomic(a.atomic_values(binding.person_email),
                    b.atomic_values(binding.person_email), kEvPersonEmail,
                    p.person_email_seed, EmailFieldSimilarity, &evidence);
      }
    } else if (class_id == binding.article) {
      if (binding.article_title >= 0) {
        OfferAtomic(a.atomic_values(binding.article_title),
                    b.atomic_values(binding.article_title), kEvArticleTitle,
                    p.article_title_seed, TitleFieldSimilarity, &evidence);
      }
      if (!evidence.Has(kEvArticleTitle)) continue;  // Titles required.
      if (binding.article_year >= 0) {
        OfferAtomic(a.atomic_values(binding.article_year),
                    b.atomic_values(binding.article_year), kEvArticleYear,
                    p.year_seed, YearFieldSimilarity, &evidence);
      }
      if (binding.article_pages >= 0) {
        OfferAtomic(a.atomic_values(binding.article_pages),
                    b.atomic_values(binding.article_pages), kEvArticlePages,
                    p.pages_seed, PagesFieldSimilarity, &evidence);
      }
    } else if (class_id == binding.venue) {
      if (binding.venue_name >= 0) {
        OfferAtomic(a.atomic_values(binding.venue_name),
                    b.atomic_values(binding.venue_name), kEvVenueName,
                    p.venue_name_seed, VenueNameFieldSimilarity, &evidence);
      }
      if (!evidence.Has(kEvVenueName)) continue;  // Names required.
      if (binding.venue_year >= 0) {
        OfferAtomic(a.atomic_values(binding.venue_year),
                    b.atomic_values(binding.venue_year), kEvVenueYear,
                    p.year_seed, YearFieldSimilarity, &evidence);
      }
      if (binding.venue_location >= 0) {
        OfferAtomic(a.atomic_values(binding.venue_location),
                    b.atomic_values(binding.venue_location),
                    kEvVenueLocation, p.location_seed,
                    LocationFieldSimilarity, &evidence);
      }
    }

    ++result.stats.num_recomputations;
    const double sim = sims[class_id]->Compute(evidence);
    if (sim >= p.merge_threshold) {
      closure.Union(r1, r2);
      result.merged_pairs.emplace_back(r1, r2);
      ++result.stats.num_merges;
    }
  }

  result.cluster.resize(dataset.num_references());
  for (int i = 0; i < dataset.num_references(); ++i) {
    result.cluster[i] = closure.Find(i);
  }
  result.stats.solve_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace recon
