#include "baseline/fellegi_sunter.h"

#include <algorithm>
#include <cmath>

#include "core/candidates.h"
#include "core/schema_binding.h"
#include "sim/comparators.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/union_find.h"

namespace recon {

namespace {

/// Comparison outcomes per field.
enum Outcome : uint8_t {
  kDisagree = 0,
  kPartial = 1,
  kAgree = 2,
  kMissing = 3,
  kNumOutcomes = 4,
};

using Comparator = double (*)(const std::string&, const std::string&);

/// One comparable field of a class.
struct FieldSpec {
  int attr;
  Comparator comparator;
};

/// The fields compared per class, mirroring IndepDec's attribute set.
std::vector<FieldSpec> FieldsFor(const SchemaBinding& binding,
                                 int class_id) {
  std::vector<FieldSpec> fields;
  if (class_id == binding.person) {
    if (binding.person_name >= 0) {
      fields.push_back({binding.person_name, PersonNameFieldSimilarity});
    }
    if (binding.person_email >= 0) {
      fields.push_back({binding.person_email, EmailFieldSimilarity});
    }
  } else if (class_id == binding.article) {
    if (binding.article_title >= 0) {
      fields.push_back({binding.article_title, TitleFieldSimilarity});
    }
    if (binding.article_year >= 0) {
      fields.push_back({binding.article_year, YearFieldSimilarity});
    }
    if (binding.article_pages >= 0) {
      fields.push_back({binding.article_pages, PagesFieldSimilarity});
    }
  } else if (class_id == binding.venue) {
    if (binding.venue_name >= 0) {
      fields.push_back({binding.venue_name, VenueNameFieldSimilarity});
    }
    if (binding.venue_year >= 0) {
      fields.push_back({binding.venue_year, YearFieldSimilarity});
    }
    if (binding.venue_location >= 0) {
      fields.push_back({binding.venue_location, LocationFieldSimilarity});
    }
  }
  return fields;
}

Outcome CompareField(const Reference& a, const Reference& b,
                     const FieldSpec& field,
                     const FellegiSunterOptions& options) {
  const auto& values_a = a.atomic_values(field.attr);
  const auto& values_b = b.atomic_values(field.attr);
  if (values_a.empty() || values_b.empty()) return kMissing;
  double best = 0;
  for (const auto& va : values_a) {
    for (const auto& vb : values_b) {
      best = std::max(best, field.comparator(va, vb));
    }
  }
  if (best >= options.agree_threshold) return kAgree;
  if (best >= options.partial_threshold) return kPartial;
  return kDisagree;
}

/// The comparison vectors of all candidate pairs of one class.
struct ClassVectors {
  std::vector<std::pair<RefId, RefId>> pairs;
  /// pairs.size() x fields.size(), row-major.
  std::vector<uint8_t> outcomes;
  int num_fields = 0;
};

ClassVectors BuildVectors(const Dataset& dataset,
                          const SchemaBinding& binding, int class_id,
                          const std::vector<FieldSpec>& fields,
                          const CandidateList& candidates,
                          const FellegiSunterOptions& options) {
  ClassVectors out;
  out.num_fields = static_cast<int>(fields.size());
  for (const auto& [r1, r2] : candidates) {
    const Reference& a = dataset.reference(r1);
    if (a.class_id() != class_id) continue;
    const Reference& b = dataset.reference(r2);
    out.pairs.emplace_back(r1, r2);
    for (const FieldSpec& field : fields) {
      out.outcomes.push_back(CompareField(a, b, field, options));
    }
  }
  (void)binding;
  return out;
}

/// EM for the two-class naive-Bayes mixture over outcome vectors.
FellegiSunterModel FitEm(const ClassVectors& vectors,
                         const FellegiSunterOptions& options,
                         std::vector<double>* posteriors) {
  FellegiSunterModel model;
  const int fields = vectors.num_fields;
  const size_t n = vectors.pairs.size();
  model.m_probabilities.assign(fields, {0.05, 0.15, 0.75, 0.05});
  model.u_probabilities.assign(fields, {0.70, 0.20, 0.05, 0.05});
  model.match_prior = options.initial_match_prior;
  posteriors->assign(n, 0.0);
  if (n == 0 || fields == 0) return model;

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    ++model.iterations;
    // E step.
    double gamma_sum = 0;
    for (size_t i = 0; i < n; ++i) {
      double log_m = std::log(model.match_prior);
      double log_u = std::log(1.0 - model.match_prior);
      for (int f = 0; f < fields; ++f) {
        const uint8_t outcome = vectors.outcomes[i * fields + f];
        log_m += std::log(model.m_probabilities[f][outcome]);
        log_u += std::log(model.u_probabilities[f][outcome]);
      }
      const double gamma = 1.0 / (1.0 + std::exp(log_u - log_m));
      (*posteriors)[i] = gamma;
      gamma_sum += gamma;
    }
    // M step with light smoothing so no outcome probability hits zero.
    const double new_prior =
        std::clamp(gamma_sum / static_cast<double>(n), 1e-6, 0.5);
    constexpr double kSmooth = 1e-3;
    for (int f = 0; f < fields; ++f) {
      std::array<double, 4> m_count{kSmooth, kSmooth, kSmooth, kSmooth};
      std::array<double, 4> u_count{kSmooth, kSmooth, kSmooth, kSmooth};
      for (size_t i = 0; i < n; ++i) {
        const uint8_t outcome = vectors.outcomes[i * fields + f];
        m_count[outcome] += (*posteriors)[i];
        u_count[outcome] += 1.0 - (*posteriors)[i];
      }
      const double m_total =
          m_count[0] + m_count[1] + m_count[2] + m_count[3];
      const double u_total =
          u_count[0] + u_count[1] + u_count[2] + u_count[3];
      for (int k = 0; k < 4; ++k) {
        model.m_probabilities[f][k] = m_count[k] / m_total;
        model.u_probabilities[f][k] = u_count[k] / u_total;
      }
    }
    const bool converged =
        std::abs(new_prior - model.match_prior) < options.tolerance;
    model.match_prior = new_prior;
    if (converged) break;
  }
  return model;
}

}  // namespace

FellegiSunterModel FellegiSunter::FitClass(const Dataset& dataset,
                                           int class_id) const {
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
  const std::vector<FieldSpec> fields = FieldsFor(binding, class_id);
  const CandidateList candidates =
      GenerateCandidates(dataset, binding, options_.blocking);
  const ClassVectors vectors = BuildVectors(dataset, binding, class_id,
                                            fields, candidates, options_);
  std::vector<double> posteriors;
  return FitEm(vectors, options_, &posteriors);
}

ReconcileResult FellegiSunter::Run(const Dataset& dataset) const {
  Timer timer;
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
  const CandidateList candidates =
      GenerateCandidates(dataset, binding, options_.blocking);

  ReconcileResult result;
  result.stats.num_candidates = static_cast<int>(candidates.size());
  UnionFind closure(dataset.num_references());

  for (int class_id = 0; class_id < dataset.schema().num_classes();
       ++class_id) {
    const std::vector<FieldSpec> fields = FieldsFor(binding, class_id);
    if (fields.empty()) continue;
    const ClassVectors vectors = BuildVectors(dataset, binding, class_id,
                                              fields, candidates, options_);
    std::vector<double> posteriors;
    FitEm(vectors, options_, &posteriors);
    for (size_t i = 0; i < vectors.pairs.size(); ++i) {
      ++result.stats.num_recomputations;
      if (posteriors[i] >= options_.match_posterior_threshold) {
        closure.Union(vectors.pairs[i].first, vectors.pairs[i].second);
        result.merged_pairs.push_back(vectors.pairs[i]);
        ++result.stats.num_merges;
      }
    }
  }

  result.cluster.resize(dataset.num_references());
  for (int i = 0; i < dataset.num_references(); ++i) {
    result.cluster[i] = closure.Find(i);
  }
  result.stats.solve_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace recon
