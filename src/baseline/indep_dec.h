// IndepDec: the standard reference-reconciliation baseline of §5.2.
//
// Compares each candidate reference pair attribute-wise with the *same*
// similarity functions and thresholds as DepGraph, makes every decision
// independently (no propagation, no enrichment, no cross-attribute or
// association evidence, no constraints), then computes the transitive
// closure. This is a standalone implementation — it does not build a
// dependency graph — and doubles as a differential-testing oracle for
// Reconciler(ReconcilerOptions::IndepDec()).

#ifndef RECON_BASELINE_INDEP_DEC_H_
#define RECON_BASELINE_INDEP_DEC_H_

#include "core/options.h"
#include "core/reconciler.h"
#include "model/dataset.h"

namespace recon {

/// Attribute-wise independent-decision reconciliation.
class IndepDec {
 public:
  explicit IndepDec(ReconcilerOptions options = ReconcilerOptions::IndepDec())
      : options_(std::move(options)) {}

  /// Partitions the dataset's references.
  ReconcileResult Run(const Dataset& dataset) const;

 private:
  /// The core attribute-wise pass (after key-attribute pre-merging).
  ReconcileResult RunCondensed(const Dataset& dataset) const;

  ReconcilerOptions options_;
};

}  // namespace recon

#endif  // RECON_BASELINE_INDEP_DEC_H_
