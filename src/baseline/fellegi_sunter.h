// Fellegi-Sunter record linkage with EM-estimated weights.
//
// The paper frames all classical reconciliation work as variants of the
// Fellegi-Sunter model (its references [17], [36]): a candidate pair is
// described by a vector of discrete per-field comparison outcomes; under a
// two-class naive-Bayes model, EM estimates each field's agreement
// probabilities among matches (m) and non-matches (u) without any labels;
// pairs are classified by posterior match probability and closed
// transitively. This is the second baseline next to IndepDec, and —
// unlike it — is *unsupervised but adaptive*: it learns field weights from
// the dataset itself.

#ifndef RECON_BASELINE_FELLEGI_SUNTER_H_
#define RECON_BASELINE_FELLEGI_SUNTER_H_

#include <array>
#include <vector>

#include "core/options.h"
#include "core/reconciler.h"
#include "model/dataset.h"

namespace recon {

/// EM and decision parameters.
struct FellegiSunterOptions {
  /// EM iterations / convergence tolerance on the match prior.
  int max_iterations = 60;
  double tolerance = 1e-7;
  /// Initial guesses (EM is seeded deterministically from these).
  double initial_match_prior = 0.05;
  /// Posterior P(match | vector) above which a pair is linked.
  double match_posterior_threshold = 0.9;
  /// Comparison discretization: similarity >= hi is "agree", >= lo is
  /// "partial", else "disagree"; missing values are their own outcome.
  double agree_threshold = 0.90;
  double partial_threshold = 0.60;
  /// Blocking configuration is borrowed from the reconciler options.
  ReconcilerOptions blocking = ReconcilerOptions::IndepDec();
};

/// Per-field EM estimates, exposed for inspection and tests.
struct FellegiSunterModel {
  /// P(outcome | match) and P(outcome | non-match) per field; outcomes
  /// are {disagree, partial, agree, missing}.
  std::vector<std::array<double, 4>> m_probabilities;
  std::vector<std::array<double, 4>> u_probabilities;
  double match_prior = 0.0;
  int iterations = 0;
};

/// The unsupervised Fellegi-Sunter linker. Fields per class mirror the
/// attribute set the IndepDec baseline compares (names/emails for Person,
/// title/year/pages for Article, name/year/location for Venue).
class FellegiSunter {
 public:
  explicit FellegiSunter(FellegiSunterOptions options = {})
      : options_(std::move(options)) {}

  /// Partitions the dataset's references.
  ReconcileResult Run(const Dataset& dataset) const;

  /// Runs EM for one class and returns the fitted model (for tests and
  /// weight inspection); class_id must have comparable fields.
  FellegiSunterModel FitClass(const Dataset& dataset, int class_id) const;

 private:
  FellegiSunterOptions options_;
};

}  // namespace recon

#endif  // RECON_BASELINE_FELLEGI_SUNTER_H_
