#include "graph/value_pool.h"

#include "util/logging.h"

namespace recon {

ValueId ValuePool::Intern(ValueDomain domain, std::string_view value) {
  auto& domain_map = by_domain_[DomainKey(domain)];
  auto it = domain_map.find(std::string(value));
  if (it != domain_map.end()) return it->second;
  const ValueId id = static_cast<ValueId>(strings_.size());
  strings_.emplace_back(value);
  domains_.push_back(domain);
  domain_map.emplace(std::string(value), id);
  return id;
}

ValueId ValuePool::Find(ValueDomain domain, std::string_view value) const {
  auto domain_it = by_domain_.find(DomainKey(domain));
  if (domain_it == by_domain_.end()) return kInvalidValue;
  auto it = domain_it->second.find(std::string(value));
  return it == domain_it->second.end() ? kInvalidValue : it->second;
}

const std::string& ValuePool::StringOf(ValueId id) const {
  RECON_CHECK(id >= 0 && id < size());
  return strings_[id];
}

ValueDomain ValuePool::DomainOf(ValueId id) const {
  RECON_CHECK(id >= 0 && id < size());
  return domains_[id];
}

}  // namespace recon
