// The dependency graph (paper §3.1): unique similarity nodes per element
// pair, typed directed dependency edges, and the local node-folding
// operation that implements reference enrichment (§3.3).

#ifndef RECON_GRAPH_DEP_GRAPH_H_
#define RECON_GRAPH_DEP_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/node.h"
#include "graph/value_pool.h"
#include "model/reference.h"

namespace recon {

/// Result of folding the pair nodes of a merged reference (enrichment).
struct MergeRefsResult {
  /// Nodes that gained new incoming dependencies and should be re-queued.
  std::vector<NodeId> gained_inputs;
  /// Nodes removed from the graph (their pairs now covered by survivors).
  std::vector<NodeId> folded;
};

/// Similarity dependency graph over references and attribute values.
///
/// The graph owns node/edge storage and the pair -> node indexes. It is
/// policy-free: which nodes and edges exist, and how similarities are
/// computed, is decided by the graph builder and the reconciler.
class DependencyGraph {
 public:
  /// `num_references` fixes the RefId universe (for per-reference node
  /// lists); grow it later with AddReferences.
  explicit DependencyGraph(int num_references);

  /// Extends the RefId universe by `count` references (incremental
  /// reconciliation adds references to an existing graph).
  void AddReferences(int count) {
    RECON_CHECK_GE(count, 0);
    nodes_of_ref_.resize(nodes_of_ref_.size() + count);
  }

  DependencyGraph(const DependencyGraph&) = delete;
  DependencyGraph& operator=(const DependencyGraph&) = delete;

  // ---- Construction -----------------------------------------------------

  /// Adds the node for reference pair (r1, r2); returns the existing node
  /// if already present. References must differ.
  NodeId AddRefPairNode(int class_id, RefId r1, RefId r2);

  /// Adds the node for value pair (v1, v2) with an initial similarity and
  /// state; returns the existing node if present (initial values are then
  /// left untouched). Values must differ.
  NodeId AddValuePairNode(ValueId v1, ValueId v2, double sim,
                          NodeState state);

  /// Adds a directed dependency edge `from -> to` (to's similarity depends
  /// on from's). Duplicate (from, to, kind, evidence) edges are ignored.
  void AddEdge(NodeId from, NodeId to, DependencyKind kind, int evidence);

  // ---- Lookup -----------------------------------------------------------

  NodeId FindRefPair(RefId r1, RefId r2) const;
  NodeId FindValuePair(ValueId v1, ValueId v2) const;

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& mutable_node(NodeId id) { return nodes_[id]; }

  /// Sets `id`'s processing state, invalidating dependents' evidence
  /// caches when the transition changes how `id` contributes evidence
  /// (into or out of kNonMerge excludes / re-admits its similarity; a
  /// merge flips boolean counts). Callers outside the solver's Step()
  /// must use this instead of writing `state` directly: Step() keeps the
  /// caches consistent itself via delta pushes. Bumps dependents'
  /// generation stamps (see Node::gen).
  void SetNodeState(NodeId id, NodeState state);

  /// Clears the cached evidence summaries of every node whose similarity
  /// depends on `id` (its out-edge targets) and bumps their generation
  /// stamps.
  void InvalidateDependentCaches(NodeId id);

  /// Live reference-pair nodes containing reference `r`.
  const std::vector<NodeId>& NodesOfRef(RefId r) const {
    return nodes_of_ref_[r];
  }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  /// Nodes not yet folded away (Table 6 reports this).
  int num_live_nodes() const { return num_live_nodes_; }
  int num_edges() const { return num_edges_; }

  // ---- Enrichment (§3.3) ------------------------------------------------

  /// Reference enrichment after merging `gone` into `keep`: every pair node
  /// (gone, x) is folded into (keep, x) — neighbors reconnected, the node
  /// removed — or renamed to (keep, x) if no such node exists. The node for
  /// the pair (keep, gone) itself is left in place (it records the merge).
  ///
  /// If a folded-away node was in state kNonMerge, the surviving node
  /// becomes kNonMerge (a cluster cannot merge with a reference that is
  /// constrained apart from one of its members).
  MergeRefsResult MergeReferences(RefId keep, RefId gone);

 private:
  static uint64_t PairKey(int32_t a, int32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }

  /// Moves all of `from`'s edges onto `into` (dropping would-be self
  /// loops), marks `from` dead. Returns true if `into` gained at least one
  /// new incoming edge.
  bool FoldInto(NodeId from, NodeId into);

  /// Removes the (source -> target) entry from source.out and target.in.
  void DetachEdge(NodeId source, NodeId target, DependencyKind kind,
                  int16_t evidence);

  void RemoveFromRefLists(NodeId id);

  std::vector<Node> nodes_;
  std::unordered_map<uint64_t, NodeId> ref_pair_index_;
  std::unordered_map<uint64_t, NodeId> value_pair_index_;
  std::vector<std::vector<NodeId>> nodes_of_ref_;
  int num_live_nodes_ = 0;
  int num_edges_ = 0;
};

}  // namespace recon

#endif  // RECON_GRAPH_DEP_GRAPH_H_
