// The dependency graph (paper §3.1): unique similarity nodes per element
// pair, typed directed dependency edges, and the local node-folding
// operation that implements reference enrichment (§3.3).
//
// Storage is a flat CSR layout (DESIGN.md §13): one dense node array plus
// shared range pools for in-edges, out-edges, per-reference node lists,
// and static evidence, and open-addressed flat pair indexes. Compact()
// packs the pools tight after bulk construction; incremental extension
// appends into slack / relocates and re-compacts on flush.

#ifndef RECON_GRAPH_DEP_GRAPH_H_
#define RECON_GRAPH_DEP_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/node.h"
#include "graph/pair_index.h"
#include "graph/range_pool.h"
#include "graph/value_pool.h"
#include "model/reference.h"

namespace recon {

/// Result of folding the pair nodes of a merged reference (enrichment).
struct MergeRefsResult {
  /// Nodes that gained new incoming dependencies and should be re-queued.
  std::vector<NodeId> gained_inputs;
  /// Nodes removed from the graph (their pairs now covered by survivors).
  std::vector<NodeId> folded;
};

/// Heap footprint of the graph's CSR storage (ReconcileStats::graph_*).
struct GraphBytes {
  size_t nodes = 0;    ///< Node array + pooled static evidence.
  size_t edges = 0;    ///< In- and out-edge pools (buffers + range tables).
  size_t indices = 0;  ///< Pair indexes + per-reference node lists.
  size_t total() const { return nodes + edges + indices; }
};

/// Similarity dependency graph over references and attribute values.
///
/// The graph owns node/edge storage and the pair -> node indexes. It is
/// policy-free: which nodes and edges exist, and how similarities are
/// computed, is decided by the graph builder and the reconciler.
///
/// Span accessors (in_edges/out_edges/static_real/NodesOfRef) view the
/// shared pools directly and are invalidated by any mutation of the same
/// pool (AddEdge, folds, Compact) — copy first when mutating while
/// iterating.
class DependencyGraph {
 public:
  /// `num_references` fixes the RefId universe (for per-reference node
  /// lists); grow it later with AddReferences.
  explicit DependencyGraph(int num_references);

  /// Extends the RefId universe by `count` references (incremental
  /// reconciliation adds references to an existing graph).
  void AddReferences(int count) {
    RECON_CHECK_GE(count, 0);
    ref_pool_.EnsureSlots(ref_pool_.num_slots() + count);
  }

  DependencyGraph(const DependencyGraph&) = delete;
  DependencyGraph& operator=(const DependencyGraph&) = delete;

  // ---- Construction -----------------------------------------------------

  /// Adds the node for reference pair (r1, r2); returns the existing node
  /// if already present. References must differ.
  NodeId AddRefPairNode(int class_id, RefId r1, RefId r2);

  /// Adds the node for value pair (v1, v2) with an initial similarity and
  /// state; returns the existing node if present (initial values are then
  /// left untouched). Values must differ.
  NodeId AddValuePairNode(ValueId v1, ValueId v2, double sim,
                          NodeState state);

  /// Adds a directed dependency edge `from -> to` (to's similarity depends
  /// on from's). Duplicate (from, to, kind, evidence) edges are ignored.
  void AddEdge(NodeId from, NodeId to, DependencyKind kind, int evidence);

  /// Records `sim` as static evidence for (`id`, `evidence`), keeping the
  /// max, and absorbs it into `id`'s evidence cache.
  void AddStaticReal(NodeId id, int evidence, double sim);

  /// Sizes the node array, pools, and pair indexes for a build expected to
  /// stage about `expected_pairs` reference pairs (satellite: cuts rehash
  /// and relocation churn during SeedPairs).
  void ReserveBuild(size_t expected_pairs);

  /// Packs every pool into tight CSR form (ranges back to back, no slack,
  /// no garbage from folds/relocations). Call after bulk construction and
  /// after incremental flushes; spans are invalidated.
  void Compact();

  // ---- Lookup -----------------------------------------------------------

  NodeId FindRefPair(RefId r1, RefId r2) const;
  NodeId FindValuePair(ValueId v1, ValueId v2) const;

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& mutable_node(NodeId id) { return nodes_[id]; }

  std::span<const Edge> in_edges(NodeId id) const { return in_pool_.span(id); }
  std::span<const Edge> out_edges(NodeId id) const {
    return out_pool_.span(id);
  }
  int in_degree(NodeId id) const { return static_cast<int>(in_pool_.count(id)); }
  std::span<const StaticReal> static_real(NodeId id) const {
    return static_pool_.span(id);
  }

  /// Sets `id`'s processing state, invalidating dependents' evidence
  /// caches when the transition changes how `id` contributes evidence
  /// (into or out of kNonMerge excludes / re-admits its similarity; a
  /// merge flips boolean counts). Callers outside the solver's Step()
  /// must use this instead of writing `state` directly: Step() keeps the
  /// caches consistent itself via delta pushes. Bumps dependents'
  /// generation stamps (see Node::gen).
  void SetNodeState(NodeId id, NodeState state);

  /// Clears the cached evidence summaries of every node whose similarity
  /// depends on `id` (its out-edge targets) and bumps their generation
  /// stamps.
  void InvalidateDependentCaches(NodeId id);

  /// Live reference-pair nodes containing reference `r`.
  std::span<const NodeId> NodesOfRef(RefId r) const {
    return ref_pool_.span(static_cast<size_t>(r));
  }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  /// Nodes not yet folded away (Table 6 reports this).
  int num_live_nodes() const { return num_live_nodes_; }
  int num_edges() const { return num_edges_; }

  /// Current heap footprint of the CSR storage, by pool family.
  GraphBytes bytes() const;

  // ---- Enrichment (§3.3) ------------------------------------------------

  /// Reference enrichment after merging `gone` into `keep`: every pair node
  /// (gone, x) is folded into (keep, x) — neighbors reconnected, the node
  /// removed — or renamed to (keep, x) if no such node exists. The node for
  /// the pair (keep, gone) itself is left in place (it records the merge).
  ///
  /// If a folded-away node was in state kNonMerge, the surviving node
  /// becomes kNonMerge (a cluster cannot merge with a reference that is
  /// constrained apart from one of its members).
  MergeRefsResult MergeReferences(RefId keep, RefId gone);

 private:
  static uint64_t PairKey(int32_t a, int32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }

  /// Appends a node and opens its pool slots.
  NodeId PushNode(Node&& node);

  /// Moves all of `from`'s edges onto `into` (dropping would-be self
  /// loops), marks `from` dead. Returns true if `into` gained at least one
  /// new incoming edge.
  bool FoldInto(NodeId from, NodeId into);

  /// Removes the (source -> target) entry from source's out list and
  /// target's in list.
  void DetachEdge(NodeId source, NodeId target, DependencyKind kind,
                  int16_t evidence);

  void RemoveFromRefLists(NodeId id);

  std::vector<Node> nodes_;
  RangePool<Edge> in_pool_;
  RangePool<Edge> out_pool_;
  RangePool<StaticReal> static_pool_;
  /// Slot per RefId: the live pair nodes containing that reference.
  RangePool<NodeId> ref_pool_;
  FlatPairIndex ref_pair_index_;
  FlatPairIndex value_pair_index_;
  /// Fold scratch (FoldInto must copy edge spans before pool mutation).
  std::vector<Edge> scratch_edges_;
  std::vector<NodeId> scratch_refs_;
  std::vector<StaticReal> scratch_statics_;
  int num_live_nodes_ = 0;
  int num_edges_ = 0;
};

}  // namespace recon

#endif  // RECON_GRAPH_DEP_GRAPH_H_
