// Dependency-graph node and edge types (paper Definition 3.1 and §3.1's
// edge refinement into real-valued / strong-boolean / weak-boolean
// dependencies).

#ifndef RECON_GRAPH_NODE_H_
#define RECON_GRAPH_NODE_H_

#include <array>
#include <cstdint>

#include "sim/evidence.h"

namespace recon {

/// Dense id of a node within a DependencyGraph.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// What a node's element pair is.
enum class NodeKind : uint8_t {
  kReferencePair,  ///< Similarity of two references of the same class.
  kValuePair,      ///< Similarity of two (comparable) attribute values.
};

/// Processing state of a node (§3.2 plus the §3.4 non-merge state).
enum class NodeState : uint8_t {
  kInactive,  ///< Similarity up to date; not queued.
  kActive,    ///< Queued for (re)computation.
  kMerged,    ///< Similarity reached the merge threshold.
  kNonMerge,  ///< Constraint: the two elements are guaranteed distinct.
};

/// How a neighbor's similarity influences a node (§3.1, second refinement).
enum class DependencyKind : uint8_t {
  kRealValued,    ///< The actual similarity value matters.
  kStrongBoolean, ///< Neighbor merge (almost) implies this pair merges.
  kWeakBoolean,   ///< Neighbor merge increases this pair's similarity.
};

/// A directed dependency. In a node's `out` list, `node` is the target
/// whose similarity depends on this node; in the `in` list, `node` is the
/// source this node's similarity depends on.
struct Edge {
  NodeId node;
  DependencyKind kind;
  /// Evidence type (see sim/evidence.h): tags which term of the per-class
  /// similarity function this dependency feeds.
  int16_t evidence;
};

/// Delta-maintained summary of a node's incoming evidence, kept by the
/// fixed-point solver (ReconcilerOptions::evidence_cache). Mirrors
/// sim/class_sim.h's EvidenceSummary but stores floats: every contribution
/// is a float (neighbor sims, static evidence), so float channel maxima
/// lose nothing against the rescan's doubles.
///
/// Invariant while `valid`: the summary equals what a full in-edge rescan
/// would build at this instant. A fresh node has no in-edges and no static
/// evidence, so the empty summary is exact and caches are born valid.
/// Monotone mutations maintain the summary in place — AddEdge pushes the
/// new source's current contribution, AddStaticReal offers the static
/// value, and the solver pushes sim raises and merge transitions along
/// out-edges. Only non-monotone surgery (node folding, non-merge demotion,
/// which can *remove* contributions) clears `valid`, making the next
/// recomputation rescan once.
struct EvidenceCache {
  EvidenceCache() { best.fill(-1.0f); }

  /// Best similarity per real-valued evidence channel; -1 = no evidence.
  std::array<float, kNumEvidence> best;
  /// Merged strong-/weak-boolean incoming neighbors (statics included).
  int32_t strong_merged = 0;
  int32_t weak_merged = 0;
  bool valid = true;

  void Offer(int evidence, float sim) {
    if (sim > best[evidence]) best[evidence] = sim;
  }
  void Reset() {
    best.fill(-1.0f);
    strong_merged = 0;
    weak_merged = 0;
    valid = false;
  }
};

/// One similarity node. Element ids are RefIds for kReferencePair nodes and
/// ValueIds for kValuePair nodes, stored with a < b.
struct Node {
  int32_t a = 0;
  int32_t b = 0;
  float sim = 0.0f;
  NodeKind kind = NodeKind::kReferencePair;
  NodeState state = NodeState::kInactive;
  /// Class id for reference pairs; unused (-1) for value pairs.
  int16_t class_id = -1;
  /// True once the node has been folded away by reference enrichment.
  bool dead = false;
  /// True while the node sits in the reconciler's active queue.
  bool queued = false;
  /// User feedback: this pair is a confirmed match; its similarity
  /// computes to 1 regardless of evidence.
  bool forced_merge = false;

  /// Count of identical shared association targets acting as merged
  /// strong-/weak-boolean neighbors (paper: the self node (a, a)).
  /// (Static real-valued evidence and the in/out edge lists live in the
  /// DependencyGraph's shared CSR pools, not in the node: see
  /// DependencyGraph::in_edges/out_edges/static_real.)
  int16_t static_strong = 0;
  int16_t static_weak = 0;

  /// Cached evidence summary (see EvidenceCache). Only the solver reads
  /// it; graph surgery and the mutators below keep `valid` honest.
  EvidenceCache cache;

  /// Input generation: bumped by every mutation that can change what this
  /// node's similarity computation would return — a source's sim raise or
  /// state change, an in-edge added or lost, static evidence gained, a fold
  /// into this node, a cache invalidation. The parallel wavefront solver
  /// stamps it when scoring a frontier node in parallel and discards the
  /// score at commit time if the stamp no longer matches (an earlier commit
  /// in the same round mutated an input), re-scoring serially instead.
  /// Over-bumping is safe (it only forces a serial re-score); missing a
  /// bump would silently commit a stale score, so every dep_graph.cc
  /// mutation site and solver commit bumps conservatively.
  uint32_t gen = 0;

  bool IsRefPair() const { return kind == NodeKind::kReferencePair; }
  int32_t Other(int32_t element) const { return element == a ? b : a; }
};

/// One static real-valued evidence entry (evidence type -> comparator
/// score on a shared attribute value), pooled per node by the graph.
struct StaticReal {
  int16_t type;
  float sim;
};

}  // namespace recon

#endif  // RECON_GRAPH_NODE_H_
