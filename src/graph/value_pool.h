// Interning pool for attribute values.
//
// The dependency graph requires a *unique* node per pair of elements
// (paper §3.1); for that, equal attribute values must be one element. The
// pool interns strings per domain (a domain is one atomic attribute of one
// class), yielding globally unique ValueIds.

#ifndef RECON_GRAPH_VALUE_POOL_H_
#define RECON_GRAPH_VALUE_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace recon {

/// Globally unique id of an interned (domain, string) value.
using ValueId = int32_t;
inline constexpr ValueId kInvalidValue = -1;

/// Identifies one atomic attribute of one class.
struct ValueDomain {
  int class_id = -1;
  int attr = -1;

  friend bool operator==(const ValueDomain&, const ValueDomain&) = default;
};

/// Interns attribute values. Values are equal elements only within the same
/// domain ("Eugene Wong" as a Person.name is a different element from the
/// same string elsewhere).
class ValuePool {
 public:
  ValuePool() = default;

  /// Interns `value` in `domain`, returning a stable id.
  ValueId Intern(ValueDomain domain, std::string_view value);

  /// Id of `value` in `domain`, or kInvalidValue.
  ValueId Find(ValueDomain domain, std::string_view value) const;

  const std::string& StringOf(ValueId id) const;
  ValueDomain DomainOf(ValueId id) const;

  int size() const { return static_cast<int>(strings_.size()); }

 private:
  static uint64_t DomainKey(ValueDomain d) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(d.class_id)) << 32) |
           static_cast<uint32_t>(d.attr);
  }

  std::unordered_map<uint64_t, std::unordered_map<std::string, ValueId>>
      by_domain_;
  std::vector<std::string> strings_;
  std::vector<ValueDomain> domains_;
};

}  // namespace recon

#endif  // RECON_GRAPH_VALUE_POOL_H_
