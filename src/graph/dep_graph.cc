#include "graph/dep_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace recon {

DependencyGraph::DependencyGraph(int num_references) {
  RECON_CHECK_GE(num_references, 0);
  ref_pool_.EnsureSlots(static_cast<size_t>(num_references));
}

NodeId DependencyGraph::PushNode(Node&& node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  in_pool_.EnsureSlots(nodes_.size());
  out_pool_.EnsureSlots(nodes_.size());
  static_pool_.EnsureSlots(nodes_.size());
  ++num_live_nodes_;
  return id;
}

void DependencyGraph::ReserveBuild(size_t expected_pairs) {
  // Every staged reference pair adds ~1 ref-pair node and on PIM-like
  // schemas ~2 value nodes; edges come in 1-2 per value node plus the
  // association wiring. The constants only size first allocations — being
  // off costs one doubling, not correctness.
  const size_t nodes = nodes_.size() + expected_pairs * 3;
  nodes_.reserve(nodes);
  in_pool_.ReserveSlots(nodes);
  out_pool_.ReserveSlots(nodes);
  static_pool_.ReserveSlots(nodes);
  in_pool_.ReserveData(in_pool_.TotalCount() + expected_pairs * 4);
  out_pool_.ReserveData(out_pool_.TotalCount() + expected_pairs * 4);
  static_pool_.ReserveData(static_pool_.TotalCount() + expected_pairs);
  ref_pair_index_.Reserve(ref_pair_index_.size() + expected_pairs);
  value_pair_index_.Reserve(value_pair_index_.size() + expected_pairs * 2);
}

void DependencyGraph::Compact() {
  in_pool_.Compact();
  out_pool_.Compact();
  static_pool_.Compact();
  ref_pool_.Compact();
  // ReserveBuild sized everything from a candidate-count estimate; the
  // graph shape is settled now, so stop carrying the over-estimate slack.
  // Node ids are stable — only capacity changes — and callers already may
  // not hold Node references across Compact (the pool rewrites move edge
  // storage too).
  nodes_.shrink_to_fit();
  ref_pair_index_.ShrinkToFit();
  value_pair_index_.ShrinkToFit();
}

GraphBytes DependencyGraph::bytes() const {
  GraphBytes b;
  b.nodes = nodes_.capacity() * sizeof(Node) + static_pool_.data_bytes() +
            static_pool_.slot_bytes();
  b.edges = in_pool_.data_bytes() + in_pool_.slot_bytes() +
            out_pool_.data_bytes() + out_pool_.slot_bytes();
  b.indices = ref_pair_index_.bytes() + value_pair_index_.bytes() +
              ref_pool_.data_bytes() + ref_pool_.slot_bytes();
  return b;
}

NodeId DependencyGraph::AddRefPairNode(int class_id, RefId r1, RefId r2) {
  RECON_CHECK_NE(r1, r2);
  RECON_CHECK(r1 >= 0 && r1 < static_cast<int>(ref_pool_.num_slots()));
  RECON_CHECK(r2 >= 0 && r2 < static_cast<int>(ref_pool_.num_slots()));
  const uint64_t key = PairKey(r1, r2);
  auto [existing, inserted] =
      ref_pair_index_.Insert(key, static_cast<NodeId>(nodes_.size()));
  if (!inserted) return existing;

  Node node;
  node.kind = NodeKind::kReferencePair;
  node.class_id = static_cast<int16_t>(class_id);
  node.a = std::min(r1, r2);
  node.b = std::max(r1, r2);
  node.sim = 0.0f;
  node.state = NodeState::kInactive;
  const NodeId id = PushNode(std::move(node));
  ref_pool_.Append(static_cast<size_t>(r1), id);
  ref_pool_.Append(static_cast<size_t>(r2), id);
  return id;
}

NodeId DependencyGraph::AddValuePairNode(ValueId v1, ValueId v2, double sim,
                                         NodeState state) {
  RECON_CHECK_NE(v1, v2);
  const uint64_t key = PairKey(v1, v2);
  auto [existing, inserted] =
      value_pair_index_.Insert(key, static_cast<NodeId>(nodes_.size()));
  if (!inserted) return existing;

  Node node;
  node.kind = NodeKind::kValuePair;
  node.a = std::min(v1, v2);
  node.b = std::max(v1, v2);
  node.sim = static_cast<float>(sim);
  node.state = state;
  return PushNode(std::move(node));
}

void DependencyGraph::AddEdge(NodeId from, NodeId to, DependencyKind kind,
                              int evidence) {
  RECON_CHECK_NE(from, to);
  const int16_t ev = static_cast<int16_t>(evidence);
  for (const Edge& e : out_pool_.span(from)) {
    if (e.node == to && e.kind == kind && e.evidence == ev) return;
  }
  out_pool_.Append(from, Edge{to, kind, ev});
  in_pool_.Append(to, Edge{from, kind, ev});
  const Node& src = nodes_[from];
  Node& dst = nodes_[to];
  ++dst.gen;  // New input: any in-flight parallel score of `to` is stale.
  // Push the new source's current contribution so `to`'s evidence cache
  // stays valid: this is exactly what a rescan would read for this edge
  // right now, and later source changes arrive as solver deltas (sim
  // raises, merge transitions) or cache invalidations (demotions, folds).
  if (dst.cache.valid) {
    switch (kind) {
      case DependencyKind::kRealValued:
        if (!src.dead && src.state != NodeState::kNonMerge) {
          dst.cache.Offer(ev, src.sim);
        }
        break;
      case DependencyKind::kStrongBoolean:
        if (src.state == NodeState::kMerged) ++dst.cache.strong_merged;
        break;
      case DependencyKind::kWeakBoolean:
        if (src.state == NodeState::kMerged) ++dst.cache.weak_merged;
        break;
    }
  }
  ++num_edges_;
}

void DependencyGraph::AddStaticReal(NodeId id, int evidence, double sim) {
  // Statics feed the cached summary through the same max, so the cache
  // absorbs the new value directly and stays valid. The node's own score
  // inputs changed, so its generation moves.
  Node& node = nodes_[id];
  ++node.gen;
  node.cache.Offer(evidence, static_cast<float>(sim));
  const int16_t ev = static_cast<int16_t>(evidence);
  for (StaticReal& entry : static_pool_.mutable_span(id)) {
    if (entry.type == ev) {
      if (sim > entry.sim) entry.sim = static_cast<float>(sim);
      return;
    }
  }
  static_pool_.Append(id, StaticReal{ev, static_cast<float>(sim)});
}

void DependencyGraph::SetNodeState(NodeId id, NodeState state) {
  Node& node = nodes_[id];
  const NodeState old = node.state;
  if (old == state) return;
  node.state = state;
  // Keep dependent evidence caches honest. Additions (a restored or newly
  // merged contribution) are monotone and can be pushed; removals (a
  // demoted contribution) invalidate only the caches whose summary may
  // actually rest on it.
  const bool was_merged = old == NodeState::kMerged;
  const bool is_merged = state == NodeState::kMerged;
  const float node_sim = node.sim;
  for (const Edge& e : out_pool_.span(id)) {
    ++nodes_[e.node].gen;  // A source's state is a score input.
    EvidenceCache& cache = nodes_[e.node].cache;
    if (!cache.valid) continue;
    if (e.kind == DependencyKind::kRealValued) {
      if (state == NodeState::kNonMerge) {
        // Rescans now exclude this node; if the cached channel max could
        // come from it, the dependent must rescan. A strictly greater max
        // is supported by another (still included) contributor.
        if (cache.best[e.evidence] <= node_sim) cache.valid = false;
      } else if (old == NodeState::kNonMerge) {
        cache.Offer(e.evidence, node_sim);  // Contribution restored.
      }
    } else if (e.kind == DependencyKind::kStrongBoolean) {
      if (is_merged && !was_merged) {
        ++cache.strong_merged;
      } else if (was_merged && !is_merged) {
        cache.valid = false;  // Un-merge (feedback): count must drop.
      }
    } else {
      if (is_merged && !was_merged) {
        ++cache.weak_merged;
      } else if (was_merged && !is_merged) {
        cache.valid = false;
      }
    }
  }
}

void DependencyGraph::InvalidateDependentCaches(NodeId id) {
  for (const Edge& e : out_pool_.span(id)) {
    nodes_[e.node].cache.valid = false;
    ++nodes_[e.node].gen;
  }
}

NodeId DependencyGraph::FindRefPair(RefId r1, RefId r2) const {
  if (r1 == r2) return kInvalidNode;
  return ref_pair_index_.Find(PairKey(r1, r2));
}

NodeId DependencyGraph::FindValuePair(ValueId v1, ValueId v2) const {
  if (v1 == v2) return kInvalidNode;
  return value_pair_index_.Find(PairKey(v1, v2));
}

void DependencyGraph::DetachEdge(NodeId source, NodeId target,
                                 DependencyKind kind, int16_t evidence) {
  const bool found =
      out_pool_.RemoveFirst(source, [&](const Edge& e) {
        return e.node == target && e.kind == kind && e.evidence == evidence;
      });
  if (!found) {
    RECON_LOG(Fatal) << "DetachEdge: edge " << source << " -> " << target
                     << " not found";
  }
  --num_edges_;
}

bool DependencyGraph::FoldInto(NodeId from, NodeId into) {
  RECON_CHECK_NE(from, into);
  RECON_CHECK(!nodes_[from].dead && !nodes_[into].dead);
  const float old_sim = nodes_[into].sim;
  // The fold rewrites dst's inputs wholesale (in-edges, statics, sim);
  // one conservative bump covers every mutation below that targets dst.
  ++nodes_[into].gen;

  bool gained = false;
  // Reconnect incoming dependencies: x -> from becomes x -> into. The
  // span must be copied first: AddEdge below appends into the same pools
  // and would invalidate it mid-iteration.
  {
    const auto src_in = in_pool_.span(from);
    scratch_edges_.assign(src_in.begin(), src_in.end());
  }
  for (const Edge& e : scratch_edges_) {
    DetachEdge(e.node, from, e.kind, e.evidence);
    if (e.node == into) continue;  // Would be a self loop.
    const uint32_t before = in_pool_.count(into);
    AddEdge(e.node, into, e.kind, e.evidence);
    if (in_pool_.count(into) > before) gained = true;
  }
  in_pool_.Clear(from);

  // Reconnect outgoing dependencies: from -> y becomes into -> y.
  //
  // y's evidence cache survives this: src was never merged (merged nodes
  // are not folded) and src.sim <= the sim dst ends up with, so replacing
  // the src edge leaves y's cached channel maxima equal to a rescan — a
  // genuinely new into -> y edge pushes dst's contribution via AddEdge,
  // and dst's own sim raise / demotion is reconciled at the end below.
  bool dst_lost_input = false;
  {
    const auto src_out = out_pool_.span(from);
    scratch_edges_.assign(src_out.begin(), src_out.end());
  }
  for (const Edge& e : scratch_edges_) {
    // Remove the y.in record for `from`.
    if (in_pool_.RemoveFirst(e.node, [&](const Edge& back) {
          return back.node == from && back.kind == e.kind &&
                 back.evidence == e.evidence;
        })) {
      --num_edges_;
      ++nodes_[e.node].gen;  // Lost an input.
    }
    if (e.node == into) {
      // dst loses src's own real-valued contribution; its cached channel
      // max may rest on it.
      if (e.kind == DependencyKind::kRealValued) dst_lost_input = true;
      continue;
    }
    AddEdge(into, e.node, e.kind, e.evidence);
  }
  out_pool_.Clear(from);

  // Static evidence accumulates: the surviving node represents the union
  // of both pairs' information. AddStaticReal maintains dst's cache; the
  // boolean base counts are delta-bumped to match. The span must be copied
  // first: AddStaticReal appends to the same pool, and growth reallocates
  // the storage under a live span.
  {
    const auto src_static = static_pool_.span(from);
    scratch_statics_.assign(src_static.begin(), src_static.end());
  }
  for (const StaticReal& entry : scratch_statics_) {
    AddStaticReal(into, entry.type, entry.sim);
  }
  Node& src = nodes_[from];
  Node& dst = nodes_[into];
  if (src.static_strong > dst.static_strong) {
    if (dst.cache.valid) {
      dst.cache.strong_merged += src.static_strong - dst.static_strong;
    }
    dst.static_strong = src.static_strong;
  }
  if (src.static_weak > dst.static_weak) {
    if (dst.cache.valid) {
      dst.cache.weak_merged += src.static_weak - dst.static_weak;
    }
    dst.static_weak = src.static_weak;
  }

  // Negative evidence survives folding: a cluster may not merge with a
  // reference constrained apart from any of its members. An already-merged
  // destination is left merged (decisions are monotone; the §3.4
  // post-fixpoint pass arbitrates genuine conflicts).
  if (src.state == NodeState::kNonMerge) {
    if (dst.state != NodeState::kMerged) dst.state = NodeState::kNonMerge;
  } else if (dst.state != NodeState::kNonMerge) {
    // Evidence is now a superset of both nodes'; a monotone similarity
    // function will produce at least max of the two on recomputation.
    dst.sim = std::max(dst.sim, src.sim);
  }

  src.dead = true;
  --num_live_nodes_;
  // Every dst mutation above was cache-maintained (AddEdge pushed gained
  // contributions, statics were offered / delta-bumped), except a direct
  // src -> dst input disappearing with the fold.
  if (dst_lost_input) dst.cache.valid = false;
  if (dst.state == NodeState::kNonMerge) {
    // Rescans exclude a non-merge dst, but dependents may cache the
    // folded node's (or, on a fresh demotion, dst's own) contributions.
    // Covers both the constraint transferred from src and a dst that was
    // already constrained before edges were moved onto it.
    InvalidateDependentCaches(into);
  } else if (dst.sim != old_sim) {
    // Monotone raise outside the solver loop: push it like Step would.
    const float dst_sim = dst.sim;
    for (const Edge& e : out_pool_.span(into)) {
      if (e.kind != DependencyKind::kRealValued) continue;
      ++nodes_[e.node].gen;
      EvidenceCache& cache = nodes_[e.node].cache;
      if (cache.valid) cache.Offer(e.evidence, dst_sim);
    }
  }
  return gained;
}

void DependencyGraph::RemoveFromRefLists(NodeId id) {
  const Node& node = nodes_[id];
  for (const RefId r : {static_cast<RefId>(node.a),
                        static_cast<RefId>(node.b)}) {
    ref_pool_.RemoveFirst(static_cast<size_t>(r),
                          [id](NodeId n) { return n == id; });
  }
}

MergeRefsResult DependencyGraph::MergeReferences(RefId keep, RefId gone) {
  RECON_CHECK_NE(keep, gone);
  MergeRefsResult result;

  // Copy: folding mutates the ref lists.
  {
    const auto gone_span = ref_pool_.span(static_cast<size_t>(gone));
    scratch_refs_.assign(gone_span.begin(), gone_span.end());
  }
  for (const NodeId n : scratch_refs_) {
    Node& node = nodes_[n];
    if (node.dead) continue;
    if (!node.IsRefPair()) continue;
    const RefId other = static_cast<RefId>(node.Other(gone));
    if (other == keep) continue;  // The (keep, gone) pair node itself.
    // Merged nodes are markers of earlier merges within this cluster; they
    // stay in place as evidence sources and must not be renamed or folded.
    if (node.state == NodeState::kMerged) continue;

    ref_pair_index_.Erase(PairKey(node.a, node.b));
    const NodeId target = FindRefPair(keep, other);
    if (target != kInvalidNode && target != n && !nodes_[target].dead) {
      // Fold (gone, other) into (keep, other).
      RemoveFromRefLists(n);
      const bool gained = FoldInto(n, target);
      result.folded.push_back(n);
      if (gained) result.gained_inputs.push_back(target);
    } else {
      // Rename (gone, other) to (keep, other).
      RemoveFromRefLists(n);
      node.a = std::min(keep, other);
      node.b = std::max(keep, other);
      ref_pair_index_.InsertOrAssign(PairKey(keep, other), n);
      ref_pool_.Append(static_cast<size_t>(keep), n);
      ref_pool_.Append(static_cast<size_t>(other), n);
      // The renamed node now compares enriched elements; it should be
      // reconsidered even though its edge set did not change.
      result.gained_inputs.push_back(n);
    }
  }
  ref_pool_.Clear(static_cast<size_t>(gone));
  return result;
}

}  // namespace recon
