#include "graph/dep_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace recon {

DependencyGraph::DependencyGraph(int num_references)
    : nodes_of_ref_(num_references) {
  RECON_CHECK_GE(num_references, 0);
}

NodeId DependencyGraph::AddRefPairNode(int class_id, RefId r1, RefId r2) {
  RECON_CHECK_NE(r1, r2);
  RECON_CHECK(r1 >= 0 && r1 < static_cast<int>(nodes_of_ref_.size()));
  RECON_CHECK(r2 >= 0 && r2 < static_cast<int>(nodes_of_ref_.size()));
  const uint64_t key = PairKey(r1, r2);
  auto [it, inserted] =
      ref_pair_index_.try_emplace(key, static_cast<NodeId>(nodes_.size()));
  if (!inserted) return it->second;

  Node node;
  node.kind = NodeKind::kReferencePair;
  node.class_id = static_cast<int16_t>(class_id);
  node.a = std::min(r1, r2);
  node.b = std::max(r1, r2);
  node.sim = 0.0f;
  node.state = NodeState::kInactive;
  nodes_.push_back(std::move(node));
  ++num_live_nodes_;

  const NodeId id = it->second;
  nodes_of_ref_[r1].push_back(id);
  nodes_of_ref_[r2].push_back(id);
  return id;
}

NodeId DependencyGraph::AddValuePairNode(ValueId v1, ValueId v2, double sim,
                                         NodeState state) {
  RECON_CHECK_NE(v1, v2);
  const uint64_t key = PairKey(v1, v2);
  auto [it, inserted] =
      value_pair_index_.try_emplace(key, static_cast<NodeId>(nodes_.size()));
  if (!inserted) return it->second;

  Node node;
  node.kind = NodeKind::kValuePair;
  node.a = std::min(v1, v2);
  node.b = std::max(v1, v2);
  node.sim = static_cast<float>(sim);
  node.state = state;
  nodes_.push_back(std::move(node));
  ++num_live_nodes_;
  return it->second;
}

void DependencyGraph::AddEdge(NodeId from, NodeId to, DependencyKind kind,
                              int evidence) {
  RECON_CHECK_NE(from, to);
  Node& src = nodes_[from];
  const int16_t ev = static_cast<int16_t>(evidence);
  for (const Edge& e : src.out) {
    if (e.node == to && e.kind == kind && e.evidence == ev) return;
  }
  src.out.push_back(Edge{to, kind, ev});
  Node& dst = nodes_[to];
  dst.in.push_back(Edge{from, kind, ev});
  ++dst.gen;  // New input: any in-flight parallel score of `to` is stale.
  // Push the new source's current contribution so `to`'s evidence cache
  // stays valid: this is exactly what a rescan would read for this edge
  // right now, and later source changes arrive as solver deltas (sim
  // raises, merge transitions) or cache invalidations (demotions, folds).
  if (dst.cache.valid) {
    switch (kind) {
      case DependencyKind::kRealValued:
        if (!src.dead && src.state != NodeState::kNonMerge) {
          dst.cache.Offer(ev, src.sim);
        }
        break;
      case DependencyKind::kStrongBoolean:
        if (src.state == NodeState::kMerged) ++dst.cache.strong_merged;
        break;
      case DependencyKind::kWeakBoolean:
        if (src.state == NodeState::kMerged) ++dst.cache.weak_merged;
        break;
    }
  }
  ++num_edges_;
}

void DependencyGraph::SetNodeState(NodeId id, NodeState state) {
  Node& node = nodes_[id];
  const NodeState old = node.state;
  if (old == state) return;
  node.state = state;
  // Keep dependent evidence caches honest. Additions (a restored or newly
  // merged contribution) are monotone and can be pushed; removals (a
  // demoted contribution) invalidate only the caches whose summary may
  // actually rest on it.
  const bool was_merged = old == NodeState::kMerged;
  const bool is_merged = state == NodeState::kMerged;
  for (const Edge& e : node.out) {
    ++nodes_[e.node].gen;  // A source's state is a score input.
    EvidenceCache& cache = nodes_[e.node].cache;
    if (!cache.valid) continue;
    if (e.kind == DependencyKind::kRealValued) {
      if (state == NodeState::kNonMerge) {
        // Rescans now exclude this node; if the cached channel max could
        // come from it, the dependent must rescan. A strictly greater max
        // is supported by another (still included) contributor.
        if (cache.best[e.evidence] <= node.sim) cache.valid = false;
      } else if (old == NodeState::kNonMerge) {
        cache.Offer(e.evidence, node.sim);  // Contribution restored.
      }
    } else if (e.kind == DependencyKind::kStrongBoolean) {
      if (is_merged && !was_merged) {
        ++cache.strong_merged;
      } else if (was_merged && !is_merged) {
        cache.valid = false;  // Un-merge (feedback): count must drop.
      }
    } else {
      if (is_merged && !was_merged) {
        ++cache.weak_merged;
      } else if (was_merged && !is_merged) {
        cache.valid = false;
      }
    }
  }
}

void DependencyGraph::InvalidateDependentCaches(NodeId id) {
  for (const Edge& e : nodes_[id].out) {
    nodes_[e.node].cache.valid = false;
    ++nodes_[e.node].gen;
  }
}

NodeId DependencyGraph::FindRefPair(RefId r1, RefId r2) const {
  if (r1 == r2) return kInvalidNode;
  auto it = ref_pair_index_.find(PairKey(r1, r2));
  return it == ref_pair_index_.end() ? kInvalidNode : it->second;
}

NodeId DependencyGraph::FindValuePair(ValueId v1, ValueId v2) const {
  if (v1 == v2) return kInvalidNode;
  auto it = value_pair_index_.find(PairKey(v1, v2));
  return it == value_pair_index_.end() ? kInvalidNode : it->second;
}

void DependencyGraph::DetachEdge(NodeId source, NodeId target,
                                 DependencyKind kind, int16_t evidence) {
  auto& out = nodes_[source].out;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].node == target && out[i].kind == kind &&
        out[i].evidence == evidence) {
      out[i] = out.back();
      out.pop_back();
      --num_edges_;
      return;
    }
  }
  RECON_LOG(Fatal) << "DetachEdge: edge " << source << " -> " << target
                   << " not found";
}

bool DependencyGraph::FoldInto(NodeId from, NodeId into) {
  RECON_CHECK_NE(from, into);
  Node& src = nodes_[from];
  Node& dst = nodes_[into];
  RECON_CHECK(!src.dead && !dst.dead);
  const float old_sim = dst.sim;
  // The fold rewrites dst's inputs wholesale (in-edges, statics, sim);
  // one conservative bump covers every mutation below that targets dst.
  ++dst.gen;

  bool gained = false;
  // Reconnect incoming dependencies: x -> from becomes x -> into.
  for (const Edge& e : src.in) {
    DetachEdge(e.node, from, e.kind, e.evidence);
    if (e.node == into) continue;  // Would be a self loop.
    const size_t before = dst.in.size();
    AddEdge(e.node, into, e.kind, e.evidence);
    if (dst.in.size() > before) gained = true;
  }
  src.in.clear();

  // Reconnect outgoing dependencies: from -> y becomes into -> y.
  //
  // y's evidence cache survives this: src was never merged (merged nodes
  // are not folded) and src.sim <= the sim dst ends up with, so replacing
  // the src edge leaves y's cached channel maxima equal to a rescan — a
  // genuinely new into -> y edge pushes dst's contribution via AddEdge,
  // and dst's own sim raise / demotion is reconciled at the end below.
  bool dst_lost_input = false;
  for (const Edge& e : src.out) {
    // Remove the y.in record for `from`.
    auto& target_in = nodes_[e.node].in;
    for (size_t i = 0; i < target_in.size(); ++i) {
      if (target_in[i].node == from && target_in[i].kind == e.kind &&
          target_in[i].evidence == e.evidence) {
        target_in[i] = target_in.back();
        target_in.pop_back();
        --num_edges_;
        ++nodes_[e.node].gen;  // Lost an input.
        break;
      }
    }
    if (e.node == into) {
      // dst loses src's own real-valued contribution; its cached channel
      // max may rest on it.
      if (e.kind == DependencyKind::kRealValued) dst_lost_input = true;
      continue;
    }
    AddEdge(into, e.node, e.kind, e.evidence);
  }
  src.out.clear();

  // Static evidence accumulates: the surviving node represents the union
  // of both pairs' information. AddStaticReal maintains dst's cache; the
  // boolean base counts are delta-bumped to match.
  for (const auto& [evidence, sim] : src.static_real) {
    dst.AddStaticReal(evidence, sim);
  }
  if (src.static_strong > dst.static_strong) {
    if (dst.cache.valid) {
      dst.cache.strong_merged += src.static_strong - dst.static_strong;
    }
    dst.static_strong = src.static_strong;
  }
  if (src.static_weak > dst.static_weak) {
    if (dst.cache.valid) {
      dst.cache.weak_merged += src.static_weak - dst.static_weak;
    }
    dst.static_weak = src.static_weak;
  }

  // Negative evidence survives folding: a cluster may not merge with a
  // reference constrained apart from any of its members. An already-merged
  // destination is left merged (decisions are monotone; the §3.4
  // post-fixpoint pass arbitrates genuine conflicts).
  if (src.state == NodeState::kNonMerge) {
    if (dst.state != NodeState::kMerged) dst.state = NodeState::kNonMerge;
  } else if (dst.state != NodeState::kNonMerge) {
    // Evidence is now a superset of both nodes'; a monotone similarity
    // function will produce at least max of the two on recomputation.
    dst.sim = std::max(dst.sim, src.sim);
  }

  src.dead = true;
  --num_live_nodes_;
  // Every dst mutation above was cache-maintained (AddEdge pushed gained
  // contributions, statics were offered / delta-bumped), except a direct
  // src -> dst input disappearing with the fold.
  if (dst_lost_input) dst.cache.valid = false;
  if (dst.state == NodeState::kNonMerge) {
    // Rescans exclude a non-merge dst, but dependents may cache the
    // folded node's (or, on a fresh demotion, dst's own) contributions.
    // Covers both the constraint transferred from src and a dst that was
    // already constrained before edges were moved onto it.
    InvalidateDependentCaches(into);
  } else if (dst.sim != old_sim) {
    // Monotone raise outside the solver loop: push it like Step would.
    for (const Edge& e : dst.out) {
      if (e.kind != DependencyKind::kRealValued) continue;
      ++nodes_[e.node].gen;
      EvidenceCache& cache = nodes_[e.node].cache;
      if (cache.valid) cache.Offer(e.evidence, dst.sim);
    }
  }
  return gained;
}

void DependencyGraph::RemoveFromRefLists(NodeId id) {
  const Node& node = nodes_[id];
  for (const RefId r : {static_cast<RefId>(node.a),
                        static_cast<RefId>(node.b)}) {
    auto& list = nodes_of_ref_[r];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] == id) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

MergeRefsResult DependencyGraph::MergeReferences(RefId keep, RefId gone) {
  RECON_CHECK_NE(keep, gone);
  MergeRefsResult result;

  // Copy: folding mutates nodes_of_ref_.
  const std::vector<NodeId> affected = nodes_of_ref_[gone];
  for (const NodeId n : affected) {
    Node& node = nodes_[n];
    if (node.dead) continue;
    if (!node.IsRefPair()) continue;
    const RefId other = static_cast<RefId>(node.Other(gone));
    if (other == keep) continue;  // The (keep, gone) pair node itself.
    // Merged nodes are markers of earlier merges within this cluster; they
    // stay in place as evidence sources and must not be renamed or folded.
    if (node.state == NodeState::kMerged) continue;

    ref_pair_index_.erase(PairKey(node.a, node.b));
    const NodeId target = FindRefPair(keep, other);
    if (target != kInvalidNode && target != n && !nodes_[target].dead) {
      // Fold (gone, other) into (keep, other).
      RemoveFromRefLists(n);
      const bool gained = FoldInto(n, target);
      result.folded.push_back(n);
      if (gained) result.gained_inputs.push_back(target);
    } else {
      // Rename (gone, other) to (keep, other).
      RemoveFromRefLists(n);
      node.a = std::min(keep, other);
      node.b = std::max(keep, other);
      ref_pair_index_[PairKey(keep, other)] = n;
      nodes_of_ref_[keep].push_back(n);
      nodes_of_ref_[other].push_back(n);
      // The renamed node now compares enriched elements; it should be
      // reconsidered even though its edge set did not change.
      result.gained_inputs.push_back(n);
    }
  }
  nodes_of_ref_[gone].clear();
  return result;
}

}  // namespace recon
