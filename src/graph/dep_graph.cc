#include "graph/dep_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace recon {

DependencyGraph::DependencyGraph(int num_references)
    : nodes_of_ref_(num_references) {
  RECON_CHECK_GE(num_references, 0);
}

NodeId DependencyGraph::AddRefPairNode(int class_id, RefId r1, RefId r2) {
  RECON_CHECK_NE(r1, r2);
  RECON_CHECK(r1 >= 0 && r1 < static_cast<int>(nodes_of_ref_.size()));
  RECON_CHECK(r2 >= 0 && r2 < static_cast<int>(nodes_of_ref_.size()));
  const uint64_t key = PairKey(r1, r2);
  auto [it, inserted] =
      ref_pair_index_.try_emplace(key, static_cast<NodeId>(nodes_.size()));
  if (!inserted) return it->second;

  Node node;
  node.kind = NodeKind::kReferencePair;
  node.class_id = static_cast<int16_t>(class_id);
  node.a = std::min(r1, r2);
  node.b = std::max(r1, r2);
  node.sim = 0.0f;
  node.state = NodeState::kInactive;
  nodes_.push_back(std::move(node));
  ++num_live_nodes_;

  const NodeId id = it->second;
  nodes_of_ref_[r1].push_back(id);
  nodes_of_ref_[r2].push_back(id);
  return id;
}

NodeId DependencyGraph::AddValuePairNode(ValueId v1, ValueId v2, double sim,
                                         NodeState state) {
  RECON_CHECK_NE(v1, v2);
  const uint64_t key = PairKey(v1, v2);
  auto [it, inserted] =
      value_pair_index_.try_emplace(key, static_cast<NodeId>(nodes_.size()));
  if (!inserted) return it->second;

  Node node;
  node.kind = NodeKind::kValuePair;
  node.a = std::min(v1, v2);
  node.b = std::max(v1, v2);
  node.sim = static_cast<float>(sim);
  node.state = state;
  nodes_.push_back(std::move(node));
  ++num_live_nodes_;
  return it->second;
}

void DependencyGraph::AddEdge(NodeId from, NodeId to, DependencyKind kind,
                              int evidence) {
  RECON_CHECK_NE(from, to);
  Node& src = nodes_[from];
  const int16_t ev = static_cast<int16_t>(evidence);
  for (const Edge& e : src.out) {
    if (e.node == to && e.kind == kind && e.evidence == ev) return;
  }
  src.out.push_back(Edge{to, kind, ev});
  nodes_[to].in.push_back(Edge{from, kind, ev});
  ++num_edges_;
}

NodeId DependencyGraph::FindRefPair(RefId r1, RefId r2) const {
  if (r1 == r2) return kInvalidNode;
  auto it = ref_pair_index_.find(PairKey(r1, r2));
  return it == ref_pair_index_.end() ? kInvalidNode : it->second;
}

NodeId DependencyGraph::FindValuePair(ValueId v1, ValueId v2) const {
  if (v1 == v2) return kInvalidNode;
  auto it = value_pair_index_.find(PairKey(v1, v2));
  return it == value_pair_index_.end() ? kInvalidNode : it->second;
}

void DependencyGraph::DetachEdge(NodeId source, NodeId target,
                                 DependencyKind kind, int16_t evidence) {
  auto& out = nodes_[source].out;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].node == target && out[i].kind == kind &&
        out[i].evidence == evidence) {
      out[i] = out.back();
      out.pop_back();
      --num_edges_;
      return;
    }
  }
  RECON_LOG(Fatal) << "DetachEdge: edge " << source << " -> " << target
                   << " not found";
}

bool DependencyGraph::FoldInto(NodeId from, NodeId into) {
  RECON_CHECK_NE(from, into);
  Node& src = nodes_[from];
  Node& dst = nodes_[into];
  RECON_CHECK(!src.dead && !dst.dead);

  bool gained = false;
  // Reconnect incoming dependencies: x -> from becomes x -> into.
  for (const Edge& e : src.in) {
    DetachEdge(e.node, from, e.kind, e.evidence);
    if (e.node == into) continue;  // Would be a self loop.
    const size_t before = dst.in.size();
    AddEdge(e.node, into, e.kind, e.evidence);
    if (dst.in.size() > before) gained = true;
  }
  src.in.clear();

  // Reconnect outgoing dependencies: from -> y becomes into -> y.
  for (const Edge& e : src.out) {
    // Remove the y.in record for `from`.
    auto& target_in = nodes_[e.node].in;
    for (size_t i = 0; i < target_in.size(); ++i) {
      if (target_in[i].node == from && target_in[i].kind == e.kind &&
          target_in[i].evidence == e.evidence) {
        target_in[i] = target_in.back();
        target_in.pop_back();
        --num_edges_;
        break;
      }
    }
    if (e.node == into) continue;
    AddEdge(into, e.node, e.kind, e.evidence);
  }
  src.out.clear();

  // Static evidence accumulates: the surviving node represents the union
  // of both pairs' information.
  for (const auto& [evidence, sim] : src.static_real) {
    dst.AddStaticReal(evidence, sim);
  }
  dst.static_strong = std::max(dst.static_strong, src.static_strong);
  dst.static_weak = std::max(dst.static_weak, src.static_weak);

  // Negative evidence survives folding: a cluster may not merge with a
  // reference constrained apart from any of its members. An already-merged
  // destination is left merged (decisions are monotone; the §3.4
  // post-fixpoint pass arbitrates genuine conflicts).
  if (src.state == NodeState::kNonMerge) {
    if (dst.state != NodeState::kMerged) dst.state = NodeState::kNonMerge;
  } else if (dst.state != NodeState::kNonMerge) {
    // Evidence is now a superset of both nodes'; a monotone similarity
    // function will produce at least max of the two on recomputation.
    dst.sim = std::max(dst.sim, src.sim);
  }

  src.dead = true;
  --num_live_nodes_;
  return gained;
}

void DependencyGraph::RemoveFromRefLists(NodeId id) {
  const Node& node = nodes_[id];
  for (const RefId r : {static_cast<RefId>(node.a),
                        static_cast<RefId>(node.b)}) {
    auto& list = nodes_of_ref_[r];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] == id) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

MergeRefsResult DependencyGraph::MergeReferences(RefId keep, RefId gone) {
  RECON_CHECK_NE(keep, gone);
  MergeRefsResult result;

  // Copy: folding mutates nodes_of_ref_.
  const std::vector<NodeId> affected = nodes_of_ref_[gone];
  for (const NodeId n : affected) {
    Node& node = nodes_[n];
    if (node.dead) continue;
    if (!node.IsRefPair()) continue;
    const RefId other = static_cast<RefId>(node.Other(gone));
    if (other == keep) continue;  // The (keep, gone) pair node itself.
    // Merged nodes are markers of earlier merges within this cluster; they
    // stay in place as evidence sources and must not be renamed or folded.
    if (node.state == NodeState::kMerged) continue;

    ref_pair_index_.erase(PairKey(node.a, node.b));
    const NodeId target = FindRefPair(keep, other);
    if (target != kInvalidNode && target != n && !nodes_[target].dead) {
      // Fold (gone, other) into (keep, other).
      RemoveFromRefLists(n);
      const bool gained = FoldInto(n, target);
      result.folded.push_back(n);
      if (gained) result.gained_inputs.push_back(target);
    } else {
      // Rename (gone, other) to (keep, other).
      RemoveFromRefLists(n);
      node.a = std::min(keep, other);
      node.b = std::max(keep, other);
      ref_pair_index_[PairKey(keep, other)] = n;
      nodes_of_ref_[keep].push_back(n);
      nodes_of_ref_[other].push_back(n);
      // The renamed node now compares enriched elements; it should be
      // reconsidered even though its edge set did not change.
      result.gained_inputs.push_back(n);
    }
  }
  nodes_of_ref_[gone].clear();
  return result;
}

}  // namespace recon
