// Open-addressed flat hash index from packed element-pair keys to node
// ids — the CSR layout's replacement for std::unordered_map pair indexes
// (DESIGN.md §13). One flat power-of-two slot array, linear probing,
// tombstone deletion; no per-entry allocation, ~13 bytes a slot.
//
// Keys are PairKey(a, b) = (min << 32) | max with a != b, so a key is
// never 0 (max >= 1) and never ~0 (min < max); those two values are free
// to mark empty and deleted slots.

#ifndef RECON_GRAPH_PAIR_INDEX_H_
#define RECON_GRAPH_PAIR_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/node.h"
#include "util/logging.h"

namespace recon {

class FlatPairIndex {
 public:
  FlatPairIndex() { Rehash(kMinCapacity); }

  NodeId Find(uint64_t key) const {
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == kEmpty) return kInvalidNode;
    }
  }

  /// try_emplace: returns {existing value, false} when `key` is present,
  /// else inserts and returns {value, true}.
  std::pair<NodeId, bool> Insert(uint64_t key, NodeId value) {
    MaybeGrow();
    const size_t mask = slots_.size() - 1;
    size_t free_slot = SIZE_MAX;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == key) return {s.value, false};
      if (s.key == kTombstone) {
        if (free_slot == SIZE_MAX) free_slot = i;
      } else if (s.key == kEmpty) {
        if (free_slot == SIZE_MAX) {
          free_slot = i;
          ++used_;  // Claiming a virgin slot lengthens probe chains.
        }
        Slot& dst = slots_[free_slot];
        dst.key = key;
        dst.value = value;
        ++size_;
        return {value, true};
      }
    }
  }

  /// Inserts or overwrites (the rename path may retarget a key whose old
  /// entry points at a dead node).
  void InsertOrAssign(uint64_t key, NodeId value) {
    auto [existing, inserted] = Insert(key, value);
    if (inserted || existing == value) return;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == key) {
        s.value = value;
        return;
      }
      RECON_CHECK(s.key != kEmpty);
    }
  }

  bool Erase(uint64_t key) {
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == key) {
        s.key = kTombstone;
        --size_;
        return true;
      }
      if (s.key == kEmpty) return false;
    }
  }

  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 7 / 10 < n) cap *= 2;
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Rehashes down to the smallest table that holds the live entries under
  /// the growth load factor, dropping tombstones. Build-boundary
  /// counterpart of Reserve(): the reserve sizes the table from a
  /// candidate-count *estimate*, and once the true entry count is known
  /// the slack would otherwise be carried for the whole solve.
  void ShrinkToFit() {
    size_t cap = kMinCapacity;
    while (cap * 7 / 10 < size_ + 1) cap *= 2;
    if (cap != slots_.size()) Rehash(cap);
  }

  size_t size() const { return size_; }
  size_t bytes() const { return slots_.capacity() * sizeof(Slot); }

 private:
  struct Slot {
    uint64_t key = kEmpty;
    NodeId value = kInvalidNode;
  };
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kTombstone = ~0ULL;
  static constexpr size_t kMinCapacity = 16;

  static size_t Hash(uint64_t key) {
    // splitmix64 finalizer: full-avalanche over the packed pair.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return static_cast<size_t>(key);
  }

  void MaybeGrow() {
    // Tombstones count against the load factor: probe chains cross them.
    if ((used_ + 1) * 10 >= slots_.size() * 7) {
      Rehash(size_ + 1 >= slots_.size() * 7 / 20 ? slots_.size() * 2
                                                 : slots_.size());
    }
  }

  void Rehash(size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    used_ = size_;
    const size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.key == kEmpty || s.key == kTombstone) continue;
      size_t i = Hash(s.key) & mask;
      while (slots_[i].key != kEmpty) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;  ///< Live entries.
  size_t used_ = 0;  ///< Live entries + tombstones (probe-chain load).
};

}  // namespace recon

#endif  // RECON_GRAPH_PAIR_INDEX_H_
