// Slotted range pool: the storage primitive behind the CSR dependency
// graph layout (DESIGN.md §13). Every slot (a node's in-edge list, a
// node's out-edge list, a reference's node list, a node's static
// evidence) owns a contiguous [begin, begin+count) range of one shared
// buffer instead of its own heap-allocated std::vector. After the graph
// settles, Compact() rewrites the buffer into true CSR form: ranges laid
// out back to back in slot order with zero slack.
//
// Mutation keeps vector semantics on a shared buffer:
//  - Append writes into the range's slack when it has any, and otherwise
//    relocates the range to the end of the buffer with doubled capacity
//    (the old bytes become garbage until the next Compact). Element order
//    is preserved, so iteration order — which the solver's determinism
//    leans on — is exactly what per-slot vectors would produce.
//  - RemoveFirst swap-deletes (moves the last element into the hole),
//    matching the graph's historical removal idiom.
//
// Spans returned by span()/mutable_span() are invalidated by any Append
// or Compact on the same pool, like vector iterators on push_back.

#ifndef RECON_GRAPH_RANGE_POOL_H_
#define RECON_GRAPH_RANGE_POOL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

namespace recon {

template <typename T>
class RangePool {
 public:
  /// Grows the slot array to at least `n` slots (new slots are empty).
  void EnsureSlots(size_t n) {
    if (slots_.size() < n) slots_.resize(n);
  }
  size_t num_slots() const { return slots_.size(); }

  uint32_t count(size_t slot) const { return slots_[slot].count; }

  std::span<const T> span(size_t slot) const {
    const Range& r = slots_[slot];
    return {data_.data() + r.begin, r.count};
  }
  std::span<T> mutable_span(size_t slot) {
    Range& r = slots_[slot];
    return {data_.data() + r.begin, r.count};
  }

  void Append(size_t slot, const T& value) {
    Range& r = slots_[slot];
    if (r.count == r.cap) Grow(r);
    data_[r.begin + r.count] = value;
    ++r.count;
  }

  /// Swap-deletes the first element matching `pred`; returns whether one
  /// was found. The freed tail element stays as slack for later appends.
  template <typename Pred>
  bool RemoveFirst(size_t slot, Pred pred) {
    Range& r = slots_[slot];
    T* base = data_.data() + r.begin;
    for (uint32_t i = 0; i < r.count; ++i) {
      if (pred(base[i])) {
        base[i] = base[r.count - 1];
        --r.count;
        return true;
      }
    }
    return false;
  }

  /// Empties a slot. Its buffer range becomes garbage until Compact().
  void Clear(size_t slot) {
    Range& r = slots_[slot];
    r.count = 0;
    r.cap = 0;
    r.begin = 0;
  }

  /// Rebuilds the buffer as tight CSR: ranges back to back in slot order,
  /// cap == count, no garbage. O(live elements).
  void Compact() {
    std::vector<T> packed;
    packed.reserve(TotalCount());
    for (Range& r : slots_) {
      const uint32_t begin = static_cast<uint32_t>(packed.size());
      packed.insert(packed.end(), data_.begin() + r.begin,
                    data_.begin() + r.begin + r.count);
      r.begin = begin;
      r.cap = r.count;
    }
    data_ = std::move(packed);
    // ReserveSlots sizes the range table from a pair-count estimate; now
    // that the true slot count is known, release the over-estimate slack
    // (the data buffer is already exact — `packed` was reserved to count).
    slots_.shrink_to_fit();
  }

  void ReserveSlots(size_t n) { slots_.reserve(n); }
  void ReserveData(size_t n) { data_.reserve(n); }

  size_t TotalCount() const {
    size_t total = 0;
    for (const Range& r : slots_) total += r.count;
    return total;
  }
  /// Heap bytes held by the shared buffer.
  size_t data_bytes() const { return data_.capacity() * sizeof(T); }
  /// Heap bytes held by the per-slot range table.
  size_t slot_bytes() const { return slots_.capacity() * sizeof(Range); }

 private:
  struct Range {
    uint32_t begin = 0;
    uint32_t count = 0;
    uint32_t cap = 0;
  };

  void Grow(Range& r) {
    const uint32_t new_cap = r.cap == 0 ? 2 : r.cap * 2;
    // A range already at the buffer's end extends in place.
    if (r.begin + r.cap == data_.size()) {
      data_.resize(data_.size() + (new_cap - r.cap));
      r.cap = new_cap;
      return;
    }
    const uint32_t new_begin = static_cast<uint32_t>(data_.size());
    RECON_CHECK(data_.size() + new_cap <
                static_cast<size_t>(UINT32_MAX));
    data_.resize(data_.size() + new_cap);
    for (uint32_t i = 0; i < r.count; ++i) {
      data_[new_begin + i] = data_[r.begin + i];
    }
    r.begin = new_begin;
    r.cap = new_cap;
  }

  std::vector<Range> slots_;
  std::vector<T> data_;
};

}  // namespace recon

#endif  // RECON_GRAPH_RANGE_POOL_H_
