// Interned value store with precomputed similarity features.
//
// The fixed-point solver re-scores the same attribute pairs many times as
// evidence propagates, and with O(n²) candidate pairs per canopy each
// distinct value used to be re-parsed and re-tokenized hundreds of times.
// The ValueStore analyzes every distinct interned value exactly once —
// lowercase form, PersonName parse, email parse, normalized title + tokens,
// venue token views, character n-gram set, Soundex, TF-IDF vector — and
// shares the resulting ValueFeatures read-only across pool threads. The
// SimMemo on top caches pairwise comparator results keyed by
// (evidence, min(ValueId), max(ValueId)) with a hard byte bound, so
// repeated re-scoring becomes a lookup and memory pressure degrades to
// eviction or bypass, never an abort (DESIGN.md §11).

#ifndef RECON_SIM_VALUE_STORE_H_
#define RECON_SIM_VALUE_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/value_pool.h"
#include "strsim/email.h"
#include "strsim/person_name.h"
#include "strsim/signature.h"
#include "strsim/tfidf.h"
#include "strsim/title.h"
#include "strsim/tokens.h"
#include "strsim/venue.h"

namespace recon {

/// What kind of analysis a value domain needs. Determines which ValueFeatures
/// fields are populated.
enum class FeatureKind : int {
  kGeneric = 0,  ///< Lowercase + n-grams only.
  kPersonName,
  kEmail,
  kTitle,
  kVenueName,
  kYear,
  kPages,
  kLocation,
};

/// Maps value domains (class, attribute) to feature kinds. Built by the
/// caller from its schema binding; the store itself stays schema-agnostic so
/// recon_sim does not depend on recon_core.
struct ValueKindSchema {
  std::vector<std::pair<ValueDomain, FeatureKind>> kinds;

  /// Kind registered for `domain`, or kGeneric when unregistered.
  FeatureKind KindOf(ValueDomain domain) const {
    for (const auto& [d, k] : kinds) {
      if (d == domain) return k;
    }
    return FeatureKind::kGeneric;
  }
};

/// Precomputed analysis of one distinct attribute value. Only the fields for
/// the value's kind are populated (plus the kind-independent ones).
struct ValueFeatures {
  FeatureKind kind = FeatureKind::kGeneric;
  std::string lower;          ///< ToLower(raw); all kinds.
  strsim::NgramSet ngrams;    ///< Character trigram set of raw; all kinds.
  std::string soundex;        ///< Soundex of the last name (person) or lower.

  strsim::PersonName name;          ///< kPersonName.
  strsim::EmailAddress email;       ///< kEmail.
  strsim::TitleFeatures title;      ///< kTitle.
  strsim::TfIdfVector tfidf;        ///< kTitle; filled by ValueStore::Sync.
  strsim::VenueFeatures venue;      ///< kVenueName.
  strsim::YearFeatures year;        ///< kYear.
  strsim::PagesFeatures pages;      ///< kPages.
  strsim::LocationFeatures location;  ///< kLocation.

  /// Title prefilter signatures (kTitle only; DESIGN.md §16): trigram
  /// sketch of title.normalized, distinct-token sketch of title.tokens,
  /// and the normalized length — everything TitleSimilarityUpperBound
  /// needs to bound the title comparator without touching the strings.
  strsim::BitSig256 title_gram_sig;
  strsim::BitSig256 title_token_sig;
  uint32_t title_norm_len = 0;

  /// Rough heap footprint of this record, for memory accounting.
  int64_t ApproximateBytes() const;
};

/// Analyzes one raw value. The TF-IDF vector is left empty — it needs corpus
/// statistics that only the ValueStore holds.
ValueFeatures AnalyzeValue(const std::string& raw, FeatureKind kind);

/// Feature table parallel to a ValuePool: features(id) is the analysis of
/// pool.StringOf(id). Populated by Sync() between parallel phases; reads are
/// lock-free and safe to share across threads while no Sync runs.
class ValueStore {
 public:
  explicit ValueStore(ValueKindSchema schema) : schema_(std::move(schema)) {}

  ValueStore(const ValueStore&) = delete;
  ValueStore& operator=(const ValueStore&) = delete;

  /// Extends the feature table to cover every ValueId in `pool`, analyzing
  /// only values added since the last Sync. Not thread-safe; call between
  /// parallel phases (after interning, before scoring).
  void Sync(const ValuePool& pool);

  /// Features of an interned value. `id` must be covered (id < size()).
  const ValueFeatures& features(ValueId id) const {
    return features_[static_cast<size_t>(id)];
  }

  /// True when `id` has been analyzed by a completed Sync.
  bool Covers(ValueId id) const {
    return id >= 0 && static_cast<size_t>(id) < features_.size();
  }

  int size() const { return static_cast<int>(features_.size()); }

  /// Number of distinct-value analyses performed — exactly one per interned
  /// value, regardless of how many pairs compare it.
  int64_t num_analyses() const { return static_cast<int64_t>(features_.size()); }

  /// Rough heap footprint of the feature table.
  int64_t approximate_bytes() const { return approximate_bytes_; }

  /// Bytes spent on prefilter signatures (title values only).
  int64_t signature_bytes() const { return signature_bytes_; }

  /// Incremental TF-IDF model over every title value seen so far.
  const strsim::TfIdfModel& title_model() const { return title_model_; }

 private:
  ValueKindSchema schema_;
  std::vector<ValueFeatures> features_;
  strsim::TfIdfModel title_model_;
  int64_t approximate_bytes_ = 0;
  int64_t signature_bytes_ = 0;
};

/// Scores a pair of analyzed values on an evidence channel. Exactly matches
/// the raw-string field comparator for that channel — byte-identical output
/// is the contract that keeps ReconcilerOptions::value_store a pure
/// optimization. For kEvPersonNameEmail the name/email sides are identified
/// by kind, so argument order does not matter. Returns 0 for boolean or
/// derived evidence channels that have no atomic comparator.
double FeaturePairSimilarity(int evidence, const ValueFeatures& a,
                             const ValueFeatures& b);

/// Sound upper bound on TitleFieldSimilarity(a, b) computed from the
/// precomputed signatures alone (DESIGN.md §16). The title comparator is
/// max(EditSimilarity(normalized), JaccardSimilarity(tokens)) clamped to
/// [0, 1]; the gram signature lower-bounds the edit distance and the
/// token signature upper-bounds the Jaccard, so the max of the two
/// derived bounds can never fall below the exact similarity. Both inputs
/// must be kTitle features from a completed Sync.
double TitleSimilarityUpperBound(const ValueFeatures& a,
                                 const ValueFeatures& b);

/// Same bound from batch-precomputed XOR popcounts (the blocked scoring
/// path sweeps BatchSigSymDiff over a block, then finishes per pair with
/// this arithmetic).
double TitleSimilarityUpperBoundFromPops(int gram_pop, int token_pop,
                                         const ValueFeatures& a,
                                         const ValueFeatures& b);

/// Memo key holding the full (evidence, min(ValueId), max(ValueId))
/// triple. The ids pack exactly into 64 bits (ValueId is 32-bit); the
/// evidence channel lives in its own field rather than being folded into
/// spare id bits — the previous single-uint64 packing XORed the evidence
/// into bits 58+, which a ValueId >= 2^26 bled into, silently colliding
/// entries across evidence kinds at large scale.
struct MemoKey {
  uint64_t pair = 0;      ///< (min << 32) | max.
  uint32_t evidence = 0;

  bool operator==(const MemoKey& o) const {
    return pair == o.pair && evidence == o.evidence;
  }
};

struct MemoKeyHash {
  size_t operator()(const MemoKey& k) const {
    // splitmix64-style finalizer over the triple.
    uint64_t x =
        k.pair + (static_cast<uint64_t>(k.evidence) + 1) * 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// Bounded, sharded memo of pairwise comparator results. Keys hold the
/// full (evidence, min(ValueId), max(ValueId)) triple — no lossy packing —
/// and values are stored as float to match their rounding.
/// Compute runs under the shard lock, so the number of misses equals the
/// number of distinct keys requested — deterministic across thread counts
/// as long as nothing is evicted. When a shard would exceed its share of the
/// byte bound it is cleared (eviction); a bound too small to be useful turns
/// the memo into a pass-through (bypass). Never an abort.
class SimMemo {
 public:
  SimMemo() = default;
  SimMemo(const SimMemo&) = delete;
  SimMemo& operator=(const SimMemo&) = delete;

  /// Sets the total byte bound across all shards. <= 0 or too tiny for even
  /// a handful of entries per shard puts the memo in bypass mode.
  void set_max_bytes(int64_t max_bytes);

  int64_t max_bytes() const { return max_bytes_; }

  /// Returns the memoized similarity for (evidence, v1, v2), computing it
  /// via `compute` (a double() callable) on first sight. Stores float — the
  /// same rounding the per-lane raw caches apply. `hits`/`misses` are
  /// per-lane counters owned by the caller (no contention).
  template <typename Compute>
  float LookupOrCompute(int evidence, ValueId v1, ValueId v2,
                        Compute&& compute, int64_t* hits, int64_t* misses) {
    if (bypass_) {
      ++*misses;
      bypasses_.fetch_add(1, std::memory_order_relaxed);
      return static_cast<float>(compute());
    }
    const MemoKey key = MakeKey(evidence, v1, v2);
    Shard& shard = shards_[MemoKeyHash{}(key) % kNumShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++*hits;
      return it->second;
    }
    ++*misses;
    if (static_cast<int64_t>(shard.map.size() + 1) * kEntryBytes >
        per_shard_cap_) {
      bytes_.fetch_sub(static_cast<int64_t>(shard.map.size()) * kEntryBytes,
                       std::memory_order_relaxed);
      shard.map.clear();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    const float sim = static_cast<float>(compute());
    shard.map.emplace(key, sim);
    bytes_.fetch_add(kEntryBytes, std::memory_order_relaxed);
    return sim;
  }

  /// Approximate bytes currently held across all shards.
  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  /// Number of shard clears forced by the byte bound.
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Number of lookups answered without caching (bound too small).
  int64_t bypasses() const {
    return bypasses_.load(std::memory_order_relaxed);
  }

  /// Key for (evidence, v1, v2) with the ids order-normalized. Shared
  /// with the per-lane raw caches so both memo layers key identically.
  static MemoKey MakeKey(int evidence, ValueId v1, ValueId v2) {
    const uint64_t lo = static_cast<uint64_t>(
        static_cast<uint32_t>(std::min(v1, v2)));
    const uint64_t hi = static_cast<uint64_t>(
        static_cast<uint32_t>(std::max(v1, v2)));
    return MemoKey{(lo << 32) | hi, static_cast<uint32_t>(evidence)};
  }

  /// Estimated heap cost of one map entry (node + bucket overhead).
  static constexpr int64_t kEntryBytes = 56;

 private:
  static constexpr int kNumShards = 64;

  struct Shard {
    std::mutex mu;
    std::unordered_map<MemoKey, float, MemoKeyHash> map;
  };

  Shard shards_[kNumShards];
  int64_t max_bytes_ = 0;
  int64_t per_shard_cap_ = 0;
  bool bypass_ = true;  ///< Until set_max_bytes grants a usable bound.
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> bypasses_{0};
};

}  // namespace recon

#endif  // RECON_SIM_VALUE_STORE_H_
