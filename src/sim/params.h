// All tunable similarity parameters in one place (paper §5.2).
//
// The paper's published settings are the defaults: merge-threshold 0.85 for
// reference similarities and 1.0 for attribute similarities; beta = 0.1
// (0.2 for Venue); gamma = 0.05; t_rv = 0.7 for Person and Article and 0.1
// for Venue. The S_rv leaf weights (the per-class decision trees) follow
// the template of §4 and live here so experiments and the tuner can vary
// them.

#ifndef RECON_SIM_PARAMS_H_
#define RECON_SIM_PARAMS_H_

namespace recon {

/// Per-class boolean-evidence parameters (paper §4).
struct BooleanEvidenceParams {
  /// Reward per merged strong-boolean incoming neighbor.
  double beta = 0.1;
  /// Reward per merged weak-boolean incoming neighbor.
  double gamma = 0.05;
  /// Minimum S_rv for boolean evidence to apply.
  double t_rv = 0.7;
  /// At most this many weak-boolean neighbors are rewarded — the paper's
  /// suggested refinement ("a higher reward for the first several merged
  /// neighbors and a lower reward for the rest", §4), which keeps shared
  /// social hubs from outvoting weak attribute evidence.
  int max_weak_rewarded = 3;
};

/// Every tunable of the similarity system.
struct SimParams {
  // ---- Global thresholds (§5.2) ----------------------------------------
  /// Reference pairs at or above this similarity are reconciled.
  double merge_threshold = 0.85;
  /// Attribute-value pairs at or above this similarity are merged.
  double value_merge_threshold = 1.0;
  /// Minimum similarity increase that re-activates neighbors (termination
  /// guard, §3.2).
  double epsilon = 1e-3;

  // ---- Per-class boolean evidence ---------------------------------------
  BooleanEvidenceParams person{0.1, 0.05, 0.7};
  BooleanEvidenceParams article{0.1, 0.05, 0.7};
  BooleanEvidenceParams venue{0.2, 0.05, 0.1};

  // ---- Value-node seed thresholds ("potentially similar", §3.1) ---------
  double person_name_seed = 0.50;
  double person_email_seed = 0.60;
  double name_email_seed = 0.55;
  double article_title_seed = 0.50;
  double venue_name_seed = 0.25;
  /// Years always get a node when both sides have one: a year *mismatch*
  /// (similarity 0) is negative evidence the similarity functions must see.
  double year_seed = 0.0;
  double pages_seed = 0.45;
  double location_seed = 0.50;

  // ---- Person S_rv leaf weights -----------------------------------------
  /// name + email leaf: w_n * name + w_e * email.
  double person_w_name_with_email = 0.60;
  double person_w_email_with_name = 0.40;
  /// name + email + name~email leaf.
  double person_w_name_full = 0.45;
  double person_w_email_full = 0.30;
  double person_w_ne_full = 0.25;
  /// email-only leaf multiplier.
  double person_email_only_scale = 0.90;
  /// name~email-only leaf multiplier. At 0.94, only *full-name-pattern*
  /// account matches (0.95: "robert.epstein") can merge on name~email
  /// evidence alone; initial patterns ("jhuang", 0.9) and bare last-name
  /// accounts (0.85) cannot — too many J. Huangs fit "jhuang".
  double person_ne_only_scale = 0.94;
  /// name + name~email (no email) leaf weights. Balanced: an abbreviated
  /// name match (0.8) plus a strong account pattern (0.9, "repstein")
  /// reconciles on its own — the paper's flagship Name&Email case.
  double person_w_name_ne = 0.50;
  double person_w_ne_ne = 0.50;

  // ---- Article S_rv leaf weights ----------------------------------------
  double article_w_title = 0.70;
  /// Auxiliary evidence weights (renormalized over present channels).
  double article_w_authors = 0.40;
  double article_w_venue = 0.25;
  double article_w_pages = 0.20;
  double article_w_year = 0.15;
  /// Title-only leaf multiplier.
  double article_title_only_scale = 0.92;

  // ---- Venue S_rv leaf weights ------------------------------------------
  double venue_w_name = 0.80;
  double venue_w_year = 0.10;
  double venue_w_location = 0.10;
  /// Multiplier applied to venue S_rv when both references carry years and
  /// the years are incompatible.
  double venue_year_mismatch_penalty = 0.45;
  /// Hard ceiling on total venue similarity under a flat year
  /// contradiction (must stay below merge_threshold).
  double venue_year_mismatch_cap = 0.80;
};

}  // namespace recon

#endif  // RECON_SIM_PARAMS_H_
